//! Cross-crate integration test: warping simulation must be exact — it must
//! report the same access and miss counts as non-warping simulation — on the
//! PolyBench kernels, across replacement policies and cache configurations.
//!
//! This is the end-to-end statement of the paper's correctness claim,
//! exercised through the public `warpsim` API.

use warpsim::prelude::*;

/// The test-system L1 (32 KiB, 8-way, 64-byte lines) with the given policy.
fn l1(policy: ReplacementPolicy) -> CacheConfig {
    CacheConfig::new(32 * 1024, 8, 64, policy)
}

#[test]
fn all_kernels_are_exact_on_the_test_system_l1_with_plru() {
    for kernel in Kernel::ALL {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        let cache = l1(ReplacementPolicy::Plru);
        let reference = simulate_single(&scop, &cache);
        let outcome = WarpingSimulator::single(cache).run(&scop);
        assert_eq!(outcome.result, reference, "{kernel}");
        assert_eq!(
            outcome.non_warped_accesses + outcome.warped_accesses,
            reference.accesses,
            "{kernel}"
        );
    }
}

#[test]
fn all_policies_are_exact_on_representative_kernels() {
    let kernels = [
        Kernel::Jacobi1d,
        Kernel::Jacobi2d,
        Kernel::Seidel2d,
        Kernel::Fdtd2d,
        Kernel::Atax,
        Kernel::Bicg,
        Kernel::Mvt,
        Kernel::Gemm,
        Kernel::Trisolv,
        Kernel::Durbin,
        Kernel::Doitgen,
        Kernel::FloydWarshall,
    ];
    for kernel in kernels {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        for policy in ReplacementPolicy::ALL {
            let cache = l1(policy);
            let reference = simulate_single(&scop, &cache);
            let outcome = WarpingSimulator::single(cache).run(&scop);
            assert_eq!(outcome.result, reference, "{kernel} under {policy}");
        }
    }
}

#[test]
fn two_level_hierarchy_is_exact_on_representative_kernels() {
    let kernels = [
        Kernel::Jacobi1d,
        Kernel::Jacobi2d,
        Kernel::Atax,
        Kernel::Trisolv,
    ];
    for kernel in kernels {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        for config in [
            HierarchyConfig::test_system(),
            HierarchyConfig::polycache_comparison(),
        ] {
            let reference = simulate_hierarchy(&scop, &config);
            let outcome = WarpingSimulator::hierarchy(config).run(&scop);
            assert_eq!(outcome.result, reference, "{kernel}");
        }
    }
}

#[test]
fn small_caches_stress_eviction_paths() {
    // Small, low-associativity caches maximise evictions and stress the
    // warp-validity checks.
    let kernels = [
        Kernel::Jacobi1d,
        Kernel::Seidel2d,
        Kernel::Gemver,
        Kernel::Lu,
    ];
    for kernel in kernels {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        for (sets, assoc) in [(4usize, 1usize), (8, 2), (16, 4)] {
            for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
                let cache = CacheConfig::with_sets(sets, assoc, 64, policy);
                let reference = simulate_single(&scop, &cache);
                let outcome = WarpingSimulator::single(cache).run(&scop);
                assert_eq!(
                    outcome.result, reference,
                    "{kernel} {sets}x{assoc} {policy}"
                );
            }
        }
    }
}

#[test]
fn analytical_models_agree_with_simulation_on_polybench() {
    for kernel in [
        Kernel::Jacobi1d,
        Kernel::Atax,
        Kernel::Doitgen,
        Kernel::Trisolv,
    ] {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        // HayStack stand-in vs fully-associative LRU simulation.
        let fa = CacheConfig::fully_associative(64, 64, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &fa);
        let profile = HaystackModel::new(64).analyze(&scop);
        assert_eq!(profile.misses(64), reference.l1().misses, "{kernel}");
        // PolyCache stand-in vs hierarchy simulation.
        let hierarchy = HierarchyConfig::polycache_comparison();
        let sim = simulate_hierarchy(&scop, &hierarchy);
        let poly = PolyCacheModel::new(hierarchy).analyze(&scop);
        assert_eq!(poly.l1_misses, sim.l1().misses, "{kernel}");
        assert_eq!(poly.l2_misses, sim.l2().unwrap().misses, "{kernel}");
    }
}

#[test]
fn stencils_warp_the_vast_majority_of_accesses_at_scale() {
    // The paper's headline claim: for stencils, warping skips almost all
    // accesses once the problem is large relative to the cache.
    let scop = Kernel::Jacobi1d
        .build(Dataset::Medium)
        .expect("kernel builds");
    let cache = l1(ReplacementPolicy::Plru);
    let outcome = WarpingSimulator::single(cache).run(&scop);
    assert!(
        outcome.non_warped_share() < 0.35,
        "non-warped share too high: {}",
        outcome.non_warped_share()
    );
    assert!(outcome.warps > 0);
}

#[test]
fn hardware_reference_pipeline_works_on_kernel_sources() {
    let reference = HardwareReference::default();
    for kernel in [Kernel::Atax, Kernel::Doitgen] {
        let measured = reference
            .measure_source(&kernel.source(Dataset::Mini))
            .expect("kernel sources are measurable");
        assert!(measured.accesses > 0);
        assert!(measured.measured_misses > 0);
    }
}
