//! Differential test of the `Engine` facade against the legacy entry
//! points: routing a request through `Engine::run` must not change a single
//! counter.
//!
//! * `Backend::Classic` must reproduce `simulate_single` /
//!   `simulate_hierarchy` byte for byte, and
//! * `Backend::Warping` must reproduce `WarpingSimulator::single(..).run` /
//!   `WarpingSimulator::hierarchy(..).run` byte for byte (including the
//!   warp counters),
//!
//! across all four replacement policies, one- and two-level memory systems
//! and several PolyBench kernels.  A batched grid must return exactly the
//! reports of sequential `run` calls.

use warpsim::prelude::*;

/// The kernels exercised by the differential grid (a stencil, a
/// linear-algebra kernel and a triangular solver).
const KERNELS: [Kernel; 3] = [Kernel::Jacobi1d, Kernel::Atax, Kernel::Trisolv];

fn l1(policy: ReplacementPolicy) -> CacheConfig {
    CacheConfig::new(32 * 1024, 8, 64, policy)
}

fn hierarchy(policy: ReplacementPolicy) -> HierarchyConfig {
    HierarchyConfig::new(l1(policy), CacheConfig::new(256 * 1024, 8, 64, policy))
}

#[test]
fn classic_backend_equals_legacy_simulation() {
    let engine = Engine::new();
    for kernel in KERNELS {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        let spec = KernelSpec::prebuilt(kernel.name(), scop.clone());
        for policy in ReplacementPolicy::ALL {
            let single = engine
                .run(&SimRequest::new(spec.clone(), l1(policy), Backend::Classic))
                .expect("classic single-level request");
            assert_eq!(
                single.result,
                simulate_single(&scop, &l1(policy)),
                "{kernel:?} {policy}"
            );

            let two_level = engine
                .run(&SimRequest::new(
                    spec.clone(),
                    hierarchy(policy),
                    Backend::Classic,
                ))
                .expect("classic two-level request");
            assert_eq!(
                two_level.result,
                simulate_hierarchy(&scop, &hierarchy(policy)),
                "{kernel:?} {policy}"
            );
        }
    }
}

#[test]
fn warping_backend_equals_legacy_simulator() {
    let engine = Engine::new();
    for kernel in KERNELS {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        let spec = KernelSpec::prebuilt(kernel.name(), scop.clone());
        for policy in ReplacementPolicy::ALL {
            let single = engine
                .run(&SimRequest::new(
                    spec.clone(),
                    l1(policy),
                    Backend::warping(),
                ))
                .expect("warping single-level request");
            let legacy = WarpingSimulator::single(l1(policy)).run(&scop);
            assert_eq!(single.result, legacy.result, "{kernel:?} {policy}");
            let stats = single.warping.expect("warp stats");
            assert_eq!(stats.warps, legacy.warps, "{kernel:?} {policy}");
            assert_eq!(stats.warped_accesses, legacy.warped_accesses);
            assert_eq!(stats.non_warped_accesses, legacy.non_warped_accesses);

            let two_level = engine
                .run(&SimRequest::new(
                    spec.clone(),
                    hierarchy(policy),
                    Backend::warping(),
                ))
                .expect("warping two-level request");
            let legacy = WarpingSimulator::hierarchy(hierarchy(policy)).run(&scop);
            assert_eq!(two_level.result, legacy.result, "{kernel:?} {policy}");
        }
    }
}

#[test]
fn engine_backends_agree_with_each_other() {
    // Classic and warping must agree through the facade exactly as the
    // underlying simulators do directly.
    let engine = Engine::new();
    for kernel in KERNELS {
        let spec = KernelSpec::polybench(kernel, Dataset::Mini);
        for policy in ReplacementPolicy::ALL {
            let classic = engine
                .run(&SimRequest::new(spec.clone(), l1(policy), Backend::Classic))
                .unwrap();
            let warped = engine
                .run(&SimRequest::new(
                    spec.clone(),
                    l1(policy),
                    Backend::warping(),
                ))
                .unwrap();
            assert_eq!(classic.result, warped.result, "{kernel:?} {policy}");
        }
    }
}

#[test]
fn batched_grid_equals_sequential_runs() {
    let engine = Engine::new().with_threads(4);
    let kernels: Vec<KernelSpec> = KERNELS
        .iter()
        .map(|&kernel| KernelSpec::polybench(kernel, Dataset::Mini))
        .collect();
    let memories = [
        MemoryConfig::from(l1(ReplacementPolicy::Plru)),
        MemoryConfig::from(hierarchy(ReplacementPolicy::Lru)),
    ];
    let backends = [Backend::Classic, Backend::warping()];
    let grid = SimRequest::grid(&kernels, &memories, &backends);
    assert!(grid.len() >= 12, "the grid covers at least 12 requests");

    let batched = engine.run_batch(&grid);
    assert_eq!(batched.len(), grid.len());
    for (request, batched) in grid.iter().zip(&batched) {
        let sequential = engine.run(request).expect("sequential run succeeds");
        let batched = batched.as_ref().expect("batched run succeeds");
        assert!(
            batched.same_outcome(&sequential),
            "batched and sequential reports diverge for {}/{}",
            request.kernel.name(),
            request.backend
        );
    }
}
