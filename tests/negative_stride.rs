//! Differential tests for decreasing loops (`i--`, `i -= k`): the classic,
//! warping and trace backends must agree bit for bit on kernels that walk
//! their iteration domains lexmax-first — the ROADMAP's negative-stride
//! item.  The warping simulator simulates decreasing loops explicitly, so
//! exactness (not speed) is what these tests pin down.

use warpsim::prelude::*;

fn exact_backends_agree(name: &str, source: &str) {
    let engine = Engine::new();
    let kernel = KernelSpec::source(name, source);
    for policy in ReplacementPolicy::ALL {
        let memory = MemoryConfig::from(CacheConfig::with_sets(8, 2, 32, policy));
        let classic = engine
            .run(&SimRequest::new(
                kernel.clone(),
                memory.clone(),
                Backend::Classic,
            ))
            .unwrap_or_else(|e| panic!("{name}/{policy}: {e}"));
        for backend in [Backend::warping(), Backend::Trace] {
            let other = engine
                .run(&SimRequest::new(kernel.clone(), memory.clone(), backend))
                .unwrap_or_else(|e| panic!("{name}/{policy}/{backend}: {e}"));
            assert_eq!(
                classic.result, other.result,
                "{name}: {backend} must match classic under {policy}"
            );
        }
        assert!(classic.result.accesses > 0, "{name} must access memory");
    }
}

#[test]
fn reversed_copy_is_exact() {
    exact_backends_agree(
        "reversed-copy",
        "double A[500]; double B[500];\n\
         for (i = 499; i >= 0; i--) B[i] = A[i];",
    );
}

#[test]
fn reversed_strided_stencil_is_exact() {
    exact_backends_agree(
        "reversed-strided-stencil",
        "double A[800]; double B[800];\n\
         for (i = 798; i > 0; i -= 2) B[i] = A[i] + A[i-1];",
    );
}

#[test]
fn backward_substitution_is_exact() {
    // A trisolv-style backward substitution: decreasing outer loop with an
    // increasing triangular inner loop.
    exact_backends_agree(
        "backward-substitution",
        "double L[64][64]; double x[64]; double b[64];\n\
         for (i = 63; i >= 0; i--) {\n\
           x[i] = b[i];\n\
           for (j = i + 1; j < 64; j++) x[i] = x[i] - L[i][j] * x[j];\n\
         }",
    );
}

#[test]
fn decreasing_inner_loop_under_increasing_outer_is_exact() {
    exact_backends_agree(
        "zigzag",
        "double A[40][40];\n\
         for (i = 0; i < 40; i++) for (j = 39; j >= 0; j -= 3) A[i][j] = A[j][i];",
    );
}

#[test]
fn guarded_decreasing_loop_is_exact() {
    exact_backends_agree(
        "guarded-reverse",
        "double A[300];\n\
         for (i = 299; i >= 0; i--) if (i >= 100) A[i] = A[i-100];",
    );
}

#[test]
fn decreasing_loops_count_the_expected_accesses() {
    // The access count is the ground truth the differential tests lean on:
    // check it explicitly for a decreasing strided loop (i = 99, 96, ..., 0).
    let engine = Engine::new();
    let kernel = KernelSpec::source(
        "reverse-count",
        "double A[100]; for (i = 99; i >= 0; i -= 3) A[i] = 0;",
    );
    let memory = MemoryConfig::from(CacheConfig::with_sets(4, 2, 8, ReplacementPolicy::Lru));
    let report = engine
        .run(&SimRequest::new(kernel, memory, Backend::Classic))
        .unwrap();
    assert_eq!(report.result.accesses, 34);
}
