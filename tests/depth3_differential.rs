//! Differential test of the depth-3 simulation stack: warping simulation
//! must reproduce classic per-access simulation bit for bit on L1/L2/L3
//! hierarchies, across all four replacement policies and several PolyBench
//! kernels — the acceptance gate of the depth-N core.

use warpsim::prelude::*;

/// The kernels exercised (a stencil, a linear-algebra kernel and a
/// triangular solver — the same spread as the engine differential test).
const KERNELS: [Kernel; 3] = [Kernel::Jacobi1d, Kernel::Atax, Kernel::Trisolv];

/// A small L1/L2/L3 hierarchy (kept small so the canonical keys of the
/// warping simulator stay cheap at MINI problem sizes).
fn three_level(policy: ReplacementPolicy) -> MemoryConfig {
    MemoryConfig::three_level(
        CacheConfig::new(1024, 4, 64, policy),
        CacheConfig::new(8 * 1024, 8, 64, policy),
        CacheConfig::new(64 * 1024, 16, 64, policy),
    )
}

#[test]
fn warping_equals_classic_on_three_levels() {
    let engine = Engine::new();
    for kernel in KERNELS {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        let spec = KernelSpec::prebuilt(kernel.name(), scop);
        for policy in ReplacementPolicy::ALL {
            let memory = three_level(policy);
            let classic = engine
                .run(&SimRequest::new(
                    spec.clone(),
                    memory.clone(),
                    Backend::Classic,
                ))
                .expect("classic depth-3 request");
            let warped = engine
                .run(&SimRequest::new(spec.clone(), memory, Backend::warping()))
                .expect("warping depth-3 request");
            assert_eq!(
                classic.result, warped.result,
                "{kernel:?} {policy}: warping must be bit-exact at depth 3"
            );
            assert_eq!(classic.result.depth(), 3, "{kernel:?} {policy}");
            assert_eq!(classic.levels.len(), 3, "{kernel:?} {policy}");
        }
    }
}

#[test]
fn fingerprint_filter_and_parallel_warp_are_stat_neutral_at_depth_3() {
    // The two-phase match pipeline (fingerprint filter on, parallel warp
    // application on — the defaults) must produce per-level statistics
    // bit-identical to the exhaustive key-per-attempt pipeline of the
    // depth-N core, which itself is proven equal to classic simulation.
    let engine = Engine::new();
    let exhaustive_options = WarpingOptions {
        fingerprint_filter: false,
        parallel_warp: false,
        ..WarpingOptions::default()
    };
    for kernel in KERNELS {
        let scop = kernel.build(Dataset::Mini).expect("kernel builds");
        let spec = KernelSpec::prebuilt(kernel.name(), scop);
        for policy in ReplacementPolicy::ALL {
            let memory = three_level(policy);
            let filtered = engine
                .run(&SimRequest::new(
                    spec.clone(),
                    memory.clone(),
                    Backend::warping(),
                ))
                .expect("filtered depth-3 request");
            let exhaustive = engine
                .run(&SimRequest::new(
                    spec.clone(),
                    memory,
                    Backend::Warping(exhaustive_options),
                ))
                .expect("exhaustive depth-3 request");
            assert_eq!(
                filtered.result, exhaustive.result,
                "{kernel:?} {policy}: the fingerprint filter must not change stats"
            );
            assert_eq!(filtered.levels, exhaustive.levels, "{kernel:?} {policy}");
            let filtered_stats = filtered.warping.expect("warping stats");
            let exhaustive_stats = exhaustive.warping.expect("warping stats");
            assert_eq!(
                exhaustive_stats.exact_key_builds, exhaustive_stats.match_attempts,
                "{kernel:?} {policy}: exhaustive matching builds a key per attempt"
            );
            assert!(
                filtered_stats.exact_key_builds <= filtered_stats.match_attempts,
                "{kernel:?} {policy}"
            );
        }
    }
}

#[test]
fn depth_3_levels_chain_consistently() {
    // Structural invariants of an inclusive-forwarding hierarchy: level
    // i + 1 sees exactly the misses of level i.
    let engine = Engine::new();
    for kernel in KERNELS {
        let spec = KernelSpec::polybench(kernel, Dataset::Mini);
        let report = engine
            .run(&SimRequest::new(
                spec,
                three_level(ReplacementPolicy::Lru),
                Backend::Classic,
            ))
            .unwrap();
        let levels = &report.result.levels;
        assert_eq!(levels[0].accesses, report.result.accesses);
        assert_eq!(levels[1].accesses, levels[0].misses, "{kernel:?}");
        assert_eq!(levels[2].accesses, levels[1].misses, "{kernel:?}");
        assert_eq!(report.last_level_misses(), levels[2].misses);
    }
}

#[test]
fn trace_replay_matches_classic_at_depth_3() {
    let engine = Engine::new();
    for kernel in KERNELS {
        let spec = KernelSpec::polybench(kernel, Dataset::Mini);
        let memory = three_level(ReplacementPolicy::Plru);
        let classic = engine
            .run(&SimRequest::new(
                spec.clone(),
                memory.clone(),
                Backend::Classic,
            ))
            .unwrap();
        let trace = engine
            .run(&SimRequest::new(spec, memory, Backend::Trace))
            .unwrap();
        assert_eq!(classic.result, trace.result, "{kernel:?}");
    }
}

#[test]
fn legacy_result_accessors_agree_with_levels() {
    let engine = Engine::new();
    let spec = KernelSpec::polybench(Kernel::Jacobi1d, Dataset::Mini);
    let report = engine
        .run(&SimRequest::new(
            spec,
            three_level(ReplacementPolicy::Qlru),
            Backend::Classic,
        ))
        .unwrap();
    assert_eq!(report.result.l1(), report.result.levels[0]);
    assert_eq!(report.result.l2(), Some(report.result.levels[1]));
}
