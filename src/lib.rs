//! # warpsim — warping cache simulation of polyhedral programs
//!
//! A from-scratch Rust reproduction of *Warping Cache Simulation of
//! Polyhedral Programs* (Canberk Morelli and Jan Reineke, PLDI 2022),
//! including every substrate the paper's tool depends on.
//!
//! The crates of the workspace are re-exported here so that applications can
//! depend on `warpsim` alone:
//!
//! * [`polyhedra`] — Presburger-style integer sets and affine maps (the isl
//!   substitute).
//! * [`scop`] — the polyhedral program representation: loop/access trees, a
//!   builder AST and a mini-C frontend (the pet substitute).
//! * [`cache_model`] — set-associative caches, the LRU/FIFO/Pseudo-LRU/
//!   Quad-age-LRU replacement policies, write policies, and the depth-N
//!   memory system: [`MemoryConfig`](cache_model::MemoryConfig) describes
//!   any number of cache levels and
//!   [`MultiLevelState`](cache_model::MultiLevelState) simulates them
//!   through one inclusive access path.
//! * [`simulate`] — classic, non-warping cache simulation (Algorithm 1).
//! * [`warping`] — the paper's contribution: warping symbolic cache
//!   simulation (Algorithm 2).
//! * [`trace_sim`] — trace generation, a Dinero-IV-style trace-driven
//!   simulator and the hardware-measurement stand-in.
//! * [`analytical`] — HayStack- and PolyCache-style analytical baselines.
//! * [`polybench`] — the 30 PolyBench 4.2.1 kernels as SCoPs.
//! * [`engine`] — **the front door**: one backend-polymorphic API over all
//!   of the above.  An [`Engine`](engine::Engine) dispatches
//!   [`SimRequest`](engine::SimRequest)s (kernel × memory × backend) to any
//!   of the five simulators and returns unified, JSON-serializable
//!   [`SimReport`](engine::SimReport)s; request grids fan out across
//!   threads with [`run_batch`](engine::Engine::run_batch).
//!
//! # Quickstart
//!
//! ```
//! use warpsim::prelude::*;
//!
//! // The paper's running example: a 1D stencil ...
//! let kernel = KernelSpec::source(
//!     "stencil",
//!     "double A[1000]; double B[1000];
//!      for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
//! );
//! // ... on a two-line fully-associative LRU cache, one array cell per line.
//! let memory = MemoryConfig::from(
//!     CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru),
//! );
//!
//! // Non-warping and warping simulation agree exactly ...
//! let engine = Engine::new();
//! let reference =
//!     engine.run(&SimRequest::new(kernel.clone(), memory.clone(), Backend::Classic))?;
//! let outcome = engine.run(&SimRequest::new(kernel, memory, Backend::warping()))?;
//! assert_eq!(outcome.result, reference.result);
//! assert_eq!(reference.result.l1().misses, 3 + 2 * 997);
//!
//! // ... but warping skips almost all of the accesses.
//! let stats = outcome.warping.unwrap();
//! assert!(stats.warped_accesses > 9 * stats.non_warped_accesses);
//! # Ok::<(), warpsim::engine::EngineError>(())
//! ```
//!
//! The legacy per-simulator entry points (`simulate_single`,
//! `WarpingSimulator`, `HaystackModel`, `dinero_style_simulation`, ...)
//! remain available — the engine is a facade over them, not a replacement —
//! but new code should prefer the engine: it is the seam where batching,
//! result caching and serving plug in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analytical;
pub use cache_model;
pub use engine;
pub use polybench;
pub use polyhedra;
pub use scop;
pub use simulate;
pub use trace_sim;
pub use warping;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use analytical::{HaystackModel, PolyCacheModel};
    pub use cache_model::{
        Access, AccessKind, CacheConfig, CacheState, HierarchyConfig, HierarchyState, MemBlock,
        MemoryConfig, MemoryConfigError, MultiAccessOutcome, MultiLevelState, ReplacementPolicy,
        WritePolicy,
    };
    pub use engine::{
        Backend, Engine, EngineError, KernelSpec, SimReport, SimRequest, WarpingStats,
    };
    pub use polybench::{Dataset, Kernel};
    pub use polyhedra::{Aff, BasicSet, Constraint, Set};
    pub use scop::{parse_scop, ElaborateOptions, Scop};
    pub use simulate::{
        simulate, simulate_hierarchy, simulate_memory, simulate_single, MemorySystem,
        MultiLevelSystem, SimulationResult, SingleCacheSystem, TwoLevelSystem,
    };
    pub use trace_sim::{dinero_style_simulation, generate_trace, HardwareReference};
    pub use warping::{WarpingMemory, WarpingOptions, WarpingOutcome, WarpingSimulator};
}
