//! # warpsim — warping cache simulation of polyhedral programs
//!
//! A from-scratch Rust reproduction of *Warping Cache Simulation of
//! Polyhedral Programs* (Canberk Morelli and Jan Reineke, PLDI 2022),
//! including every substrate the paper's tool depends on.
//!
//! The crates of the workspace are re-exported here so that applications can
//! depend on `warpsim` alone:
//!
//! * [`polyhedra`] — Presburger-style integer sets and affine maps (the isl
//!   substitute).
//! * [`scop`] — the polyhedral program representation: loop/access trees, a
//!   builder AST and a mini-C frontend (the pet substitute).
//! * [`cache_model`] — set-associative caches, the LRU/FIFO/Pseudo-LRU/
//!   Quad-age-LRU replacement policies, write policies and two-level
//!   hierarchies.
//! * [`simulate`] — classic, non-warping cache simulation (Algorithm 1).
//! * [`warping`] — the paper's contribution: warping symbolic cache
//!   simulation (Algorithm 2).
//! * [`trace_sim`] — trace generation, a Dinero-IV-style trace-driven
//!   simulator and the hardware-measurement stand-in.
//! * [`analytical`] — HayStack- and PolyCache-style analytical baselines.
//! * [`polybench`] — the 30 PolyBench 4.2.1 kernels as SCoPs.
//!
//! # Quickstart
//!
//! ```
//! use warpsim::prelude::*;
//!
//! // The paper's running example: a 1D stencil.
//! let scop = parse_scop(
//!     "double A[1000]; double B[1000];
//!      for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
//! )?;
//!
//! // A two-line fully-associative LRU cache, one array cell per line.
//! let cache = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
//!
//! // Non-warping and warping simulation agree exactly ...
//! let reference = simulate_single(&scop, &cache);
//! let outcome = WarpingSimulator::single(cache).run(&scop);
//! assert_eq!(outcome.result, reference);
//! assert_eq!(reference.l1.misses, 3 + 2 * 997);
//!
//! // ... but warping skips almost all of the accesses.
//! assert!(outcome.warped_accesses > 9 * outcome.non_warped_accesses);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analytical;
pub use cache_model;
pub use polybench;
pub use polyhedra;
pub use scop;
pub use simulate;
pub use trace_sim;
pub use warping;

/// The most commonly used items, importable with a single `use`.
pub mod prelude {
    pub use analytical::{HaystackModel, PolyCacheModel};
    pub use cache_model::{
        Access, AccessKind, CacheConfig, CacheState, HierarchyConfig, HierarchyState, MemBlock,
        ReplacementPolicy, WritePolicy,
    };
    pub use polybench::{Dataset, Kernel};
    pub use polyhedra::{Aff, BasicSet, Constraint, Set};
    pub use scop::{parse_scop, ElaborateOptions, Scop};
    pub use simulate::{
        simulate, simulate_hierarchy, simulate_single, MemorySystem, SimulationResult,
        SingleCacheSystem, TwoLevelSystem,
    };
    pub use trace_sim::{dinero_style_simulation, generate_trace, HardwareReference};
    pub use warping::{WarpingMemory, WarpingOptions, WarpingOutcome, WarpingSimulator};
}
