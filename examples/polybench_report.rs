//! Full report for one PolyBench kernel: every backend of the `Engine`
//! facade — warping, classic, trace, HayStack and PolyCache — side by side
//! with timings and miss counts, from a single batched request grid.
//!
//! Run with
//! `cargo run --release --example polybench_report -- <kernel> [dataset]`,
//! e.g. `cargo run --release --example polybench_report -- jacobi-2d small`.

use warpsim::prelude::*;

fn main() -> Result<(), String> {
    let kernel_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jacobi-1d".to_owned());
    let dataset = match std::env::args().nth(2).as_deref() {
        Some("small") => Dataset::Small,
        Some("medium") => Dataset::Medium,
        Some("large") => Dataset::Large,
        _ => Dataset::Mini,
    };
    let kernel =
        Kernel::by_name(&kernel_name).ok_or_else(|| format!("unknown kernel `{kernel_name}`"))?;
    let spec = KernelSpec::polybench(kernel, dataset);
    println!("kernel {kernel} at {dataset}");

    // Each backend runs on the memory system it models: the simulators and
    // HayStack on variants of the test system's L1, the hierarchy backends
    // on two-level configurations.
    let plru_l1 = MemoryConfig::test_system_l1(ReplacementPolicy::Plru);
    let lru_l1 = MemoryConfig::test_system_l1(ReplacementPolicy::Lru);
    let fa_l1 = MemoryConfig::from(CacheConfig::fully_associative(
        512,
        64,
        ReplacementPolicy::Lru,
    ));
    let requests = vec![
        SimRequest::new(spec.clone(), plru_l1.clone(), Backend::warping()),
        SimRequest::new(spec.clone(), plru_l1, Backend::Classic),
        SimRequest::new(spec.clone(), lru_l1, Backend::Trace),
        SimRequest::new(spec.clone(), fa_l1, Backend::Haystack),
        SimRequest::new(
            spec.clone(),
            HierarchyConfig::polycache_comparison(),
            Backend::PolyCache,
        ),
        SimRequest::new(spec, MemoryConfig::test_system(), Backend::warping()),
    ];
    let labels = [
        "warping (PLRU L1)",
        "classic (PLRU L1)",
        "dinero-style trace (LRU L1)",
        "haystack model (FA LRU)",
        "polycache model (L1+L2 LRU)",
        "warping (L1+L2, test system)",
    ];

    let reports = Engine::new().run_batch(&requests);
    for (label, report) in labels.iter().zip(&reports) {
        match report {
            Ok(report) => println!(
                "{:<28} {:>12} misses   {:>10.1} ms",
                label,
                report.last_level_misses(),
                report.sim_ms
            ),
            Err(e) => println!("{label:<28} error: {e}"),
        }
    }
    Ok(())
}
