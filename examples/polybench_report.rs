//! Full report for one PolyBench kernel: warping simulation, non-warping
//! simulation, the Dinero-IV-style trace simulator and the two analytical
//! baselines, with timings and miss counts side by side.
//!
//! Run with
//! `cargo run --release --example polybench_report -- <kernel> [dataset]`,
//! e.g. `cargo run --release --example polybench_report -- jacobi-2d small`.

use std::time::Instant;
use warpsim::prelude::*;

fn main() -> Result<(), String> {
    let kernel_name = std::env::args().nth(1).unwrap_or_else(|| "jacobi-1d".to_owned());
    let dataset = match std::env::args().nth(2).as_deref() {
        Some("small") => Dataset::Small,
        Some("medium") => Dataset::Medium,
        Some("large") => Dataset::Large,
        _ => Dataset::Mini,
    };
    let kernel = Kernel::by_name(&kernel_name)
        .ok_or_else(|| format!("unknown kernel `{kernel_name}`"))?;
    let scop = kernel.build(dataset)?;
    println!("kernel {kernel} at {dataset}: {} array accesses", scop::count_accesses(&scop));

    let l1 = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
    let l1_lru = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Lru);

    let run = |label: &str, f: &dyn Fn() -> u64| {
        let start = Instant::now();
        let misses = f();
        println!(
            "{:<28} {:>12} misses   {:>10.1} ms",
            label,
            misses,
            start.elapsed().as_secs_f64() * 1e3
        );
    };

    run("warping (PLRU L1)", &|| {
        WarpingSimulator::single(l1.clone()).run(&scop).result.l1.misses
    });
    run("non-warping (PLRU L1)", &|| simulate_single(&scop, &l1).l1.misses);
    run("dinero-style trace (LRU L1)", &|| {
        dinero_style_simulation(&scop, &l1_lru).1.misses
    });
    run("haystack model (FA LRU)", &|| {
        HaystackModel::new(64).analyze(&scop).misses(512)
    });
    run("polycache model (L1+L2 LRU)", &|| {
        PolyCacheModel::new(HierarchyConfig::polycache_comparison())
            .analyze(&scop)
            .l2_misses
    });
    run("warping (L1+L2, test system)", &|| {
        WarpingSimulator::hierarchy(HierarchyConfig::test_system())
            .run(&scop)
            .result
            .l2
            .map(|l| l.misses)
            .unwrap_or(0)
    });
    Ok(())
}
