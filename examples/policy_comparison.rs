//! Influence of the replacement policy on cache performance (Fig. 10 of the
//! paper): fan a kernel × policy grid through `Engine::run_batch` and
//! report misses relative to set-associative LRU.
//!
//! Run with `cargo run --release --example policy_comparison [-- <dataset>]`
//! where `<dataset>` is one of `mini`, `small`, `medium`.

use warpsim::prelude::*;

fn main() {
    let dataset = match std::env::args().nth(1).as_deref() {
        Some("small") => Dataset::Small,
        Some("medium") => Dataset::Medium,
        _ => Dataset::Mini,
    };
    let kernels: Vec<KernelSpec> = [
        Kernel::Doitgen,
        Kernel::Durbin,
        Kernel::Jacobi2d,
        Kernel::Trisolv,
        Kernel::Gemm,
    ]
    .into_iter()
    .map(|kernel| KernelSpec::polybench(kernel, dataset))
    .collect();

    // One memory configuration per column: the four policies of the test
    // system's L1 plus the same-capacity fully-associative LRU cache.
    let memories: Vec<MemoryConfig> = ReplacementPolicy::ALL
        .iter()
        .map(|&policy| MemoryConfig::test_system_l1(policy))
        .chain(std::iter::once(MemoryConfig::from(
            CacheConfig::fully_associative(512, 64, ReplacementPolicy::Lru),
        )))
        .collect();

    let engine = Engine::new();
    let grid = SimRequest::grid(&kernels, &memories, &[Backend::warping()]);
    let reports = engine.run_batch(&grid);

    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>14} {:>8}",
        "kernel", "LRU misses", "FA-LRU", "Pseudo-LRU", "Quad-age LRU", "FIFO"
    );
    // Rows come back in grid order: kernels outermost, memories inner.
    for (kernel, row) in kernels.iter().zip(reports.chunks(memories.len())) {
        let misses: Vec<u64> = row
            .iter()
            .map(|report| {
                report
                    .as_ref()
                    .unwrap_or_else(|e| panic!("request failed: {e}"))
                    .result
                    .l1()
                    .misses
            })
            .collect();
        // memories order: Lru, Fifo, Plru, Qlru, FA-LRU.
        let (lru, fifo, plru, qlru, fa) = (misses[0], misses[1], misses[2], misses[3], misses[4]);
        let rel = |m: u64| m as f64 / lru.max(1) as f64;
        println!(
            "{:<14} {:>12} {:>10.3} {:>12.3} {:>14.3} {:>8.3}",
            kernel.name(),
            lru,
            rel(fa),
            rel(plru),
            rel(qlru),
            rel(fifo),
        );
    }
}
