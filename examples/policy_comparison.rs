//! Influence of the replacement policy on cache performance (Fig. 10 of the
//! paper): simulate a few PolyBench kernels under LRU, FIFO, Pseudo-LRU and
//! Quad-age LRU and report misses relative to set-associative LRU.
//!
//! Run with `cargo run --release --example policy_comparison [-- <dataset>]`
//! where `<dataset>` is one of `mini`, `small`, `medium`.

use warpsim::prelude::*;

fn main() {
    let dataset = match std::env::args().nth(1).as_deref() {
        Some("small") => Dataset::Small,
        Some("medium") => Dataset::Medium,
        _ => Dataset::Mini,
    };
    let kernels = [
        Kernel::Doitgen,
        Kernel::Durbin,
        Kernel::Jacobi2d,
        Kernel::Trisolv,
        Kernel::Gemm,
    ];
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>14} {:>8}",
        "kernel", "LRU misses", "FA-LRU", "Pseudo-LRU", "Quad-age LRU", "FIFO"
    );
    for kernel in kernels {
        let scop = kernel.build(dataset).expect("kernel builds");
        let misses = |policy: ReplacementPolicy| {
            WarpingSimulator::single(CacheConfig::new(32 * 1024, 8, 64, policy))
                .run(&scop)
                .result
                .l1
                .misses
        };
        let lru = misses(ReplacementPolicy::Lru);
        let fa = WarpingSimulator::single(CacheConfig::fully_associative(
            512,
            64,
            ReplacementPolicy::Lru,
        ))
        .run(&scop)
        .result
        .l1
        .misses;
        let rel = |m: u64| m as f64 / lru.max(1) as f64;
        println!(
            "{:<14} {:>12} {:>10.3} {:>12.3} {:>14.3} {:>8.3}",
            kernel.name(),
            lru,
            rel(fa),
            rel(misses(ReplacementPolicy::Plru)),
            rel(misses(ReplacementPolicy::Qlru)),
            rel(misses(ReplacementPolicy::Fifo)),
        );
    }
}
