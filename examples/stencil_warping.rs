//! The paper's running example (Figures 1–3 and 5): a 1D stencil simulated
//! on a small cache, showing how warping fast-forwards the simulation after
//! a couple of explicit iterations.
//!
//! Run with `cargo run --release --example stencil_warping`.

use std::time::Instant;
use warpsim::prelude::*;

fn main() -> Result<(), String> {
    let n = 2_000_000u64;
    let source = format!(
        "double A[{n}]; double B[{n}];\n\
         for (i = 1; i < {m}; i++) B[i-1] = A[i-1] + A[i];",
        m = n - 1
    );
    let scop = parse_scop(&source)?;

    // Figure 1 uses a fully-associative cache with two lines, one array cell
    // per line: iteration 1 misses three times, every later iteration hits
    // once and misses twice.
    let tiny = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
    let outcome = WarpingSimulator::single(tiny).run(&scop);
    let iterations = n - 2;
    assert_eq!(outcome.result.l1.misses, 3 + 2 * (iterations - 1));
    println!(
        "tiny cache : {} iterations, {} misses, {} accesses simulated explicitly, {} warped",
        iterations, outcome.result.l1.misses, outcome.non_warped_accesses, outcome.warped_accesses
    );

    // The same stencil on the test system's L1, warping vs non-warping.
    let l1 = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
    let start = Instant::now();
    let reference = simulate_single(&scop, &l1);
    let t_plain = start.elapsed();
    let start = Instant::now();
    let warped = WarpingSimulator::single(l1).run(&scop);
    let t_warp = start.elapsed();
    assert_eq!(warped.result, reference);
    println!(
        "test-system L1: {} misses; non-warping {:.1} ms, warping {:.1} ms (speedup {:.1}x, {:.3}% non-warped accesses)",
        reference.l1.misses,
        t_plain.as_secs_f64() * 1e3,
        t_warp.as_secs_f64() * 1e3,
        t_plain.as_secs_f64() / t_warp.as_secs_f64(),
        100.0 * warped.non_warped_share(),
    );
    Ok(())
}
