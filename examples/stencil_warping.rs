//! The paper's running example (Figures 1–3 and 5): a 1D stencil simulated
//! on a small cache, showing how warping fast-forwards the simulation after
//! a couple of explicit iterations — all through the `Engine` facade.
//!
//! Run with `cargo run --release --example stencil_warping`.

use warpsim::prelude::*;

fn main() -> Result<(), EngineError> {
    let n = 2_000_000u64;
    let kernel = KernelSpec::source(
        "stencil",
        format!(
            "double A[{n}]; double B[{n}];\n\
             for (i = 1; i < {m}; i++) B[i-1] = A[i-1] + A[i];",
            m = n - 1
        ),
    );
    let engine = Engine::new();

    // Figure 1 uses a fully-associative cache with two lines, one array cell
    // per line: iteration 1 misses three times, every later iteration hits
    // once and misses twice.
    let tiny = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
    let report = engine.run(&SimRequest::new(kernel.clone(), tiny, Backend::warping()))?;
    let stats = report.warping.expect("warping stats");
    let iterations = n - 2;
    assert_eq!(report.result.l1().misses, 3 + 2 * (iterations - 1));
    println!(
        "tiny cache : {} iterations, {} misses, {} accesses simulated explicitly, {} warped",
        iterations,
        report.result.l1().misses,
        stats.non_warped_accesses,
        stats.warped_accesses
    );

    // The same stencil on the test system's L1, warping vs non-warping: one
    // two-request batch through the engine.
    let memory = MemoryConfig::test_system_l1(ReplacementPolicy::Plru);
    let reports = engine.run_batch(&SimRequest::grid(
        &[kernel],
        &[memory],
        &[Backend::Classic, Backend::warping()],
    ));
    let mut reports = reports.into_iter();
    let plain = reports.next().expect("classic report")?;
    let warped = reports.next().expect("warping report")?;
    assert_eq!(warped.result, plain.result);
    println!(
        "test-system L1: {} misses; non-warping {:.1} ms, warping {:.1} ms (speedup {:.1}x, \
         {:.3}% non-warped accesses)",
        plain.result.l1().misses,
        plain.sim_ms,
        warped.sim_ms,
        plain.sim_ms / warped.sim_ms,
        100.0 * warped.warping.expect("warping stats").non_warped_share,
    );
    Ok(())
}
