//! Quickstart: parse an affine loop nest, simulate it with and without
//! warping, and print the outcome.
//!
//! Run with `cargo run --release --example quickstart`.

use warpsim::prelude::*;

fn main() -> Result<(), String> {
    // A small matrix-vector product over an upper-triangular matrix — the
    // example of §3.2 of the paper.
    let source = "
        double A[400][400];
        double x[400];
        double c[400];
        for (i = 0; i < 400; i++) {
            c[i] = 0;
            for (j = i; j < 400; j++)
                c[i] = c[i] + A[i][j] * x[j];
        }
    ";
    let scop = parse_scop(source)?;
    println!("SCoP with {} arrays and {} access nodes", scop.arrays().len(), scop.num_access_nodes());

    // The test system's L1: 32 KiB, 8-way, 64-byte lines, Pseudo-LRU.
    let cache = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
    println!("cache: {cache}");

    let reference = simulate_single(&scop, &cache);
    println!(
        "non-warping: {} accesses, {} misses ({:.2}% miss ratio)",
        reference.accesses,
        reference.l1.misses,
        100.0 * reference.l1.miss_ratio()
    );

    let outcome = WarpingSimulator::single(cache).run(&scop);
    assert_eq!(outcome.result, reference, "warping is exact");
    println!(
        "warping:     {} accesses, {} misses, {} warps, {:.2}% of accesses simulated explicitly",
        outcome.result.accesses,
        outcome.result.l1.misses,
        outcome.warps,
        100.0 * outcome.non_warped_share()
    );
    Ok(())
}
