//! Quickstart: run one kernel through the unified `Engine` facade with and
//! without warping, and print the outcome.
//!
//! Run with `cargo run --release --example quickstart`.

use warpsim::prelude::*;

fn main() -> Result<(), EngineError> {
    // A small matrix-vector product over an upper-triangular matrix — the
    // example of §3.2 of the paper.
    let kernel = KernelSpec::source(
        "triangular-matvec",
        "
        double A[400][400];
        double x[400];
        double c[400];
        for (i = 0; i < 400; i++) {
            c[i] = 0;
            for (j = i; j < 400; j++)
                c[i] = c[i] + A[i][j] * x[j];
        }
    ",
    );

    // The test system's L1: 32 KiB, 8-way, 64-byte lines, Pseudo-LRU.
    let memory = MemoryConfig::test_system_l1(ReplacementPolicy::Plru);
    println!("kernel: {}", kernel.name());
    println!("memory: {memory}");

    let engine = Engine::new();
    let classic = engine.run(&SimRequest::new(
        kernel.clone(),
        memory.clone(),
        Backend::Classic,
    ))?;
    println!(
        "classic: {} accesses, {} misses ({:.2}% miss ratio) in {:.2} ms",
        classic.result.accesses,
        classic.result.l1().misses,
        100.0 * classic.result.l1().miss_ratio(),
        classic.sim_ms
    );

    let warped = engine.run(&SimRequest::new(kernel, memory, Backend::warping()))?;
    assert_eq!(warped.result, classic.result, "warping is exact");
    let stats = warped.warping.expect("warping reports carry warp stats");
    println!(
        "warping: {} accesses, {} misses, {} warps, {:.2}% of accesses simulated explicitly, \
         in {:.2} ms",
        warped.result.accesses,
        warped.result.l1().misses,
        stats.warps,
        100.0 * stats.non_warped_share,
        warped.sim_ms
    );

    // Every report is one JSON object away from being served.
    println!("\nas JSON: {}", warped.to_json());
    Ok(())
}
