//! Property-based tests for the polyhedra crate.
//!
//! The oracle is brute-force enumeration over a small bounding box: every
//! random set generated here is intersected with a known box so that exact
//! enumeration is feasible.

use polyhedra::{Aff, BasicSet, Constraint, LexResult, Set};
use proptest::prelude::*;

const BOX_LO: i64 = -4;
const BOX_HI: i64 = 4;

/// Enumerates all points of the bounding box (for `dims` in 1..=3).
fn box_points(dims: usize) -> Vec<Vec<i64>> {
    let mut pts = vec![vec![]];
    for _ in 0..dims {
        let mut next = Vec::new();
        for p in &pts {
            for v in BOX_LO..=BOX_HI {
                let mut q = p.clone();
                q.push(v);
                next.push(q);
            }
        }
        pts = next;
    }
    pts
}

fn arb_aff(dims: usize) -> impl Strategy<Value = Aff> {
    (proptest::collection::vec(-3i64..=3, dims), -6i64..=6)
        .prop_map(|(coeffs, c)| Aff::from_coeffs(coeffs, c))
}

fn arb_constraint(dims: usize) -> impl Strategy<Value = Constraint> {
    (arb_aff(dims), prop::bool::ANY).prop_map(|(aff, eq)| {
        if eq {
            Constraint::eq(aff)
        } else {
            Constraint::ge(aff)
        }
    })
}

/// A random basic set intersected with the bounding box.
fn arb_basic_set(dims: usize) -> impl Strategy<Value = BasicSet> {
    proptest::collection::vec(arb_constraint(dims), 0..4).prop_map(move |cs| {
        let mut s = BasicSet::rect(&vec![(BOX_LO, BOX_HI); dims]);
        for c in cs {
            s.add_constraint(c);
        }
        s
    })
}

fn arb_set(dims: usize) -> impl Strategy<Value = Set> {
    proptest::collection::vec(arb_basic_set(dims), 1..3).prop_map(move |bs| {
        let mut s = Set::empty(dims);
        for b in bs {
            s = s.union(&Set::from_basic(b));
        }
        s
    })
}

fn brute_points(s: &Set, dims: usize) -> Vec<Vec<i64>> {
    box_points(dims)
        .into_iter()
        .filter(|p| s.contains(p))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lexmin_matches_bruteforce(s in arb_set(2)) {
        let brute = brute_points(&s, 2);
        match s.lexmin() {
            LexResult::Point(p) => {
                prop_assert_eq!(Some(&p), brute.first());
            }
            LexResult::Empty => prop_assert!(brute.is_empty()),
            LexResult::Unknown => prop_assert!(false, "budget exceeded on a tiny set"),
        }
    }

    #[test]
    fn lexmax_matches_bruteforce(s in arb_set(2)) {
        let brute = brute_points(&s, 2);
        match s.lexmax() {
            LexResult::Point(p) => prop_assert_eq!(Some(&p), brute.last()),
            LexResult::Empty => prop_assert!(brute.is_empty()),
            LexResult::Unknown => prop_assert!(false, "budget exceeded on a tiny set"),
        }
    }

    #[test]
    fn intersection_semantics(a in arb_set(2), b in arb_set(2)) {
        let c = a.intersect(&b);
        for p in box_points(2) {
            prop_assert_eq!(c.contains(&p), a.contains(&p) && b.contains(&p));
        }
    }

    #[test]
    fn union_semantics(a in arb_set(2), b in arb_set(2)) {
        let c = a.union(&b);
        for p in box_points(2) {
            prop_assert_eq!(c.contains(&p), a.contains(&p) || b.contains(&p));
        }
    }

    #[test]
    fn difference_semantics(a in arb_set(2), b in arb_set(2)) {
        let c = a.subtract(&b);
        for p in box_points(2) {
            prop_assert_eq!(c.contains(&p), a.contains(&p) && !b.contains(&p));
        }
    }

    #[test]
    fn count_matches_bruteforce(s in arb_set(2)) {
        let brute = brute_points(&s, 2);
        prop_assert_eq!(s.count_upto(10_000), Some(brute.len()));
    }

    #[test]
    fn enumeration_matches_bruteforce(s in arb_set(2)) {
        let brute = brute_points(&s, 2);
        let pts = s.points_upto(10_000).expect("enumeration within budget");
        prop_assert_eq!(pts, brute);
    }

    #[test]
    fn lex_interval_semantics(
        lo in proptest::collection::vec(-3i64..=3, 2),
        hi in proptest::collection::vec(-3i64..=3, 2),
    ) {
        let interval = Set::lex_interval(&lo, &hi);
        for p in box_points(2) {
            let expected = p.as_slice() >= lo.as_slice() && p.as_slice() < hi.as_slice();
            prop_assert_eq!(interval.contains(&p), expected);
        }
    }

    #[test]
    fn three_dim_lexmin(s in arb_set(3)) {
        let brute = brute_points(&s, 3);
        match s.lexmin() {
            LexResult::Point(p) => prop_assert_eq!(Some(&p), brute.first()),
            LexResult::Empty => prop_assert!(brute.is_empty()),
            LexResult::Unknown => prop_assert!(false, "budget exceeded on a tiny set"),
        }
    }
}
