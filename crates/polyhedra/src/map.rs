//! Single-valued affine maps.

use crate::Aff;
use std::fmt;

/// A single-valued affine map `Z^in_dims -> Z^out_dims`, one affine
/// expression per output dimension.
///
/// This covers the relations the cache simulator needs (array subscript
/// functions and iteration-space translations); general Presburger relations
/// are not required.
///
/// ```
/// use polyhedra::{Aff, AffMap};
/// // (i, j) -> (j + 1, i)
/// let m = AffMap::new(2, vec![Aff::var(2, 1).offset(1), Aff::var(2, 0)]);
/// assert_eq!(m.apply(&[3, 5]), vec![6, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffMap {
    in_dims: usize,
    outputs: Vec<Aff>,
}

impl AffMap {
    /// Builds a map from one affine expression per output dimension.
    ///
    /// # Panics
    ///
    /// Panics if any output expression does not range over `in_dims`
    /// dimensions.
    pub fn new(in_dims: usize, outputs: Vec<Aff>) -> Self {
        for o in &outputs {
            assert_eq!(
                o.dims(),
                in_dims,
                "output expression dimensionality mismatch"
            );
        }
        AffMap { in_dims, outputs }
    }

    /// The identity map over `dims` dimensions.
    pub fn identity(dims: usize) -> Self {
        AffMap {
            in_dims: dims,
            outputs: (0..dims).map(|d| Aff::var(dims, d)).collect(),
        }
    }

    /// A map that translates every point by `delta`.
    pub fn translation(delta: &[i64]) -> Self {
        let dims = delta.len();
        AffMap {
            in_dims: dims,
            outputs: (0..dims)
                .map(|d| Aff::var(dims, d).offset(delta[d]))
                .collect(),
        }
    }

    /// Number of input dimensions.
    pub fn in_dims(&self) -> usize {
        self.in_dims
    }

    /// Number of output dimensions.
    pub fn out_dims(&self) -> usize {
        self.outputs.len()
    }

    /// The output expressions.
    pub fn outputs(&self) -> &[Aff] {
        &self.outputs
    }

    /// Applies the map to a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.in_dims()`.
    pub fn apply(&self, point: &[i64]) -> Vec<i64> {
        self.outputs.iter().map(|o| o.eval(point)).collect()
    }

    /// Composes two maps: `(self ∘ inner)(x) = self(inner(x))`.
    ///
    /// # Panics
    ///
    /// Panics if `inner.out_dims() != self.in_dims()`.
    pub fn compose(&self, inner: &AffMap) -> AffMap {
        assert_eq!(
            inner.out_dims(),
            self.in_dims,
            "composition dimensionality mismatch"
        );
        let outputs = self
            .outputs
            .iter()
            .map(|o| {
                // Substitute each of self's input dims by inner's output exprs.
                let mut acc = Aff::constant(inner.in_dims(), o.constant_term());
                for d in 0..self.in_dims {
                    let c = o.coeff(d);
                    if c != 0 {
                        acc = acc.add(&inner.outputs[d].scale(c));
                    }
                }
                acc
            })
            .collect();
        AffMap {
            in_dims: inner.in_dims(),
            outputs,
        }
    }
}

impl fmt::Debug for AffMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(x0..x{}) -> (", self.in_dims.saturating_sub(1))?;
        for (i, o) in self.outputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_translation() {
        let id = AffMap::identity(3);
        assert_eq!(id.apply(&[1, 2, 3]), vec![1, 2, 3]);
        let tr = AffMap::translation(&[1, -1, 0]);
        assert_eq!(tr.apply(&[1, 2, 3]), vec![2, 1, 3]);
    }

    #[test]
    fn compose_applies_inner_first() {
        // f(i, j) = (i + j,), g(k,) = (2k, k)
        let f = AffMap::new(2, vec![Aff::var(2, 0).add(&Aff::var(2, 1))]);
        let g = AffMap::new(1, vec![Aff::var(1, 0).scale(2), Aff::var(1, 0)]);
        let gf = g.compose(&f); // g(f(i, j)) = (2(i+j), i+j)
        assert_eq!(gf.apply(&[3, 4]), vec![14, 7]);
    }
}
