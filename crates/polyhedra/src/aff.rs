//! Affine expressions over integer dimensions.

use std::fmt;

/// An affine expression `c0 + c1*x1 + ... + cn*xn` over `n` integer
/// dimensions with `i64` coefficients.
///
/// ```
/// use polyhedra::Aff;
/// let e = Aff::var(2, 0).scale(3).add(&Aff::constant(2, 5)); // 3*x0 + 5
/// assert_eq!(e.eval(&[2, 100]), 11);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Aff {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Aff {
    /// The zero expression over `dims` dimensions.
    pub fn zero(dims: usize) -> Self {
        Aff {
            coeffs: vec![0; dims],
            constant: 0,
        }
    }

    /// The constant expression `c` over `dims` dimensions.
    pub fn constant(dims: usize, c: i64) -> Self {
        Aff {
            coeffs: vec![0; dims],
            constant: c,
        }
    }

    /// The expression that selects dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= dims`.
    pub fn var(dims: usize, d: usize) -> Self {
        assert!(d < dims, "dimension {d} out of range (dims = {dims})");
        let mut coeffs = vec![0; dims];
        coeffs[d] = 1;
        Aff {
            coeffs,
            constant: 0,
        }
    }

    /// Builds an expression from explicit coefficients and a constant.
    pub fn from_coeffs(coeffs: Vec<i64>, constant: i64) -> Self {
        Aff { coeffs, constant }
    }

    /// Number of dimensions this expression ranges over.
    pub fn dims(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of dimension `d`.
    pub fn coeff(&self, d: usize) -> i64 {
        self.coeffs[d]
    }

    /// All coefficients, ordered by dimension.
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.constant
    }

    /// Sets the coefficient of dimension `d`, returning `self` for chaining.
    pub fn with_coeff(mut self, d: usize, c: i64) -> Self {
        self.coeffs[d] = c;
        self
    }

    /// Sets the constant term, returning `self` for chaining.
    pub fn with_constant(mut self, c: i64) -> Self {
        self.constant = c;
        self
    }

    /// Evaluates the expression at an integer point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dims()`.
    pub fn eval(&self, point: &[i64]) -> i64 {
        assert_eq!(point.len(), self.dims(), "point has wrong dimensionality");
        let mut acc = self.constant;
        for (c, x) in self.coeffs.iter().zip(point) {
            acc += c * x;
        }
        acc
    }

    /// Substitutes concrete values for the first `prefix.len()` dimensions,
    /// folding them into the constant term.  The result still ranges over the
    /// same number of dimensions, but its coefficients for the substituted
    /// dimensions are zero.
    pub fn substitute_prefix(&self, prefix: &[i64]) -> Aff {
        let mut out = self.clone();
        for (d, v) in prefix.iter().enumerate() {
            out.constant += out.coeffs[d] * v;
            out.coeffs[d] = 0;
        }
        out
    }

    /// Substitutes a concrete value for dimension `d`.
    pub fn substitute_dim(&self, d: usize, value: i64) -> Aff {
        let mut out = self.clone();
        out.constant += out.coeffs[d] * value;
        out.coeffs[d] = 0;
        out
    }

    /// True if the coefficient of every dimension `>= d` is zero.
    pub fn involves_only_dims_below(&self, d: usize) -> bool {
        self.coeffs.iter().skip(d).all(|&c| c == 0)
    }

    /// The largest dimension with a non-zero coefficient, if any.
    pub fn last_involved_dim(&self) -> Option<usize> {
        self.coeffs.iter().rposition(|&c| c != 0)
    }

    /// True if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Adds another expression.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn add(&self, other: &Aff) -> Aff {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        Aff {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: self.constant + other.constant,
        }
    }

    /// Subtracts another expression.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn sub(&self, other: &Aff) -> Aff {
        self.add(&other.neg())
    }

    /// Negates the expression.
    pub fn neg(&self) -> Aff {
        Aff {
            coeffs: self.coeffs.iter().map(|c| -c).collect(),
            constant: -self.constant,
        }
    }

    /// Multiplies the expression by a constant.
    pub fn scale(&self, k: i64) -> Aff {
        Aff {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
            constant: self.constant * k,
        }
    }

    /// Adds an offset to the constant term.
    pub fn offset(&self, k: i64) -> Aff {
        Aff {
            coeffs: self.coeffs.clone(),
            constant: self.constant + k,
        }
    }

    /// Rewrites the expression for a coordinate change that translates
    /// dimension `d` by `amount`: the result, evaluated at a point `y`,
    /// equals `self` evaluated at `y` with `y[d]` replaced by `y[d] - amount`.
    ///
    /// This is the expression-level operation behind
    /// [`BasicSet::translate_dim`](crate::BasicSet::translate_dim).
    pub fn translate_dim(&self, d: usize, amount: i64) -> Aff {
        let mut out = self.clone();
        out.constant -= out.coeffs[d] * amount;
        out
    }

    /// Extends the expression to range over `new_dims >= self.dims()`
    /// dimensions; the added trailing dimensions have coefficient zero.
    ///
    /// # Panics
    ///
    /// Panics if `new_dims < self.dims()`.
    pub fn extend_dims(&self, new_dims: usize) -> Aff {
        assert!(new_dims >= self.dims(), "cannot shrink dimensionality");
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(new_dims, 0);
        Aff {
            coeffs,
            constant: self.constant,
        }
    }

    /// Inserts `count` zero-coefficient dimensions starting at position `at`.
    pub fn insert_dims(&self, at: usize, count: usize) -> Aff {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + count);
        coeffs.extend_from_slice(&self.coeffs[..at]);
        coeffs.extend(std::iter::repeat_n(0, count));
        coeffs.extend_from_slice(&self.coeffs[at..]);
        Aff {
            coeffs,
            constant: self.constant,
        }
    }
}

impl fmt::Debug for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, c) in self.coeffs.iter().enumerate() {
            if *c == 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if *c == 1 {
                write!(f, "x{d}")?;
            } else {
                write!(f, "{c}*x{d}")?;
            }
        }
        if first || self.constant != 0 {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

impl fmt::Display for Aff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_substitute() {
        let e = Aff::from_coeffs(vec![2, -3], 7);
        assert_eq!(e.eval(&[1, 2]), 2 - 6 + 7);
        let s = e.substitute_prefix(&[1]);
        assert_eq!(s.coeff(0), 0);
        assert_eq!(s.constant_term(), 9);
        assert_eq!(s.eval(&[0, 2]), e.eval(&[1, 2]));
    }

    #[test]
    fn arithmetic() {
        let a = Aff::var(3, 0).scale(2);
        let b = Aff::var(3, 2).offset(5);
        let c = a.add(&b).sub(&Aff::constant(3, 1));
        assert_eq!(c.eval(&[10, 99, 3]), 20 + 3 + 5 - 1);
        assert_eq!(c.neg().eval(&[10, 99, 3]), -(20 + 3 + 5 - 1));
    }

    #[test]
    fn dim_queries() {
        let e = Aff::from_coeffs(vec![1, 0, 4], 0);
        assert_eq!(e.last_involved_dim(), Some(2));
        assert!(!e.involves_only_dims_below(2));
        assert!(e.involves_only_dims_below(3));
        assert!(!e.is_constant());
        assert!(Aff::constant(4, 9).is_constant());
    }

    #[test]
    fn extend_and_insert() {
        let e = Aff::from_coeffs(vec![1, 2], 3);
        let x = e.extend_dims(4);
        assert_eq!(x.coeffs(), &[1, 2, 0, 0]);
        let y = e.insert_dims(1, 2);
        assert_eq!(y.coeffs(), &[1, 0, 0, 2]);
        assert_eq!(y.constant_term(), 3);
    }
}
