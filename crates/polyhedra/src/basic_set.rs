//! Conjunctions of affine constraints (basic sets).

use crate::constraint::{Constraint, ConstraintKind};
use crate::Aff;
use std::fmt;

/// A basic set: the integer points of `Z^dims` satisfying a conjunction of
/// affine constraints.
///
/// ```
/// use polyhedra::{Aff, BasicSet};
/// // { i | 0 <= i < 10 }
/// let s = BasicSet::universe(1)
///     .with_ge(Aff::var(1, 0))
///     .with_gt(Aff::constant(1, 10).sub(&Aff::var(1, 0)));
/// assert!(s.contains(&[0]) && s.contains(&[9]) && !s.contains(&[10]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BasicSet {
    dims: usize,
    constraints: Vec<Constraint>,
}

/// Integer bounds `(lower, upper)` for one dimension; `None` means unbounded
/// in that direction.
pub type DimBounds = (Option<i64>, Option<i64>);

impl BasicSet {
    /// The universe set over `dims` dimensions (no constraints).
    pub fn universe(dims: usize) -> Self {
        BasicSet {
            dims,
            constraints: Vec::new(),
        }
    }

    /// Builds a basic set from constraints.
    ///
    /// # Panics
    ///
    /// Panics if any constraint has a different dimensionality.
    pub fn from_constraints(dims: usize, constraints: Vec<Constraint>) -> Self {
        for c in &constraints {
            assert_eq!(c.dims(), dims, "constraint dimensionality mismatch");
        }
        BasicSet { dims, constraints }
    }

    /// A rectangular box `lo[d] <= x_d <= hi[d]` (inclusive).
    pub fn rect(bounds: &[(i64, i64)]) -> Self {
        let dims = bounds.len();
        let mut s = BasicSet::universe(dims);
        for (d, (lo, hi)) in bounds.iter().enumerate() {
            let x = Aff::var(dims, d);
            s = s
                .with_ge(x.clone().offset(-lo))
                .with_ge(Aff::constant(dims, *hi).sub(&x));
        }
        s
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The constraints of the set.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a constraint in place.
    ///
    /// # Panics
    ///
    /// Panics if the constraint has a different dimensionality.
    pub fn add_constraint(&mut self, c: Constraint) {
        assert_eq!(c.dims(), self.dims, "constraint dimensionality mismatch");
        self.constraints.push(c);
    }

    /// Adds the constraint `aff >= 0`, returning `self` for chaining.
    pub fn with_ge(mut self, aff: Aff) -> Self {
        self.add_constraint(Constraint::ge(aff));
        self
    }

    /// Adds the constraint `aff > 0`, returning `self` for chaining.
    pub fn with_gt(mut self, aff: Aff) -> Self {
        self.add_constraint(Constraint::gt(aff));
        self
    }

    /// Adds the constraint `aff == 0`, returning `self` for chaining.
    pub fn with_eq(mut self, aff: Aff) -> Self {
        self.add_constraint(Constraint::eq(aff));
        self
    }

    /// Adds a constraint, returning `self` for chaining.
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.add_constraint(c);
        self
    }

    /// Whether `point` satisfies all constraints.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dims()`.
    pub fn contains(&self, point: &[i64]) -> bool {
        assert_eq!(point.len(), self.dims, "point dimensionality mismatch");
        self.constraints.iter().all(|c| c.holds(point))
    }

    /// Intersection with another basic set over the same dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn intersect(&self, other: &BasicSet) -> BasicSet {
        assert_eq!(self.dims, other.dims, "dimensionality mismatch");
        let mut constraints = self.constraints.clone();
        constraints.extend(other.constraints.iter().cloned());
        BasicSet {
            dims: self.dims,
            constraints,
        }
    }

    /// True if one of the constraints is a syntactic contradiction.
    pub fn has_trivial_contradiction(&self) -> bool {
        self.constraints.iter().any(|c| c.is_contradiction())
    }

    /// Drops constraints that are syntactic tautologies.
    pub fn simplify(&self) -> BasicSet {
        BasicSet {
            dims: self.dims,
            constraints: self
                .constraints
                .iter()
                .filter(|c| !c.is_tautology())
                .cloned()
                .collect(),
        }
    }

    /// Extends the set to `new_dims` dimensions; the new trailing dimensions
    /// are unconstrained.
    pub fn extend_dims(&self, new_dims: usize) -> BasicSet {
        BasicSet {
            dims: new_dims,
            constraints: self
                .constraints
                .iter()
                .map(|c| c.extend_dims(new_dims))
                .collect(),
        }
    }

    /// Inserts `count` unconstrained dimensions at position `at`.
    pub fn insert_dims(&self, at: usize, count: usize) -> BasicSet {
        BasicSet {
            dims: self.dims + count,
            constraints: self
                .constraints
                .iter()
                .map(|c| c.insert_dims(at, count))
                .collect(),
        }
    }

    /// Translates the set by `amount` along dimension `d`:
    /// `{ x + amount*e_d | x in self }`.
    pub fn translate_dim(&self, d: usize, amount: i64) -> BasicSet {
        BasicSet {
            dims: self.dims,
            constraints: self
                .constraints
                .iter()
                .map(|c| c.translate_dim(d, amount))
                .collect(),
        }
    }

    /// Fixes dimension `d` to `value` by adding an equality constraint.
    pub fn fix_dim(&self, d: usize, value: i64) -> BasicSet {
        let aff = Aff::var(self.dims, d).offset(-value);
        self.clone().with_eq(aff)
    }

    /// Integer bounds for dimension `d` given concrete values for all
    /// dimensions `< d`, considering only constraints that do not involve
    /// dimensions `> d`.
    ///
    /// For loop-nest-shaped sets (every constraint on dimension `d` involves
    /// only dimensions `<= d`) these bounds are exact.  Constraints that do
    /// involve later dimensions are ignored here; use
    /// [`BasicSet::project_onto_prefix`] first to take them into account.
    ///
    /// Returns `None` if the constraints on dimension `d` (with the prefix
    /// substituted) are contradictory.
    pub fn dim_bounds(&self, d: usize, prefix: &[i64]) -> Option<DimBounds> {
        assert!(prefix.len() >= d, "prefix must cover all dimensions < d");
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for c in &self.constraints {
            if !c.aff().involves_only_dims_below(d + 1) {
                continue;
            }
            let sub = c.aff().substitute_prefix(&prefix[..d]);
            let coeff = sub.coeff(d);
            let rest = sub.constant_term();
            // Constraint: coeff * x_d + rest (>= 0 | == 0)
            let ineqs: Vec<(i64, i64)> = match c.kind() {
                ConstraintKind::Ge => vec![(coeff, rest)],
                ConstraintKind::Eq => vec![(coeff, rest), (-coeff, -rest)],
            };
            for (a, b) in ineqs {
                if a == 0 {
                    if b < 0 {
                        return None;
                    }
                    continue;
                }
                if a > 0 {
                    // x_d >= ceil(-b / a)
                    let bound = div_ceil(-b, a);
                    lo = Some(lo.map_or(bound, |l| l.max(bound)));
                } else {
                    // x_d <= floor(b / -a)
                    let bound = div_floor(b, -a);
                    hi = Some(hi.map_or(bound, |h| h.min(bound)));
                }
            }
        }
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return Some((Some(l), Some(h))); // empty range, caller checks
            }
        }
        Some((lo, hi))
    }

    /// Rational Fourier–Motzkin elimination of all dimensions `>= keep`.
    ///
    /// The result constrains only the first `keep` dimensions and is an
    /// over-approximation of the integer projection: every point of the true
    /// projection satisfies the result, but the result may contain additional
    /// points.  This is exactly what the lexicographic search needs: the
    /// projected constraints provide valid (possibly loose) per-dimension
    /// bounds and candidate values are verified recursively.
    pub fn project_onto_prefix(&self, keep: usize) -> BasicSet {
        let mut ineqs: Vec<Aff> = Vec::new();
        for c in &self.constraints {
            for i in c.as_inequalities() {
                ineqs.push(i.aff().clone());
            }
        }
        for d in (keep..self.dims).rev() {
            let mut lower: Vec<Aff> = Vec::new(); // coeff(d) > 0
            let mut upper: Vec<Aff> = Vec::new(); // coeff(d) < 0
            let mut rest: Vec<Aff> = Vec::new();
            for a in ineqs {
                let c = a.coeff(d);
                if c > 0 {
                    lower.push(a);
                } else if c < 0 {
                    upper.push(a);
                } else {
                    rest.push(a);
                }
            }
            // Combine each lower bound with each upper bound:
            //   l: cl*x + al >= 0   (cl > 0)
            //   u: -cu*x + au >= 0  (cu > 0, coeff is -cu)
            //   =>  cu*al + cl*au >= 0
            for l in &lower {
                let cl = l.coeff(d);
                for u in &upper {
                    let cu = -u.coeff(d);
                    let combined = l.scale(cu).add(&u.scale(cl));
                    debug_assert_eq!(combined.coeff(d), 0);
                    rest.push(combined);
                }
            }
            ineqs = rest;
        }
        let constraints = ineqs
            .into_iter()
            .filter(|a| !a.involves_only_dims_below(0) || a.constant_term() < 0)
            .map(Constraint::ge)
            .filter(|c| !c.is_tautology())
            .collect();
        BasicSet {
            dims: self.dims,
            constraints,
        }
    }
}

/// Floor division for `i64` (rounds towards negative infinity).
pub(crate) fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a < 0 {
        q - 1
    } else {
        q
    }
}

/// Ceiling division for `i64` (rounds towards positive infinity).
pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a > 0 {
        q + 1
    } else {
        q
    }
}

impl fmt::Debug for BasicSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{ dims={} : ", self.dims)?;
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{c:?}")?;
        }
        write!(f, " }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> BasicSet {
        // { (i, j) | 0 <= i < 5, i <= j < 5 }
        let i = Aff::var(2, 0);
        let j = Aff::var(2, 1);
        BasicSet::universe(2)
            .with_ge(i.clone())
            .with_gt(Aff::constant(2, 5).sub(&i))
            .with_ge(j.clone().sub(&i))
            .with_gt(Aff::constant(2, 5).sub(&j))
    }

    #[test]
    fn contains_triangle() {
        let t = triangle();
        assert!(t.contains(&[0, 0]));
        assert!(t.contains(&[2, 4]));
        assert!(!t.contains(&[3, 2]));
        assert!(!t.contains(&[5, 5]));
    }

    #[test]
    fn dim_bounds_triangle() {
        let t = triangle();
        assert_eq!(t.dim_bounds(0, &[]), Some((Some(0), Some(4))));
        assert_eq!(t.dim_bounds(1, &[2]), Some((Some(2), Some(4))));
        assert_eq!(t.dim_bounds(1, &[4]), Some((Some(4), Some(4))));
    }

    #[test]
    fn rect_and_fix() {
        let r = BasicSet::rect(&[(0, 3), (-2, 2)]);
        assert!(r.contains(&[3, -2]));
        assert!(!r.contains(&[4, 0]));
        let fixed = r.fix_dim(0, 2);
        assert!(fixed.contains(&[2, 0]));
        assert!(!fixed.contains(&[1, 0]));
    }

    #[test]
    fn projection_gives_valid_bounds() {
        // { (i, j) | 0 <= j < 10, i == 2*j } — projecting out j bounds i.
        let i = Aff::var(2, 0);
        let j = Aff::var(2, 1);
        let s = BasicSet::universe(2)
            .with_ge(j.clone())
            .with_gt(Aff::constant(2, 10).sub(&j))
            .with_eq(i.sub(&j.scale(2)));
        let p = s.project_onto_prefix(1);
        let b = p.dim_bounds(0, &[]).unwrap();
        assert_eq!(b, (Some(0), Some(18)));
    }

    #[test]
    fn div_rounding() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
    }

    #[test]
    fn intersect_and_simplify() {
        let a = BasicSet::rect(&[(0, 10)]);
        let b = BasicSet::rect(&[(5, 20)]);
        let c = a.intersect(&b);
        assert!(c.contains(&[7]));
        assert!(!c.contains(&[3]));
        let taut = BasicSet::universe(1).with_ge(Aff::constant(1, 5));
        assert_eq!(taut.simplify().constraints().len(), 0);
    }

    #[test]
    fn insert_dims_shifts_constraints() {
        let s = BasicSet::rect(&[(0, 3)]);
        let t = s.insert_dims(0, 1);
        assert_eq!(t.dims(), 2);
        assert!(t.contains(&[99, 2]));
        assert!(!t.contains(&[99, 4]));
    }
}
