//! Finite unions of basic sets and lexicographic queries.

use crate::basic_set::BasicSet;
use crate::constraint::Constraint;
use crate::{Aff, DEFAULT_WORK_BUDGET};
use std::cmp::Ordering;
use std::fmt;

/// Result of a lexicographic query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LexResult {
    /// The optimum point.
    Point(Vec<i64>),
    /// The set is empty.
    Empty,
    /// The query exceeded its work budget (e.g. the set is unbounded in the
    /// direction of optimisation).  Callers must treat this conservatively.
    Unknown,
}

impl LexResult {
    /// Returns the point if the result is [`LexResult::Point`].
    pub fn point(&self) -> Option<&[i64]> {
        match self {
            LexResult::Point(p) => Some(p),
            _ => None,
        }
    }

    /// True if the result is [`LexResult::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, LexResult::Empty)
    }
}

/// A Presburger-style set: a finite union of [`BasicSet`]s over a common
/// number of dimensions.
///
/// ```
/// use polyhedra::{BasicSet, Set};
/// let a = Set::from_basic(BasicSet::rect(&[(0, 4)]));
/// let b = Set::from_basic(BasicSet::rect(&[(2, 8)]));
/// let diff = a.subtract(&b);
/// assert!(diff.contains(&[1]));
/// assert!(!diff.contains(&[2]));
/// assert_eq!(diff.count_upto(100), Some(2)); // {0, 1}
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Set {
    dims: usize,
    basics: Vec<BasicSet>,
}

impl Set {
    /// The empty set over `dims` dimensions.
    pub fn empty(dims: usize) -> Self {
        Set {
            dims,
            basics: Vec::new(),
        }
    }

    /// The universe set over `dims` dimensions.
    pub fn universe(dims: usize) -> Self {
        Set {
            dims,
            basics: vec![BasicSet::universe(dims)],
        }
    }

    /// A set with a single basic set.
    pub fn from_basic(basic: BasicSet) -> Self {
        Set {
            dims: basic.dims(),
            basics: vec![basic],
        }
    }

    /// A set containing exactly one point.
    pub fn from_point(point: &[i64]) -> Self {
        let dims = point.len();
        let mut b = BasicSet::universe(dims);
        for (d, v) in point.iter().enumerate() {
            b.add_constraint(Constraint::eq(Aff::var(dims, d).offset(-v)));
        }
        Set::from_basic(b)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The basic sets making up this union.
    pub fn basics(&self) -> &[BasicSet] {
        &self.basics
    }

    /// Whether the union is syntactically empty (contains no basic sets).
    /// Use [`Set::is_empty`] for a semantic emptiness check.
    pub fn has_no_basics(&self) -> bool {
        self.basics.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.basics.iter().any(|b| b.contains(point))
    }

    /// Union with another set.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn union(&self, other: &Set) -> Set {
        assert_eq!(self.dims, other.dims, "dimensionality mismatch");
        let mut basics = self.basics.clone();
        basics.extend(other.basics.iter().cloned());
        Set {
            dims: self.dims,
            basics,
        }
    }

    /// Intersection with another set (distributes over the unions).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn intersect(&self, other: &Set) -> Set {
        assert_eq!(self.dims, other.dims, "dimensionality mismatch");
        let mut basics = Vec::new();
        for a in &self.basics {
            for b in &other.basics {
                let c = a.intersect(b).simplify();
                if !c.has_trivial_contradiction() {
                    basics.push(c);
                }
            }
        }
        Set {
            dims: self.dims,
            basics,
        }
    }

    /// Intersection with a single basic set.
    pub fn intersect_basic(&self, other: &BasicSet) -> Set {
        self.intersect(&Set::from_basic(other.clone()))
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn subtract(&self, other: &Set) -> Set {
        assert_eq!(self.dims, other.dims, "dimensionality mismatch");
        let mut result = self.clone();
        for b in &other.basics {
            result = result.subtract_basic(b);
        }
        result
    }

    fn subtract_basic(&self, other: &BasicSet) -> Set {
        // A \ (c1 ∧ ... ∧ cm) = ⋃_i (A ∧ c1 ∧ ... ∧ c_{i-1} ∧ ¬c_i)
        let mut pieces: Vec<BasicSet> = Vec::new();
        for a in &self.basics {
            let mut context = a.clone();
            for c in other.constraints() {
                for neg in c.negate() {
                    let piece = context.clone().with_constraint(neg).simplify();
                    if !piece.has_trivial_contradiction() {
                        pieces.push(piece);
                    }
                }
                context.add_constraint(c.clone());
            }
        }
        Set {
            dims: self.dims,
            basics: pieces,
        }
    }

    /// Extends the set to `new_dims` dimensions (new trailing dimensions are
    /// unconstrained).
    pub fn extend_dims(&self, new_dims: usize) -> Set {
        Set {
            dims: new_dims,
            basics: self
                .basics
                .iter()
                .map(|b| b.extend_dims(new_dims))
                .collect(),
        }
    }

    /// Translates the set by `amount` along dimension `d`:
    /// `{ x + amount*e_d | x in self }`.
    pub fn translate_dim(&self, d: usize, amount: i64) -> Set {
        Set {
            dims: self.dims,
            basics: self
                .basics
                .iter()
                .map(|b| b.translate_dim(d, amount))
                .collect(),
        }
    }

    /// Fixes dimension `d` to `value` in every basic set.
    pub fn fix_dim(&self, d: usize, value: i64) -> Set {
        Set {
            dims: self.dims,
            basics: self.basics.iter().map(|b| b.fix_dim(d, value)).collect(),
        }
    }

    /// The lexicographic interval `{ k | lo ⪯ k ≺ hi }`.
    ///
    /// # Panics
    ///
    /// Panics if `lo` and `hi` have different lengths.
    pub fn lex_interval(lo: &[i64], hi: &[i64]) -> Set {
        assert_eq!(
            lo.len(),
            hi.len(),
            "interval endpoints must have equal length"
        );
        Set::lex_ge_point(lo).intersect(&Set::lex_lt_point(hi))
    }

    /// The set of points lexicographically `>=` the given point.
    pub fn lex_ge_point(p: &[i64]) -> Set {
        Set::lex_compare_point(p, true, true)
    }

    /// The set of points lexicographically `>` the given point.
    pub fn lex_gt_point(p: &[i64]) -> Set {
        Set::lex_compare_point(p, true, false)
    }

    /// The set of points lexicographically `<=` the given point.
    pub fn lex_le_point(p: &[i64]) -> Set {
        Set::lex_compare_point(p, false, true)
    }

    /// The set of points lexicographically `<` the given point.
    pub fn lex_lt_point(p: &[i64]) -> Set {
        Set::lex_compare_point(p, false, false)
    }

    fn lex_compare_point(p: &[i64], greater: bool, allow_eq: bool) -> Set {
        let dims = p.len();
        let mut basics = Vec::new();
        // One disjunct per position t where the strict comparison happens:
        // x_0 = p_0, ..., x_{t-1} = p_{t-1}, x_t > p_t (or <).
        for t in 0..dims {
            let mut b = BasicSet::universe(dims);
            for (d, v) in p.iter().enumerate().take(t) {
                b.add_constraint(Constraint::eq(Aff::var(dims, d).offset(-v)));
            }
            let x = Aff::var(dims, t).offset(-p[t]);
            let c = if greater {
                Constraint::gt(x)
            } else {
                Constraint::gt(x.neg())
            };
            b.add_constraint(c);
            basics.push(b);
        }
        if allow_eq {
            basics.push(
                Set::from_point(p)
                    .basics
                    .into_iter()
                    .next()
                    .expect("point set has one basic set"),
            );
        }
        Set { dims, basics }
    }

    /// Lexicographic minimum with the default work budget.
    pub fn lexmin(&self) -> LexResult {
        self.lexmin_budgeted(DEFAULT_WORK_BUDGET)
    }

    /// Lexicographic maximum with the default work budget.
    pub fn lexmax(&self) -> LexResult {
        self.lexmax_budgeted(DEFAULT_WORK_BUDGET)
    }

    /// Lexicographic minimum with an explicit work budget.
    pub fn lexmin_budgeted(&self, budget: usize) -> LexResult {
        self.lexopt(budget, false)
    }

    /// Lexicographic maximum with an explicit work budget.
    pub fn lexmax_budgeted(&self, budget: usize) -> LexResult {
        self.lexopt(budget, true)
    }

    /// Lexicographic minimum among the points whose first `prefix.len()`
    /// coordinates equal `prefix`.
    pub fn lexmin_with_prefix(&self, prefix: &[i64]) -> LexResult {
        self.with_prefix_fixed(prefix).lexmin()
    }

    /// Lexicographic maximum among the points whose first `prefix.len()`
    /// coordinates equal `prefix`.
    pub fn lexmax_with_prefix(&self, prefix: &[i64]) -> LexResult {
        self.with_prefix_fixed(prefix).lexmax()
    }

    /// Writes the lexicographic minimum among the points whose first
    /// `prefix.len()` coordinates equal `prefix` into `out`, returning
    /// whether such a point was found (`false` covers both an empty set
    /// and an exhausted work budget — callers that walk a domain skip
    /// the entry either way).
    ///
    /// Unlike [`Set::lexmin_with_prefix`] this seeds the search with the
    /// prefix instead of cloning the set with the prefix fixed, and only
    /// projects the dimensions actually searched: reference walks call
    /// it once per loop entry, so it reuses the caller's buffer and
    /// avoids the per-entry set clone entirely.
    pub fn lexmin_with_prefix_into(&self, prefix: &[i64], out: &mut Vec<i64>) -> bool {
        self.lexopt_seeded_into(prefix, out, DEFAULT_WORK_BUDGET, false)
    }

    /// The `lexmax` counterpart of [`Set::lexmin_with_prefix_into`].
    pub fn lexmax_with_prefix_into(&self, prefix: &[i64], out: &mut Vec<i64>) -> bool {
        self.lexopt_seeded_into(prefix, out, DEFAULT_WORK_BUDGET, true)
    }

    fn lexopt_seeded_into(
        &self,
        prefix: &[i64],
        out: &mut Vec<i64>,
        budget: usize,
        maximise: bool,
    ) -> bool {
        assert!(
            prefix.len() <= self.dims,
            "prefix longer than dimensionality"
        );
        let mut found = false;
        // A second buffer is only needed to compare candidates across a
        // union; the common single-conjunction domain never allocates it.
        let mut candidate: Vec<i64> = Vec::new();
        for b in &self.basics {
            let target = if found { &mut candidate } else { &mut *out };
            match basic_lexopt_seeded(b, prefix, target, budget, maximise) {
                SearchOutcome::Found => {
                    if found {
                        let ord = candidate.as_slice().cmp(out.as_slice());
                        if (maximise && ord == Ordering::Greater)
                            || (!maximise && ord == Ordering::Less)
                        {
                            std::mem::swap(out, &mut candidate);
                        }
                    }
                    found = true;
                }
                SearchOutcome::NotFound => {}
                // Budget exhaustion must be conservative: the optimum of
                // the union may live in the unexplored basic set.
                SearchOutcome::Budget => return false,
            }
        }
        found
    }

    fn with_prefix_fixed(&self, prefix: &[i64]) -> Set {
        let mut s = self.clone();
        for (d, v) in prefix.iter().enumerate() {
            s = s.fix_dim(d, *v);
        }
        s
    }

    fn lexopt(&self, budget: usize, maximise: bool) -> LexResult {
        let mut best: Option<Vec<i64>> = None;
        let mut exhausted_budget = false;
        for b in &self.basics {
            match basic_lexopt(b, budget, maximise) {
                LexResult::Point(p) => {
                    let better = match &best {
                        None => true,
                        Some(cur) => {
                            let ord = p.as_slice().cmp(cur.as_slice());
                            (maximise && ord == Ordering::Greater)
                                || (!maximise && ord == Ordering::Less)
                        }
                    };
                    if better {
                        best = Some(p);
                    }
                }
                LexResult::Empty => {}
                LexResult::Unknown => exhausted_budget = true,
            }
        }
        match (best, exhausted_budget) {
            (_, true) => LexResult::Unknown,
            (Some(p), false) => LexResult::Point(p),
            (None, false) => LexResult::Empty,
        }
    }

    /// Semantic emptiness check (with the default work budget).
    ///
    /// Returns `None` if the check exceeded its budget.
    pub fn is_empty(&self) -> Option<bool> {
        match self.lexmin() {
            LexResult::Point(_) => Some(false),
            LexResult::Empty => Some(true),
            LexResult::Unknown => None,
        }
    }

    /// Enumerates up to `cap` points of the set in lexicographic order.
    ///
    /// Returns `None` if enumeration exceeded the work budget or would exceed
    /// `cap` points.
    pub fn points_upto(&self, cap: usize) -> Option<Vec<Vec<i64>>> {
        let mut out = Vec::new();
        let mut cursor = match self.lexmin() {
            LexResult::Point(p) => p,
            LexResult::Empty => return Some(out),
            LexResult::Unknown => return None,
        };
        loop {
            out.push(cursor.clone());
            if out.len() > cap {
                return None;
            }
            let above = self.intersect(&Set::lex_gt_point(&cursor));
            match above.lexmin() {
                LexResult::Point(p) => cursor = p,
                LexResult::Empty => return Some(out),
                LexResult::Unknown => return None,
            }
        }
    }

    /// Counts the points of the set, up to `cap`.
    ///
    /// Returns `None` if the set has more than `cap` points or counting
    /// exceeded the work budget.
    pub fn count_upto(&self, cap: usize) -> Option<usize> {
        self.points_upto(cap).map(|p| p.len())
    }
}

/// Lexicographic optimisation over a single basic set.
fn basic_lexopt(set: &BasicSet, budget: usize, maximise: bool) -> LexResult {
    let mut out = Vec::new();
    match basic_lexopt_seeded(set, &[], &mut out, budget, maximise) {
        SearchOutcome::Found => LexResult::Point(out),
        SearchOutcome::NotFound => LexResult::Empty,
        SearchOutcome::Budget => LexResult::Unknown,
    }
}

/// Lexicographic optimisation over a single basic set among the points
/// whose first `seed.len()` coordinates equal `seed`, writing the
/// optimum into `out`.  Equivalent to fixing the seed dimensions and
/// optimising, but skips both the per-call set clone and the
/// projections of the seeded dimensions.
fn basic_lexopt_seeded(
    set: &BasicSet,
    seed: &[i64],
    out: &mut Vec<i64>,
    budget: usize,
    maximise: bool,
) -> SearchOutcome {
    if set.has_trivial_contradiction() {
        return SearchOutcome::NotFound;
    }
    let dims = set.dims();
    if seed.len() == dims {
        return if set.contains(seed) {
            out.clear();
            out.extend_from_slice(seed);
            SearchOutcome::Found
        } else {
            SearchOutcome::NotFound
        };
    }
    // Precompute, for each searched dimension d, the constraints projected
    // onto the first d+1 dimensions so that bounds for d are available even
    // when the original constraints mention later dimensions.  Seeded
    // dimensions are never consulted (the search starts past them).
    let mut projections = Vec::with_capacity(dims);
    for d in 0..dims {
        projections.push(if d < seed.len() {
            BasicSet::universe(dims)
        } else {
            set.project_onto_prefix(d + 1)
        });
    }
    let mut work = 0usize;
    let mut cursor = Vec::with_capacity(dims);
    cursor.extend_from_slice(seed);
    search(
        set,
        &projections,
        &mut cursor,
        out,
        &mut work,
        budget,
        maximise,
    )
}

enum SearchOutcome {
    Found,
    NotFound,
    Budget,
}

#[allow(clippy::too_many_arguments)]
fn search(
    set: &BasicSet,
    projections: &[BasicSet],
    prefix: &mut Vec<i64>,
    out: &mut Vec<i64>,
    work: &mut usize,
    budget: usize,
    maximise: bool,
) -> SearchOutcome {
    let d = prefix.len();
    if d == set.dims() {
        return if set.contains(prefix) {
            out.clear();
            out.extend_from_slice(prefix);
            SearchOutcome::Found
        } else {
            SearchOutcome::NotFound
        };
    }
    let (lo, hi) = match combined_bounds(set, projections, d, prefix) {
        Some(b) => b,
        None => return SearchOutcome::NotFound,
    };
    if let (Some(lo), Some(hi)) = (lo, hi) {
        if lo > hi {
            return SearchOutcome::NotFound;
        }
    }
    // The dimension must be bounded in the direction opposite to the search
    // (the search start); otherwise the optimum may not exist and we give up.
    let values: Box<dyn Iterator<Item = i64>> = match (maximise, lo, hi) {
        (false, Some(lo), Some(hi)) => Box::new(lo..=hi),
        (false, Some(lo), None) => Box::new(lo..),
        (true, Some(lo), Some(hi)) => Box::new((lo..=hi).rev()),
        (true, None, Some(hi)) => Box::new(std::iter::successors(Some(hi), |&x| Some(x - 1))),
        _ => return SearchOutcome::Budget,
    };
    for v in values {
        *work += 1;
        if *work > budget {
            return SearchOutcome::Budget;
        }
        prefix.push(v);
        let outcome = search(set, projections, prefix, out, work, budget, maximise);
        prefix.pop();
        match outcome {
            SearchOutcome::Found => return SearchOutcome::Found,
            SearchOutcome::Budget => return SearchOutcome::Budget,
            SearchOutcome::NotFound => {}
        }
    }
    SearchOutcome::NotFound
}

fn combined_bounds(
    set: &BasicSet,
    projections: &[BasicSet],
    d: usize,
    prefix: &[i64],
) -> Option<(Option<i64>, Option<i64>)> {
    let direct = set.dim_bounds(d, prefix)?;
    let projected = projections[d].dim_bounds(d, prefix)?;
    let lo = match (direct.0, projected.0) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    let hi = match (direct.1, projected.1) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    Some((lo, hi))
}

impl fmt::Debug for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.basics.is_empty() {
            return write!(f, "{{ dims={} : false }}", self.dims);
        }
        for (i, b) in self.basics.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{b:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Set {
        // { (i, j) | 0 <= i < 5, i <= j < 5 }
        let i = Aff::var(2, 0);
        let j = Aff::var(2, 1);
        Set::from_basic(
            BasicSet::universe(2)
                .with_ge(i.clone())
                .with_gt(Aff::constant(2, 5).sub(&i))
                .with_ge(j.clone().sub(&i))
                .with_gt(Aff::constant(2, 5).sub(&j)),
        )
    }

    #[test]
    fn lexmin_lexmax_triangle() {
        let t = triangle();
        assert_eq!(t.lexmin(), LexResult::Point(vec![0, 0]));
        assert_eq!(t.lexmax(), LexResult::Point(vec![4, 4]));
        assert_eq!(t.lexmin_with_prefix(&[3]), LexResult::Point(vec![3, 3]));
        assert_eq!(t.lexmax_with_prefix(&[3]), LexResult::Point(vec![3, 4]));
    }

    #[test]
    fn count_triangle() {
        assert_eq!(triangle().count_upto(100), Some(15));
    }

    #[test]
    fn subtract_and_membership() {
        let a = Set::from_basic(BasicSet::rect(&[(0, 9)]));
        let b = Set::from_basic(BasicSet::rect(&[(3, 5)]));
        let d = a.subtract(&b);
        for x in 0..10 {
            assert_eq!(d.contains(&[x]), !(3..=5).contains(&x), "x = {x}");
        }
        assert_eq!(d.count_upto(100), Some(7));
    }

    #[test]
    fn lex_interval_matches_lex_order() {
        let lo = [1, 2];
        let hi = [2, 1];
        let interval = Set::lex_interval(&lo, &hi);
        for i in 0..4 {
            for j in 0..4 {
                let p = [i, j];
                let expected = p.as_slice() >= lo.as_slice() && p.as_slice() < hi.as_slice();
                assert_eq!(interval.contains(&p), expected, "point {p:?}");
            }
        }
    }

    #[test]
    fn empty_set_queries() {
        let e = Set::empty(2);
        assert_eq!(e.lexmin(), LexResult::Empty);
        assert_eq!(e.is_empty(), Some(true));
        assert_eq!(e.count_upto(10), Some(0));
        let contradiction =
            Set::from_basic(BasicSet::rect(&[(0, 5)]).with_ge(Aff::var(1, 0).offset(-10)));
        assert_eq!(contradiction.is_empty(), Some(true));
    }

    #[test]
    fn unbounded_set_is_unknown() {
        let half_line = Set::from_basic(BasicSet::universe(1).with_ge(Aff::var(1, 0)));
        assert_eq!(half_line.lexmax(), LexResult::Unknown);
        assert_eq!(half_line.lexmin(), LexResult::Point(vec![0]));
    }

    #[test]
    fn point_set_and_lex_builders() {
        let p = Set::from_point(&[2, 3]);
        assert!(p.contains(&[2, 3]));
        assert!(!p.contains(&[2, 4]));
        let ge = Set::lex_ge_point(&[2, 3]);
        assert!(ge.contains(&[2, 3]));
        assert!(ge.contains(&[3, 0]));
        assert!(!ge.contains(&[2, 2]));
        let lt = Set::lex_lt_point(&[2, 3]);
        assert!(lt.contains(&[2, 2]));
        assert!(lt.contains(&[1, 100]));
        assert!(!lt.contains(&[2, 3]));
    }

    #[test]
    fn points_enumeration_is_sorted() {
        let t = triangle();
        let pts = t.points_upto(100).unwrap();
        assert_eq!(pts.len(), 15);
        let mut sorted = pts.clone();
        sorted.sort();
        assert_eq!(pts, sorted);
    }

    #[test]
    fn equality_constraint_projection() {
        // { (i, j) | j == 2*i, 0 <= j <= 10 } — lexmin/lexmax must respect the
        // coupling even though i alone is unconstrained directly.
        let i = Aff::var(2, 0);
        let j = Aff::var(2, 1);
        let s = Set::from_basic(
            BasicSet::universe(2)
                .with_eq(j.clone().sub(&i.scale(2)))
                .with_ge(j.clone())
                .with_ge(Aff::constant(2, 10).sub(&j)),
        );
        assert_eq!(s.lexmin(), LexResult::Point(vec![0, 0]));
        assert_eq!(s.lexmax(), LexResult::Point(vec![5, 10]));
        assert_eq!(s.count_upto(100), Some(6));
    }
}

#[cfg(test)]
mod translate_tests {
    use super::*;

    #[test]
    fn translate_dim_shifts_membership() {
        let s = Set::from_basic(BasicSet::rect(&[(0, 4), (2, 6)]));
        let t = s.translate_dim(1, 3);
        assert!(t.contains(&[0, 5]));
        assert!(t.contains(&[4, 9]));
        assert!(!t.contains(&[0, 2]));
        // Translation by zero is the identity.
        let id = s.translate_dim(0, 0);
        for i in -1..6 {
            for j in 1..8 {
                assert_eq!(id.contains(&[i, j]), s.contains(&[i, j]));
            }
        }
    }
}
