//! Affine constraints.

use crate::Aff;
use std::fmt;

/// The kind of an affine constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConstraintKind {
    /// `aff == 0`
    Eq,
    /// `aff >= 0`
    Ge,
}

/// An affine constraint `aff == 0` or `aff >= 0`.
///
/// ```
/// use polyhedra::{Aff, Constraint};
/// // x0 - 3 >= 0, i.e. x0 >= 3
/// let c = Constraint::ge(Aff::var(1, 0).offset(-3));
/// assert!(c.holds(&[3]));
/// assert!(!c.holds(&[2]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    aff: Aff,
    kind: ConstraintKind,
}

impl Constraint {
    /// The constraint `aff >= 0`.
    pub fn ge(aff: Aff) -> Self {
        Constraint {
            aff,
            kind: ConstraintKind::Ge,
        }
    }

    /// The constraint `aff == 0`.
    pub fn eq(aff: Aff) -> Self {
        Constraint {
            aff,
            kind: ConstraintKind::Eq,
        }
    }

    /// The constraint `aff > 0`, expressed as `aff - 1 >= 0`.
    pub fn gt(aff: Aff) -> Self {
        Constraint::ge(aff.offset(-1))
    }

    /// The underlying affine expression.
    pub fn aff(&self) -> &Aff {
        &self.aff
    }

    /// The constraint kind.
    pub fn kind(&self) -> ConstraintKind {
        self.kind
    }

    /// Number of dimensions of the constraint.
    pub fn dims(&self) -> usize {
        self.aff.dims()
    }

    /// Whether the constraint holds at `point`.
    pub fn holds(&self, point: &[i64]) -> bool {
        let v = self.aff.eval(point);
        match self.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::Ge => v >= 0,
        }
    }

    /// Substitutes concrete values for the first `prefix.len()` dimensions.
    pub fn substitute_prefix(&self, prefix: &[i64]) -> Constraint {
        Constraint {
            aff: self.aff.substitute_prefix(prefix),
            kind: self.kind,
        }
    }

    /// Translates dimension `d` by `amount` (see [`crate::Aff::translate_dim`]).
    pub fn translate_dim(&self, d: usize, amount: i64) -> Constraint {
        Constraint {
            aff: self.aff.translate_dim(d, amount),
            kind: self.kind,
        }
    }

    /// Extends the constraint to range over `new_dims` dimensions.
    pub fn extend_dims(&self, new_dims: usize) -> Constraint {
        Constraint {
            aff: self.aff.extend_dims(new_dims),
            kind: self.kind,
        }
    }

    /// Inserts `count` zero-coefficient dimensions at position `at`.
    pub fn insert_dims(&self, at: usize, count: usize) -> Constraint {
        Constraint {
            aff: self.aff.insert_dims(at, count),
            kind: self.kind,
        }
    }

    /// The negation of this constraint as a disjunction of constraints.
    ///
    /// * `¬(aff >= 0)` is `-aff - 1 >= 0`.
    /// * `¬(aff == 0)` is `aff - 1 >= 0` or `-aff - 1 >= 0`.
    pub fn negate(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::Ge => vec![Constraint::ge(self.aff.neg().offset(-1))],
            ConstraintKind::Eq => vec![
                Constraint::ge(self.aff.clone().offset(-1)),
                Constraint::ge(self.aff.neg().offset(-1)),
            ],
        }
    }

    /// Splits an equality into the two inequalities `aff >= 0` and `-aff >= 0`;
    /// returns a single-element vector for inequalities.
    pub fn as_inequalities(&self) -> Vec<Constraint> {
        match self.kind {
            ConstraintKind::Ge => vec![self.clone()],
            ConstraintKind::Eq => vec![
                Constraint::ge(self.aff.clone()),
                Constraint::ge(self.aff.neg()),
            ],
        }
    }

    /// True if the constraint is trivially satisfied for all points.
    pub fn is_tautology(&self) -> bool {
        if !self.aff.is_constant() {
            return false;
        }
        let c = self.aff.constant_term();
        match self.kind {
            ConstraintKind::Eq => c == 0,
            ConstraintKind::Ge => c >= 0,
        }
    }

    /// True if the constraint is unsatisfiable for all points.
    pub fn is_contradiction(&self) -> bool {
        if !self.aff.is_constant() {
            return false;
        }
        let c = self.aff.constant_term();
        match self.kind {
            ConstraintKind::Eq => c != 0,
            ConstraintKind::Ge => c < 0,
        }
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConstraintKind::Eq => write!(f, "{:?} == 0", self.aff),
            ConstraintKind::Ge => write!(f, "{:?} >= 0", self.aff),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_and_negate() {
        let c = Constraint::ge(Aff::var(1, 0).offset(-3)); // x >= 3
        assert!(c.holds(&[5]));
        assert!(!c.holds(&[2]));
        let neg = c.negate();
        assert_eq!(neg.len(), 1);
        assert!(neg[0].holds(&[2])); // x <= 2
        assert!(!neg[0].holds(&[3]));
    }

    #[test]
    fn negate_equality_covers_complement() {
        let c = Constraint::eq(Aff::var(1, 0).offset(-2)); // x == 2
        let neg = c.negate();
        assert_eq!(neg.len(), 2);
        for x in -5..5 {
            let in_neg = neg.iter().any(|n| n.holds(&[x]));
            assert_eq!(in_neg, x != 2, "x = {x}");
        }
    }

    #[test]
    fn tautology_and_contradiction() {
        assert!(Constraint::ge(Aff::constant(2, 0)).is_tautology());
        assert!(Constraint::ge(Aff::constant(2, -1)).is_contradiction());
        assert!(Constraint::eq(Aff::constant(2, 0)).is_tautology());
        assert!(Constraint::eq(Aff::constant(2, 3)).is_contradiction());
        assert!(!Constraint::ge(Aff::var(2, 0)).is_tautology());
    }

    #[test]
    fn gt_is_strict() {
        let c = Constraint::gt(Aff::var(1, 0)); // x > 0
        assert!(c.holds(&[1]));
        assert!(!c.holds(&[0]));
    }
}
