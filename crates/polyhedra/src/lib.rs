//! Presburger-style integer sets and affine maps.
//!
//! This crate is a from-scratch substitute for the subset of the
//! [isl](https://libisl.sourceforge.io/) integer set library that warping
//! cache simulation of polyhedral programs needs:
//!
//! * affine expressions over integer dimensions ([`Aff`]),
//! * affine constraints ([`Constraint`]),
//! * conjunctions of constraints ([`BasicSet`]) and finite unions of those
//!   ([`Set`]),
//! * single-valued affine maps ([`AffMap`]),
//! * the queries used by the simulator: membership, intersection, union,
//!   difference, emptiness, lexicographic minima/maxima (optionally with a
//!   fixed prefix of outer dimensions), lexicographic intervals and bounded
//!   point enumeration.
//!
//! # Exactness
//!
//! All operations are exact for bounded sets.  Lexicographic optimisation is
//! implemented by a bounded recursive search over dimensions whose per-level
//! bounds come from a rational Fourier–Motzkin projection; the projection can
//! only over-approximate, and every candidate value is verified recursively,
//! so a returned point is always correct and minimal.  When a query would
//! exceed its work budget (e.g. for an unbounded set) the result is
//! [`LexResult::Unknown`]; callers in the simulator treat `Unknown`
//! conservatively ("do not warp"), which preserves soundness.
//!
//! # Example
//!
//! ```
//! use polyhedra::{BasicSet, Aff, Set, LexResult};
//!
//! // { (i, j) | 0 <= i < 4, i <= j < 4 }
//! let dims = 2;
//! let i = Aff::var(dims, 0);
//! let j = Aff::var(dims, 1);
//! let four = Aff::constant(dims, 4);
//! let tri = BasicSet::universe(dims)
//!     .with_ge(i.clone())                    // i >= 0
//!     .with_gt(four.clone().sub(&i))         // 4 - i > 0   (i < 4)
//!     .with_ge(j.clone().sub(&i))            // j - i >= 0
//!     .with_gt(four.sub(&j));                // j < 4
//! assert!(tri.contains(&[1, 3]));
//! assert!(!tri.contains(&[3, 1]));
//! let set = Set::from_basic(tri);
//! assert_eq!(set.lexmin(), LexResult::Point(vec![0, 0]));
//! assert_eq!(set.lexmax(), LexResult::Point(vec![3, 3]));
//! assert_eq!(set.count_upto(100), Some(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aff;
mod basic_set;
mod constraint;
mod map;
mod set;

pub use aff::Aff;
pub use basic_set::BasicSet;
pub use constraint::{Constraint, ConstraintKind};
pub use map::AffMap;
pub use set::{LexResult, Set};

/// Default work budget (number of search nodes) for lexicographic queries.
pub const DEFAULT_WORK_BUDGET: usize = 1 << 20;

/// Compares two integer tuples lexicographically.
///
/// Both tuples must have the same length.
///
/// # Panics
///
/// Panics if the tuples have different lengths.
///
/// ```
/// use std::cmp::Ordering;
/// assert_eq!(polyhedra::lex_cmp(&[1, 5], &[2, 0]), Ordering::Less);
/// ```
pub fn lex_cmp(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
    assert_eq!(a.len(), b.len(), "lex_cmp requires equal-length tuples");
    a.cmp(b)
}
