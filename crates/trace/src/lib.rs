//! Trace generation and trace-driven cache simulation.
//!
//! This crate plays the role that Dinero IV (plus QEMU trace generation) and
//! the PAPI hardware measurements play in the paper's evaluation:
//!
//! * [`generate_trace`] materialises the full sequence of memory accesses of
//!   a SCoP, like a binary-instrumentation trace would;
//! * [`simulate_trace`] / [`simulate_trace_hierarchy`] drive a cache model
//!   over such a trace, access by access — the classic trace-driven
//!   simulator whose cost is proportional to the trace length (the Dinero IV
//!   baseline of Fig. 12);
//! * [`HardwareReference`] produces the "measured" miss counts used as the
//!   accuracy baseline of Fig. 11/13/14.  Real hardware is not available in
//!   this reproduction, so the reference is a richer simulation (it includes
//!   scalar accesses and models the test system's set-associative PLRU L1)
//!   perturbed by a small deterministic factor standing in for the
//!   out-of-order and speculative effects the paper observes; see DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cache_model::{
    Access, CacheConfig, CacheState, HierarchyConfig, HierarchyStats, LevelStats, MemoryConfig,
    MultiLevelState, ReplacementPolicy,
};
use scop::{compile, elaborate, for_each_access, parse_program, ElaborateOptions, Scop};
use simulate::WalkMode;

/// Materialises the complete memory-access trace of a SCoP.
///
/// The returned vector contains one [`Access`] per dynamic array reference,
/// in execution order.  For large problem sizes this is deliberately
/// expensive — it models the trace-generation overhead of binary
/// instrumentation (QEMU in the paper's Dinero IV baseline).
///
/// Uses the compiled walk; [`generate_trace_with`] selects the walk
/// explicitly (the streams are identical).
pub fn generate_trace(scop: &Scop) -> Vec<Access> {
    generate_trace_with(scop, WalkMode::Compiled)
}

/// Materialises the trace with an explicit [`WalkMode`].
pub fn generate_trace_with(scop: &Scop, walk: WalkMode) -> Vec<Access> {
    let mut trace = Vec::new();
    match walk {
        WalkMode::Compiled => {
            let compiled = compile(scop);
            let mut scratch = compiled.new_scratch();
            compiled.for_each_access(&mut scratch, |_, address, kind| {
                trace.push(Access { address, kind });
            });
        }
        WalkMode::Reference => {
            for_each_access(scop, |acc| {
                trace.push(Access {
                    address: acc.address,
                    kind: acc.kind,
                })
            });
        }
    }
    trace
}

/// Simulates a trace against a single cache level and returns its
/// statistics.
pub fn simulate_trace(trace: &[Access], config: &CacheConfig) -> LevelStats {
    let mut state = CacheState::new(config);
    let mut stats = LevelStats::default();
    for access in trace {
        stats.record(state.access(config, *access));
    }
    stats
}

/// Simulates a trace against an N-level memory system, returning the
/// statistics of every level (L1 first).  This is the single trace-replay
/// path behind both [`simulate_trace_hierarchy`] and the engine's trace
/// backend, whatever the depth.  The replay state is sparse, so the cost is
/// the trace length plus the touched sets — never the cache capacity.
pub fn simulate_trace_memory(trace: &[Access], config: &MemoryConfig) -> Vec<LevelStats> {
    let config = config.normalized();
    let mut state = MultiLevelState::new(&config);
    let mut stats = vec![LevelStats::default(); config.depth()];
    for access in trace {
        state.access(&config, *access).record_into(&mut stats);
    }
    stats
}

/// Simulates a trace against a two-level hierarchy.  Compatibility wrapper
/// over [`simulate_trace_memory`].
pub fn simulate_trace_hierarchy(trace: &[Access], config: &HierarchyConfig) -> HierarchyStats {
    let levels = simulate_trace_memory(trace, &MemoryConfig::from(config.clone()));
    HierarchyStats {
        l1: levels[0],
        l2: levels[1],
    }
}

/// End-to-end Dinero-IV-style simulation of a SCoP: generate the trace, then
/// simulate it.  Returns the trace length together with the statistics so
/// callers can report both.
pub fn dinero_style_simulation(scop: &Scop, config: &CacheConfig) -> (u64, LevelStats) {
    let trace = generate_trace(scop);
    let stats = simulate_trace(&trace, config);
    (trace.len() as u64, stats)
}

/// The stand-in for PAPI measurements on the test system.
///
/// The reference model differs from the simulators under evaluation in two
/// deliberate ways, mirroring the differences between simulation and real
/// hardware discussed in §6.4 of the paper:
///
/// 1. it simulates *both* array and scalar accesses (like the real binary,
///    which spills scalars and loop counters to the stack), and
/// 2. it applies a small deterministic perturbation to the miss count,
///    standing in for out-of-order execution, speculation and prefetching
///    effects that none of the evaluated approaches capture.
#[derive(Clone, Debug)]
pub struct HardwareReference {
    /// Cache configuration of the measured level (the test system's L1).
    pub config: CacheConfig,
    /// Relative magnitude of the perturbation (default 0.08, i.e. up to ±8%).
    pub perturbation: f64,
}

impl Default for HardwareReference {
    fn default() -> Self {
        HardwareReference {
            config: CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru),
            perturbation: 0.08,
        }
    }
}

impl HardwareReference {
    /// A reference model for an explicit cache configuration.
    pub fn new(config: CacheConfig) -> Self {
        HardwareReference {
            config,
            perturbation: 0.08,
        }
    }

    /// "Measures" the number of L1 misses of a kernel given its mini-C
    /// source.  The source is re-elaborated with scalar accesses enabled, so
    /// the measured access stream is a superset of the one the analytical
    /// approaches see — exactly the situation of Fig. 11.
    ///
    /// # Errors
    ///
    /// Returns an error string if the source cannot be parsed or elaborated.
    pub fn measure_source(&self, source: &str) -> Result<MeasuredKernel, String> {
        let program = parse_program(source).map_err(|e| e.to_string())?;
        let scop =
            elaborate(&program, &ElaborateOptions::with_scalars()).map_err(|e| e.to_string())?;
        Ok(self.measure_scop(&scop))
    }

    /// "Measures" an already-elaborated SCoP (which should include scalar
    /// accesses for maximum fidelity).
    pub fn measure_scop(&self, scop: &Scop) -> MeasuredKernel {
        let mut state = CacheState::new(&self.config);
        let mut stats = LevelStats::default();
        for_each_access(scop, |acc| {
            stats.record(state.access(
                &self.config,
                Access {
                    address: acc.address,
                    kind: acc.kind,
                },
            ));
        });
        let misses = perturb(stats.misses, self.perturbation, scop.footprint_bytes());
        MeasuredKernel {
            accesses: stats.accesses,
            simulated_misses: stats.misses,
            measured_misses: misses,
        }
    }
}

/// The result of a hardware "measurement".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MeasuredKernel {
    /// Number of accesses performed (arrays + scalars).
    pub accesses: u64,
    /// Miss count of the underlying simulation before perturbation.
    pub simulated_misses: u64,
    /// Perturbed miss count, standing in for the PAPI measurement.
    pub measured_misses: u64,
}

/// Applies a deterministic relative perturbation in `[-magnitude, +magnitude]`
/// derived from a hash of the seed, so that repeated "measurements" of the
/// same kernel agree (the paper takes the median of 10 runs).
fn perturb(value: u64, magnitude: f64, seed: u64) -> u64 {
    // SplitMix64 step: cheap, deterministic, well distributed.
    let mut z = seed.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // in [0, 1)
    let factor = 1.0 + magnitude * (2.0 * unit - 1.0);
    ((value as f64) * factor).round().max(0.0) as u64
}

/// Error metrics comparing a predicted miss count against the measured one
/// (the two metrics of Fig. 11).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AccuracyError {
    /// `|predicted - measured|`
    pub absolute: u64,
    /// `absolute / measured` (0 if `measured` is 0).
    pub relative: f64,
}

impl AccuracyError {
    /// Computes the error of a prediction with respect to a measurement.
    pub fn of(predicted: u64, measured: u64) -> Self {
        let absolute = predicted.abs_diff(measured);
        let relative = if measured == 0 {
            0.0
        } else {
            absolute as f64 / measured as f64
        };
        AccuracyError { absolute, relative }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scop::parse_scop;

    fn stencil() -> Scop {
        parse_scop(
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap()
    }

    #[test]
    fn trace_has_one_entry_per_access() {
        let trace = generate_trace(&stencil());
        assert_eq!(trace.len(), 3 * 998);
        assert!(trace[2].kind.is_write());
        assert!(!trace[0].kind.is_write());
    }

    #[test]
    fn trace_simulation_matches_running_example() {
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let (len, stats) = dinero_style_simulation(&stencil(), &config);
        assert_eq!(len, 3 * 998);
        assert_eq!(stats.misses, 3 + 2 * 997);
    }

    #[test]
    fn hierarchy_trace_simulation() {
        let config = HierarchyConfig::new(
            CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru),
            CacheConfig::fully_associative(4096, 8, ReplacementPolicy::Lru),
        );
        let trace = generate_trace(&stencil());
        let stats = simulate_trace_hierarchy(&trace, &config);
        assert_eq!(stats.l1.misses, 3 + 2 * 997);
        assert_eq!(stats.l2.misses, 999 + 998);
    }

    #[test]
    fn hardware_reference_is_deterministic_and_close() {
        let reference = HardwareReference::default();
        let source = "double A[1000]; double B[1000];\n\
                      for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];";
        let a = reference.measure_source(source).unwrap();
        let b = reference.measure_source(source).unwrap();
        assert_eq!(a, b, "measurements are deterministic");
        // Scalar accesses are included: more accesses than the 3 * 998 array
        // accesses alone would give — no, this kernel has no scalars, so the
        // counts coincide.
        assert_eq!(a.accesses, 3 * 998);
        let deviation = a.measured_misses.abs_diff(a.simulated_misses) as f64
            / a.simulated_misses.max(1) as f64;
        assert!(deviation <= 0.09, "perturbation stays within its bound");
    }

    #[test]
    fn hardware_reference_sees_scalar_accesses() {
        let reference = HardwareReference::default();
        let source = "double A[100];\n\
                      for (i = 0; i < 100; i++) s = s + A[i];";
        let m = reference.measure_source(source).unwrap();
        // Each iteration: read s, read A[i], write s.
        assert_eq!(m.accesses, 300);
    }

    #[test]
    fn compiled_and_reference_traces_are_identical() {
        for src in [
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
            "double A[10]; for (i = 9; i >= 0; i -= 3) if (i < 7) A[i] = 0;",
        ] {
            let scop = parse_scop(src).unwrap();
            assert_eq!(
                generate_trace_with(&scop, WalkMode::Compiled),
                generate_trace_with(&scop, WalkMode::Reference),
                "{src}"
            );
        }
    }

    #[test]
    fn accuracy_error_metrics() {
        let e = AccuracyError::of(110, 100);
        assert_eq!(e.absolute, 10);
        assert!((e.relative - 0.1).abs() < 1e-12);
        let zero = AccuracyError::of(5, 0);
        assert_eq!(zero.absolute, 5);
        assert_eq!(zero.relative, 0.0);
    }
}
