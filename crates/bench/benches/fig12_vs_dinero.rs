//! Fig. 12: non-warping simulation vs the Dinero-IV-style trace-driven
//! simulator (trace generation + per-access simulation).

use bench_suite::test_system_l1;
use cache_model::ReplacementPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{Dataset, Kernel};
use simulate::simulate_single;
use trace_sim::dinero_style_simulation;

fn bench(c: &mut Criterion) {
    let cache = test_system_l1(ReplacementPolicy::Lru);
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for kernel in [Kernel::Cholesky, Kernel::Ludcmp] {
        let scop = kernel.build(Dataset::Mini).unwrap();
        group.bench_with_input(
            BenchmarkId::new("dinero", kernel.name()),
            &scop,
            |b, scop| b.iter(|| dinero_style_simulation(scop, &cache).1.misses),
        );
        group.bench_with_input(
            BenchmarkId::new("nonwarping", kernel.name()),
            &scop,
            |b, scop| b.iter(|| simulate_single(scop, &cache).l1().misses),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
