//! Fig. 11: accuracy of the three approaches against the hardware-
//! measurement stand-in (the benchmark times the full accuracy pipeline).

use bench_suite::{fig11, ExperimentConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use polybench::{Dataset, Kernel};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    let config =
        ExperimentConfig::at(Dataset::Mini).with_kernels(vec![Kernel::Atax, Kernel::Doitgen]);
    group.bench_function("accuracy-pipeline", |b| b.iter(|| fig11(&config).len()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
