//! Ablation: how the match-attempt policy (eager vs backed-off) affects
//! warping simulation time.  Eager matching maximises warp opportunities but
//! pays key-construction cost on every iteration; the default backs off on
//! loops that do not warp.

use bench_suite::test_system_l1;
use cache_model::ReplacementPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{Dataset, Kernel};
use warping::{WarpingOptions, WarpingSimulator};

fn bench(c: &mut Criterion) {
    let cache = test_system_l1(ReplacementPolicy::Plru);
    let mut group = c.benchmark_group("ablation_warp_options");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    let variants = [
        ("default", WarpingOptions::default()),
        (
            "eager",
            WarpingOptions {
                eager_attempts: u64::MAX,
                backoff_interval: 1,
                max_map_entries: 1 << 16,
                min_trip_count: 0,
                max_fruitless_attempts: u64::MAX,
                ..WarpingOptions::default()
            },
        ),
        (
            "lazy",
            WarpingOptions {
                eager_attempts: 0,
                backoff_interval: 64,
                max_map_entries: 1 << 12,
                min_trip_count: 128,
                max_fruitless_attempts: 256,
                ..WarpingOptions::default()
            },
        ),
    ];
    for kernel in [Kernel::Jacobi1d, Kernel::Gemm] {
        let scop = kernel.build(Dataset::Mini).unwrap();
        for (name, options) in variants {
            group.bench_with_input(BenchmarkId::new(name, kernel.name()), &scop, |b, scop| {
                b.iter(|| {
                    WarpingSimulator::single(cache.clone())
                        .with_options(options)
                        .run(scop)
                        .result
                        .l1()
                        .misses
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
