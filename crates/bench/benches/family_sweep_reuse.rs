//! Cross-instance warm paths on a family sweep: planner + calibration
//! reuse vs. naive per-instance exploration.
//!
//! A 64-point TILED_GEMM tile sweep (8 TI × 8 TJ values, one hierarchy ×
//! policy) is served twice: once **naively** — grid order, warm paths
//! disabled, every instance re-deriving its sampling calibration from
//! scratch — and once **planned** — the serve-layer sweep planner's snake
//! order with the family tier's `CalibrationCache` donating each
//! instance's detected period, stabilisation depth and audit bias to the
//! next.  At the bench's low sampling rate the cold calibration walk
//! dominates each instance, so the warm sweep's amortisation is exactly
//! what the ROADMAP's exploration story promises.
//!
//! Before any timing is recorded the bench **asserts the contract**:
//!
//! * every warm sampled report's per-level miss counts lie within the
//!   error bound the report itself carries, against classic ground truth
//!   computed per point;
//! * warp-hint donation on the exact warping backend is bit-identical to
//!   cold runs on a representative sub-grid;
//! * the planned+calibrated sweep beats the naive order by ≥3×
//!   wall-clock.
//!
//! Run with `cargo bench --bench family_sweep_reuse`; CI compiles it via
//! `cargo bench --no-run`.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, KernelSpec, SamplingOptions, SimRequest};
use polybench::parametric::TILED_GEMM;
use serve::{plan_order, PlanPoint, ServeConfig, SimService};
use std::time::{Duration, Instant};

/// Problem sizes: thousands of outer tile-loop iterations over a small
/// inner body, so sampling engages on every point (the outer trip count
/// `NI/TI` dwarfs the schedule stride) while one exact point still costs
/// only milliseconds.
const NI: i64 = 4096;
const NJ: i64 = 8;
const NK: i64 = 2;
/// The swept tile grid: 8 × 8 = 64 points.
const TI_VALUES: [i64; 8] = [2, 4, 6, 8, 10, 12, 14, 16];
const TJ_VALUES: [i64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// A sampling rate low enough that the schedule is sparse and the *cold*
/// calibration walk (exact prefix + stabilisation scan + audit) dominates
/// each instance — the cost the warm path amortises away.
fn sampling() -> SamplingOptions {
    SamplingOptions::from_rate(0.02).expect("0.02 is a valid rate")
}

/// 1 KiB / 8 KiB fully-associative two-level hierarchy.  Deliberately
/// tiny and single-set: occupancy saturates within a few outer intervals
/// (so a *seeded* run's exact stabilisation walk is short while a *cold*
/// run still scans in stride-wide steps and double-simulates the audit
/// region), and full associativity keeps streaming behaviour free of
/// set-index cycling — every instance is period-1, so neighbouring
/// calibration priors validate across the whole tile grid.
fn memory() -> MemoryConfig {
    MemoryConfig::new(vec![
        CacheConfig::new(1024, 16, 64, ReplacementPolicy::Lru),
        CacheConfig::new(8 * 1024, 128, 64, ReplacementPolicy::Lru),
    ])
    .expect("two-level hierarchy is compatible")
}

fn request(ti: i64, tj: i64, backend: Backend) -> SimRequest {
    SimRequest::new(
        KernelSpec::parametric(
            "tiled-gemm",
            TILED_GEMM,
            [("NI", NI), ("NJ", NJ), ("NK", NK), ("TI", ti), ("TJ", tj)],
        ),
        memory(),
        backend,
    )
}

/// The 64 tile pairs in naive grid order (TI outer, TJ inner).
fn grid() -> Vec<(i64, i64)> {
    let mut points = Vec::with_capacity(TI_VALUES.len() * TJ_VALUES.len());
    for &ti in &TI_VALUES {
        for &tj in &TJ_VALUES {
            points.push((ti, tj));
        }
    }
    points
}

/// The same pairs in the sweep planner's snake order.
fn planned_grid() -> Vec<(i64, i64)> {
    let points = grid();
    let plan_points: Vec<PlanPoint> = points
        .iter()
        .map(|&(ti, tj)| PlanPoint::new("l1l2|lru", vec![ti, tj]))
        .collect();
    plan_order(&plan_points)
        .into_iter()
        .map(|index| points[index])
        .collect()
}

fn service(warm_paths: bool) -> SimService {
    SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 256,
        exact_budget: None,
        warm_paths,
    })
}

/// Submits the sweep in the given order on a fresh service and returns
/// the total wall-clock.
fn sweep(service: &SimService, order: &[(i64, i64)], backend: Backend) -> Duration {
    let start = Instant::now();
    for &(ti, tj) in order {
        service
            .submit(&request(ti, tj, backend))
            .expect("sweep point simulates");
    }
    start.elapsed()
}

/// The correctness gates the timed comparison advertises, asserted before
/// any timing is recorded.
fn assert_contract() {
    let engine = Engine::new();
    let sampled = Backend::Sampled(sampling());

    // Sampled: every warm report stays within its own reported bound of
    // classic ground truth, and the warm state is actually consulted.
    let warm = service(true);
    for &(ti, tj) in &planned_grid() {
        let exact = engine
            .run(&request(ti, tj, Backend::Classic))
            .expect("classic ground truth simulates");
        let (report, _) = warm
            .submit(&request(ti, tj, sampled))
            .expect("warm sampled point simulates");
        let approx = report
            .approx
            .as_ref()
            .expect("sampled reports carry approx");
        for (level, bound) in approx.per_level_error_bound.iter().enumerate() {
            let err = report.levels[level]
                .misses
                .abs_diff(exact.levels[level].misses);
            assert!(
                err <= *bound,
                "TI={ti} TJ={tj} level {level}: error {err} exceeds reported bound {bound}"
            );
        }
    }
    let stats = warm.stats();
    assert_eq!(
        stats.calibration_hits + stats.calibration_misses,
        64,
        "every sampled point consults the calibration cache"
    );
    assert!(
        stats.calibration_hits >= 63 - TI_VALUES.len() as u64,
        "a planned sweep seeds nearly every point, got {} hits",
        stats.calibration_hits
    );

    // Exact: warp-hint donation must be bit-identical to cold runs on a
    // representative sub-grid (donations reorder match *attempts*, never
    // counts).
    let warm = service(true);
    for &(ti, tj) in &[(4, 2), (4, 4), (8, 2), (8, 4), (12, 8)] {
        let (donated, _) = warm
            .submit(&request(ti, tj, Backend::warping()))
            .expect("warm warping point simulates");
        let cold = engine
            .run(&request(ti, tj, Backend::warping()))
            .expect("cold warping point simulates");
        assert_eq!(
            donated.result, cold.result,
            "TI={ti} TJ={tj}: warp-hint donation must stay bit-exact"
        );
        assert_eq!(donated.levels, cold.levels, "TI={ti} TJ={tj}");
    }
}

/// The ≥3× wall-clock gate: a planned+calibrated warm sweep vs. the naive
/// order on a cold service.
fn assert_speedup() -> (Duration, Duration) {
    let sampled = Backend::Sampled(sampling());
    let naive = sweep(&service(false), &grid(), sampled);
    let planned = sweep(&service(true), &planned_grid(), sampled);
    let speedup = naive.as_secs_f64() / planned.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 3.0,
        "planned+calibrated sweep only {speedup:.2}x faster than naive \
         (naive {naive:?}, planned {planned:?})"
    );
    (naive, planned)
}

fn bench(c: &mut criterion::Criterion) {
    if std::env::var_os("FAMILY_SWEEP_DIAG").is_some() {
        let sampled = Backend::Sampled(sampling());
        for (label, warm_paths, order) in
            [("naive", false, grid()), ("planned", true, planned_grid())]
        {
            let svc = service(warm_paths);
            let mut prev_fallbacks = 0;
            for &(ti, tj) in &order {
                let start = Instant::now();
                svc.submit(&request(ti, tj, sampled)).expect("simulates");
                let fallbacks = svc.stats().calibration_fallbacks;
                println!(
                    "{label} TI={ti} TJ={tj} {:?}{}",
                    start.elapsed(),
                    if fallbacks > prev_fallbacks {
                        " FALLBACK"
                    } else {
                        ""
                    }
                );
                prev_fallbacks = fallbacks;
            }
            let stats = svc.stats();
            println!(
                "{label}: hits {} misses {} fallbacks {}",
                stats.calibration_hits, stats.calibration_misses, stats.calibration_fallbacks
            );
        }
        return;
    }
    assert_contract();
    let (naive, planned) = assert_speedup();
    println!(
        "family_sweep_reuse: naive {naive:?}, planned+calibrated {planned:?} \
         ({:.2}x)",
        naive.as_secs_f64() / planned.as_secs_f64()
    );

    let mut group = c.benchmark_group("family_sweep_reuse");
    group.sample_size(3);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    let sampled = Backend::Sampled(sampling());
    group.bench_function("planned_warm_sweep", |b| {
        b.iter(|| sweep(&service(true), &planned_grid(), sampled))
    });
    group.finish();
}

criterion::criterion_group!(benches, bench);
criterion::criterion_main!(benches);
