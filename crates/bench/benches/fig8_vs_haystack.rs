//! Fig. 8: warping simulation vs the HayStack-style analytical model on a
//! fully-associative LRU cache (both including SCoP extraction).

use analytical::HaystackModel;
use bench_suite::fully_associative_l1;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{Dataset, Kernel};
use warping::WarpingSimulator;

fn bench(c: &mut Criterion) {
    let cache = fully_associative_l1();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for kernel in [Kernel::Jacobi1d, Kernel::Seidel2d, Kernel::Atax] {
        group.bench_with_input(
            BenchmarkId::new("warping", kernel.name()),
            &kernel,
            |b, k| {
                b.iter(|| {
                    let scop = k.build(Dataset::Mini).unwrap();
                    WarpingSimulator::single(cache.clone())
                        .run(&scop)
                        .result
                        .l1()
                        .misses
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("haystack", kernel.name()),
            &kernel,
            |b, k| {
                b.iter(|| {
                    let scop = k.build(Dataset::Mini).unwrap();
                    HaystackModel::new(64).analyze(&scop).misses(512)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
