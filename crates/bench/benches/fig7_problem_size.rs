//! Fig. 7: how warping and non-warping simulation times scale with the
//! problem size (two dataset sizes per kernel).

use bench_suite::{run_nonwarping, run_warping, test_system_l1};
use cache_model::ReplacementPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{Dataset, Kernel};

fn bench(c: &mut Criterion) {
    let cache = test_system_l1(ReplacementPolicy::Plru);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for kernel in [Kernel::Jacobi1d, Kernel::Gemm] {
        for dataset in [Dataset::Mini, Dataset::Small] {
            let scop = kernel.build(dataset).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("warping/{}", kernel.name()), dataset.name()),
                &scop,
                |b, scop| b.iter(|| run_warping(scop, &cache).1.result.l1().misses),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("nonwarping/{}", kernel.name()), dataset.name()),
                &scop,
                |b, scop| b.iter(|| run_nonwarping(scop, &cache).1.l1().misses),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
