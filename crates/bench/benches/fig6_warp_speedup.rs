//! Fig. 6: warping vs non-warping simulation time on the test system's L1,
//! for all four replacement policies, on representative kernels.

use bench_suite::{run_nonwarping, run_warping, test_system_l1};
use cache_model::ReplacementPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{Dataset, Kernel};

fn bench(c: &mut Criterion) {
    let kernels = [
        Kernel::Jacobi1d,
        Kernel::Jacobi2d,
        Kernel::Trisolv,
        Kernel::Bicg,
    ];
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for kernel in kernels {
        let scop = kernel.build(Dataset::Mini).unwrap();
        for policy in ReplacementPolicy::ALL {
            let cache = test_system_l1(policy);
            group.bench_with_input(
                BenchmarkId::new(format!("warping/{policy}"), kernel.name()),
                &scop,
                |b, scop| b.iter(|| run_warping(scop, &cache).1.result.l1().misses),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("nonwarping/{policy}"), kernel.name()),
                &scop,
                |b, scop| b.iter(|| run_nonwarping(scop, &cache).1.l1().misses),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
