//! Fig. 9: two-level warping simulation vs the PolyCache-style model.

use analytical::PolyCacheModel;
use cache_model::HierarchyConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{Dataset, Kernel};
use warping::WarpingSimulator;

fn bench(c: &mut Criterion) {
    let hierarchy = HierarchyConfig::polycache_comparison();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for kernel in [Kernel::Jacobi1d, Kernel::Mvt] {
        group.bench_with_input(
            BenchmarkId::new("warping-l1l2", kernel.name()),
            &kernel,
            |b, k| {
                b.iter(|| {
                    let scop = k.build(Dataset::Mini).unwrap();
                    WarpingSimulator::hierarchy(hierarchy.clone())
                        .run(&scop)
                        .result
                        .accesses
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("polycache", kernel.name()),
            &kernel,
            |b, k| {
                b.iter(|| {
                    let scop = k.build(Dataset::Mini).unwrap();
                    PolyCacheModel::new(hierarchy.clone())
                        .analyze(&scop)
                        .l2_misses
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
