//! Fig. 10: influence of the replacement policy on the number of misses
//! (the benchmark times the per-policy warping simulations that produce the
//! figure's ratios).

use bench_suite::test_system_l1;
use cache_model::ReplacementPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polybench::{Dataset, Kernel};
use warping::WarpingSimulator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(400));
    for kernel in [Kernel::Doitgen, Kernel::Durbin] {
        let scop = kernel.build(Dataset::Mini).unwrap();
        for policy in ReplacementPolicy::ALL {
            group.bench_with_input(
                BenchmarkId::new(policy.label(), kernel.name()),
                &scop,
                |b, scop| {
                    b.iter(|| {
                        WarpingSimulator::single(test_system_l1(policy))
                            .run(scop)
                            .result
                            .l1()
                            .misses
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
