//! Exploration-sweep throughput: parse-once parametric families vs
//! per-instance re-parsing.
//!
//! An exploration grid hammers one kernel template with many bindings.  The
//! parametric path parses the template once ([`scop::ParametricScop`]'s
//! process-wide memo) and addresses every instance through the serving
//! layer's family tier, whose `(config, bindings)` memo skips substitution
//! and canonicalisation entirely on repeat submissions.  The baseline a
//! non-parametric client is stuck with renders a constant source per grid
//! point and re-parses it on every submission just to compute the canonical
//! address.
//!
//! * `speedup_gate` — times one warm 64-point sweep both ways with
//!   `Instant`, prints the ratio and asserts the acceptance bar: parametric
//!   ≥ 5× the re-parse baseline, with bit-identical reports (the constant
//!   spelling must be answered from the cache entry the parametric spelling
//!   created).
//! * `sweep/parametric_warm` and `sweep/reparse_baseline` — the same two
//!   paths under criterion for tracked numbers.
//!
//! Run with `cargo bench --bench explore_sweep`; CI compiles it via
//! `cargo bench --no-run` (the explore smoke job covers the wire-level
//! equivalence on every push).

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use engine::{Backend, KernelSpec, SimRequest};
use polybench::parametric::{tiled_gemm, TILED_GEMM};
use serve::{ServeConfig, Served, SimService};
use std::time::{Duration, Instant};

/// Problem extents: small enough that 64 cold simulations stay cheap, the
/// sweep cost is dominated by addressing, and the contrast is honest.
const NI: i64 = 16;
const NJ: i64 = 16;
const NK: i64 = 16;

fn memory() -> MemoryConfig {
    MemoryConfig::single(CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Lru))
}

/// The 64-point tile grid: TI × TJ ∈ {1..8}².
fn tile_grid() -> Vec<(i64, i64)> {
    let mut grid = Vec::with_capacity(64);
    for ti in 1..=8 {
        for tj in 1..=8 {
            grid.push((ti, tj));
        }
    }
    grid
}

/// One grid point, addressed through the family tier: the template text is
/// shared by every point, so the service parses it once and memoises each
/// binding's instance address.
fn parametric_request(ti: i64, tj: i64) -> SimRequest {
    SimRequest::new(
        KernelSpec::parametric(
            "tiled-gemm",
            TILED_GEMM,
            [
                ("NI".to_string(), NI),
                ("NJ".to_string(), NJ),
                ("NK".to_string(), NK),
                ("TI".to_string(), ti),
                ("TJ".to_string(), tj),
            ],
        ),
        memory(),
        Backend::warping(),
    )
}

/// The same grid point as a constant-source client submits it: a freshly
/// rendered source that must be re-parsed per submission to find its
/// canonical address (which collides with the parametric spelling's).
fn reparse_request(ti: i64, tj: i64) -> SimRequest {
    SimRequest::new(
        KernelSpec::source(
            format!("tiled-gemm-{ti}x{tj}"),
            tiled_gemm(NI as u64, NJ as u64, NK as u64, ti as u64, tj as u64),
        ),
        memory(),
        Backend::warping(),
    )
}

/// A service primed with every grid point, so both measured paths are pure
/// warm traffic: addressing + cache lookup, no simulation.
fn warm_service(grid: &[(i64, i64)]) -> SimService {
    let service = SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 128,
        exact_budget: None,
        warm_paths: true,
    });
    service
        .register_family("tiled-gemm", TILED_GEMM)
        .expect("template registers");
    for &(ti, tj) in grid {
        let (_, served) = service
            .submit(&parametric_request(ti, tj))
            .expect("priming run succeeds");
        assert_eq!(served, Served::Simulated, "priming must be cold");
    }
    service
}

/// Times `rounds` warm sweeps of the whole grid through `submit`.
fn time_sweep(
    service: &SimService,
    grid: &[(i64, i64)],
    rounds: usize,
    request: impl Fn(i64, i64) -> SimRequest,
) -> Duration {
    let start = Instant::now();
    for _ in 0..rounds {
        for &(ti, tj) in grid {
            let (report, served) = service
                .submit(&request(ti, tj))
                .expect("warm sweep point served");
            assert_eq!(served, Served::CacheHit, "warm sweep must not simulate");
            black_box(report);
        }
    }
    start.elapsed()
}

/// The acceptance gate: bit-identical reports across the two spellings, and
/// the parametric path ≥ 5× the re-parse baseline on a warm 64-point sweep.
fn speedup_gate(criterion: &mut Criterion) {
    // Criterion only drives the other benches; the gate is plain `Instant`
    // so it also fires under `--test`-style single runs.
    let _ = criterion;
    let grid = tile_grid();
    assert!(grid.len() >= 64, "acceptance demands a ≥64-point sweep");
    let service = warm_service(&grid);

    // Every constant spelling must be answered from the cache entry its
    // parametric twin created, with the exact same bytes.
    for &(ti, tj) in &grid {
        let (parametric, served) = service
            .submit(&parametric_request(ti, tj))
            .expect("parametric point served");
        assert_eq!(served, Served::CacheHit);
        let (constant, served) = service
            .submit(&reparse_request(ti, tj))
            .expect("constant point served");
        assert_eq!(
            served,
            Served::CacheHit,
            "TI={ti} TJ={tj}: the constant spelling missed the family's cache entry"
        );
        assert!(
            parametric.same_outcome(&constant),
            "TI={ti} TJ={tj}: reports diverged between spellings"
        );
    }

    let rounds = 20;
    let parametric = time_sweep(&service, &grid, rounds, parametric_request);
    let baseline = time_sweep(&service, &grid, rounds, reparse_request);
    let speedup = baseline.as_secs_f64() / parametric.as_secs_f64();
    println!(
        "explore_sweep gate: {} points × {rounds} rounds — parametric {:.2?}, \
         re-parse baseline {:.2?}, speedup {speedup:.1}×",
        grid.len(),
        parametric,
        baseline,
    );
    assert!(
        speedup >= 5.0,
        "parametric sweep speedup {speedup:.1}× is below the 5× acceptance bar"
    );
}

fn bench_sweep(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("explore_sweep");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let grid = tile_grid();
    let service = warm_service(&grid);

    group.bench_function("sweep/parametric_warm", |b| {
        b.iter(|| time_sweep(&service, &grid, 1, parametric_request))
    });
    group.bench_function("sweep/reparse_baseline", |b| {
        b.iter(|| time_sweep(&service, &grid, 1, reparse_request))
    });

    group.finish();
}

criterion_group!(explore_sweep, speedup_gate, bench_sweep);
criterion_main!(explore_sweep);
