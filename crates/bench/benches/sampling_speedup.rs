//! Sampling speedup on the non-warpable tail: interval sampling vs.
//! classic simulation on a kernel warping never accelerates.
//!
//! The kernel streams two arrays at incommensurate line rates
//! (`A[i] = A[i] + B[3*i]` — A advances one line per 8 iterations, B
//! three), so the concrete states warping fingerprints never re-digest
//! equal and every access pays full simulation cost.  Exactly the case
//! the ROADMAP's interval-sampling escape hatch targets: behaviour is
//! periodic even though the state never matches.
//!
//! The footprint sweeps 256 KiB → 64 MiB over a small two-level
//! hierarchy (8 KiB L1 / 64 KiB L2), so every size past the first is
//! LLC-saturating and the sampler's exact fill phase is a vanishing
//! share of the run.
//!
//! Before any timing is recorded the bench **asserts the contract**, per
//! size: the sampled per-level miss counts lie within the error bound
//! the report itself carries, the measured error is at most 5% of the
//! classic miss count, and (at the largest size, where the fill phase is
//! amortised) a single sampled run beats a single classic run by ≥5×.
//! (The gate was ≥10× against the per-iteration reference walk; the
//! compiled walk lifted the classic baseline itself by ~2×, so the
//! sampler's *relative* edge shrank while both absolute times dropped —
//! the `sampled-reference-walk` rows record the walker's own share.)
//! A bench that lies about accuracy would otherwise happily report a
//! beautiful speedup.
//!
//! Run with `cargo bench --bench sampling_speedup`; CI compiles it via
//! `cargo bench --no-run`.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{Backend, Engine, KernelSpec, SamplingOptions, SimReport, SimRequest, WalkMode};
use std::time::{Duration, Instant};

/// Footprints swept, in bytes: 256 KiB, 1 MiB, 4 MiB, 16 MiB, 64 MiB.
const FOOTPRINTS: [usize; 5] = [1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26];

/// The sampling rate under test: 1% of accesses, default warm-up.
fn options() -> SamplingOptions {
    SamplingOptions::from_rate(0.01).expect("0.01 is a valid rate")
}

/// A two-level hierarchy small enough that every swept footprint
/// saturates it: 8 KiB 2-way L1, 64 KiB 8-way L2, 64-byte lines.
fn memory() -> MemoryConfig {
    MemoryConfig::new(vec![
        CacheConfig::new(8 * 1024, 2, 64, ReplacementPolicy::Lru),
        CacheConfig::new(64 * 1024, 8, 64, ReplacementPolicy::Plru),
    ])
    .expect("two-level hierarchy is compatible")
}

/// The never-matching kernel at a given total footprint: `A` holds a
/// quarter of the doubles, `B` three quarters (it is read at stride 3).
fn kernel(footprint: usize) -> KernelSpec {
    let n = footprint / 32; // 4 doubles of footprint per iteration of i
    KernelSpec::source(
        format!("stride3/{footprint}"),
        format!(
            "double A[{n}]; double B[{m}]; \
             for (i = 0; i < {n}; i++) A[i] = A[i] + B[3*i];",
            m = 3 * n
        ),
    )
}

fn run(engine: &Engine, footprint: usize, backend: Backend) -> (Duration, SimReport) {
    let request = SimRequest::new(kernel(footprint), memory(), backend);
    let start = Instant::now();
    let report = engine.run(&request).expect("kernel simulates");
    (start.elapsed(), report)
}

/// The accuracy and speedup gates: run classic and sampled once per size
/// and assert the contract the timed comparison is about to advertise.
fn assert_contract(engine: &Engine) {
    for &footprint in &FOOTPRINTS {
        let (exact_time, exact) = run(engine, footprint, Backend::Classic);
        let (sampled_time, sampled) = run(engine, footprint, Backend::Sampled(options()));
        assert_eq!(
            sampled.result.accesses, exact.result.accesses,
            "{footprint}: extrapolation must preserve the access count"
        );
        let approx = sampled
            .approx
            .as_ref()
            .expect("sampled reports carry approx");
        for (level, bound) in approx.per_level_error_bound.iter().enumerate() {
            let err = sampled.levels[level]
                .misses
                .abs_diff(exact.levels[level].misses);
            assert!(
                err <= *bound,
                "{footprint}: level {level} error {err} exceeds reported bound {bound}"
            );
            assert!(
                err * 20 <= exact.levels[level].misses,
                "{footprint}: level {level} error {err} above 5% of {} classic misses",
                exact.levels[level].misses
            );
        }
        // The fill phase is simulated exactly, so the speedup only
        // amortises once the footprint dwarfs the LLC; gate at the top
        // of the sweep where the claim is meaningful.
        if footprint == *FOOTPRINTS.last().expect("sweep is non-empty") {
            let speedup = exact_time.as_secs_f64() / sampled_time.as_secs_f64().max(1e-9);
            // ≥5×, not the historical ≥10×: the compiled walk roughly
            // halved the classic denominator (see the module comment).
            assert!(
                speedup >= 5.0,
                "{footprint}: sampled run only {speedup:.1}x faster than classic \
                 (classic {exact_time:?}, sampled {sampled_time:?})"
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    let engine = Engine::new();
    assert_contract(&engine);
    // The same sampled backend on the reference (per-iteration) walk, so
    // the recorded gap between `sampled` and `sampled-reference-walk`
    // rows is the compiled walk's end-to-end gain on this backend.
    let reference = Engine::new().with_walk(WalkMode::Reference);
    let mut group = c.benchmark_group("sampling_speedup");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for &footprint in &FOOTPRINTS {
        group.bench_with_input(
            BenchmarkId::new("sampled", footprint),
            &footprint,
            |b, &fp| b.iter(|| run(&engine, fp, Backend::Sampled(options())).1.levels[0].misses),
        );
        group.bench_with_input(
            BenchmarkId::new("sampled-reference-walk", footprint),
            &footprint,
            |b, &fp| b.iter(|| run(&reference, fp, Backend::Sampled(options())).1.levels[0].misses),
        );
        // Classic at the top sizes is slow; time it where a sample fits.
        if footprint <= 1 << 22 {
            group.bench_with_input(
                BenchmarkId::new("classic", footprint),
                &footprint,
                |b, &fp| b.iter(|| run(&engine, fp, Backend::Classic).1.levels[0].misses),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
