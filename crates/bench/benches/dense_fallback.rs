//! Saturated-level access cost: the sparse `BTreeMap` store vs. a dense
//! `Vec` baseline at ~100% occupancy.
//!
//! The sparse cache-state store (touched sets only, shared empty template)
//! made construction O(1) and memory proportional to the working set — but
//! once a kernel touches *every* set of a small L1, each access pays a
//! `BTreeMap` lookup where a dense `Vec` would index directly.  The ROADMAP
//! files an adaptive representation (flip a level to dense beyond ~50%
//! occupancy) with the instruction to **measure before building**; this
//! bench is that measurement.
//!
//! Both models run the identical per-set logic (`SetState`); the only
//! difference is the set container.  Two access mixes are timed on a fully
//! saturated 64-set × 8-way L1:
//!
//! * `hits` — a re-sweep of the resident working set (every access hits),
//!   the pattern L1-resident kernels spend their explicit iterations on;
//! * `stream` — a miss-per-line streaming sweep through fresh blocks
//!   (every access evicts), the worst case for store mutation.
//!
//! Run with `cargo bench --bench dense_fallback`; CI compiles it via
//! `cargo bench --no-run`.  The observed verdict is recorded in ROADMAP.md
//! next to the dense-fallback item.

use cache_model::{CacheConfig, CacheState, MemBlock, ReplacementPolicy, SetState};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// The dense baseline: one eagerly allocated set per index, same per-set
/// logic as the sparse store delegates to.
struct DenseState {
    sets: Vec<SetState<MemBlock>>,
}

impl DenseState {
    fn new(config: &CacheConfig) -> Self {
        DenseState {
            sets: (0..config.num_sets())
                .map(|_| SetState::new(config.policy(), config.assoc()))
                .collect(),
        }
    }

    #[inline]
    fn access_block(&mut self, config: &CacheConfig, block: MemBlock) -> bool {
        let set = &mut self.sets[config.index(block)];
        set.access(config.policy(), block)
    }
}

/// The test system's L1: 32 KiB, 8-way, 64-byte lines — 64 sets, 512 lines.
fn l1() -> CacheConfig {
    CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru)
}

/// Blocks that fill every line of every set exactly once.
fn saturating_blocks(config: &CacheConfig) -> Vec<MemBlock> {
    (0..(config.num_sets() * config.assoc()) as u64)
        .map(MemBlock)
        .collect()
}

fn bench_dense_fallback(criterion: &mut Criterion) {
    let config = l1();
    let resident = saturating_blocks(&config);
    let fresh: Vec<MemBlock> = (0..resident.len() as u64)
        .map(|i| MemBlock(1_000_000 + i))
        .collect();

    let mut group = criterion.benchmark_group("dense_fallback");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    for (mix, blocks) in [("hits", &resident), ("stream", &fresh)] {
        group.bench_with_input(
            BenchmarkId::new("sparse", mix),
            blocks,
            |bencher, blocks| {
                let mut state = CacheState::new(&config);
                for &b in &resident {
                    state.access_block(&config, b);
                }
                bencher.iter(|| {
                    let mut hits = 0u64;
                    for &b in blocks.iter() {
                        hits += u64::from(state.access_block(&config, b));
                    }
                    // Re-saturate with the resident set so every timed pass
                    // starts from 100% occupancy with identical content.
                    for &b in &resident {
                        state.access_block(&config, b);
                    }
                    black_box(hits)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("dense", mix), blocks, |bencher, blocks| {
            let mut state = DenseState::new(&config);
            for &b in &resident {
                state.access_block(&config, b);
            }
            bencher.iter(|| {
                let mut hits = 0u64;
                for &b in blocks.iter() {
                    hits += u64::from(state.access_block(&config, b));
                }
                for &b in &resident {
                    state.access_block(&config, b);
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(dense_fallback, bench_dense_fallback);
criterion_main!(dense_fallback);
