//! L1-resident kernels vs. outer-level size: the scenario relative-label
//! (epoch) addressing unlocks.
//!
//! A kernel that re-sweeps a 4 KiB array fits entirely into the 32 KiB L1:
//! after the first time step every access hits L1 and the outer levels keep
//! the symbolic labels they were filled with during warm-up — *frozen*.
//! Under current-iterator label normalisation those frozen labels drift
//! away from every later match attempt, so warping degenerated to explicit
//! simulation of all `T × N` accesses (this is the gap the fig13 bench had
//! to be designed around: its kernel deliberately *overflows* the L1 to
//! keep the outer labels fresh).  With epoch-relative keys the frozen
//! levels match as bit-identical, the time loop warps, and the end-to-end
//! time stays near-flat across a 256 KiB → 64 MiB outer-level sweep.
//!
//! Before timing anything the bench asserts the acceptance criteria once:
//! on the 64 MiB outer level the warping backend applies at least one warp,
//! renormalises at least one frozen level, and reports miss counts
//! bit-identical to classic simulation — while the legacy pipeline
//! (`--label-renorm off`) applies none.
//!
//! Run with `cargo bench --bench fig_l1_resident`; CI compiles it via
//! `cargo bench --no-run`.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{Backend, Engine, KernelSpec, SimRequest};
use std::time::Duration;
use warping::WarpingOptions;

/// A long-running kernel whose 4 KiB working set is L1-resident: the inner
/// sweep is short enough that the only warping opportunity is the time
/// loop, which requires matching the frozen outer levels.
fn l1_resident_kernel() -> KernelSpec {
    KernelSpec::source(
        "resident-512",
        "double A[512];\n\
         for (t = 0; t < 20000; t++) for (i = 0; i < 512; i++) A[i] = A[i];",
    )
}

/// The test system's L1/L2 under an outer level of `outer_kib` KiB — the
/// sweep variable, dwarfing the working set at every point.
fn memory(outer_kib: u64) -> MemoryConfig {
    MemoryConfig::three_level(
        CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Lru),
        CacheConfig::new(256 * 1024, 16, 64, ReplacementPolicy::Lru),
        CacheConfig::new(outer_kib * 1024, 16, 64, ReplacementPolicy::Lru),
    )
}

fn legacy() -> WarpingOptions {
    WarpingOptions {
        label_renorm: false,
        ..WarpingOptions::default()
    }
}

const SWEEP_KIB: [u64; 4] = [256, 2048, 16 * 1024, 64 * 1024];

fn assert_acceptance(engine: &Engine) {
    let kernel = l1_resident_kernel();
    let memory = memory(64 * 1024);
    let classic = engine
        .run(&SimRequest::new(
            kernel.clone(),
            memory.clone(),
            Backend::Classic,
        ))
        .expect("classic request");
    let warping = engine
        .run(&SimRequest::new(
            kernel.clone(),
            memory.clone(),
            Backend::warping(),
        ))
        .expect("warping request");
    assert_eq!(
        warping.levels, classic.levels,
        "warping must stay bit-identical to classic on the 64 MiB sweep point"
    );
    let stats = warping.warping.expect("warping stats");
    assert!(stats.warps >= 1, "the time loop must warp");
    assert!(
        stats.stale_label_renorms >= 1,
        "the frozen outer levels must be matched via renormalisation"
    );
    let frozen = engine
        .run(&SimRequest::new(kernel, memory, Backend::Warping(legacy())))
        .expect("legacy warping request");
    assert_eq!(frozen.levels, classic.levels);
    assert_eq!(
        frozen.warping.expect("warping stats").warps,
        0,
        "current-iterator normalisation never matches this kernel"
    );
}

fn bench_l1_resident(criterion: &mut Criterion) {
    let engine = Engine::new();
    assert_acceptance(&engine);

    let kernel = l1_resident_kernel();
    let mut group = criterion.benchmark_group("fig_l1_resident");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    // Warping with epoch renormalisation: near-flat across the sweep, and
    // independent of the time-loop trip count once the warp lands.
    for outer_kib in SWEEP_KIB {
        let memory = memory(outer_kib);
        group.bench_with_input(
            BenchmarkId::new("warping", format!("{outer_kib}K")),
            &memory,
            |b, memory| {
                b.iter(|| {
                    let request =
                        SimRequest::new(kernel.clone(), memory.clone(), Backend::warping());
                    black_box(engine.run(&request).expect("warping request"))
                })
            },
        );
    }
    // The legacy pipeline at one sweep point: it simulates all 10M accesses
    // explicitly, the gap this figure quantifies.
    let reference = memory(256);
    group.bench_with_input(
        BenchmarkId::new("warping-legacy", "256K"),
        &reference,
        |b, memory| {
            b.iter(|| {
                let request =
                    SimRequest::new(kernel.clone(), memory.clone(), Backend::Warping(legacy()));
                black_box(engine.run(&request).expect("legacy request"))
            })
        },
    );
    group.finish();
}

criterion_group!(fig_l1_resident, bench_l1_resident);
criterion_main!(fig_l1_resident);
