//! Serving-layer throughput: cold vs warm cache, 1 vs N workers.
//!
//! The serving layer's value proposition is that repeated and concurrent
//! traffic costs far less than `Engine::run` per request:
//!
//! * `warm_vs_cold` — one request submitted to a fresh service (cold: cache
//!   miss, full simulation) vs the same request resubmitted (warm: a
//!   shard-local read lock and a report clone).  The acceptance bar for
//!   this PR is warm ≥ 10× cold; in practice it is orders of magnitude.
//! * `batch_workers` — a duplicate-heavy 32-request batch through
//!   `SimService::run_batch` with 1 worker vs `available_parallelism`
//!   workers, against the `Engine::run_batch` baseline (no cache, no
//!   dedup, static fan-out).
//!
//! Run with `cargo bench --bench serve_throughput`; CI compiles it via
//! `cargo bench --no-run`.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{Backend, Engine, KernelSpec, SimRequest};
use serve::{ServeConfig, SimService};
use std::sync::Arc;
use std::time::Duration;

fn memory() -> MemoryConfig {
    MemoryConfig::single(CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Lru))
}

/// A small but non-trivial kernel (a stencil with reuse, so warping has
/// real work on a cold miss).
fn kernel(tag: usize) -> KernelSpec {
    KernelSpec::source(
        format!("stencil-{tag}"),
        format!(
            "double A[{n}]; double B[{n}];\n\
             for (t = 0; t < 4; t++)\n\
               for (i = 1; i < {m}; i++)\n\
                 B[i] = A[i - 1] + A[i] + A[i + 1];",
            n = 256 + tag,
            m = 255 + tag,
        ),
    )
}

fn request(tag: usize) -> SimRequest {
    SimRequest::new(kernel(tag), memory(), Backend::warping())
}

/// A duplicate-heavy batch: 32 requests over 4 distinct kernels, the shape
/// the cache + dedup layers are built for.
fn duplicate_heavy_batch() -> Vec<SimRequest> {
    (0..32).map(|i| request(i % 4)).collect()
}

fn bench_warm_vs_cold(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("serve_throughput");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    // Cold: every iteration builds a fresh service, so the submission is a
    // compulsory miss that runs the simulation.
    group.bench_function("warm_vs_cold/cold", |b| {
        let request = request(0);
        b.iter(|| {
            let service = SimService::new(ServeConfig {
                workers: 1,
                cache_capacity: 16,
                exact_budget: None,
                warm_paths: true,
            });
            black_box(service.submit(&request).expect("request served"))
        })
    });

    // Warm: one service, primed once; every iteration is a cache hit.
    group.bench_function("warm_vs_cold/warm", |b| {
        let service = SimService::new(ServeConfig {
            workers: 1,
            cache_capacity: 16,
            exact_budget: None,
            warm_paths: true,
        });
        let request = request(0);
        service.submit(&request).expect("priming run succeeds");
        b.iter(|| black_box(service.submit(&request).expect("request served")))
    });

    group.finish();
}

fn bench_batch_workers(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("serve_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for workers in [1, cores] {
        group.bench_with_input(
            BenchmarkId::new("batch/serve", format!("{workers}w")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    // A fresh service per iteration: the batch itself must
                    // exercise dedup + cache, not a pre-warmed store.
                    let service = Arc::new(SimService::new(ServeConfig {
                        workers,
                        cache_capacity: 64,
                        exact_budget: None,
                        warm_paths: true,
                    }));
                    black_box(service.run_batch(&duplicate_heavy_batch()))
                })
            },
        );
    }

    // Baseline: the engine's static fan-out with neither cache nor dedup.
    group.bench_function("batch/engine_baseline", |b| {
        let engine = Engine::new();
        b.iter(|| black_box(engine.run_batch(&duplicate_heavy_batch())))
    });

    group.finish();
}

criterion_group!(serve_throughput, bench_warm_vs_cold, bench_batch_workers);
criterion_main!(serve_throughput);
