//! Compiled walk vs reference walk: the strength-reduced, run-batched
//! access stream against the per-iteration affine evaluation it replaces.
//!
//! Two kernels, both on the classic (non-warping) backend so nothing but
//! the walker differs between the timed sides:
//!
//!   * a 64 MiB streaming kernel (`A[i] = 0` over 8 M doubles) — the
//!     best case for run batching: a single-access loop body compiles
//!     into one [`AccessRun`] spanning the whole loop, and the cache
//!     layer collapses the eight same-line accesses of each line into
//!     one real fill plus an arithmetic tail;
//!   * a tiled `gemm` instance (128³ problem, 16×16 tiles) — ragged-tile
//!     if-guards and a five-deep loop nest, the worst case for guard
//!     hoisting and the exactness analysis.
//!
//! Before any timing is recorded the bench **asserts the contract**: both
//! kernels produce bit-identical access counts and per-level hit/miss
//! counters under either walk, and the compiled walk beats the reference
//! walk by ≥4× wall-clock on the streaming kernel (the tiled instance is
//! equivalence-checked but not speed-gated — its guards keep part of the
//! nest on the dynamic path by design).
//!
//! Run with `cargo bench --bench compiled_walk`; CI compiles it via
//! `cargo bench --no-run`.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{Backend, Engine, KernelSpec, SimReport, SimRequest, WalkMode};
use std::time::{Duration, Instant};

/// 8 M doubles = 64 MiB: the streaming footprint the ≥4× gate runs at.
const STREAM_DOUBLES: usize = 1 << 23;

/// A two-level hierarchy the streaming kernel saturates: 8 KiB 2-way L1,
/// 64 KiB 8-way L2, 64-byte lines (the `sampling_speedup` geometry).
fn memory() -> MemoryConfig {
    MemoryConfig::new(vec![
        CacheConfig::new(8 * 1024, 2, 64, ReplacementPolicy::Lru),
        CacheConfig::new(64 * 1024, 8, 64, ReplacementPolicy::Plru),
    ])
    .expect("two-level hierarchy is compatible")
}

/// The streaming kernel: one write per element, unit stride.  A single
/// access in the loop body keeps the whole nest on the run fast path.
fn streaming_kernel() -> KernelSpec {
    let n = STREAM_DOUBLES;
    KernelSpec::source(
        format!("stream/{n}"),
        format!("double A[{n}]; for (i = 0; i < {n}; i++) A[i] = 0;"),
    )
}

/// The tiled `gemm` instance: guards on every ragged tile edge.
fn tiled_kernel() -> KernelSpec {
    KernelSpec::source(
        "tiled_gemm/128x16".to_string(),
        polybench::parametric::tiled_gemm(128, 128, 128, 16, 16),
    )
}

fn run(engine: &Engine, kernel: KernelSpec) -> (Duration, SimReport) {
    let request = SimRequest::new(kernel, memory(), Backend::Classic);
    let start = Instant::now();
    let report = engine.run(&request).expect("kernel simulates");
    (start.elapsed(), report)
}

/// Bit-exactness on both kernels, then the ≥4× wall-clock gate on the
/// streaming kernel.  A bench that times two walkers that disagree would
/// be advertising a speedup of the wrong answer.
fn assert_contract(compiled: &Engine, reference: &Engine) {
    for kernel in [streaming_kernel(), tiled_kernel()] {
        let name = kernel.name().to_string();
        let (_, fast) = run(compiled, kernel.clone());
        let (_, slow) = run(reference, kernel);
        assert_eq!(
            fast.result.accesses, slow.result.accesses,
            "{name}: walks disagree on the access count"
        );
        assert_eq!(
            fast.levels, slow.levels,
            "{name}: walks disagree on per-level hit/miss counters"
        );
    }
    // Time the gate after the equivalence runs, so both sides are warm.
    let (fast_time, _) = run(compiled, streaming_kernel());
    let (slow_time, _) = run(reference, streaming_kernel());
    let speedup = slow_time.as_secs_f64() / fast_time.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 4.0,
        "streaming: compiled walk only {speedup:.1}x faster than reference \
         (reference {slow_time:?}, compiled {fast_time:?})"
    );
}

fn bench(c: &mut Criterion) {
    let compiled = Engine::new();
    let reference = Engine::new().with_walk(WalkMode::Reference);
    assert_contract(&compiled, &reference);
    let mut group = c.benchmark_group("compiled_walk");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(400));
    for (label, kernel) in [
        ("stream", streaming_kernel()),
        ("tiled_gemm", tiled_kernel()),
    ] {
        group.bench_with_input(BenchmarkId::new("compiled", label), &kernel, |b, k| {
            b.iter(|| run(&compiled, k.clone()).1.levels[0].misses)
        });
        group.bench_with_input(BenchmarkId::new("reference", label), &kernel, |b, k| {
            b.iter(|| run(&reference, k.clone()).1.levels[0].misses)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
