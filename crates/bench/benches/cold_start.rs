//! Cold-start cost vs. outer-level size.
//!
//! Before the sparse cache-state store, `CacheState::new` allocated every
//! (empty) set up front: constructing a simulator over a 64 MiB outer level
//! cost ~6 ms — once per `SimRequest`, multiplying under batch fan-out —
//! even when the kernel would touch a handful of sets.  With the sparse
//! store (touched sets only, plus one shared empty-set template),
//! construction is O(1) in the number of sets, so both series below must
//! stay flat across the 256 KiB → 64 MiB sweep:
//!
//! * `construct` — bare state construction plus a first access, for the
//!   warping simulator and the classic `MultiLevelSystem`;
//! * `engine_run` — `Engine::run` end-to-end on a tiny kernel, where the
//!   construction cost used to dominate.
//!
//! Run with `cargo bench --bench cold_start`; CI compiles it via
//! `cargo bench --no-run`.

use cache_model::{AccessKind, CacheConfig, MemBlock, MemoryConfig, ReplacementPolicy};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{Backend, Engine, KernelSpec, SimRequest};
use simulate::{MemorySystem, MultiLevelSystem};
use std::time::Duration;
use warping::WarpingSimulator;

/// A depth-3 hierarchy whose outer level is the sweep variable (the 16-way
/// L2 keeps its set count at 256, a divisor of every sweep point's).
fn memory(outer_kib: u64) -> MemoryConfig {
    MemoryConfig::three_level(
        CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Lru),
        CacheConfig::new(256 * 1024, 16, 64, ReplacementPolicy::Lru),
        CacheConfig::new(outer_kib * 1024, 16, 64, ReplacementPolicy::Lru),
    )
}

/// A kernel that touches O(1) cache sets: construction cost is the only
/// thing that could grow with the outer level.
fn tiny_kernel() -> KernelSpec {
    KernelSpec::source(
        "touch-64",
        "double A[64];\nfor (i = 0; i < 64; i++) A[i] = A[i];",
    )
}

const SWEEP_KIB: [u64; 4] = [256, 2048, 16 * 1024, 64 * 1024];

fn bench_cold_start(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("cold_start");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    // Bare construction + first access: warping simulator and classic
    // multi-level system.
    for outer_kib in SWEEP_KIB {
        let memory = memory(outer_kib);
        group.bench_with_input(
            BenchmarkId::new("construct/warping", format!("{outer_kib}K")),
            &memory,
            |b, memory| {
                b.iter(|| {
                    let mut simulator = WarpingSimulator::new(memory.clone());
                    black_box(&mut simulator);
                    simulator
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("construct/classic", format!("{outer_kib}K")),
            &memory,
            |b, memory| {
                b.iter(|| {
                    let mut system = MultiLevelSystem::new(memory.clone());
                    system.access(0, AccessKind::Read);
                    black_box(system.result())
                })
            },
        );
        // The depth-3 state alone (no simulator bookkeeping): construction
        // plus one access at every level.
        group.bench_with_input(
            BenchmarkId::new("construct/state", format!("{outer_kib}K")),
            &memory,
            |b, memory| {
                b.iter(|| {
                    let mut state = cache_model::MultiLevelState::new(memory);
                    black_box(state.access_block(memory, MemBlock(0)))
                })
            },
        );
    }

    // End-to-end: one engine request per iteration, so per-request
    // construction cost shows up exactly as it would in batch fan-out.
    let engine = Engine::new();
    let kernel = tiny_kernel();
    for outer_kib in SWEEP_KIB {
        let memory = memory(outer_kib);
        for backend in [Backend::Classic, Backend::warping()] {
            group.bench_with_input(
                BenchmarkId::new(format!("engine_run/{backend}"), format!("{outer_kib}K")),
                &memory,
                |b, memory| {
                    b.iter(|| {
                        let request = SimRequest::new(kernel.clone(), memory.clone(), backend);
                        black_box(engine.run(&request).expect("request served"))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(cold_start, bench_cold_start);
criterion_main!(cold_start);
