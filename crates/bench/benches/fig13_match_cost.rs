//! Fig. 13 (repo extension): warp-match cost vs. outer-level size.
//!
//! A kernel whose working set touches O(1) cache sets is simulated on
//! hierarchies whose outer level grows from 256 KiB to 64 MiB.  Before the
//! incremental warp-match pipeline, every match attempt encoded *every set
//! of every level* into the canonical key, so the simulation time of the
//! warping backend grew linearly with the L3 size even though the kernel
//! never touches most of it.  With per-set fingerprints, dirty-set tracking
//! and sparse keys, the match-attempt cost depends only on the occupied
//! sets: the warping series should stay flat across the size sweep (the
//! classic backend is the L3-size-independent reference).
//!
//! Run with `cargo bench --bench fig13_match_cost`; CI compiles it via
//! `cargo bench --no-run`.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{Backend, Engine, KernelSpec, SimRequest};
use std::time::Duration;
use warping::WarpingOptions;

/// A long-running kernel that re-scans a 4 KiB array: it overflows the
/// 1 KiB L1 (so the outer level keeps being touched and its symbolic labels
/// stay fresh) while occupying only 64 sets of any L3 — O(1) relative to
/// the size sweep — and warps at the outer loop.
fn o1_touch_kernel() -> KernelSpec {
    KernelSpec::source(
        "rescan-512",
        "double A[512];\n\
         for (t = 0; t < 10000; t++) for (i = 0; i < 512; i++) A[i] = A[i];",
    )
}

/// L1 (1 KiB) plus an outer level of `outer_kib` KiB — the sweep variable.
fn memory(outer_kib: u64) -> MemoryConfig {
    MemoryConfig::two_level(
        CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
        CacheConfig::new(outer_kib * 1024, 16, 64, ReplacementPolicy::Lru),
    )
}

/// Eager options so the match pipeline is exercised on every outer
/// iteration until the warp lands.
fn eager() -> WarpingOptions {
    WarpingOptions {
        eager_attempts: u64::MAX,
        backoff_interval: 1,
        min_trip_count: 0,
        ..WarpingOptions::default()
    }
}

fn bench_match_cost(criterion: &mut Criterion) {
    let engine = Engine::new();
    let kernel = o1_touch_kernel();
    let mut group = criterion.benchmark_group("fig13_match_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for outer_kib in [256u64, 2048, 16 * 1024, 64 * 1024] {
        let memory = memory(outer_kib);
        group.bench_with_input(
            BenchmarkId::new("warping", format!("{outer_kib}K")),
            &memory,
            |b, memory| {
                b.iter(|| {
                    let request =
                        SimRequest::new(kernel.clone(), memory.clone(), Backend::Warping(eager()));
                    black_box(engine.run(&request).expect("warping request"))
                })
            },
        );
    }
    // The classic per-access baseline only depends on the access count, so
    // one size suffices as the reference line.
    let reference = memory(256);
    group.bench_with_input(
        BenchmarkId::new("classic", "256K"),
        &reference,
        |b, memory| {
            b.iter(|| {
                let request = SimRequest::new(kernel.clone(), memory.clone(), Backend::Classic);
                black_box(engine.run(&request).expect("classic request"))
            })
        },
    );
    group.finish();
}

criterion_group!(fig13, bench_match_cost);
criterion_main!(fig13);
