//! Experiment harness reproducing the paper's evaluation.
//!
//! Each `figN` function computes the data series behind the corresponding
//! figure of the paper (§6 and Appendix B) and returns one row per kernel
//! (and, where applicable, per replacement policy or dataset size).  The
//! `harness` binary prints these rows as text tables or JSON; the Criterion
//! benches in `benches/` time representative subsets of the same
//! computations.
//!
//! Every experiment is phrased through the [`engine`] facade: a figure is a
//! (kernel × memory × backend) grid of [`SimRequest`]s whose [`SimReport`]s
//! are folded into rows.  The legacy `run_warping`/`run_nonwarping` helpers
//! remain as thin wrappers over the same engine.
//!
//! Absolute runtimes depend on the host; what is expected to reproduce is
//! the *shape* of each figure — which simulator wins, by roughly what
//! factor, and where the crossovers fall.  EXPERIMENTS.md records the
//! measured outcomes next to the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cache_model::{CacheConfig, HierarchyConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, EngineError, KernelSpec, SimReport, SimRequest};
use polybench::{Dataset, Kernel};
use scop::{ElaborateOptions, Scop};
use serde::Serialize;
use simulate::SimulationResult;
use std::time::Duration;
use trace_sim::{AccuracyError, HardwareReference};
use warping::WarpingOutcome;

/// The L1 cache of the paper's test system with a configurable policy
/// (32 KiB, 8-way, 64-byte lines).
pub fn test_system_l1(policy: ReplacementPolicy) -> CacheConfig {
    CacheConfig::new(32 * 1024, 8, 64, policy)
}

/// The fully-associative LRU cache of the same capacity that HayStack
/// models (512 lines of 64 bytes).
pub fn fully_associative_l1() -> CacheConfig {
    CacheConfig::fully_associative(512, 64, ReplacementPolicy::Lru)
}

/// Selection of kernels and dataset used by an experiment run.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The dataset size (the paper uses LARGE/EXTRALARGE; the harness
    /// defaults to SMALL so that the per-access baselines finish quickly).
    pub dataset: Dataset,
    /// The kernels to run.
    pub kernels: Vec<Kernel>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            dataset: Dataset::Small,
            kernels: Kernel::ALL.to_vec(),
        }
    }
}

impl ExperimentConfig {
    /// An experiment over all kernels at the given dataset size.
    pub fn at(dataset: Dataset) -> Self {
        ExperimentConfig {
            dataset,
            ..ExperimentConfig::default()
        }
    }

    /// Restricts the run to the given kernels.
    pub fn with_kernels(mut self, kernels: Vec<Kernel>) -> Self {
        self.kernels = kernels;
        self
    }
}

/// Runs one request on a process-wide engine, panicking on engine errors
/// (figure grids are built from combinations known to be supported).
fn run(request: &SimRequest) -> SimReport {
    static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
    ENGINE
        .get_or_init(Engine::new)
        .run(request)
        .unwrap_or_else(|e| panic!("figure request failed: {e}"))
}

fn sim_time(report: &SimReport) -> Duration {
    Duration::from_secs_f64(report.sim_ms / 1e3)
}

fn warping_outcome(report: &SimReport) -> WarpingOutcome {
    let stats = report
        .warping
        .expect("warping reports carry warping statistics");
    WarpingOutcome {
        result: report.result.clone(),
        non_warped_accesses: stats.non_warped_accesses,
        warped_accesses: stats.warped_accesses,
        warps: stats.warps,
        match_attempts: stats.match_attempts,
        fingerprint_hits: stats.fingerprint_hits,
        exact_key_builds: stats.exact_key_builds,
        stale_label_renorms: stats.stale_label_renorms,
        warp_apply_ns: stats.warp_apply_ns,
    }
}

/// Runs the warping simulator on a single cache level and returns the wall
/// time and the outcome.  Thin wrapper over [`Engine::run`] with
/// [`Backend::Warping`].
pub fn run_warping(scop: &Scop, config: &CacheConfig) -> (Duration, WarpingOutcome) {
    let report = run(&SimRequest::new(
        KernelSpec::prebuilt("kernel", scop.clone()),
        config.clone(),
        Backend::warping(),
    ));
    (sim_time(&report), warping_outcome(&report))
}

/// Runs the non-warping simulator (Algorithm 1) on a single cache level.
/// Thin wrapper over [`Engine::run`] with [`Backend::Classic`].
pub fn run_nonwarping(scop: &Scop, config: &CacheConfig) -> (Duration, SimulationResult) {
    let report = run(&SimRequest::new(
        KernelSpec::prebuilt("kernel", scop.clone()),
        config.clone(),
        Backend::Classic,
    ));
    (sim_time(&report), report.result)
}

/// One row of Fig. 6: warping vs non-warping per kernel and policy.
#[derive(Clone, Debug, Serialize)]
pub struct Fig6Row {
    /// Kernel name.
    pub kernel: String,
    /// Replacement policy label.
    pub policy: String,
    /// Non-warping simulation time in milliseconds.
    pub nonwarping_ms: f64,
    /// Warping simulation time in milliseconds.
    pub warping_ms: f64,
    /// Speedup of warping over non-warping.
    pub speedup: f64,
    /// Share of accesses that could not be warped (top plot of Fig. 6).
    pub non_warped_share: f64,
    /// Whether the warping and non-warping miss counts agree (they must).
    pub exact: bool,
}

/// Fig. 6: speedup of L1 warping simulation over non-warping simulation and
/// the share of non-warped accesses, for LRU, FIFO, Pseudo-LRU and Quad-age
/// LRU.
pub fn fig6(config: &ExperimentConfig) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &kernel in &config.kernels {
        let scop = kernel.build(config.dataset).expect("kernel builds");
        let spec = KernelSpec::prebuilt(kernel.name(), scop);
        for policy in ReplacementPolicy::ALL {
            let memory = MemoryConfig::from(test_system_l1(policy));
            let plain = run(&SimRequest::new(
                spec.clone(),
                memory.clone(),
                Backend::Classic,
            ));
            let warp = run(&SimRequest::new(spec.clone(), memory, Backend::warping()));
            rows.push(Fig6Row {
                kernel: kernel.name().to_owned(),
                policy: policy.label().to_owned(),
                nonwarping_ms: plain.sim_ms,
                warping_ms: warp.sim_ms,
                speedup: ratio_ms(plain.sim_ms, warp.sim_ms),
                non_warped_share: warp.warping.expect("warping stats").non_warped_share,
                exact: warp.result == plain.result,
            });
        }
    }
    rows
}

/// One row of Fig. 7: warping and non-warping times for one kernel and
/// dataset size.
#[derive(Clone, Debug, Serialize)]
pub struct Fig7Row {
    /// Kernel name.
    pub kernel: String,
    /// Dataset name.
    pub dataset: String,
    /// Non-warping simulation time in milliseconds.
    pub nonwarping_ms: f64,
    /// Warping simulation time in milliseconds.
    pub warping_ms: f64,
}

/// Fig. 7: impact of the problem size on warping and non-warping simulation
/// times (the paper uses L and XL; pass any two datasets).
pub fn fig7(kernels: &[Kernel], datasets: &[Dataset]) -> Vec<Fig7Row> {
    let memory = MemoryConfig::from(test_system_l1(ReplacementPolicy::Plru));
    let mut rows = Vec::new();
    for &kernel in kernels {
        for &dataset in datasets {
            let scop = kernel.build(dataset).expect("kernel builds");
            let spec = KernelSpec::prebuilt(kernel.name(), scop);
            let plain = run(&SimRequest::new(
                spec.clone(),
                memory.clone(),
                Backend::Classic,
            ));
            let warp = run(&SimRequest::new(spec, memory.clone(), Backend::warping()));
            rows.push(Fig7Row {
                kernel: kernel.name().to_owned(),
                dataset: dataset.name().to_owned(),
                nonwarping_ms: plain.sim_ms,
                warping_ms: warp.sim_ms,
            });
        }
    }
    rows
}

/// One row of Fig. 8: warping simulation vs the HayStack-style analytical
/// model on a fully-associative LRU cache.
#[derive(Clone, Debug, Serialize)]
pub struct Fig8Row {
    /// Kernel name.
    pub kernel: String,
    /// Dataset name.
    pub dataset: String,
    /// Warping time (including SCoP extraction) in milliseconds.
    pub warping_ms: f64,
    /// HayStack-style model time (including SCoP extraction) in
    /// milliseconds.
    pub haystack_ms: f64,
    /// Speedup of warping over the analytical model (values < 1 mean the
    /// analytical model is faster).
    pub speedup: f64,
    /// Whether the two approaches report the same number of misses.
    pub exact: bool,
}

/// Fig. 8: warping simulation vs the HayStack stand-in on the
/// fully-associative LRU version of the test system's L1.  Both sides
/// include the SCoP extraction overhead, as in the paper.
pub fn fig8(config: &ExperimentConfig) -> Vec<Fig8Row> {
    let memory = MemoryConfig::from(fully_associative_l1());
    let mut rows = Vec::new();
    for &kernel in &config.kernels {
        let spec = KernelSpec::polybench(kernel, config.dataset);
        let warp = run(&SimRequest::new(
            spec.clone(),
            memory.clone(),
            Backend::warping(),
        ));
        let hay = run(&SimRequest::new(spec, memory.clone(), Backend::Haystack));
        rows.push(Fig8Row {
            kernel: kernel.name().to_owned(),
            dataset: config.dataset.name().to_owned(),
            warping_ms: warp.total_ms(),
            haystack_ms: hay.total_ms(),
            speedup: ratio_ms(hay.total_ms(), warp.total_ms()),
            exact: warp.result.l1().misses == hay.result.l1().misses,
        });
    }
    rows
}

/// One row of Fig. 9: two-level warping simulation vs the PolyCache-style
/// model.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9Row {
    /// Kernel name.
    pub kernel: String,
    /// Warping time (including SCoP extraction) in milliseconds.
    pub warping_ms: f64,
    /// PolyCache-style model time (including SCoP extraction) in
    /// milliseconds.
    pub polycache_ms: f64,
    /// Speedup of warping over the analytical model.
    pub speedup: f64,
    /// Whether both report the same L1 and L2 miss counts.
    pub exact: bool,
}

/// Fig. 9: L1+L2 warping simulation vs the PolyCache stand-in on the
/// PolyCache comparison configuration (32 KiB 4-way L1, 256 KiB 4-way L2,
/// LRU, write-back write-allocate).
pub fn fig9(config: &ExperimentConfig) -> Vec<Fig9Row> {
    let memory = MemoryConfig::from(HierarchyConfig::polycache_comparison());
    let mut rows = Vec::new();
    for &kernel in &config.kernels {
        let spec = KernelSpec::polybench(kernel, config.dataset);
        let warp = run(&SimRequest::new(
            spec.clone(),
            memory.clone(),
            Backend::warping(),
        ));
        let poly = run(&SimRequest::new(spec, memory.clone(), Backend::PolyCache));
        rows.push(Fig9Row {
            kernel: kernel.name().to_owned(),
            warping_ms: warp.total_ms(),
            polycache_ms: poly.total_ms(),
            speedup: ratio_ms(poly.total_ms(), warp.total_ms()),
            exact: warp.result.l1().misses == poly.result.l1().misses
                && warp.result.l2().map(|l| l.misses) == poly.result.l2().map(|l| l.misses),
        });
    }
    rows
}

/// One row of Fig. 10: miss counts of the different replacement policies
/// relative to set-associative LRU.
#[derive(Clone, Debug, Serialize)]
pub struct Fig10Row {
    /// Kernel name.
    pub kernel: String,
    /// Misses of the 8-way set-associative LRU cache (the denominator).
    pub lru_misses: u64,
    /// Misses of a same-size fully-associative LRU cache, relative to LRU.
    pub fully_associative_lru: f64,
    /// Misses of Pseudo-LRU, relative to LRU.
    pub pseudo_lru: f64,
    /// Misses of Quad-age LRU, relative to LRU.
    pub quad_age_lru: f64,
    /// Misses of FIFO, relative to LRU.
    pub fifo: f64,
}

/// Fig. 10: influence of the replacement policy on the number of misses of
/// the 32 KiB 8-way L1.
pub fn fig10(config: &ExperimentConfig) -> Vec<Fig10Row> {
    let mut rows = Vec::new();
    for &kernel in &config.kernels {
        let scop = kernel.build(config.dataset).expect("kernel builds");
        let spec = KernelSpec::prebuilt(kernel.name(), scop);
        let misses = |memory: CacheConfig| {
            run(&SimRequest::new(spec.clone(), memory, Backend::warping()))
                .result
                .l1()
                .misses
        };
        let lru = misses(test_system_l1(ReplacementPolicy::Lru));
        let fa = misses(fully_associative_l1());
        let rel = |m: u64| if lru == 0 { 0.0 } else { m as f64 / lru as f64 };
        rows.push(Fig10Row {
            kernel: kernel.name().to_owned(),
            lru_misses: lru,
            fully_associative_lru: rel(fa),
            pseudo_lru: rel(misses(test_system_l1(ReplacementPolicy::Plru))),
            quad_age_lru: rel(misses(test_system_l1(ReplacementPolicy::Qlru))),
            fifo: rel(misses(test_system_l1(ReplacementPolicy::Fifo))),
        });
    }
    rows
}

/// One row of Fig. 11 (and Figs. 13/14 for other problem sizes): accuracy of
/// the simulators against the "measured" reference.
#[derive(Clone, Debug, Serialize)]
pub struct Fig11Row {
    /// Kernel name.
    pub kernel: String,
    /// Misses reported by the hardware-measurement stand-in.
    pub measured: u64,
    /// Absolute error of the Dinero-IV-style trace simulation (LRU,
    /// arrays + scalars).
    pub dinero_abs: u64,
    /// Relative error of the Dinero-IV-style trace simulation (percent).
    pub dinero_rel: f64,
    /// Absolute error of warping simulation (PLRU, arrays only).
    pub warping_abs: u64,
    /// Relative error of warping simulation (percent).
    pub warping_rel: f64,
    /// Absolute error of the HayStack-style model (fully-associative LRU).
    pub haystack_abs: u64,
    /// Relative error of the HayStack-style model (percent).
    pub haystack_rel: f64,
}

/// Fig. 11/13/14: accuracy of Dinero IV, warping simulation and HayStack
/// relative to the hardware-measurement stand-in.
pub fn fig11(config: &ExperimentConfig) -> Vec<Fig11Row> {
    let reference = HardwareReference::default();
    let mut rows = Vec::new();
    for &kernel in &config.kernels {
        let source = kernel.source(config.dataset);
        let measured = reference
            .measure_source(&source)
            .expect("kernel sources are measurable")
            .measured_misses;
        // Dinero IV: trace-driven, set-associative LRU, arrays and scalars.
        let with_scalars = kernel
            .build_with_options(config.dataset, &ElaborateOptions::with_scalars())
            .expect("kernel builds");
        let dinero_misses = run(&SimRequest::new(
            KernelSpec::prebuilt(kernel.name(), with_scalars),
            test_system_l1(ReplacementPolicy::Lru),
            Backend::Trace,
        ))
        .result
        .l1()
        .misses;
        // Warping: the test system's PLRU cache, arrays only.  Built once
        // and shared with the HayStack request below.
        let arrays_only = KernelSpec::prebuilt(
            kernel.name(),
            kernel.build(config.dataset).expect("kernel builds"),
        );
        let warping_misses = run(&SimRequest::new(
            arrays_only.clone(),
            test_system_l1(ReplacementPolicy::Plru),
            Backend::warping(),
        ))
        .result
        .l1()
        .misses;
        // HayStack: fully-associative LRU, arrays only.
        let haystack_misses = run(&SimRequest::new(
            arrays_only,
            fully_associative_l1(),
            Backend::Haystack,
        ))
        .result
        .l1()
        .misses;
        let dinero = AccuracyError::of(dinero_misses, measured);
        let warping = AccuracyError::of(warping_misses, measured);
        let haystack = AccuracyError::of(haystack_misses, measured);
        rows.push(Fig11Row {
            kernel: kernel.name().to_owned(),
            measured,
            dinero_abs: dinero.absolute,
            dinero_rel: dinero.relative * 100.0,
            warping_abs: warping.absolute,
            warping_rel: warping.relative * 100.0,
            haystack_abs: haystack.absolute,
            haystack_rel: haystack.relative * 100.0,
        });
    }
    rows
}

/// One row of Fig. 12: non-warping simulation vs Dinero-IV-style trace
/// simulation.
#[derive(Clone, Debug, Serialize)]
pub struct Fig12Row {
    /// Kernel name.
    pub kernel: String,
    /// Dinero-IV-style time (trace generation + trace simulation) in
    /// milliseconds.
    pub dinero_ms: f64,
    /// Non-warping simulation time in milliseconds.
    pub nonwarping_ms: f64,
    /// Speedup of non-warping simulation over Dinero IV.
    pub speedup: f64,
}

/// Fig. 12: the non-warping baseline vs the traditional trace-driven
/// simulator (both on the test system's L1 with LRU replacement, since
/// Dinero IV does not support Pseudo-LRU).
pub fn fig12(config: &ExperimentConfig) -> Vec<Fig12Row> {
    let memory = MemoryConfig::from(test_system_l1(ReplacementPolicy::Lru));
    let mut rows = Vec::new();
    for &kernel in &config.kernels {
        let scop = kernel.build(config.dataset).expect("kernel builds");
        let spec = KernelSpec::prebuilt(kernel.name(), scop);
        let dinero = run(&SimRequest::new(
            spec.clone(),
            memory.clone(),
            Backend::Trace,
        ));
        let plain = run(&SimRequest::new(spec, memory.clone(), Backend::Classic));
        rows.push(Fig12Row {
            kernel: kernel.name().to_owned(),
            dinero_ms: dinero.sim_ms,
            nonwarping_ms: plain.sim_ms,
            speedup: ratio_ms(dinero.sim_ms, plain.sim_ms),
        });
    }
    rows
}

/// Fig. 10 companion used by the paper's discussion of the running example:
/// miss counts of the stencil of Fig. 1 under every policy (used by tests
/// and the quickstart example).
pub fn running_example_misses() -> Vec<(ReplacementPolicy, u64)> {
    let spec = KernelSpec::source(
        "running-example",
        "double A[1000]; double B[1000];\n\
         for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
    );
    ReplacementPolicy::ALL
        .iter()
        .map(|&p| {
            let config = CacheConfig::fully_associative(2, 8, p);
            let report = run(&SimRequest::new(spec.clone(), config, Backend::Classic));
            (p, report.result.l1().misses)
        })
        .collect()
}

/// Validates that warping and non-warping agree on a kernel (used by the
/// harness's `verify` command and by integration tests).
pub fn verify_kernel(kernel: Kernel, dataset: Dataset, policy: ReplacementPolicy) -> bool {
    verify_memory(kernel, dataset, MemoryConfig::from(test_system_l1(policy)))
}

/// Validates warping against non-warping on the two-level hierarchy.
pub fn verify_kernel_hierarchy(kernel: Kernel, dataset: Dataset) -> bool {
    verify_memory(kernel, dataset, MemoryConfig::test_system())
}

fn verify_memory(kernel: Kernel, dataset: Dataset, memory: MemoryConfig) -> bool {
    let engine = Engine::new();
    let spec = KernelSpec::polybench(kernel, dataset);
    let reports: Vec<Result<SimReport, EngineError>> = engine.run_batch(&SimRequest::grid(
        &[spec],
        &[memory],
        &[Backend::Classic, Backend::warping()],
    ));
    match reports.as_slice() {
        [Ok(classic), Ok(warp)] => classic.result == warp.result,
        _ => false,
    }
}

fn ratio_ms(numerator_ms: f64, denominator_ms: f64) -> f64 {
    if denominator_ms == 0.0 {
        f64::INFINITY
    } else {
        numerator_ms / denominator_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_rows_are_exact_on_a_stencil() {
        let config = ExperimentConfig::at(Dataset::Mini).with_kernels(vec![Kernel::Jacobi1d]);
        let rows = fig6(&config);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.exact));
        assert!(rows
            .iter()
            .all(|r| (0.0..=1.0).contains(&r.non_warped_share)));
    }

    #[test]
    fn fig8_and_fig9_match_miss_counts() {
        let config =
            ExperimentConfig::at(Dataset::Mini).with_kernels(vec![Kernel::Jacobi1d, Kernel::Atax]);
        assert!(fig8(&config).iter().all(|r| r.exact));
        assert!(fig9(&config).iter().all(|r| r.exact));
    }

    #[test]
    fn fig10_ratios_are_positive() {
        let config = ExperimentConfig::at(Dataset::Mini).with_kernels(vec![Kernel::Trisolv]);
        let rows = fig10(&config);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.lru_misses > 0);
        assert!(r.fully_associative_lru > 0.0 && r.fully_associative_lru <= 1.5);
    }

    #[test]
    fn fig11_errors_are_finite() {
        let config = ExperimentConfig::at(Dataset::Mini).with_kernels(vec![Kernel::Bicg]);
        let rows = fig11(&config);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].measured > 0);
        assert!(rows[0].warping_rel.is_finite());
    }

    #[test]
    fn running_example_miss_counts_per_policy() {
        // With two lines, LRU, FIFO and Pseudo-LRU all produce the 1997
        // misses of Figure 1; Quad-age LRU keeps "old" blocks longer and
        // misses more often on this pattern (§6.2 of the paper notes its
        // scan resistance changes behaviour).
        for (policy, misses) in running_example_misses() {
            match policy {
                ReplacementPolicy::Qlru => assert!(misses >= 3 + 2 * 997, "{policy}"),
                _ => assert_eq!(misses, 3 + 2 * 997, "{policy}"),
            }
        }
    }

    #[test]
    fn verify_helpers_accept_mini_kernels() {
        assert!(verify_kernel(
            Kernel::Jacobi2d,
            Dataset::Mini,
            ReplacementPolicy::Plru
        ));
        assert!(verify_kernel_hierarchy(Kernel::Trisolv, Dataset::Mini));
    }
}
