//! Experiment harness: regenerates the data behind every figure of the
//! paper's evaluation, and serves ad-hoc simulation grids through the
//! unified engine.
//!
//! ```text
//! harness <experiment> [--size mini|small|medium|large|extralarge]
//!                      [--kernels k1,k2,...] [--json]
//!
//! experiments:
//!   fig6    warping vs non-warping speedup + non-warped share (4 policies)
//!   fig7    problem-size scaling of warping vs non-warping times
//!   fig8    warping vs the HayStack-style analytical model
//!   fig9    two-level warping vs the PolyCache-style model
//!   fig10   miss counts per replacement policy relative to LRU
//!   fig11   accuracy vs the hardware-measurement stand-in (also fig13/14)
//!   fig12   non-warping simulation vs the Dinero-IV-style trace simulator
//!   verify  check that warping and non-warping agree on every kernel
//!   all     run every figure
//!
//!   grid    fan a kernel × policy × backend grid out through the engine:
//!           harness grid [--size S] [--kernels k1,k2,...]
//!                        [--policies lru,fifo,plru,qlru]
//!                        [--backends classic,warping,haystack,polycache,
//!                                    trace,sampled]
//!                        [--levels SPEC] [--threads N]
//!                        [--fingerprint-filter on|off]
//!                        [--label-renorm on|off]
//!                        [--sample-rate F] [--warmup N]
//!                        [--walk compiled|reference] [--json]
//!
//!           --levels describes the memory system as a comma-separated list
//!           of cache levels, innermost first.  Each level is
//!           `[name:]size:assoc:line_size` with `K`/`M` size suffixes, e.g.
//!
//!               --levels l1:32K:8:64,l2:256K:8:64,l3:2M:16:64
//!
//!           for an L1/L2/L3 hierarchy (the optional `l1:`-style name is
//!           documentation only).  The named presets `l1` (default,
//!           single-level 32K:8:64), `l1l2` (adds a 1M 16-way L2) and
//!           `l1l2l3` (adds an 8M 16-way L3) cover the common scenarios.
//!           Every level uses the replacement policy of the grid row.
//!
//!           --threads N sets the engine's thread budget
//!           (`Engine::with_threads`).  It is shared between the two
//!           parallelism layers: grids with several requests fan out
//!           across the batch (each request then applies warps
//!           sequentially), while a single-request grid grants the whole
//!           budget to the warping backend's parallel warp application.
//!           Counts are bit-identical for every N.  Warping rows report
//!           the two-phase match telemetry (warps, fingerprint hits,
//!           exact-key builds, warp-apply time).
//!
//!           --fingerprint-filter on|off toggles the warping backend's
//!           cheap fingerprint phase (`WarpingOptions::fingerprint_filter`).
//!           `off` restores the exhaustive key-per-attempt pipeline; miss
//!           counts are bit-identical either way (CI asserts exactly that
//!           on a 64 MiB L3, guarding the sparse store's occupancy
//!           tracking).
//!
//!           --label-renorm on|off toggles epoch-relative label
//!           renormalisation (`WarpingOptions::label_renorm`).  `off`
//!           restores current-iterator normalisation, under which frozen
//!           outer-level labels block matching on L1-resident kernels.
//!           Miss counts are bit-identical either way; the `renorms`
//!           column (frozen levels matched per applied warp) shows what
//!           `on` finds that `off` cannot (CI asserts both facts on an
//!           L1-resident grid over a 64 MiB L3).
//!
//!           --sample-rate F and --warmup N tune the `sampled` backend
//!           (`SamplingOptions`): F is the target fraction of outer-loop
//!           intervals to simulate, in (0, 1] (default 0.1; 1.0 is
//!           bit-identical to `classic`), and N is the number of warm-up
//!           intervals simulated-but-discarded per live cache level before
//!           each measured interval (default 1).  Both are validated up
//!           front: a rate outside (0, 1] or a negative warm-up dies with
//!           an explanation before anything simulates.  Sampled rows
//!           report approximation stats in `--json` output (`approx`:
//!           sampled fraction, per-level error bounds, interval counts).
//!
//!           --walk compiled|reference selects the access-stream walker
//!           for every backend (`Engine::with_walk`).  `compiled` (the
//!           default) lowers each kernel once into strength-reduced
//!           per-loop address deltas and run-batched cache updates;
//!           `reference` keeps the original per-iteration affine
//!           evaluation.  Counts are bit-identical either way — CI
//!           asserts exactly that on a depth-3 grid — so `reference`
//!           exists as the differential oracle and for bisecting
//!           compiled-walk regressions, not as a tuning knob.
//!
//!   explore sweep a parametric kernel family across tile-size bindings ×
//!           memory hierarchies × replacement policies:
//!           harness explore [--sweep TI=4,8,16,32;TJ=4,8,16,32]
//!                           [--bind NI=32,NJ=32,NK=32]
//!                           [--hierarchies l1;l1l2] [--policies lru,plru]
//!                           [--backend warping] [--workers N]
//!                           [--template FILE] [--name NAME] [--json]
//!
//!           The template (default: the tiled `gemm` of
//!           `polybench::parametric`) is parsed ONCE and registered as a
//!           kernel family with the serving layer; every grid point is a
//!           binding of its `param`s stamped out by substitution, so the
//!           sweep never re-parses source.  Points fan out through the
//!           service's work-stealing pool and stream back as they finish
//!           (rows arrive out of grid order).  After the grid drains, the
//!           harness prints, per hierarchy × policy, the Pareto front of
//!           (tile configuration, per-level miss counts): the configs no
//!           other config beats on every cache level at once.
//!           `--hierarchies` takes `;`-separated `--levels` specs (the
//!           presets or explicit `size:assoc:line` lists); `--sweep` takes
//!           `;`-separated `NAME=v1,v2,...` axes; `--bind` fixes the
//!           remaining parameters.  The trailer reports the family-tier
//!           counters (requests, report-cache hits, simulations).
//!
//!   serve   run the JSON-lines simulation service:
//!           harness serve [--addr HOST:PORT] [--cache-cap N] [--workers N]
//!                         [--exact-budget N] [--debug-hash]
//!
//!           `--debug-hash` adds the 128-bit canonical address of every
//!           request (`"canonical_hash"`, hex) to its reply envelope, so
//!           clients can verify that two spellings of a kernel really
//!           collide.  `--workers 0` and `--cache-cap 0` are rejected up
//!           front with an explanation (a zero-worker pool would never run
//!           anything; a zero-entry cache would re-simulate every request).
//!
//!           `--exact-budget N` puts the service in degraded-capable mode:
//!           an exact request (classic/warping/trace) whose kernel exceeds
//!           N dynamic accesses is rewritten onto the `sampled` backend
//!           and its envelope is marked `"approx": true` (the report's
//!           `approx` object carries the sampled fraction and per-level
//!           error bounds).  Degraded reports are cached under the sampled
//!           request's own canonical address, so they never displace a
//!           cached exact report.  `--exact-budget 0` is rejected up front
//!           (env default: WARPSIM_SERVE_EXACT_BUDGET).
//!
//!           Without `--addr` the service reads requests from stdin and
//!           writes envelopes to stdout.  With `--addr` it listens on TCP
//!           (port 0 picks a free port; the bound address is printed as
//!           `serving on HOST:PORT` before the first accept), serves any
//!           number of sequential or concurrent connections, and stops
//!           when a client sends `{"cmd":"shutdown"}`.  One request per
//!           line — a `SimRequest` JSON object or an `{"id":…,
//!           "request":…}` wrapper — answered out-of-order by
//!           `{"id","served","cached","serve_ns","report"}` envelopes;
//!           identical requests (under variable renaming) are answered
//!           from a content-addressed report cache or coalesced onto an
//!           in-flight simulation.  `{"cmd":"stats"}` and end of input
//!           report a `{"serve_stats":{…}}` summary.  `--cache-cap` bounds
//!           the report cache in entries and `--workers` sizes the
//!           work-stealing pool (env defaults: WARPSIM_SERVE_CACHE_CAP,
//!           WARPSIM_SERVE_WORKERS).
//! ```

use bench_suite::*;
use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, KernelSpec, SimRequest, WalkMode};
use polybench::{Dataset, Kernel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let experiment = args[0].clone();
    if experiment == "serve" {
        // `serve` has its own flags; bypass the experiment option parser.
        serve_command(&args[1..]);
        return;
    }
    if experiment == "explore" {
        // `explore` too: its grid axes are parameter bindings, not kernels.
        explore_command(&args[1..]);
        return;
    }
    let mut dataset = Dataset::Small;
    let mut kernels: Vec<Kernel> = Kernel::ALL.to_vec();
    let mut policies: Vec<ReplacementPolicy> = vec![ReplacementPolicy::Plru];
    let mut backends: Vec<Backend> = vec![Backend::Classic, Backend::warping()];
    let mut levels = LevelsSpec::default();
    let mut threads: Option<usize> = None;
    let mut fingerprint_filter: Option<bool> = None;
    let mut label_renorm: Option<bool> = None;
    let mut sample_rate: Option<f64> = None;
    let mut warmup: Option<u32> = None;
    let mut walk = WalkMode::default();
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                i += 1;
                dataset = parse_dataset(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|| die("unknown dataset size"));
            }
            "--kernels" => {
                i += 1;
                kernels = args
                    .get(i)
                    .map(String::as_str)
                    .unwrap_or("")
                    .split(',')
                    .map(|name| {
                        Kernel::by_name(name.trim())
                            .unwrap_or_else(|| die(&format!("unknown kernel `{name}`")))
                    })
                    .collect();
            }
            "--policies" => {
                i += 1;
                policies = args
                    .get(i)
                    .map(String::as_str)
                    .unwrap_or("")
                    .split(',')
                    .map(|name| {
                        parse_policy(name.trim())
                            .unwrap_or_else(|| die(&format!("unknown policy `{name}`")))
                    })
                    .collect();
            }
            "--backends" => {
                i += 1;
                backends = args
                    .get(i)
                    .map(String::as_str)
                    .unwrap_or("")
                    .split(',')
                    .map(|name| {
                        Backend::by_name(name.trim())
                            .unwrap_or_else(|| die(&format!("unknown backend `{name}`")))
                    })
                    .collect();
            }
            "--threads" => {
                i += 1;
                threads = Some(
                    args.get(i)
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| die("--threads expects a number")),
                );
            }
            "--fingerprint-filter" => {
                i += 1;
                fingerprint_filter = Some(match args.get(i).map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => die("--fingerprint-filter expects `on` or `off`"),
                });
            }
            "--label-renorm" => {
                i += 1;
                label_renorm = Some(match args.get(i).map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => die("--label-renorm expects `on` or `off`"),
                });
            }
            "--sample-rate" => {
                i += 1;
                let rate: f64 = args
                    .get(i)
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| die("--sample-rate expects a number in (0, 1]"));
                // Validated up front (not when the first sampled request
                // runs), so a bad rate fails before any simulation starts.
                if let Err(e) = engine::SamplingOptions::from_rate(rate) {
                    die(&format!("--sample-rate: {e}"));
                }
                sample_rate = Some(rate);
            }
            "--warmup" => {
                i += 1;
                warmup =
                    Some(args.get(i).and_then(|n| n.parse().ok()).unwrap_or_else(|| {
                        die("--warmup expects a non-negative number of intervals")
                    }));
            }
            "--levels" => {
                i += 1;
                levels = parse_levels(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|e| die(&e));
            }
            "--walk" => {
                i += 1;
                walk = match args.get(i).map(String::as_str) {
                    Some("compiled") => WalkMode::Compiled,
                    Some("reference") => WalkMode::Reference,
                    _ => die("--walk expects `compiled` or `reference`"),
                };
            }
            "--hierarchy" => die(
                "--hierarchy was replaced by the depth-N `--levels` spec; use \
                 `--levels l1l2` for the old two-level configuration",
            ),
            "--json" => json = true,
            other => die(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if fingerprint_filter.is_some() || label_renorm.is_some() {
        // Applies to the warping backend only; the other backends have no
        // match pipeline to toggle.
        backends = backends
            .into_iter()
            .map(|backend| match backend {
                Backend::Warping(mut options) => {
                    if let Some(filter) = fingerprint_filter {
                        options.fingerprint_filter = filter;
                    }
                    if let Some(renorm) = label_renorm {
                        options.label_renorm = renorm;
                    }
                    Backend::Warping(options)
                }
                other => other,
            })
            .collect();
    }
    if sample_rate.is_some() || warmup.is_some() {
        // Applies to the sampled backend only, like the warping knobs
        // above.
        let mut options = sample_rate.map_or(engine::SamplingOptions::DEFAULT, |rate| {
            engine::SamplingOptions::from_rate(rate).unwrap_or_else(|e| die(&e))
        });
        if let Some(warmup) = warmup {
            options = options.with_warmup(warmup);
        }
        backends = backends
            .into_iter()
            .map(|backend| match backend {
                Backend::Sampled(_) => Backend::Sampled(options),
                other => other,
            })
            .collect();
    }
    let config = ExperimentConfig::at(dataset).with_kernels(kernels.clone());

    match experiment.as_str() {
        "fig6" => emit(
            json,
            "Fig. 6: warping vs non-warping",
            &fig6(&config),
            fig6_text,
        ),
        "fig7" => {
            let rows = fig7(&kernels, &[dataset, next_size(dataset)]);
            emit(json, "Fig. 7: problem-size scaling", &rows, fig7_text)
        }
        "fig8" => emit(
            json,
            "Fig. 8: warping vs HayStack",
            &fig8(&config),
            fig8_text,
        ),
        "fig9" => emit(
            json,
            "Fig. 9: warping vs PolyCache",
            &fig9(&config),
            fig9_text,
        ),
        "fig10" => emit(
            json,
            "Fig. 10: policy influence",
            &fig10(&config),
            fig10_text,
        ),
        "fig11" => emit(
            json,
            "Fig. 11: accuracy vs measurements",
            &fig11(&config),
            fig11_text,
        ),
        "fig12" => emit(
            json,
            "Fig. 12: non-warping vs Dinero IV",
            &fig12(&config),
            fig12_text,
        ),
        "verify" => verify(&config),
        "grid" => grid(&config, &policies, &backends, &levels, threads, walk, json),
        "all" => {
            emit(
                json,
                "Fig. 6: warping vs non-warping",
                &fig6(&config),
                fig6_text,
            );
            emit(
                json,
                "Fig. 7: problem-size scaling",
                &fig7(&kernels, &[dataset, next_size(dataset)]),
                fig7_text,
            );
            emit(
                json,
                "Fig. 8: warping vs HayStack",
                &fig8(&config),
                fig8_text,
            );
            emit(
                json,
                "Fig. 9: warping vs PolyCache",
                &fig9(&config),
                fig9_text,
            );
            emit(
                json,
                "Fig. 10: policy influence",
                &fig10(&config),
                fig10_text,
            );
            emit(
                json,
                "Fig. 11: accuracy vs measurements",
                &fig11(&config),
                fig11_text,
            );
            emit(
                json,
                "Fig. 12: non-warping vs Dinero IV",
                &fig12(&config),
                fig12_text,
            );
        }
        _ => {
            print_usage();
            std::process::exit(2);
        }
    }
}

/// The memory-system geometry of a grid run: one `(size, assoc, line)`
/// triple per cache level, innermost first.  The replacement policy is
/// filled in per grid row.
struct LevelsSpec {
    geometries: Vec<(u64, usize, u64)>,
}

impl Default for LevelsSpec {
    fn default() -> Self {
        // The test system's L1 alone, as before the `--levels` flag.
        LevelsSpec {
            geometries: vec![(32 * 1024, 8, 64)],
        }
    }
}

impl LevelsSpec {
    /// Instantiates the geometry with one replacement policy at all levels.
    fn memory(&self, policy: ReplacementPolicy) -> MemoryConfig {
        let levels: Vec<CacheConfig> = self
            .geometries
            .iter()
            .map(|&(size, assoc, line)| CacheConfig::new(size, assoc, line, policy))
            .collect();
        MemoryConfig::new(levels).unwrap_or_else(|e| die(&format!("invalid --levels spec: {e}")))
    }
}

/// Parses a `--levels` value: either a preset name (`l1`, `l1l2`, `l1l2l3`)
/// or a comma-separated list of `[name:]size:assoc:line_size` levels.
fn parse_levels(spec: &str) -> Result<LevelsSpec, String> {
    match spec {
        "" => return Err("--levels expects a spec, e.g. l1:32K:8:64,l2:256K:8:64".to_string()),
        "l1" => return Ok(LevelsSpec::default()),
        "l1l2" => {
            return Ok(LevelsSpec {
                geometries: vec![(32 * 1024, 8, 64), (1024 * 1024, 16, 64)],
            })
        }
        "l1l2l3" => {
            return Ok(LevelsSpec {
                geometries: vec![
                    (32 * 1024, 8, 64),
                    (1024 * 1024, 16, 64),
                    (8 * 1024 * 1024, 16, 64),
                ],
            })
        }
        _ => {}
    }
    let mut geometries = Vec::new();
    for level in spec.split(',') {
        let fields: Vec<&str> = level.split(':').collect();
        // An optional leading `l1`-style name is documentation only.
        let fields = match fields.as_slice() {
            [name, rest @ ..] if rest.len() == 3 && name.parse::<u64>().is_err() => rest,
            rest => rest,
        };
        let [size, assoc, line] = fields else {
            return Err(format!(
                "level `{level}` must be [name:]size:assoc:line_size (e.g. l1:32K:8:64)"
            ));
        };
        let size = parse_size(size)
            .ok_or_else(|| format!("invalid cache size `{size}` in level `{level}`"))?;
        let assoc: usize = assoc
            .parse()
            .map_err(|_| format!("invalid associativity `{assoc}` in level `{level}`"))?;
        let line = parse_size(line)
            .ok_or_else(|| format!("invalid line size `{line}` in level `{level}`"))?;
        if size == 0 || assoc == 0 || line == 0 {
            return Err(format!("level `{level}` has a zero parameter"));
        }
        geometries.push((size, assoc, line));
    }
    Ok(LevelsSpec { geometries })
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix.
fn parse_size(text: &str) -> Option<u64> {
    let text = text.trim();
    let (digits, multiplier) = match text.as_bytes().last()? {
        b'k' | b'K' => (&text[..text.len() - 1], 1024),
        b'm' | b'M' => (&text[..text.len() - 1], 1024 * 1024),
        b'g' | b'G' => (&text[..text.len() - 1], 1024 * 1024 * 1024),
        _ => (text, 1),
    };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
}

/// Fans a kernel × policy × backend grid out through [`Engine::run_batch`]
/// and prints one row (or JSON report) per request.  Backends that cannot
/// serve a combination — e.g. `polycache` on a single-level memory — show
/// up as error rows rather than aborting the batch.
fn grid(
    config: &ExperimentConfig,
    policies: &[ReplacementPolicy],
    backends: &[Backend],
    levels: &LevelsSpec,
    threads: Option<usize>,
    walk: WalkMode,
    json: bool,
) {
    let kernels: Vec<KernelSpec> = config
        .kernels
        .iter()
        .map(|&kernel| KernelSpec::polybench(kernel, config.dataset))
        .collect();
    let memories: Vec<MemoryConfig> = policies
        .iter()
        .map(|&policy| levels.memory(policy))
        .collect();
    let requests = SimRequest::grid(&kernels, &memories, backends);
    let mut engine = Engine::new().with_walk(walk);
    if let Some(threads) = threads {
        engine = engine.with_threads(threads);
    }
    let reports = engine.run_batch(&requests);

    if json {
        let ok: Vec<_> = reports.iter().filter_map(|r| r.as_ref().ok()).collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&ok).expect("reports serialise")
        );
        for (request, report) in requests.iter().zip(&reports) {
            if let Err(e) = report {
                eprintln!("{}/{}: {e}", request.kernel.name(), request.backend);
            }
        }
        return;
    }
    println!(
        "{:<22} {:<10} {:<14} {:>14} {:>12} {:>10} {:>7} {:>7} {:>8} {:>7} {:>8} {:>9}",
        "kernel",
        "backend",
        "policy",
        "LL misses",
        "accesses",
        "sim[ms]",
        "exact",
        "warps",
        "fp hits",
        "keys",
        "renorms",
        "warp[µs]"
    );
    for (request, report) in requests.iter().zip(&reports) {
        match report {
            Ok(report) => {
                // Warping telemetry of the two-phase match pipeline; `-`
                // for the other backends, so every row has the same field
                // count regardless of which telemetry knobs are on and
                // column-oriented consumers (awk, cut) stay aligned.
                let (warps, fp_hits, keys, renorms, warp_us) = report.warping.map_or_else(
                    || {
                        (
                            "-".to_string(),
                            "-".to_string(),
                            "-".to_string(),
                            "-".to_string(),
                            "-".to_string(),
                        )
                    },
                    |w| {
                        (
                            w.warps.to_string(),
                            w.fingerprint_hits.to_string(),
                            w.exact_key_builds.to_string(),
                            w.stale_label_renorms.to_string(),
                            format!("{:.1}", w.warp_apply_ns as f64 / 1e3),
                        )
                    },
                );
                println!(
                    "{:<22} {:<10} {:<14} {:>14} {:>12} {:>10.2} {:>7} {:>7} {:>8} {:>7} {:>8} {:>9}",
                    report.kernel,
                    report.backend,
                    request.memory.l1().policy().label(),
                    report.last_level_misses(),
                    report.result.accesses,
                    report.sim_ms,
                    report.exact,
                    warps,
                    fp_hits,
                    keys,
                    renorms,
                    warp_us
                )
            }
            Err(e) => println!(
                "{:<22} {:<10} {:<14} error: {e}",
                request.kernel.name(),
                request.backend,
                request.memory.l1().policy().label(),
            ),
        }
    }
}

/// The `explore` subcommand: sweep a parametric kernel family's bindings ×
/// memory hierarchies × replacement policies through the serving layer's
/// worker pool, stream per-point results as they finish, and print the
/// Pareto front of (tile configuration, per-level miss counts) for every
/// hierarchy × policy combination.
fn explore_command(args: &[String]) {
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::time::Instant;

    let mut sweep_spec = "TI=4,8,16,32;TJ=4,8,16,32".to_string();
    let mut bind_spec = "NI=32,NJ=32,NK=32".to_string();
    let mut hierarchies_spec = "l1;l1l2".to_string();
    let mut policies = vec![ReplacementPolicy::Lru, ReplacementPolicy::Plru];
    let mut backend = Backend::warping();
    let mut workers: Option<usize> = None;
    let mut template_path: Option<String> = None;
    let mut family_name = "tiled-gemm".to_string();
    let mut json = false;
    let mut plan = true;
    let mut max_error: Option<u64> = None;
    let mut latencies_spec: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--plan" => {
                i += 1;
                plan = match args.get(i).map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => die("--plan expects `on` or `off`"),
                };
            }
            "--max-error" => {
                i += 1;
                max_error = Some(
                    args.get(i)
                        .and_then(|n| n.parse::<u64>().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| die("--max-error expects a positive miss count")),
                );
            }
            "--latencies" => {
                i += 1;
                latencies_spec = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--latencies expects L1:4,L2:14,MEM:100")),
                );
            }
            "--sweep" => {
                i += 1;
                sweep_spec = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--sweep expects NAME=v1,v2;NAME=v1,v2"));
            }
            "--bind" => {
                i += 1;
                bind_spec = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--bind expects NAME=value,NAME=value"));
            }
            "--hierarchies" => {
                i += 1;
                hierarchies_spec = args.get(i).cloned().unwrap_or_else(|| {
                    die("--hierarchies expects `;`-separated --levels specs, e.g. l1;l1l2")
                });
            }
            "--policies" => {
                i += 1;
                policies = args
                    .get(i)
                    .map(String::as_str)
                    .unwrap_or("")
                    .split(',')
                    .map(|name| {
                        parse_policy(name.trim())
                            .unwrap_or_else(|| die(&format!("unknown policy `{name}`")))
                    })
                    .collect();
            }
            "--backend" => {
                i += 1;
                backend = args
                    .get(i)
                    .and_then(|name| Backend::by_name(name))
                    .unwrap_or_else(|| die("--backend expects a backend name"));
            }
            "--workers" => {
                i += 1;
                workers = Some(
                    args.get(i)
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| die("--workers expects a number")),
                );
            }
            "--template" => {
                i += 1;
                template_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--template expects a file path")),
                );
            }
            "--name" => {
                i += 1;
                family_name = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--name expects a family name"));
            }
            "--json" => json = true,
            other => die(&format!("unknown explore argument `{other}`")),
        }
        i += 1;
    }

    let code = match &template_path {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read template `{path}`: {e}"))),
        None => polybench::parametric::TILED_GEMM.to_string(),
    };
    let sweep = parse_sweep(&sweep_spec).unwrap_or_else(|e| die(&e));
    let fixed = scop::ParamBindings::parse(&bind_spec)
        .unwrap_or_else(|e| die(&format!("invalid --bind spec: {e}")));
    let hierarchies: Vec<(String, LevelsSpec)> = hierarchies_spec
        .split(';')
        .map(|spec| {
            let spec = spec.trim();
            (
                spec.to_string(),
                parse_levels(spec).unwrap_or_else(|e| die(&e)),
            )
        })
        .collect();
    if hierarchies.is_empty() || policies.is_empty() {
        die("explore needs at least one hierarchy and one policy");
    }
    if let Some(target) = max_error {
        backend = match backend {
            Backend::Sampled(options) => Backend::Sampled(options.with_max_error(target)),
            _ => die("--max-error only applies to `--backend sampled`"),
        };
    }
    let latencies = latencies_spec
        .as_deref()
        .map(|spec| parse_latencies(spec).unwrap_or_else(|e| die(&e)));
    if let Some(model) = &latencies {
        let deepest = hierarchies
            .iter()
            .map(|(_, spec)| spec.memory(policies[0]).depth())
            .max()
            .unwrap_or(0);
        if model.levels.len() < deepest {
            die(&format!(
                "--latencies names {} cache levels but the deepest hierarchy has {}",
                model.levels.len(),
                deepest
            ));
        }
    }

    let mut config = serve::ServeConfig::from_env();
    if let Some(workers) = workers {
        config.workers = workers;
    }
    config
        .validate()
        .unwrap_or_else(|e| die(&format!("invalid serve config: {e}")));
    let service = Arc::new(serve::SimService::new(config));
    let registered = service
        .register_family(&family_name, &code)
        .unwrap_or_else(|e| die(&e));
    if !json {
        println!(
            "family {} ({}) over params [{}]",
            registered.family,
            family_name,
            registered.params.join(", ")
        );
    }

    // One point per swept-binding combination × hierarchy × policy.
    struct Point {
        sweep_key: String,
        hierarchy: String,
        policy: ReplacementPolicy,
        request: SimRequest,
    }
    let combos = cartesian(&sweep);
    let mut points = Vec::new();
    for (hierarchy, spec) in &hierarchies {
        for &policy in &policies {
            let memory = spec.memory(policy);
            for combo in &combos {
                let mut bindings: Vec<(String, i64)> = fixed
                    .iter()
                    .map(|(name, value)| (name.to_string(), value))
                    .collect();
                bindings.extend(combo.iter().cloned());
                let sweep_key = combo
                    .iter()
                    .map(|(name, value)| format!("{name}={value}"))
                    .collect::<Vec<_>>()
                    .join(",");
                points.push(Point {
                    sweep_key,
                    hierarchy: hierarchy.clone(),
                    policy,
                    request: SimRequest::new(
                        KernelSpec::parametric(&family_name, &code, bindings),
                        memory.clone(),
                        backend,
                    ),
                });
            }
        }
    }

    // Visit order: the sweep planner arranges the grid so consecutive
    // submissions share a warm-state coordinate and differ by one tile
    // step, maximising cross-instance calibration/warp-hint reuse
    // (`--plan off` keeps naive grid order for A/B comparison).
    let order: Vec<usize> = if plan {
        let plan_points: Vec<serve::PlanPoint> = points
            .iter()
            .map(|point| {
                serve::PlanPoint::new(
                    format!("{}|{}", point.hierarchy, point.policy.label()),
                    point
                        .request
                        .kernel
                        .param_bindings()
                        .iter()
                        .map(|(_, value)| value)
                        .collect(),
                )
            })
            .collect();
        serve::plan_order(&plan_points)
    } else {
        (0..points.len()).collect()
    };

    if !json {
        println!(
            "{:<20} {:<24} {:<14} {:>10} {:<20} {:>12} {:>10}",
            "tiles", "hierarchy", "policy", "sim[ms]", "misses/level", "est[cyc]", "served"
        );
    }

    // Per-point validation: an unsatisfiable binding (zero/negative value,
    // a template that fails to instantiate, an empty iteration domain)
    // becomes a streamed error row for that grid point; the rest of the
    // sweep proceeds.
    let mut point_errors: Vec<Option<String>> = points.iter().map(|_| None).collect();
    let mut submitted = Vec::with_capacity(order.len());
    for &index in &order {
        match validate_point(&points[index].request) {
            Ok(()) => submitted.push(index),
            Err(reason) => point_errors[index] = Some(reason),
        }
    }
    for (index, reason) in point_errors.iter().enumerate() {
        let Some(reason) = reason else { continue };
        let point = &points[index];
        if json {
            eprintln!(
                "{} on {}/{}: {reason}",
                point.sweep_key,
                point.hierarchy,
                point.policy.label()
            );
        } else {
            println!(
                "{:<20} {:<24} {:<14} error: {reason}",
                point.sweep_key,
                point.hierarchy,
                point.policy.label()
            );
        }
    }

    // Stream the valid points through the service's work-stealing pool in
    // planned order; rows print as points finish, not in grid order.
    let (tx, rx) = mpsc::channel();
    for &index in &submitted {
        let service = service.clone();
        let request = points[index].request.clone();
        let tx = tx.clone();
        let enqueued = Instant::now();
        service.clone().pool().spawn(move || {
            let queue_ns = enqueued.elapsed().as_nanos() as u64;
            let outcome = service.submit_queued(&request, Some(queue_ns));
            let _ = tx.send((index, outcome));
        });
    }
    drop(tx);
    let mut results: Vec<Option<engine::SimReport>> = points.iter().map(|_| None).collect();
    for (index, outcome) in rx {
        let point = &points[index];
        match outcome {
            Ok((report, served)) => {
                if !json {
                    let misses = report
                        .levels
                        .iter()
                        .map(|level| level.misses.to_string())
                        .collect::<Vec<_>>()
                        .join("/");
                    let cycles = latencies.as_ref().map_or(String::from("-"), |model| {
                        estimated_cycles(&report, model).to_string()
                    });
                    println!(
                        "{:<20} {:<24} {:<14} {:>10.2} {:<20} {:>12} {:>10}",
                        point.sweep_key,
                        point.hierarchy,
                        point.policy.label(),
                        report.sim_ms,
                        misses,
                        cycles,
                        served.label()
                    );
                }
                results[index] = Some(report);
            }
            Err(e) => {
                if json {
                    eprintln!(
                        "{} on {}/{}: {e}",
                        point.sweep_key,
                        point.hierarchy,
                        point.policy.label()
                    );
                } else {
                    println!(
                        "{:<20} {:<24} {:<14} error: {e}",
                        point.sweep_key,
                        point.hierarchy,
                        point.policy.label()
                    );
                }
            }
        }
    }

    // Pareto fronts: per hierarchy × policy, the tile configurations whose
    // per-level miss-count vectors are not dominated (another config at
    // most equal on every level and strictly better on one).
    let mut json_points = Vec::new();
    let mut json_fronts = Vec::new();
    let mut json_time_fronts = Vec::new();
    for (hierarchy, _) in &hierarchies {
        for &policy in &policies {
            let group: Vec<(usize, Vec<u64>)> = points
                .iter()
                .enumerate()
                .filter(|(_, point)| point.hierarchy == *hierarchy && point.policy == policy)
                .filter_map(|(index, _)| {
                    results[index]
                        .as_ref()
                        .map(|report| (index, report.levels.iter().map(|l| l.misses).collect()))
                })
                .collect();
            let front: Vec<(usize, &Vec<u64>)> = group
                .iter()
                .filter(|(_, misses)| !group.iter().any(|(_, other)| dominates(other, misses)))
                .map(|entry| (entry.0, &entry.1))
                .collect();
            // The front that actually matters for picking a tiling: the
            // cheapest configurations under the cycle-cost model, not just
            // the per-level miss trade-off.
            let time_front: Vec<(usize, u64)> = latencies
                .as_ref()
                .map(|model| {
                    let costed: Vec<(usize, u64)> = group
                        .iter()
                        .map(|(index, _)| {
                            let report = results[*index].as_ref().expect("grouped on Some");
                            (*index, estimated_cycles(report, model))
                        })
                        .collect();
                    let best = costed.iter().map(|(_, c)| *c).min();
                    costed
                        .into_iter()
                        .filter(|(_, cycles)| Some(*cycles) == best)
                        .collect()
                })
                .unwrap_or_default();
            if json {
                for (index, misses) in &group {
                    let mut fields = vec![
                        (
                            "tiles".to_string(),
                            serde::Value::Str(points[*index].sweep_key.clone()),
                        ),
                        (
                            "hierarchy".to_string(),
                            serde::Value::Str(hierarchy.clone()),
                        ),
                        (
                            "policy".to_string(),
                            serde::Value::Str(policy.label().to_string()),
                        ),
                        (
                            "misses".to_string(),
                            serde::Value::Array(
                                misses.iter().map(|&m| serde::Value::UInt(m)).collect(),
                            ),
                        ),
                    ];
                    if let Some(model) = &latencies {
                        let report = results[*index].as_ref().expect("grouped on Some");
                        fields.push((
                            "est_cycles".to_string(),
                            serde::Value::UInt(estimated_cycles(report, model)),
                        ));
                    }
                    if let Some(approx) = results[*index]
                        .as_ref()
                        .and_then(|report| report.approx.as_ref())
                    {
                        fields.push((
                            "error_bound".to_string(),
                            serde::Value::Array(
                                approx
                                    .per_level_error_bound
                                    .iter()
                                    .map(|&b| serde::Value::UInt(b))
                                    .collect(),
                            ),
                        ));
                    }
                    json_points.push(serde::Value::Object(fields));
                }
                json_fronts.push(serde::Value::Object(vec![
                    (
                        "hierarchy".to_string(),
                        serde::Value::Str(hierarchy.clone()),
                    ),
                    (
                        "policy".to_string(),
                        serde::Value::Str(policy.label().to_string()),
                    ),
                    (
                        "front".to_string(),
                        serde::Value::Array(
                            front
                                .iter()
                                .map(|(index, _)| {
                                    serde::Value::Str(points[*index].sweep_key.clone())
                                })
                                .collect(),
                        ),
                    ),
                ]));
                if latencies.is_some() {
                    json_time_fronts.push(serde::Value::Object(vec![
                        (
                            "hierarchy".to_string(),
                            serde::Value::Str(hierarchy.clone()),
                        ),
                        (
                            "policy".to_string(),
                            serde::Value::Str(policy.label().to_string()),
                        ),
                        (
                            "front".to_string(),
                            serde::Value::Array(
                                time_front
                                    .iter()
                                    .map(|(index, _)| {
                                        serde::Value::Str(points[*index].sweep_key.clone())
                                    })
                                    .collect(),
                            ),
                        ),
                    ]));
                }
            } else {
                println!(
                    "\npareto front ({hierarchy}, {}): {} of {} tile configs",
                    policy.label(),
                    front.len(),
                    group.len()
                );
                for (index, misses) in &front {
                    println!(
                        "  {:<20} misses {}",
                        points[*index].sweep_key,
                        misses
                            .iter()
                            .map(u64::to_string)
                            .collect::<Vec<_>>()
                            .join("/")
                    );
                }
                if !time_front.is_empty() {
                    println!(
                        "time front ({hierarchy}, {}): {} of {} tile configs",
                        policy.label(),
                        time_front.len(),
                        group.len()
                    );
                    for (index, cycles) in &time_front {
                        println!("  {:<20} est {} cycles", points[*index].sweep_key, cycles);
                    }
                }
            }
        }
    }

    let stats = service.stats();
    if json {
        let json_errors: Vec<serde::Value> = point_errors
            .iter()
            .enumerate()
            .filter_map(|(index, reason)| reason.as_ref().map(|reason| (index, reason)))
            .map(|(index, reason)| {
                serde::Value::Object(vec![
                    (
                        "tiles".to_string(),
                        serde::Value::Str(points[index].sweep_key.clone()),
                    ),
                    (
                        "hierarchy".to_string(),
                        serde::Value::Str(points[index].hierarchy.clone()),
                    ),
                    (
                        "policy".to_string(),
                        serde::Value::Str(points[index].policy.label().to_string()),
                    ),
                    ("error".to_string(), serde::Value::Str(reason.clone())),
                ])
            })
            .collect();
        let mut output = vec![
            ("family".to_string(), serde::Value::Str(registered.family)),
            ("planned".to_string(), serde::Value::Bool(plan)),
            ("points".to_string(), serde::Value::Array(json_points)),
            ("errors".to_string(), serde::Value::Array(json_errors)),
            ("pareto".to_string(), serde::Value::Array(json_fronts)),
        ];
        if latencies.is_some() {
            output.push((
                "pareto_time".to_string(),
                serde::Value::Array(json_time_fronts),
            ));
        }
        output.push((
            "calibration".to_string(),
            serde::Value::Array(
                service
                    .calibration_stats()
                    .iter()
                    .map(serde::Serialize::serialize_value)
                    .collect(),
            ),
        ));
        output.push((
            "serve_stats".to_string(),
            serde::Serialize::serialize_value(&stats),
        ));
        println!(
            "{}",
            serde_json::to_string_pretty(&serde::Value::Object(output))
                .expect("explore output serialises")
        );
    } else {
        println!(
            "\n{} points; family requests {}, family cache hits {}, simulated {}",
            points.len(),
            stats.family_requests,
            stats.family_hits,
            stats.simulated
        );
        println!(
            "warm paths: calibration hits {}, misses {}, fallbacks {}; warp donations {}",
            stats.calibration_hits,
            stats.calibration_misses,
            stats.calibration_fallbacks,
            stats.warp_donations
        );
    }
}

/// Cycle weights for the estimated-wall-time front: one latency per cache
/// level (in hierarchy order) plus the memory latency behind the last
/// level.
struct LatencyModel {
    levels: Vec<u64>,
    memory: u64,
}

/// Parses a `--latencies` spec: comma-separated `L<n>:cycles` entries plus
/// an optional `MEM:cycles` (default 100), e.g. `L1:4,L2:14,MEM:120`.
fn parse_latencies(spec: &str) -> Result<LatencyModel, String> {
    let mut levels: Vec<Option<u64>> = Vec::new();
    let mut memory = 100u64;
    for entry in spec.split(',') {
        let entry = entry.trim();
        let (label, cycles) = entry
            .split_once(':')
            .ok_or_else(|| format!("latency entry `{entry}` must be LABEL:cycles"))?;
        let cycles: u64 = cycles
            .trim()
            .parse()
            .map_err(|_| format!("invalid cycle count `{cycles}` for `{label}`"))?;
        let label = label.trim().to_ascii_uppercase();
        if label == "MEM" {
            memory = cycles;
            continue;
        }
        let level: usize = label
            .strip_prefix('L')
            .and_then(|n| n.parse().ok())
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("latency label `{label}` must be L1, L2, ... or MEM"))?;
        if levels.len() < level {
            levels.resize(level, None);
        }
        levels[level - 1] = Some(cycles);
    }
    let levels = levels
        .iter()
        .enumerate()
        .map(|(index, cycles)| {
            cycles.ok_or_else(|| format!("missing latency for L{} in `{spec}`", index + 1))
        })
        .collect::<Result<Vec<u64>, String>>()?;
    if levels.is_empty() {
        return Err("--latencies needs at least L1:cycles".to_string());
    }
    Ok(LatencyModel { levels, memory })
}

/// Estimated wall time of a report under the cycle-cost model: every hit
/// at level *i* costs that level's latency, and misses out of the last
/// level cost the memory latency.
fn estimated_cycles(report: &engine::SimReport, model: &LatencyModel) -> u64 {
    let mut cycles = 0u64;
    let mut upstream = report.result.accesses;
    for (level, stats) in report.levels.iter().enumerate() {
        let latency = model.levels.get(level).copied().unwrap_or(model.memory);
        let hits = upstream.saturating_sub(stats.misses);
        cycles = cycles.saturating_add(hits.saturating_mul(latency));
        upstream = stats.misses;
    }
    cycles.saturating_add(upstream.saturating_mul(model.memory))
}

/// Pre-validates one sweep point: bindings must be positive, the template
/// must instantiate, and the instance must have a non-empty iteration
/// domain.  A failure is that point's streamed error row, not a sweep
/// abort.
fn validate_point(request: &SimRequest) -> Result<(), String> {
    for (name, value) in request.kernel.param_bindings().iter() {
        if value <= 0 {
            return Err(format!(
                "unsatisfiable binding {name}={value}: tile and problem sizes must be positive"
            ));
        }
    }
    let scop = request
        .kernel
        .build()
        .map_err(|e| format!("binding rejected: {e}"))?;
    // Rectangular instances answer in closed form from the compiled
    // kernel; only irregular domains pay for the walking probe.
    let nonempty = scop::compile(&scop)
        .static_access_count()
        .map(|total| total > 0)
        .unwrap_or_else(|| scop::exceeds_access_count(&scop, 0));
    if nonempty {
        Ok(())
    } else {
        Err("unsatisfiable bindings: the instance performs no memory accesses".to_string())
    }
}

/// `a` dominates `b` when it is at most equal on every level and strictly
/// better on at least one.
fn dominates(a: &[u64], b: &[u64]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| x <= y)
        && a.iter().zip(b).any(|(x, y)| x < y)
}

/// Parses a `--sweep` spec: `;`-separated `NAME=v1,v2,...` entries.
fn parse_sweep(spec: &str) -> Result<Vec<(String, Vec<i64>)>, String> {
    let mut sweep = Vec::new();
    for entry in spec.split(';') {
        let (name, values) = entry
            .split_once('=')
            .ok_or_else(|| format!("sweep entry `{entry}` must be NAME=v1,v2,..."))?;
        let values = values
            .split(',')
            .map(|value| {
                value
                    .trim()
                    .parse::<i64>()
                    .map_err(|_| format!("invalid sweep value `{value}` for `{name}`"))
            })
            .collect::<Result<Vec<i64>, String>>()?;
        if values.is_empty() {
            return Err(format!("sweep entry `{entry}` has no values"));
        }
        sweep.push((name.trim().to_string(), values));
    }
    if sweep.is_empty() {
        return Err("--sweep expects at least one NAME=v1,v2 entry".to_string());
    }
    Ok(sweep)
}

/// The cartesian product of the swept parameter values, in spec order.
fn cartesian(sweep: &[(String, Vec<i64>)]) -> Vec<Vec<(String, i64)>> {
    let mut combos = vec![Vec::new()];
    for (name, values) in sweep {
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for combo in &combos {
            for &value in values {
                let mut extended = combo.clone();
                extended.push((name.clone(), value));
                next.push(extended);
            }
        }
        combos = next;
    }
    combos
}

/// The `serve` subcommand: the JSON-lines simulation service over stdin or
/// a TCP listener.
fn serve_command(args: &[String]) {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut addr: Option<String> = None;
    let mut config = serve::ServeConfig::from_env();
    let mut options = serve::WireOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--addr expects HOST:PORT")),
                );
            }
            "--cache-cap" => {
                i += 1;
                config.cache_capacity = args
                    .get(i)
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| die("--cache-cap expects an entry count"));
            }
            "--workers" => {
                i += 1;
                config.workers = args
                    .get(i)
                    .and_then(|n| n.parse::<usize>().ok())
                    .unwrap_or_else(|| die("--workers expects a number"));
            }
            "--exact-budget" => {
                i += 1;
                config.exact_budget = Some(
                    args.get(i)
                        .and_then(|n| n.parse::<u64>().ok())
                        .unwrap_or_else(|| die("--exact-budget expects an access count")),
                );
            }
            "--debug-hash" => options.debug_hash = true,
            other => die(&format!("unknown serve argument `{other}`")),
        }
        i += 1;
    }
    // Degenerate configurations (`--workers 0`, `--cache-cap 0`) are caught
    // here, before any socket is bound, with an explanation of what the
    // zero would break.
    config.validate().unwrap_or_else(|e| die(&e));
    let service = Arc::new(serve::SimService::new(config));

    let Some(addr) = addr else {
        // Stdin mode: one session, envelopes (and the final stats line) on
        // stdout.
        let stdin = std::io::stdin();
        serve::serve_lines_with(&service, stdin.lock(), std::io::stdout(), options)
            .unwrap_or_else(|e| die(&format!("serving stdin failed: {e}")));
        return;
    };

    let listener = std::net::TcpListener::bind(&addr)
        .unwrap_or_else(|e| die(&format!("cannot listen on {addr}: {e}")));
    let local = listener
        .local_addr()
        .unwrap_or_else(|e| die(&format!("no local address: {e}")));
    // Scripts (and CI) bind port 0 and scrape the actual port from here.
    println!("serving on {local}");
    let _ = std::io::stdout().flush();
    // Nonblocking accept + poll, so a shutdown requested on one connection
    // stops the accept loop without needing a final wake-up connection.
    listener
        .set_nonblocking(true)
        .unwrap_or_else(|e| die(&format!("cannot poll the listener: {e}")));
    let stop = Arc::new(AtomicBool::new(false));
    let mut sessions = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream
                    .set_nonblocking(false)
                    .unwrap_or_else(|e| die(&format!("cannot configure a connection: {e}")));
                let reader = std::io::BufReader::new(
                    stream
                        .try_clone()
                        .unwrap_or_else(|e| die(&format!("cannot split a connection: {e}"))),
                );
                let service = service.clone();
                let stop = stop.clone();
                sessions.push(std::thread::spawn(move || {
                    match serve::serve_lines_with(&service, reader, stream, options) {
                        Ok((_stats, shutdown)) => {
                            if shutdown {
                                stop.store(true, Ordering::SeqCst);
                            }
                        }
                        Err(e) => eprintln!("connection failed: {e}"),
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => die(&format!("accept failed: {e}")),
        }
    }
    for session in sessions {
        let _ = session.join();
    }
    // The service-lifetime summary, like the per-session trailer lines.
    println!(
        "{}",
        serde_json::to_string(&service.stats()).expect("stats serialise")
    );
}

fn parse_policy(name: &str) -> Option<ReplacementPolicy> {
    match name.to_ascii_lowercase().as_str() {
        "lru" => Some(ReplacementPolicy::Lru),
        "fifo" => Some(ReplacementPolicy::Fifo),
        "plru" => Some(ReplacementPolicy::Plru),
        "qlru" => Some(ReplacementPolicy::Qlru),
        _ => None,
    }
}

fn verify(config: &ExperimentConfig) {
    let mut failures = 0;
    for &kernel in &config.kernels {
        for policy in ReplacementPolicy::ALL {
            let ok = verify_kernel(kernel, config.dataset, policy);
            if !ok {
                failures += 1;
            }
            println!(
                "{:<16} {:<14} {}",
                kernel.name(),
                policy.label(),
                if ok { "exact" } else { "MISMATCH" }
            );
        }
    }
    if failures > 0 {
        eprintln!("{failures} mismatches");
        std::process::exit(1);
    }
}

fn parse_dataset(name: &str) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "mini" => Some(Dataset::Mini),
        "small" => Some(Dataset::Small),
        "medium" => Some(Dataset::Medium),
        "large" => Some(Dataset::Large),
        "extralarge" | "xl" => Some(Dataset::ExtraLarge),
        _ => None,
    }
}

fn next_size(dataset: Dataset) -> Dataset {
    match dataset {
        Dataset::Mini => Dataset::Small,
        Dataset::Small => Dataset::Medium,
        Dataset::Medium => Dataset::Large,
        Dataset::Large | Dataset::ExtraLarge => Dataset::ExtraLarge,
    }
}

fn emit<R: serde::Serialize>(json: bool, title: &str, rows: &[R], text: impl Fn(&[R])) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(rows).expect("rows serialise")
        );
    } else {
        println!("\n== {title} ==");
        text(rows);
    }
}

fn fig6_text(rows: &[Fig6Row]) {
    println!(
        "{:<16} {:<14} {:>12} {:>12} {:>9} {:>14} {:>7}",
        "kernel", "policy", "nonwarp[ms]", "warp[ms]", "speedup", "nonwarped[%]", "exact"
    );
    for r in rows {
        println!(
            "{:<16} {:<14} {:>12.2} {:>12.2} {:>9.2} {:>14.3} {:>7}",
            r.kernel,
            r.policy,
            r.nonwarping_ms,
            r.warping_ms,
            r.speedup,
            r.non_warped_share * 100.0,
            r.exact
        );
    }
}

fn fig7_text(rows: &[Fig7Row]) {
    println!(
        "{:<16} {:<12} {:>14} {:>12}",
        "kernel", "dataset", "nonwarp[ms]", "warp[ms]"
    );
    for r in rows {
        println!(
            "{:<16} {:<12} {:>14.2} {:>12.2}",
            r.kernel, r.dataset, r.nonwarping_ms, r.warping_ms
        );
    }
}

fn fig8_text(rows: &[Fig8Row]) {
    println!(
        "{:<16} {:<12} {:>12} {:>14} {:>9} {:>7}",
        "kernel", "dataset", "warp[ms]", "haystack[ms]", "speedup", "exact"
    );
    for r in rows {
        println!(
            "{:<16} {:<12} {:>12.2} {:>14.2} {:>9.3} {:>7}",
            r.kernel, r.dataset, r.warping_ms, r.haystack_ms, r.speedup, r.exact
        );
    }
}

fn fig9_text(rows: &[Fig9Row]) {
    println!(
        "{:<16} {:>12} {:>15} {:>9} {:>7}",
        "kernel", "warp[ms]", "polycache[ms]", "speedup", "exact"
    );
    for r in rows {
        println!(
            "{:<16} {:>12.2} {:>15.2} {:>9.3} {:>7}",
            r.kernel, r.warping_ms, r.polycache_ms, r.speedup, r.exact
        );
    }
}

fn fig10_text(rows: &[Fig10Row]) {
    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>14} {:>8}",
        "kernel", "LRU misses", "FA-LRU", "Pseudo-LRU", "Quad-age LRU", "FIFO"
    );
    for r in rows {
        println!(
            "{:<16} {:>12} {:>10.3} {:>12.3} {:>14.3} {:>8.3}",
            r.kernel, r.lru_misses, r.fully_associative_lru, r.pseudo_lru, r.quad_age_lru, r.fifo
        );
    }
}

fn fig11_text(rows: &[Fig11Row]) {
    println!(
        "{:<16} {:>12} {:>11} {:>9} {:>11} {:>9} {:>11} {:>9}",
        "kernel", "measured", "dinero|Δ|", "rel[%]", "warp|Δ|", "rel[%]", "haystk|Δ|", "rel[%]"
    );
    for r in rows {
        println!(
            "{:<16} {:>12} {:>11} {:>9.1} {:>11} {:>9.1} {:>11} {:>9.1}",
            r.kernel,
            r.measured,
            r.dinero_abs,
            r.dinero_rel,
            r.warping_abs,
            r.warping_rel,
            r.haystack_abs,
            r.haystack_rel
        );
    }
}

fn fig12_text(rows: &[Fig12Row]) {
    println!(
        "{:<16} {:>12} {:>14} {:>9}",
        "kernel", "dinero[ms]", "nonwarp[ms]", "speedup"
    );
    for r in rows {
        println!(
            "{:<16} {:>12.2} {:>14.2} {:>9.2}",
            r.kernel, r.dinero_ms, r.nonwarping_ms, r.speedup
        );
    }
}

fn print_usage() {
    eprintln!(
        "usage: harness <fig6|fig7|fig8|fig9|fig10|fig11|fig12|verify|grid|all> \
         [--size mini|small|medium|large|extralarge] [--kernels a,b,c] \
         [--policies lru,fifo,plru,qlru] \
         [--backends classic,warping,haystack,polycache,trace,sampled] \
         [--levels l1:32K:8:64,l2:256K:8:64,l3:2M:16:64 | l1 | l1l2 | l1l2l3] \
         [--threads N] [--fingerprint-filter on|off] [--label-renorm on|off] \
         [--sample-rate F] [--warmup N] [--walk compiled|reference] [--json]\n\
         \x20      harness serve [--addr HOST:PORT] [--cache-cap N] [--workers N] \
         [--exact-budget N] [--debug-hash]\n\
         \x20      harness explore [--sweep TI=4,8;TJ=4,8] [--bind NI=32,...] \
         [--hierarchies l1;l1l2] [--policies lru,plru] [--backend warping] \
         [--workers N] [--template FILE] [--name NAME] [--plan on|off] \
         [--max-error N] [--latencies L1:4,L2:14,MEM:100] [--json]"
    );
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2)
}
