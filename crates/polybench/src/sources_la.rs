//! Linear-algebra kernels (BLAS, kernels and solvers) in the mini-C dialect.
//!
//! Each function returns the kernel's loop nest with the dataset sizes
//! substituted.  Only the measured kernel (the `kernel_*` function of
//! PolyBench) is expressed; initialisation code is not part of the SCoP, as
//! in the paper's evaluation.  Loops that iterate downwards in the original
//! sources are rewritten with an ascending iterator and transformed
//! subscripts, which preserves the memory-access sequence.

/// `gemm`: C = alpha*A*B + beta*C.
pub fn gemm(ni: u64, nj: u64, nk: u64) -> String {
    format!(
        "double C[{ni}][{nj}]; double A[{ni}][{nk}]; double B[{nk}][{nj}];\n\
         for (i = 0; i < {ni}; i++) {{\n\
           for (j = 0; j < {nj}; j++) C[i][j] *= beta;\n\
           for (k = 0; k < {nk}; k++)\n\
             for (j = 0; j < {nj}; j++)\n\
               C[i][j] += alpha * A[i][k] * B[k][j];\n\
         }}\n"
    )
}

/// `gemver`: multiple matrix-vector products and rank-1 updates.
pub fn gemver(n: u64) -> String {
    format!(
        "double A[{n}][{n}]; double u1[{n}]; double v1[{n}]; double u2[{n}]; double v2[{n}];\n\
         double w[{n}]; double x[{n}]; double y[{n}]; double z[{n}];\n\
         for (i = 0; i < {n}; i++)\n\
           for (j = 0; j < {n}; j++)\n\
             A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];\n\
         for (i = 0; i < {n}; i++)\n\
           for (j = 0; j < {n}; j++)\n\
             x[i] = x[i] + beta * A[j][i] * y[j];\n\
         for (i = 0; i < {n}; i++)\n\
           x[i] = x[i] + z[i];\n\
         for (i = 0; i < {n}; i++)\n\
           for (j = 0; j < {n}; j++)\n\
             w[i] = w[i] + alpha * A[i][j] * x[j];\n"
    )
}

/// `gesummv`: summed matrix-vector multiplications.
pub fn gesummv(n: u64) -> String {
    format!(
        "double A[{n}][{n}]; double B[{n}][{n}]; double tmp[{n}]; double x[{n}]; double y[{n}];\n\
         for (i = 0; i < {n}; i++) {{\n\
           tmp[i] = 0.0;\n\
           y[i] = 0.0;\n\
           for (j = 0; j < {n}; j++) {{\n\
             tmp[i] = A[i][j] * x[j] + tmp[i];\n\
             y[i] = B[i][j] * x[j] + y[i];\n\
           }}\n\
           y[i] = alpha * tmp[i] + beta * y[i];\n\
         }}\n"
    )
}

/// `symm`: symmetric matrix multiplication.
pub fn symm(m: u64, n: u64) -> String {
    format!(
        "double C[{m}][{n}]; double A[{m}][{m}]; double B[{m}][{n}];\n\
         for (i = 0; i < {m}; i++)\n\
           for (j = 0; j < {n}; j++) {{\n\
             temp2 = 0.0;\n\
             for (k = 0; k < i; k++) {{\n\
               C[k][j] += alpha * B[i][j] * A[i][k];\n\
               temp2 += B[k][j] * A[i][k];\n\
             }}\n\
             C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp2;\n\
           }}\n"
    )
}

/// `syr2k`: symmetric rank-2k update.
pub fn syr2k(m: u64, n: u64) -> String {
    format!(
        "double C[{n}][{n}]; double A[{n}][{m}]; double B[{n}][{m}];\n\
         for (i = 0; i < {n}; i++) {{\n\
           for (j = 0; j <= i; j++) C[i][j] *= beta;\n\
           for (k = 0; k < {m}; k++)\n\
             for (j = 0; j <= i; j++)\n\
               C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];\n\
         }}\n"
    )
}

/// `syrk`: symmetric rank-k update.
pub fn syrk(m: u64, n: u64) -> String {
    format!(
        "double C[{n}][{n}]; double A[{n}][{m}];\n\
         for (i = 0; i < {n}; i++) {{\n\
           for (j = 0; j <= i; j++) C[i][j] *= beta;\n\
           for (k = 0; k < {m}; k++)\n\
             for (j = 0; j <= i; j++)\n\
               C[i][j] += alpha * A[i][k] * A[j][k];\n\
         }}\n"
    )
}

/// `trmm`: triangular matrix multiplication.
pub fn trmm(m: u64, n: u64) -> String {
    format!(
        "double A[{m}][{m}]; double B[{m}][{n}];\n\
         for (i = 0; i < {m}; i++)\n\
           for (j = 0; j < {n}; j++) {{\n\
             for (k = i + 1; k < {m}; k++)\n\
               B[i][j] += A[k][i] * B[k][j];\n\
             B[i][j] = alpha * B[i][j];\n\
           }}\n"
    )
}

/// `2mm`: D = alpha*A*B*C + beta*D.
pub fn two_mm(ni: u64, nj: u64, nk: u64, nl: u64) -> String {
    format!(
        "double tmp[{ni}][{nj}]; double A[{ni}][{nk}]; double B[{nk}][{nj}];\n\
         double C[{nj}][{nl}]; double D[{ni}][{nl}];\n\
         for (i = 0; i < {ni}; i++)\n\
           for (j = 0; j < {nj}; j++) {{\n\
             tmp[i][j] = 0.0;\n\
             for (k = 0; k < {nk}; k++)\n\
               tmp[i][j] += alpha * A[i][k] * B[k][j];\n\
           }}\n\
         for (i = 0; i < {ni}; i++)\n\
           for (j = 0; j < {nl}; j++) {{\n\
             D[i][j] *= beta;\n\
             for (k = 0; k < {nj}; k++)\n\
               D[i][j] += tmp[i][k] * C[k][j];\n\
           }}\n"
    )
}

/// `3mm`: G = (A*B)*(C*D).
pub fn three_mm(ni: u64, nj: u64, nk: u64, nl: u64, nm: u64) -> String {
    format!(
        "double E[{ni}][{nj}]; double A[{ni}][{nk}]; double B[{nk}][{nj}];\n\
         double F[{nj}][{nl}]; double C[{nj}][{nm}]; double D[{nm}][{nl}];\n\
         double G[{ni}][{nl}];\n\
         for (i = 0; i < {ni}; i++)\n\
           for (j = 0; j < {nj}; j++) {{\n\
             E[i][j] = 0.0;\n\
             for (k = 0; k < {nk}; k++)\n\
               E[i][j] += A[i][k] * B[k][j];\n\
           }}\n\
         for (i = 0; i < {nj}; i++)\n\
           for (j = 0; j < {nl}; j++) {{\n\
             F[i][j] = 0.0;\n\
             for (k = 0; k < {nm}; k++)\n\
               F[i][j] += C[i][k] * D[k][j];\n\
           }}\n\
         for (i = 0; i < {ni}; i++)\n\
           for (j = 0; j < {nl}; j++) {{\n\
             G[i][j] = 0.0;\n\
             for (k = 0; k < {nj}; k++)\n\
               G[i][j] += E[i][k] * F[k][j];\n\
           }}\n"
    )
}

/// `atax`: y = A^T (A x).
pub fn atax(m: u64, n: u64) -> String {
    format!(
        "double A[{m}][{n}]; double x[{n}]; double y[{n}]; double tmp[{m}];\n\
         for (i = 0; i < {n}; i++) y[i] = 0.0;\n\
         for (i = 0; i < {m}; i++) {{\n\
           tmp[i] = 0.0;\n\
           for (j = 0; j < {n}; j++) tmp[i] = tmp[i] + A[i][j] * x[j];\n\
           for (j = 0; j < {n}; j++) y[j] = y[j] + A[i][j] * tmp[i];\n\
         }}\n"
    )
}

/// `bicg`: biconjugate gradients sub-kernel (s = A^T r, q = A p).
pub fn bicg(m: u64, n: u64) -> String {
    format!(
        "double A[{n}][{m}]; double s[{m}]; double q[{n}]; double p[{m}]; double r[{n}];\n\
         for (i = 0; i < {m}; i++) s[i] = 0.0;\n\
         for (i = 0; i < {n}; i++) {{\n\
           q[i] = 0.0;\n\
           for (j = 0; j < {m}; j++) {{\n\
             s[j] = s[j] + r[i] * A[i][j];\n\
             q[i] = q[i] + A[i][j] * p[j];\n\
           }}\n\
         }}\n"
    )
}

/// `doitgen`: multi-resolution analysis kernel.
pub fn doitgen(nq: u64, nr: u64, np: u64) -> String {
    format!(
        "double A[{nr}][{nq}][{np}]; double C4[{np}][{np}]; double sum[{np}];\n\
         for (r = 0; r < {nr}; r++)\n\
           for (q = 0; q < {nq}; q++) {{\n\
             for (p = 0; p < {np}; p++) {{\n\
               sum[p] = 0.0;\n\
               for (s = 0; s < {np}; s++)\n\
                 sum[p] += A[r][q][s] * C4[s][p];\n\
             }}\n\
             for (p = 0; p < {np}; p++)\n\
               A[r][q][p] = sum[p];\n\
           }}\n"
    )
}

/// `mvt`: matrix-vector product and transposed product.
pub fn mvt(n: u64) -> String {
    format!(
        "double A[{n}][{n}]; double x1[{n}]; double x2[{n}]; double y1[{n}]; double y2[{n}];\n\
         for (i = 0; i < {n}; i++)\n\
           for (j = 0; j < {n}; j++)\n\
             x1[i] = x1[i] + A[i][j] * y1[j];\n\
         for (i = 0; i < {n}; i++)\n\
           for (j = 0; j < {n}; j++)\n\
             x2[i] = x2[i] + A[j][i] * y2[j];\n"
    )
}

/// `cholesky`: Cholesky decomposition.
pub fn cholesky(n: u64) -> String {
    format!(
        "double A[{n}][{n}];\n\
         for (i = 0; i < {n}; i++) {{\n\
           for (j = 0; j < i; j++) {{\n\
             for (k = 0; k < j; k++)\n\
               A[i][j] -= A[i][k] * A[j][k];\n\
             A[i][j] /= A[j][j];\n\
           }}\n\
           for (k = 0; k < i; k++)\n\
             A[i][i] -= A[i][k] * A[i][k];\n\
           A[i][i] = sqrt(A[i][i]);\n\
         }}\n"
    )
}

/// `durbin`: Toeplitz system solver (Durbin recursion).
pub fn durbin(n: u64) -> String {
    format!(
        "double r[{n}]; double y[{n}]; double z[{n}];\n\
         y[0] = 0.0 - r[0];\n\
         beta = 1.0;\n\
         alpha = 0.0 - r[0];\n\
         for (k = 1; k < {n}; k++) {{\n\
           beta = (1.0 - alpha * alpha) * beta;\n\
           sum = 0.0;\n\
           for (i = 0; i < k; i++)\n\
             sum += r[k - i - 1] * y[i];\n\
           alpha = 0.0 - (r[k] + sum) / beta;\n\
           for (i = 0; i < k; i++)\n\
             z[i] = y[i] + alpha * y[k - i - 1];\n\
           for (i = 0; i < k; i++)\n\
             y[i] = z[i];\n\
           y[k] = alpha;\n\
         }}\n"
    )
}

/// `gramschmidt`: modified Gram-Schmidt QR decomposition.
pub fn gramschmidt(m: u64, n: u64) -> String {
    format!(
        "double A[{m}][{n}]; double R[{n}][{n}]; double Q[{m}][{n}];\n\
         for (k = 0; k < {n}; k++) {{\n\
           nrm = 0.0;\n\
           for (i = 0; i < {m}; i++)\n\
             nrm += A[i][k] * A[i][k];\n\
           R[k][k] = sqrt(nrm);\n\
           for (i = 0; i < {m}; i++)\n\
             Q[i][k] = A[i][k] / R[k][k];\n\
           for (j = k + 1; j < {n}; j++) {{\n\
             R[k][j] = 0.0;\n\
             for (i = 0; i < {m}; i++)\n\
               R[k][j] += Q[i][k] * A[i][j];\n\
             for (i = 0; i < {m}; i++)\n\
               A[i][j] = A[i][j] - Q[i][k] * R[k][j];\n\
           }}\n\
         }}\n"
    )
}

/// `lu`: LU decomposition without pivoting.
pub fn lu(n: u64) -> String {
    format!(
        "double A[{n}][{n}];\n\
         for (i = 0; i < {n}; i++) {{\n\
           for (j = 0; j < i; j++) {{\n\
             for (k = 0; k < j; k++)\n\
               A[i][j] -= A[i][k] * A[k][j];\n\
             A[i][j] /= A[j][j];\n\
           }}\n\
           for (j = i; j < {n}; j++)\n\
             for (k = 0; k < i; k++)\n\
               A[i][j] -= A[i][k] * A[k][j];\n\
         }}\n"
    )
}

/// `ludcmp`: LU decomposition followed by forward and backward substitution.
/// The backward-substitution loop of the original runs from `n-1` down to 0;
/// it is rewritten with the ascending iterator `ii = n-1-i`.
pub fn ludcmp(n: u64) -> String {
    format!(
        "double A[{n}][{n}]; double b[{n}]; double x[{n}]; double y[{n}];\n\
         for (i = 0; i < {n}; i++) {{\n\
           for (j = 0; j < i; j++) {{\n\
             w = A[i][j];\n\
             for (k = 0; k < j; k++)\n\
               w -= A[i][k] * A[k][j];\n\
             A[i][j] = w / A[j][j];\n\
           }}\n\
           for (j = i; j < {n}; j++) {{\n\
             w = A[i][j];\n\
             for (k = 0; k < i; k++)\n\
               w -= A[i][k] * A[k][j];\n\
             A[i][j] = w;\n\
           }}\n\
         }}\n\
         for (i = 0; i < {n}; i++) {{\n\
           w = b[i];\n\
           for (j = 0; j < i; j++)\n\
             w -= A[i][j] * y[j];\n\
           y[i] = w;\n\
         }}\n\
         for (ii = 0; ii < {n}; ii++) {{\n\
           w = y[{nm1} - ii];\n\
           for (j = {n} - ii; j < {n}; j++)\n\
             w -= A[{nm1} - ii][j] * x[j];\n\
           x[{nm1} - ii] = w / A[{nm1} - ii][{nm1} - ii];\n\
         }}\n",
        nm1 = n - 1
    )
}

/// `trisolv`: triangular solver.
pub fn trisolv(n: u64) -> String {
    format!(
        "double L[{n}][{n}]; double x[{n}]; double b[{n}];\n\
         for (i = 0; i < {n}; i++) {{\n\
           x[i] = b[i];\n\
           for (j = 0; j < i; j++)\n\
             x[i] -= L[i][j] * x[j];\n\
           x[i] = x[i] / L[i][i];\n\
         }}\n"
    )
}
