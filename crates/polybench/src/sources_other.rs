//! Data-mining and medley kernels in the mini-C dialect.

/// `correlation`: correlation matrix computation.
pub fn correlation(m: u64, n: u64) -> String {
    format!(
        "double data[{n}][{m}]; double corr[{m}][{m}]; double mean[{m}]; double stddev[{m}];\n\
         for (j = 0; j < {m}; j++) {{\n\
           mean[j] = 0.0;\n\
           for (i = 0; i < {n}; i++)\n\
             mean[j] += data[i][j];\n\
           mean[j] = mean[j] / float_n;\n\
         }}\n\
         for (j = 0; j < {m}; j++) {{\n\
           stddev[j] = 0.0;\n\
           for (i = 0; i < {n}; i++)\n\
             stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);\n\
           stddev[j] = sqrt(stddev[j] / float_n);\n\
         }}\n\
         for (i = 0; i < {n}; i++)\n\
           for (j = 0; j < {m}; j++)\n\
             data[i][j] = (data[i][j] - mean[j]) / (sqrtfn * stddev[j]);\n\
         for (i = 0; i < {m} - 1; i++) {{\n\
           corr[i][i] = 1.0;\n\
           for (j = i + 1; j < {m}; j++) {{\n\
             corr[i][j] = 0.0;\n\
             for (k = 0; k < {n}; k++)\n\
               corr[i][j] += data[k][i] * data[k][j];\n\
             corr[j][i] = corr[i][j];\n\
           }}\n\
         }}\n\
         corr[{m} - 1][{m} - 1] = 1.0;\n"
    )
}

/// `covariance`: covariance matrix computation.
pub fn covariance(m: u64, n: u64) -> String {
    format!(
        "double data[{n}][{m}]; double cov[{m}][{m}]; double mean[{m}];\n\
         for (j = 0; j < {m}; j++) {{\n\
           mean[j] = 0.0;\n\
           for (i = 0; i < {n}; i++)\n\
             mean[j] += data[i][j];\n\
           mean[j] = mean[j] / float_n;\n\
         }}\n\
         for (i = 0; i < {n}; i++)\n\
           for (j = 0; j < {m}; j++)\n\
             data[i][j] -= mean[j];\n\
         for (i = 0; i < {m}; i++)\n\
           for (j = i; j < {m}; j++) {{\n\
             cov[i][j] = 0.0;\n\
             for (k = 0; k < {n}; k++)\n\
               cov[i][j] += data[k][i] * data[k][j];\n\
             cov[i][j] = cov[i][j] / float_nm1;\n\
             cov[j][i] = cov[i][j];\n\
           }}\n"
    )
}

/// `deriche`: recursive edge-detection filter.
///
/// The backward sweeps of the original iterate downwards; they are rewritten
/// with ascending iterators.  The scalar filter state (`ym1`, `xp1`, ...)
/// is carried in registers and therefore does not generate array accesses.
pub fn deriche(w: u64, h: u64) -> String {
    let hm1 = h - 1;
    let wm1 = w - 1;
    format!(
        "double imgIn[{w}][{h}]; double imgOut[{w}][{h}]; double y1[{w}][{h}]; double y2[{w}][{h}];\n\
         for (i = 0; i < {w}; i++) {{\n\
           ym1 = 0.0;\n\
           ym2 = 0.0;\n\
           xm1 = 0.0;\n\
           for (j = 0; j < {h}; j++) {{\n\
             y1[i][j] = a1 * imgIn[i][j] + a2 * xm1 + b1 * ym1 + b2 * ym2;\n\
             xm1 = imgIn[i][j];\n\
             ym2 = ym1;\n\
             ym1 = y1[i][j];\n\
           }}\n\
         }}\n\
         for (i = 0; i < {w}; i++) {{\n\
           yp1 = 0.0;\n\
           yp2 = 0.0;\n\
           xp1 = 0.0;\n\
           xp2 = 0.0;\n\
           for (jj = 0; jj < {h}; jj++) {{\n\
             y2[i][{hm1} - jj] = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;\n\
             xp2 = xp1;\n\
             xp1 = imgIn[i][{hm1} - jj];\n\
             yp2 = yp1;\n\
             yp1 = y2[i][{hm1} - jj];\n\
           }}\n\
         }}\n\
         for (i = 0; i < {w}; i++)\n\
           for (j = 0; j < {h}; j++)\n\
             imgOut[i][j] = c1 * (y1[i][j] + y2[i][j]);\n\
         for (j = 0; j < {h}; j++) {{\n\
           tm1 = 0.0;\n\
           ym1 = 0.0;\n\
           ym2 = 0.0;\n\
           for (i = 0; i < {w}; i++) {{\n\
             y1[i][j] = a5 * imgOut[i][j] + a6 * tm1 + b1 * ym1 + b2 * ym2;\n\
             tm1 = imgOut[i][j];\n\
             ym2 = ym1;\n\
             ym1 = y1[i][j];\n\
           }}\n\
         }}\n\
         for (j = 0; j < {h}; j++) {{\n\
           tp1 = 0.0;\n\
           tp2 = 0.0;\n\
           yp1 = 0.0;\n\
           yp2 = 0.0;\n\
           for (ii = 0; ii < {w}; ii++) {{\n\
             y2[{wm1} - ii][j] = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2;\n\
             tp2 = tp1;\n\
             tp1 = imgOut[{wm1} - ii][j];\n\
             yp2 = yp1;\n\
             yp1 = y2[{wm1} - ii][j];\n\
           }}\n\
         }}\n\
         for (i = 0; i < {w}; i++)\n\
           for (j = 0; j < {h}; j++)\n\
             imgOut[i][j] = c2 * (y1[i][j] + y2[i][j]);\n"
    )
}

/// `floyd-warshall`: all-pairs shortest paths.
pub fn floyd_warshall(n: u64) -> String {
    format!(
        "int path[{n}][{n}];\n\
         for (k = 0; k < {n}; k++)\n\
           for (i = 0; i < {n}; i++)\n\
             for (j = 0; j < {n}; j++)\n\
               path[i][j] = path[i][j] < path[i][k] + path[k][j] ? path[i][j] : path[i][k] + path[k][j];\n"
    )
}

/// `nussinov`: RNA secondary-structure prediction (dynamic programming).
///
/// The outer loop of the original iterates `i` from `n-1` down to 0; it is
/// rewritten with the ascending iterator `ii = n-1-i`, substituting
/// `i = n-1-ii` in every subscript.  The `if/else` of the original is
/// expressed as two guards with complementary conditions.
pub fn nussinov(n: u64) -> String {
    let nm1 = n - 1;
    format!(
        "int table[{n}][{n}]; char seq[{n}];\n\
         for (ii = 0; ii < {n}; ii++) {{\n\
           for (j = {n} - ii; j < {n}; j++) {{\n\
             if (j - 1 >= 0)\n\
               table[{nm1} - ii][j] = maxscore(table[{nm1} - ii][j], table[{nm1} - ii][j-1]);\n\
             if ({n} - ii < {n})\n\
               table[{nm1} - ii][j] = maxscore(table[{nm1} - ii][j], table[{n} - ii][j]);\n\
             if (j - 1 >= 0 && {n} - ii < {n}) {{\n\
               if ({nm1} - ii < j - 1)\n\
                 table[{nm1} - ii][j] = maxscore(table[{nm1} - ii][j], table[{n} - ii][j-1] + matchb(seq[{nm1} - ii], seq[j]));\n\
               if ({nm1} - ii >= j - 1)\n\
                 table[{nm1} - ii][j] = maxscore(table[{nm1} - ii][j], table[{n} - ii][j-1]);\n\
             }}\n\
             for (k = {n} - ii; k < j; k++)\n\
               table[{nm1} - ii][j] = maxscore(table[{nm1} - ii][j], table[{nm1} - ii][k] + table[k+1][j]);\n\
           }}\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scop::parse_scop;

    #[test]
    fn other_sources_parse() {
        for src in [
            correlation(8, 10),
            covariance(8, 10),
            deriche(8, 6),
            floyd_warshall(8),
            nussinov(8),
        ] {
            parse_scop(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn floyd_warshall_access_count() {
        let scop = parse_scop(&floyd_warshall(10)).unwrap();
        // 6 reads (the ternary expression) + 1 write per iteration.
        assert_eq!(scop::count_accesses(&scop), 10 * 10 * 10 * 7);
    }

    #[test]
    fn nussinov_only_touches_the_upper_triangle() {
        let scop = parse_scop(&nussinov(12)).unwrap();
        assert!(scop::count_accesses(&scop) > 0);
        // The table is int (4 bytes), the sequence is char (1 byte).
        assert_eq!(scop.array_by_name("table").unwrap().1.elem_size, 4);
        assert_eq!(scop.array_by_name("seq").unwrap().1.elem_size, 1);
    }
}
