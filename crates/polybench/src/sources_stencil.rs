//! Stencil kernels in the mini-C dialect.

/// `jacobi-1d`: 1D Jacobi stencil, two arrays swapped every time step.
pub fn jacobi_1d(tsteps: u64, n: u64) -> String {
    format!(
        "double A[{n}]; double B[{n}];\n\
         for (t = 0; t < {tsteps}; t++) {{\n\
           for (i = 1; i < {n} - 1; i++)\n\
             B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);\n\
           for (i = 1; i < {n} - 1; i++)\n\
             A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1]);\n\
         }}\n"
    )
}

/// `jacobi-2d`: 2D Jacobi stencil.
pub fn jacobi_2d(tsteps: u64, n: u64) -> String {
    format!(
        "double A[{n}][{n}]; double B[{n}][{n}];\n\
         for (t = 0; t < {tsteps}; t++) {{\n\
           for (i = 1; i < {n} - 1; i++)\n\
             for (j = 1; j < {n} - 1; j++)\n\
               B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][1+j] + A[1+i][j] + A[i-1][j]);\n\
           for (i = 1; i < {n} - 1; i++)\n\
             for (j = 1; j < {n} - 1; j++)\n\
               A[i][j] = 0.2 * (B[i][j] + B[i][j-1] + B[i][1+j] + B[1+i][j] + B[i-1][j]);\n\
         }}\n"
    )
}

/// `seidel-2d`: 2D Gauss-Seidel stencil (in-place, 9-point).
pub fn seidel_2d(tsteps: u64, n: u64) -> String {
    format!(
        "double A[{n}][{n}];\n\
         for (t = 0; t < {tsteps}; t++)\n\
           for (i = 1; i < {n} - 1; i++)\n\
             for (j = 1; j < {n} - 1; j++)\n\
               A[i][j] = (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1] + A[i][j-1] + A[i][j]\n\
                          + A[i][j+1] + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) / 9.0;\n"
    )
}

/// `heat-3d`: 3D heat equation, two arrays swapped every time step.
pub fn heat_3d(tsteps: u64, n: u64) -> String {
    let update = |dst: &str, src: &str| {
        format!(
            "for (i = 1; i < {n} - 1; i++)\n\
               for (j = 1; j < {n} - 1; j++)\n\
                 for (k = 1; k < {n} - 1; k++)\n\
                   {dst}[i][j][k] = 0.125 * ({src}[i+1][j][k] - 2.0 * {src}[i][j][k] + {src}[i-1][j][k])\n\
                                  + 0.125 * ({src}[i][j+1][k] - 2.0 * {src}[i][j][k] + {src}[i][j-1][k])\n\
                                  + 0.125 * ({src}[i][j][k+1] - 2.0 * {src}[i][j][k] + {src}[i][j][k-1])\n\
                                  + {src}[i][j][k];\n"
        )
    };
    format!(
        "double A[{n}][{n}][{n}]; double B[{n}][{n}][{n}];\n\
         for (t = 1; t <= {tsteps}; t++) {{\n\
           {}\
           {}\
         }}\n",
        update("B", "A"),
        update("A", "B")
    )
}

/// `fdtd-2d`: 2D finite-difference time-domain kernel.
pub fn fdtd_2d(tmax: u64, nx: u64, ny: u64) -> String {
    format!(
        "double ex[{nx}][{ny}]; double ey[{nx}][{ny}]; double hz[{nx}][{ny}]; double fict[{tmax}];\n\
         for (t = 0; t < {tmax}; t++) {{\n\
           for (j = 0; j < {ny}; j++)\n\
             ey[0][j] = fict[t];\n\
           for (i = 1; i < {nx}; i++)\n\
             for (j = 0; j < {ny}; j++)\n\
               ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i-1][j]);\n\
           for (i = 0; i < {nx}; i++)\n\
             for (j = 1; j < {ny}; j++)\n\
               ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j-1]);\n\
           for (i = 0; i < {nx} - 1; i++)\n\
             for (j = 0; j < {ny} - 1; j++)\n\
               hz[i][j] = hz[i][j] - 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);\n\
         }}\n"
    )
}

/// `adi`: alternating-direction implicit solver.
///
/// The two back-substitution sweeps of the original iterate downwards; they
/// are rewritten with ascending iterators (`jj = n-2-j`).
pub fn adi(tsteps: u64, n: u64) -> String {
    let nm2 = n - 2;
    format!(
        "double u[{n}][{n}]; double v[{n}][{n}]; double p[{n}][{n}]; double q[{n}][{n}];\n\
         for (t = 1; t <= {tsteps}; t++) {{\n\
           for (i = 1; i < {n} - 1; i++) {{\n\
             v[0][i] = 1.0;\n\
             p[i][0] = 0.0;\n\
             q[i][0] = v[0][i];\n\
             for (j = 1; j < {n} - 1; j++) {{\n\
               p[i][j] = 0.0 - c / (a * p[i][j-1] + b);\n\
               q[i][j] = (0.0 - d * u[j][i-1] + (1.0 + 2.0 * d) * u[j][i] - f * u[j][i+1] - a * q[i][j-1]) / (a * p[i][j-1] + b);\n\
             }}\n\
             v[{n} - 1][i] = 1.0;\n\
             for (jj = 0; jj < {n} - 2; jj++)\n\
               v[{nm2} - jj][i] = p[i][{nm2} - jj] * v[{nm2} - jj + 1][i] + q[i][{nm2} - jj];\n\
           }}\n\
           for (i = 1; i < {n} - 1; i++) {{\n\
             u[i][0] = 1.0;\n\
             p[i][0] = 0.0;\n\
             q[i][0] = u[i][0];\n\
             for (j = 1; j < {n} - 1; j++) {{\n\
               p[i][j] = 0.0 - f / (d * p[i][j-1] + e);\n\
               q[i][j] = (0.0 - a * v[i-1][j] + (1.0 + 2.0 * a) * v[i][j] - c * v[i+1][j] - d * q[i][j-1]) / (d * p[i][j-1] + e);\n\
             }}\n\
             u[i][{n} - 1] = 1.0;\n\
             for (jj = 0; jj < {n} - 2; jj++)\n\
               u[i][{nm2} - jj] = p[i][{nm2} - jj] * u[i][{nm2} - jj + 1] + q[i][{nm2} - jj];\n\
           }}\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scop::parse_scop;

    #[test]
    fn stencil_sources_parse() {
        for src in [
            jacobi_1d(4, 16),
            jacobi_2d(3, 10),
            seidel_2d(3, 10),
            heat_3d(2, 8),
            fdtd_2d(3, 8, 10),
            adi(2, 8),
        ] {
            parse_scop(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn jacobi_1d_access_count() {
        let scop = parse_scop(&jacobi_1d(5, 20)).unwrap();
        // Per time step: two sweeps of (n-2) iterations with 4 accesses each.
        assert_eq!(scop::count_accesses(&scop), 5 * 2 * 18 * 4);
    }

    #[test]
    fn adi_inner_sweeps_run_backwards() {
        // The rewritten back-substitution must touch v[n-2][i] first and
        // v[1][i] last, mirroring the descending loop of the original.
        let scop = parse_scop(&adi(1, 6)).unwrap();
        assert!(scop::count_accesses(&scop) > 0);
    }
}
