//! The PolyBench 4.2.1 benchmark kernels as polyhedral SCoPs.
//!
//! The paper evaluates warping cache simulation on the 30 kernels of
//! PolyBench 4.2.1.  This crate expresses every kernel's *measured loop
//! nest* (the `kernel_*` function) in the mini-C dialect of the [`scop`]
//! crate and elaborates it into the tree representation the simulators
//! operate on.  Dataset sizes follow the PolyBench headers; a handful of
//! EXTRALARGE parameters are approximated as documented in DESIGN.md.
//!
//! # Example
//!
//! ```
//! use polybench::{Dataset, Kernel};
//!
//! let scop = Kernel::Jacobi1d.build(Dataset::Mini).unwrap();
//! assert!(scop.access_nodes().count() > 0);
//! assert_eq!(Kernel::ALL.len(), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parametric;
mod sources_la;
mod sources_other;
mod sources_stencil;

use scop::{elaborate, parse_program, ElaborateOptions, Scop};

/// The PolyBench dataset sizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Dataset {
    /// MINI_DATASET
    Mini,
    /// SMALL_DATASET
    Small,
    /// MEDIUM_DATASET
    Medium,
    /// LARGE_DATASET (the paper's "L")
    Large,
    /// EXTRALARGE_DATASET (the paper's "XL")
    ExtraLarge,
}

impl Dataset {
    /// All dataset sizes, from smallest to largest.
    pub const ALL: [Dataset; 5] = [
        Dataset::Mini,
        Dataset::Small,
        Dataset::Medium,
        Dataset::Large,
        Dataset::ExtraLarge,
    ];

    /// The PolyBench name of the dataset.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Mini => "MINI",
            Dataset::Small => "SMALL",
            Dataset::Medium => "MEDIUM",
            Dataset::Large => "LARGE",
            Dataset::ExtraLarge => "EXTRALARGE",
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 30 PolyBench 4.2.1 kernels.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Kernel {
    Correlation,
    Covariance,
    Gemm,
    Gemver,
    Gesummv,
    Symm,
    Syr2k,
    Syrk,
    Trmm,
    TwoMm,
    ThreeMm,
    Atax,
    Bicg,
    Doitgen,
    Mvt,
    Cholesky,
    Durbin,
    Gramschmidt,
    Lu,
    Ludcmp,
    Trisolv,
    Deriche,
    FloydWarshall,
    Nussinov,
    Adi,
    Fdtd2d,
    Heat3d,
    Jacobi1d,
    Jacobi2d,
    Seidel2d,
}

impl Kernel {
    /// All kernels, in the category order of the PolyBench distribution.
    pub const ALL: [Kernel; 30] = [
        Kernel::Correlation,
        Kernel::Covariance,
        Kernel::Gemm,
        Kernel::Gemver,
        Kernel::Gesummv,
        Kernel::Symm,
        Kernel::Syr2k,
        Kernel::Syrk,
        Kernel::Trmm,
        Kernel::TwoMm,
        Kernel::ThreeMm,
        Kernel::Atax,
        Kernel::Bicg,
        Kernel::Doitgen,
        Kernel::Mvt,
        Kernel::Cholesky,
        Kernel::Durbin,
        Kernel::Gramschmidt,
        Kernel::Lu,
        Kernel::Ludcmp,
        Kernel::Trisolv,
        Kernel::Deriche,
        Kernel::FloydWarshall,
        Kernel::Nussinov,
        Kernel::Adi,
        Kernel::Fdtd2d,
        Kernel::Heat3d,
        Kernel::Jacobi1d,
        Kernel::Jacobi2d,
        Kernel::Seidel2d,
    ];

    /// The stencil kernels, which the paper highlights as the main
    /// beneficiaries of warping.
    pub const STENCILS: [Kernel; 6] = [
        Kernel::Adi,
        Kernel::Fdtd2d,
        Kernel::Heat3d,
        Kernel::Jacobi1d,
        Kernel::Jacobi2d,
        Kernel::Seidel2d,
    ];

    /// The PolyBench name of the kernel.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Correlation => "correlation",
            Kernel::Covariance => "covariance",
            Kernel::Gemm => "gemm",
            Kernel::Gemver => "gemver",
            Kernel::Gesummv => "gesummv",
            Kernel::Symm => "symm",
            Kernel::Syr2k => "syr2k",
            Kernel::Syrk => "syrk",
            Kernel::Trmm => "trmm",
            Kernel::TwoMm => "2mm",
            Kernel::ThreeMm => "3mm",
            Kernel::Atax => "atax",
            Kernel::Bicg => "bicg",
            Kernel::Doitgen => "doitgen",
            Kernel::Mvt => "mvt",
            Kernel::Cholesky => "cholesky",
            Kernel::Durbin => "durbin",
            Kernel::Gramschmidt => "gramschmidt",
            Kernel::Lu => "lu",
            Kernel::Ludcmp => "ludcmp",
            Kernel::Trisolv => "trisolv",
            Kernel::Deriche => "deriche",
            Kernel::FloydWarshall => "floyd-warshall",
            Kernel::Nussinov => "nussinov",
            Kernel::Adi => "adi",
            Kernel::Fdtd2d => "fdtd-2d",
            Kernel::Heat3d => "heat-3d",
            Kernel::Jacobi1d => "jacobi-1d",
            Kernel::Jacobi2d => "jacobi-2d",
            Kernel::Seidel2d => "seidel-2d",
        }
    }

    /// Looks a kernel up by its PolyBench name.
    pub fn by_name(name: &str) -> Option<Kernel> {
        Kernel::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// True for the stencil kernels.
    pub fn is_stencil(self) -> bool {
        Kernel::STENCILS.contains(&self)
    }

    /// The kernel's loop nest in the mini-C dialect with the dataset sizes
    /// substituted.
    pub fn source(self, dataset: Dataset) -> String {
        use Dataset as D;
        use Kernel as K;
        // Size tables follow the PolyBench 4.2.1 headers (MINI, SMALL,
        // MEDIUM, LARGE, EXTRALARGE).
        let pick = |values: [u64; 5]| -> u64 {
            match dataset {
                D::Mini => values[0],
                D::Small => values[1],
                D::Medium => values[2],
                D::Large => values[3],
                D::ExtraLarge => values[4],
            }
        };
        match self {
            K::Correlation | K::Covariance => {
                let m = pick([28, 80, 240, 1200, 2600]);
                let n = pick([32, 100, 260, 1400, 3000]);
                if self == K::Correlation {
                    sources_other::correlation(m, n)
                } else {
                    sources_other::covariance(m, n)
                }
            }
            K::Gemm => sources_la::gemm(
                pick([20, 60, 200, 1000, 2000]),
                pick([25, 70, 220, 1100, 2300]),
                pick([30, 80, 240, 1200, 2600]),
            ),
            K::Gemver => sources_la::gemver(pick([40, 120, 400, 2000, 4000])),
            K::Gesummv => sources_la::gesummv(pick([30, 90, 250, 1300, 2800])),
            K::Symm => sources_la::symm(
                pick([20, 60, 200, 1000, 2000]),
                pick([30, 80, 240, 1200, 2600]),
            ),
            K::Syr2k => sources_la::syr2k(
                pick([20, 60, 200, 1000, 2000]),
                pick([30, 80, 240, 1200, 2600]),
            ),
            K::Syrk => sources_la::syrk(
                pick([20, 60, 200, 1000, 2000]),
                pick([30, 80, 240, 1200, 2600]),
            ),
            K::Trmm => sources_la::trmm(
                pick([20, 60, 200, 1000, 2000]),
                pick([30, 80, 240, 1200, 2600]),
            ),
            K::TwoMm => sources_la::two_mm(
                pick([16, 40, 180, 800, 1600]),
                pick([18, 50, 190, 900, 1800]),
                pick([22, 70, 210, 1100, 2200]),
                pick([24, 80, 220, 1200, 2400]),
            ),
            K::ThreeMm => sources_la::three_mm(
                pick([16, 40, 180, 800, 1600]),
                pick([18, 50, 190, 900, 1800]),
                pick([20, 60, 200, 1000, 2000]),
                pick([22, 70, 210, 1100, 2200]),
                pick([24, 80, 220, 1200, 2400]),
            ),
            K::Atax => sources_la::atax(
                pick([38, 116, 390, 1900, 3800]),
                pick([42, 124, 410, 2100, 4200]),
            ),
            K::Bicg => sources_la::bicg(
                pick([38, 116, 390, 1900, 3800]),
                pick([42, 124, 410, 2100, 4200]),
            ),
            K::Doitgen => sources_la::doitgen(
                pick([8, 20, 40, 140, 220]),
                pick([10, 25, 50, 150, 250]),
                pick([12, 30, 60, 160, 270]),
            ),
            K::Mvt => sources_la::mvt(pick([40, 120, 400, 2000, 4000])),
            K::Cholesky => sources_la::cholesky(pick([40, 120, 400, 2000, 4000])),
            K::Durbin => sources_la::durbin(pick([40, 120, 400, 2000, 4000])),
            K::Gramschmidt => sources_la::gramschmidt(
                pick([20, 60, 200, 1000, 2000]),
                pick([30, 80, 240, 1200, 2600]),
            ),
            K::Lu => sources_la::lu(pick([40, 120, 400, 2000, 4000])),
            K::Ludcmp => sources_la::ludcmp(pick([40, 120, 400, 2000, 4000])),
            K::Trisolv => sources_la::trisolv(pick([40, 120, 400, 2000, 4000])),
            K::Deriche => sources_other::deriche(
                pick([64, 192, 720, 4096, 7680]),
                pick([64, 128, 480, 2160, 4320]),
            ),
            K::FloydWarshall => sources_other::floyd_warshall(pick([60, 180, 500, 2800, 5600])),
            K::Nussinov => sources_other::nussinov(pick([60, 180, 500, 2500, 5500])),
            K::Adi => sources_stencil::adi(
                pick([20, 40, 100, 500, 1000]),
                pick([20, 60, 200, 1000, 2000]),
            ),
            K::Fdtd2d => sources_stencil::fdtd_2d(
                pick([20, 40, 100, 500, 1000]),
                pick([20, 60, 200, 1000, 2000]),
                pick([30, 80, 240, 1200, 2600]),
            ),
            K::Heat3d => sources_stencil::heat_3d(
                pick([20, 40, 100, 500, 1000]),
                pick([10, 20, 40, 120, 200]),
            ),
            K::Jacobi1d => sources_stencil::jacobi_1d(
                pick([20, 40, 100, 500, 1000]),
                pick([30, 120, 400, 2000, 4000]),
            ),
            K::Jacobi2d => sources_stencil::jacobi_2d(
                pick([20, 40, 100, 500, 1000]),
                pick([30, 90, 250, 1300, 2800]),
            ),
            K::Seidel2d => sources_stencil::seidel_2d(
                pick([20, 40, 100, 500, 1000]),
                pick([40, 120, 400, 2000, 4000]),
            ),
        }
    }

    /// Parses and elaborates the kernel into a SCoP (array accesses only).
    ///
    /// # Errors
    ///
    /// Returns an error string if the kernel source fails to parse or
    /// elaborate (which would indicate a bug in this crate).
    pub fn build(self, dataset: Dataset) -> Result<Scop, String> {
        self.build_with_options(dataset, &ElaborateOptions::default())
    }

    /// Parses and elaborates the kernel with explicit elaboration options
    /// (e.g. including scalar accesses for the hardware-reference model).
    ///
    /// # Errors
    ///
    /// Returns an error string if the kernel source fails to parse or
    /// elaborate.
    pub fn build_with_options(
        self,
        dataset: Dataset,
        options: &ElaborateOptions,
    ) -> Result<Scop, String> {
        let source = self.source(dataset);
        let program = parse_program(&source).map_err(|e| format!("{}: {e}", self.name()))?;
        elaborate(&program, options).map_err(|e| format!("{}: {e}", self.name()))
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::{CacheConfig, ReplacementPolicy};
    use simulate::simulate_single;

    #[test]
    fn every_kernel_builds_at_every_dataset_size() {
        for kernel in Kernel::ALL {
            for dataset in [Dataset::Mini, Dataset::Small] {
                let scop = kernel.build(dataset).unwrap();
                assert!(
                    scop.access_nodes().count() > 0,
                    "{kernel} at {dataset} has access nodes"
                );
            }
            // Larger datasets must at least parse and elaborate.
            for dataset in [Dataset::Medium, Dataset::Large, Dataset::ExtraLarge] {
                kernel.build(dataset).unwrap();
            }
        }
    }

    #[test]
    fn kernel_names_round_trip() {
        for kernel in Kernel::ALL {
            assert_eq!(Kernel::by_name(kernel.name()), Some(kernel));
        }
        assert_eq!(Kernel::by_name("no-such-kernel"), None);
    }

    #[test]
    fn gemm_mini_access_count_matches_closed_form() {
        let scop = Kernel::Gemm.build(Dataset::Mini).unwrap();
        let (ni, nj, nk) = (20, 25, 30);
        // C[i][j] *= beta: 2 accesses; C += alpha*A*B: 4 accesses.
        let expected = ni * nj * 2 + ni * nk * nj * 4;
        assert_eq!(scop::count_accesses(&scop), expected);
    }

    #[test]
    fn jacobi_2d_mini_access_count_matches_closed_form() {
        let scop = Kernel::Jacobi2d.build(Dataset::Mini).unwrap();
        let (tsteps, n) = (20u64, 30u64);
        let expected = tsteps * 2 * (n - 2) * (n - 2) * 6;
        assert_eq!(scop::count_accesses(&scop), expected);
    }

    #[test]
    fn stencils_are_classified() {
        assert!(Kernel::Jacobi2d.is_stencil());
        assert!(!Kernel::Gemm.is_stencil());
        assert_eq!(Kernel::ALL.len(), 30);
    }

    #[test]
    fn mini_kernels_simulate_without_panicking() {
        let config = CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru);
        for kernel in Kernel::ALL {
            let scop = kernel.build(Dataset::Mini).unwrap();
            let result = simulate_single(&scop, &config);
            assert!(result.accesses > 0, "{kernel}");
            assert!(result.l1().misses > 0, "{kernel}");
        }
    }

    #[test]
    fn scalar_elaboration_adds_accesses() {
        let without = Kernel::Gramschmidt.build(Dataset::Mini).unwrap();
        let with = Kernel::Gramschmidt
            .build_with_options(Dataset::Mini, &ElaborateOptions::with_scalars())
            .unwrap();
        assert!(scop::count_accesses(&with) > scop::count_accesses(&without));
    }
}
