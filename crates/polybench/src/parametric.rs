//! Parametric (tileable) variants of PolyBench kernels.
//!
//! The constant sources in this crate bake every extent into the text, so
//! exploring a tile-size grid means generating and re-parsing one source
//! per grid point.  The templates here declare the problem and tile sizes
//! as `param`s instead: a [`scop::ParametricScop`] parses the template once
//! and stamps out each grid point by substitution, and the serving layer's
//! family tier caches the whole grid under one family address.
//!
//! The constant generators ([`tiled_gemm`]) render the *same* program text
//! with the parameters substituted by hand.  They exist so tests and CI can
//! prove the equivalence: a template instance and its hand-written constant
//! twin share one canonical address and one report.

/// A loop-tiled `gemm` (C = α·A×B + β·C) over problem sizes `NI × NJ × NK`
/// with an `TI × TJ` tile over the `i`/`j` loops.  If-guards cover the
/// ragged last tiles, so every positive binding is legal — tile sizes need
/// not divide the problem sizes.
pub const TILED_GEMM: &str = "\
param NI, NJ, NK, TI, TJ;
double C[NI][NJ]; double A[NI][NK]; double B[NK][NJ];
for (ii = 0; ii < NI; ii += TI)
  for (jj = 0; jj < NJ; jj += TJ)
    for (i = ii; i < ii + TI; i++)
      if (i < NI) {
        for (j = jj; j < jj + TJ; j++)
          if (j < NJ) C[i][j] *= beta;
        for (k = 0; k < NK; k++)
          for (j = jj; j < jj + TJ; j++)
            if (j < NJ) C[i][j] += alpha * A[i][k] * B[k][j];
      }
";

/// The constant-source twin of [`TILED_GEMM`]: the same tiled program with
/// the parameters substituted textually.  Instances of the template and the
/// output of this generator share one canonical address.
pub fn tiled_gemm(ni: u64, nj: u64, nk: u64, ti: u64, tj: u64) -> String {
    format!(
        "double C[{ni}][{nj}]; double A[{ni}][{nk}]; double B[{nk}][{nj}];\n\
         for (ii = 0; ii < {ni}; ii += {ti})\n\
           for (jj = 0; jj < {nj}; jj += {tj})\n\
             for (i = ii; i < ii + {ti}; i++)\n\
               if (i < {ni}) {{\n\
                 for (j = jj; j < jj + {tj}; j++)\n\
                   if (j < {nj}) C[i][j] *= beta;\n\
                 for (k = 0; k < {nk}; k++)\n\
                   for (j = jj; j < jj + {tj}; j++)\n\
                     if (j < {nj}) C[i][j] += alpha * A[i][k] * B[k][j];\n\
               }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scop::{canonical_text, parse_program, ParamBindings, ParametricScop};

    #[test]
    fn template_instances_match_the_constant_generator() {
        let template = ParametricScop::parse(TILED_GEMM).expect("template parses");
        assert_eq!(template.params(), ["NI", "NJ", "NK", "TI", "TJ"]);
        // Ragged tiles included: 7 and 5 do not divide 20 and 18.
        for (ni, nj, nk, ti, tj) in [(16, 16, 16, 4, 4), (20, 18, 12, 7, 5)] {
            let bindings = ParamBindings::new()
                .with("NI", ni)
                .with("NJ", nj)
                .with("NK", nk)
                .with("TI", ti)
                .with("TJ", tj);
            let instance = template
                .instantiate_program(&bindings)
                .expect("positive bindings instantiate");
            let by_hand = parse_program(&tiled_gemm(
                ni as u64, nj as u64, nk as u64, ti as u64, tj as u64,
            ))
            .expect("constant twin parses");
            assert_eq!(
                canonical_text(&instance),
                canonical_text(&by_hand),
                "NI={ni} NJ={nj} NK={nk} TI={ti} TJ={tj}"
            );
        }
    }

    #[test]
    fn tiling_preserves_the_access_count() {
        // A tiled gemm touches exactly the accesses of the untiled one.
        let untiled = crate::sources_la::gemm(12, 10, 8);
        let untiled = scop::parse_scop(&untiled).expect("untiled gemm builds");
        let template = ParametricScop::cached(TILED_GEMM).expect("template parses");
        let tiled = template
            .instantiate(
                &ParamBindings::new()
                    .with("NI", 12)
                    .with("NJ", 10)
                    .with("NK", 8)
                    .with("TI", 5)
                    .with("TJ", 3),
            )
            .expect("tiled instance builds");
        assert_eq!(scop::count_accesses(&tiled), scop::count_accesses(&untiled));
    }
}
