//! End-to-end service behaviour: thundering-herd coalescing, cache-hit
//! bit-identity under α-renaming, and batch scheduling through the
//! work-stealing pool.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, KernelSpec, SimRequest};
use serve::{ServeConfig, Served, SimService};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

fn memory() -> MemoryConfig {
    MemoryConfig::single(CacheConfig::with_sets(4, 8, 64, ReplacementPolicy::Lru))
}

fn request(code: &str) -> SimRequest {
    SimRequest::new(KernelSpec::source("k", code), memory(), Backend::warping())
}

const KERNEL: &str = "double A[64]; for (i = 0; i < 64; i++) A[i] = A[i - 1] + A[i];";
/// `KERNEL` under α-renaming: different array, iterator and whitespace-free
/// bound spelling, same simulation.
const KERNEL_RENAMED: &str =
    "double buf[64]; for (t = 0; t <= 63; t++) buf[t] = buf[t - 1] + buf[t];";

/// A thundering herd of N identical submissions costs one simulation: the
/// leader's runner is gated until every follower has coalesced, so the test
/// is deterministic, not racy.
#[test]
fn thundering_herd_coalesces_onto_one_simulation() {
    const HERD: usize = 8;
    let runs = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = {
        let runs = runs.clone();
        let release = release.clone();
        Arc::new(
            SimService::new(ServeConfig {
                workers: 2,
                cache_capacity: 16,
                exact_budget: None,
                warm_paths: true,
            })
            .with_runner(move |request| {
                runs.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    thread::yield_now();
                }
                Engine::new().run(request)
            }),
        )
    };

    let submitters: Vec<_> = (0..HERD)
        .map(|_| {
            let service = service.clone();
            thread::spawn(move || service.submit(&request(KERNEL)).expect("herd is served"))
        })
        .collect();
    // Followers count themselves before they park, so once HERD-1 have
    // coalesced the leader (already inside the gated runner) is the only
    // submission that will ever simulate.
    while service.stats().coalesced < (HERD - 1) as u64 {
        thread::yield_now();
    }
    release.store(true, Ordering::SeqCst);

    let outcomes: Vec<_> = submitters
        .into_iter()
        .map(|handle| handle.join().expect("submitter thread"))
        .collect();
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "one simulation for the herd"
    );
    let simulated = outcomes
        .iter()
        .filter(|(_, how)| *how == Served::Simulated)
        .count();
    let coalesced = outcomes
        .iter()
        .filter(|(_, how)| *how == Served::Coalesced)
        .count();
    assert_eq!((simulated, coalesced), (1, HERD - 1));
    let reference = outcomes[0].0.to_json();
    for (report, _) in &outcomes {
        assert_eq!(
            report.to_json(),
            reference,
            "herd reports are bit-identical"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.requests, HERD as u64);
    assert_eq!(stats.simulated, 1);
    assert_eq!(stats.coalesced, (HERD - 1) as u64);
}

/// An α-renamed resubmission is a cache hit and its report is byte-for-byte
/// the cold report (cached timing fields included).
#[test]
fn renamed_resubmission_hits_the_cache_bit_identically() {
    let service = SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 8,
        exact_budget: None,
        warm_paths: true,
    });
    let (cold, how) = service.submit(&request(KERNEL)).expect("cold run succeeds");
    assert_eq!(how, Served::Simulated);
    let (warm, how) = service
        .submit(&request(KERNEL_RENAMED))
        .expect("warm run succeeds");
    assert_eq!(how, Served::CacheHit);
    assert_eq!(warm.to_json(), cold.to_json());
    let stats = service.stats();
    assert_eq!((stats.simulated, stats.cache_hits), (1, 1));
}

/// Errors are reported but never cached: a failing request is retried on
/// its next submission.
#[test]
fn errors_are_not_cached() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let service = {
        let attempts = attempts.clone();
        SimService::new(ServeConfig {
            workers: 1,
            cache_capacity: 8,
            exact_budget: None,
            warm_paths: true,
        })
        .with_runner(move |request| {
            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(engine::EngineError::InvalidOptions("transient".to_string()))
            } else {
                Engine::new().run(request)
            }
        })
    };
    assert!(service.submit(&request(KERNEL)).is_err());
    let (_, how) = service.submit(&request(KERNEL)).expect("retry succeeds");
    assert_eq!(how, Served::Simulated, "the error was not cached");
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
    assert_eq!(service.stats().errors, 1);
}

/// `run_batch` returns results in input order, dedups duplicates within the
/// batch, and stamps the measured queue latency into simulated reports.
#[test]
fn batch_results_are_ordered_deduped_and_queue_stamped() {
    let service = Arc::new(SimService::new(ServeConfig {
        workers: 4,
        cache_capacity: 32,
        exact_budget: None,
        warm_paths: true,
    }));
    let distinct = [
        "double A[16]; for (i = 0; i < 16; i++) A[i] = A[i];",
        "double A[32]; for (i = 0; i < 32; i++) A[i] = A[i];",
        "double A[48]; for (i = 0; i < 48; i++) A[i] = A[i];",
        "double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];",
    ];
    // 16 requests over 4 distinct kernels, duplicates interleaved.
    let requests: Vec<SimRequest> = (0..16).map(|i| request(distinct[i % 4])).collect();
    let outcomes = service.run_batch(&requests);
    assert_eq!(outcomes.len(), requests.len());

    let mut by_kernel = Vec::new();
    for (outcome, request) in outcomes.iter().zip(&requests) {
        let (report, _) = outcome.as_ref().expect("batch request served");
        // Input order: each slot's report answers its own request.
        assert_eq!(
            report.result.accesses,
            2 * expected_extent(request),
            "slot answers its own kernel"
        );
        assert!(
            report.queue_ns.is_some(),
            "batch reports carry queue latency"
        );
        by_kernel.push(report.to_json());
    }
    // Duplicates got bit-identical reports.
    for i in 0..16 {
        assert_eq!(by_kernel[i], by_kernel[i % 4]);
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 16);
    assert_eq!(stats.simulated, 4, "one simulation per distinct kernel");
    assert_eq!(
        stats.cache_hits + stats.coalesced,
        12,
        "every duplicate was deduped or cached"
    );
}

/// The loop extent encoded in the bodies of
/// [`batch_results_are_ordered_deduped_and_queue_stamped`]'s kernels.
fn expected_extent(request: &SimRequest) -> u64 {
    match &request.kernel {
        KernelSpec::Source { code, .. } => {
            let marker = "i < ";
            let start = code.find(marker).expect("kernel has a bound") + marker.len();
            code[start..]
                .split(';')
                .next()
                .expect("bound ends")
                .trim()
                .parse()
                .expect("numeric bound")
        }
        _ => unreachable!("batch test uses source kernels"),
    }
}

/// The family tier: parametric submissions are auto-registered, repeat
/// `(bindings, config)` instances memoise their canonical address, and a
/// parametric instance shares its report — byte for byte — with the
/// hand-written constant kernel it denotes.
#[test]
fn family_tier_memoises_instances_and_shares_reports() {
    let template = "param N, T;\n\
        double A[N];\n\
        for (ii = 0; ii < N; ii += T)\n\
            for (i = ii; i < ii + T; i++)\n\
                if (i < N) A[i] = A[i - 1] + A[i];";
    let service = SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 32,
        exact_budget: None,
        warm_paths: true,
    });
    let parametric = |n: i64, t: i64| {
        SimRequest::new(
            KernelSpec::parametric("tiled", template, [("N", n), ("T", t)]),
            memory(),
            Backend::warping(),
        )
    };

    // Cold: simulated, family auto-registered.
    let (cold, how) = service.submit(&parametric(64, 8)).expect("cold instance");
    assert_eq!(how, Served::Simulated);
    // Same instance again: a family-tier report-cache hit.
    let (warm, how) = service.submit(&parametric(64, 8)).expect("warm instance");
    assert_eq!(how, Served::CacheHit);
    assert_eq!(warm.to_json(), cold.to_json());
    // A different binding is a different instance (fresh simulation).
    let (_, how) = service.submit(&parametric(64, 16)).expect("new instance");
    assert_eq!(how, Served::Simulated);

    // The hand-written constant kernel hits the parametric instance's
    // cached report.
    let constant = request(
        "double A[64];\n\
         for (ii = 0; ii < 64; ii += 8)\n\
             for (i = ii; i < ii + 8; i++)\n\
                 if (i < 64) A[i] = A[i - 1] + A[i];",
    );
    let (from_cache, how) = service.submit(&constant).expect("constant spelling");
    assert_eq!(how, Served::CacheHit);
    assert_eq!(from_cache.result, cold.result);

    let stats = service.stats();
    assert_eq!(stats.families, 1);
    assert_eq!(stats.family_requests, 3);
    assert_eq!(stats.family_hits, 1, "the repeat instance hit via the memo");
    let families = service.family_stats();
    assert_eq!(families.len(), 1);
    assert_eq!(families[0].name, "tiled");
    assert_eq!(families[0].params, vec!["N".to_string(), "T".to_string()]);
    assert_eq!(families[0].instances, 2);
}

/// Explicit registration is idempotent across α-renamings and rejects
/// degenerate templates with actionable errors.
#[test]
fn family_registration_is_idempotent_and_validated() {
    let service = SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 8,
        exact_budget: None,
        warm_paths: true,
    });
    let a = service
        .register_family(
            "scan",
            "param N; double A[N]; for (i = 0; i < N; i++) A[i] = A[i];",
        )
        .expect("valid family");
    let b = service
        .register_family(
            "scan-renamed",
            "param M; double buf[M]; for (t = 0; t < M; t++) buf[t] = buf[t];",
        )
        .expect("renamed family");
    assert_eq!(a.family, b.family, "α-renaming does not fork the family");
    assert_eq!(service.stats().families, 1);

    let err = service
        .register_family("broken", "param N; double A[N; for (i")
        .expect_err("parse errors surface");
    assert!(err.contains("failed to parse"), "{err}");
    let err = service
        .register_family(
            "constant",
            "double A[8]; for (i = 0; i < 8; i++) A[i] = A[i];",
        )
        .expect_err("parameterless templates are instances");
    assert!(err.contains("declares no parameters"), "{err}");
}

/// `ServeConfig::validate` rejects the degenerate server configurations the
/// CLI would otherwise silently clamp.
#[test]
fn degenerate_serve_configs_are_rejected_with_clear_errors() {
    let err = ServeConfig {
        workers: 0,
        cache_capacity: 64,
        exact_budget: None,
        warm_paths: true,
    }
    .validate()
    .expect_err("zero workers is a misconfiguration");
    assert!(err.contains("workers"), "{err}");
    let err = ServeConfig {
        workers: 2,
        cache_capacity: 0,
        exact_budget: None,
        warm_paths: true,
    }
    .validate()
    .expect_err("zero cache capacity is a misconfiguration");
    assert!(err.contains("cache capacity"), "{err}");
    let err = ServeConfig {
        workers: 2,
        cache_capacity: 64,
        exact_budget: Some(0),
        warm_paths: true,
    }
    .validate()
    .expect_err("a zero access budget would degrade everything");
    assert!(err.contains("exact budget"), "{err}");
    assert!(ServeConfig::default().validate().is_ok());
}

/// Degraded mode: with an exact-simulation budget set, an oversized exact
/// request is rewritten onto the sampling backend, its report is cached
/// under the *sampled* request's canonical address (never the exact one),
/// and requests within the budget run exactly as asked.
#[test]
fn exact_budget_degrades_oversized_requests_onto_sampling() {
    let big = "double A[4096]; for (i = 0; i < 4096; i++) A[i] = A[i];";
    let small = "double A[32]; for (i = 0; i < 32; i++) A[i] = A[i];";
    let service = SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 16,
        exact_budget: Some(1000),
        warm_paths: true,
    });

    // 8192 dynamic accesses blow the 1000-access budget: the classic
    // request comes back from the sampling backend, approximation stats
    // attached.
    let classic_big = SimRequest::new(KernelSpec::source("big", big), memory(), Backend::Classic);
    let (report, how) = service.submit(&classic_big).expect("degraded run succeeds");
    assert_eq!(how, Served::Simulated);
    assert_eq!(report.backend, "sampled", "the request was degraded");
    let approx = report
        .approx
        .as_ref()
        .expect("degraded reports carry approx stats");
    assert!(approx.sampled_fraction < 1.0, "something was extrapolated");
    assert_eq!(service.stats().degraded, 1);

    // The degraded report lives at the sampled request's cache address: an
    // explicitly sampled submission of the same kernel is a cache hit...
    let sampled_big = SimRequest::new(KernelSpec::source("big", big), memory(), Backend::sampled());
    let (warm, how) = service.submit(&sampled_big).expect("sampled run succeeds");
    assert_eq!(how, Served::CacheHit);
    assert_eq!(warm.to_json(), report.to_json());
    // ...which is only sound because the degraded address can never collide
    // with the exact request's own address.
    assert_ne!(
        classic_big.canonical_hash(),
        sampled_big.canonical_hash(),
        "a degraded report must never shadow a cached exact report"
    );

    // A kernel within the budget is served exactly as submitted.
    let classic_small = SimRequest::new(
        KernelSpec::source("small", small),
        memory(),
        Backend::Classic,
    );
    let (report, _) = service.submit(&classic_small).expect("exact run succeeds");
    assert_eq!(report.backend, "classic");
    assert!(report.approx.is_none());
    assert_eq!(
        service.stats().degraded,
        1,
        "the small kernel was not degraded"
    );

    // Analytical backends are already cheap and are never degraded.
    let haystack_big = SimRequest::new(
        KernelSpec::source("big", big),
        MemoryConfig::single(CacheConfig::fully_associative(
            64,
            8,
            ReplacementPolicy::Lru,
        )),
        Backend::Haystack,
    );
    let (report, _) = service
        .submit(&haystack_big)
        .expect("analytical run succeeds");
    assert_eq!(report.backend, "haystack");
    assert_eq!(service.stats().degraded, 1);
}

/// The cross-instance warm path: a planned sweep of a parametric family
/// donates calibration (sampled) and warp hints (warping) from each
/// instance to the next, every point after the first per coordinate is a
/// calibration hit, and exact results stay bit-identical to a cold
/// service with warm paths disabled.
#[test]
fn family_sweeps_reuse_warm_state_soundly() {
    const FAMILY: &str = "param N, T;\n\
        double A[N]; double B[N];\n\
        for (ii = 0; ii < N; ii += T)\n\
            for (i = ii; i < ii + T; i++)\n\
                if (i < N) B[i] = A[i] + B[i];";
    let config = |warm_paths| ServeConfig {
        workers: 1,
        cache_capacity: 64,
        exact_budget: None,
        warm_paths,
    };
    let warm = SimService::new(config(true));
    let cold = SimService::new(config(false));
    let tiles = [8i64, 16, 24, 32];
    let requests: Vec<SimRequest> = tiles
        .iter()
        .map(|&t| {
            SimRequest::new(
                KernelSpec::parametric("tiled", FAMILY, [("N", 4096), ("T", t)]),
                memory(),
                Backend::sampled(),
            )
        })
        .collect();
    for request in &requests {
        let (warm_report, how) = warm.submit(request).expect("warm run succeeds");
        assert_eq!(how, Served::Simulated);
        let (cold_report, _) = cold.submit(request).expect("cold run succeeds");
        // Sampled counts may differ between seeded and cold schedules,
        // but both must stay within their own reported bounds of the
        // exact counts.
        let exact = Engine::new()
            .run(&SimRequest::new(
                request.kernel.clone(),
                request.memory.clone(),
                Backend::Classic,
            ))
            .expect("exact run succeeds");
        for (report, label) in [(&warm_report, "warm"), (&cold_report, "cold")] {
            let approx = report
                .approx
                .as_ref()
                .expect("sampled reports carry approx");
            for (level, bound) in approx.per_level_error_bound.iter().enumerate() {
                let err = exact.levels[level]
                    .misses
                    .abs_diff(report.levels[level].misses);
                assert!(err <= *bound, "{label} level {level}: {err} > {bound}");
            }
        }
    }
    let stats = warm.stats();
    assert_eq!(stats.calibration_misses, 1, "only the first point is cold");
    assert_eq!(
        stats.calibration_hits,
        tiles.len() as u64 - 1,
        "every later point seeds from its predecessor"
    );
    assert_eq!(cold.stats().calibration_hits, 0);
    assert_eq!(cold.stats().calibration_misses, 0);

    // Exact backends: warp-hint donation must be bit-exact.
    for &t in &tiles {
        let request = SimRequest::new(
            KernelSpec::parametric("tiled", FAMILY, [("N", 4096), ("T", t)]),
            memory(),
            Backend::warping(),
        );
        let (warm_report, _) = warm.submit(&request).expect("warm run succeeds");
        let (cold_report, _) = cold.submit(&request).expect("cold run succeeds");
        assert_eq!(warm_report.result, cold_report.result, "T={t}");
        assert_eq!(warm_report.levels, cold_report.levels, "T={t}");
    }
    assert!(warm.stats().warp_donations >= 1);
    let slots = warm.calibration_stats();
    assert_eq!(slots.len(), 2, "one sampled + one warping coordinate");
}

/// Satellite: warm state is keyed by the full memory × backend coordinate,
/// so changing the hierarchy or the replacement policy can never leak a
/// calibration across configurations.
#[test]
fn calibration_cache_invalidates_on_hierarchy_or_policy_change() {
    let service = SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 64,
        exact_budget: None,
        warm_paths: true,
    });
    const FAMILY: &str = "param N; double A[N]; for (i = 0; i < N; i++) A[i] = A[i - 1] + A[i];";
    let lru = MemoryConfig::single(CacheConfig::with_sets(4, 8, 64, ReplacementPolicy::Lru));
    let plru = MemoryConfig::single(CacheConfig::with_sets(4, 8, 64, ReplacementPolicy::Plru));
    let two_level = MemoryConfig::two_level(
        CacheConfig::with_sets(4, 8, 64, ReplacementPolicy::Lru),
        CacheConfig::with_sets(32, 8, 64, ReplacementPolicy::Lru),
    );
    let submit = |memory: &MemoryConfig, n: i64| {
        let request = SimRequest::new(
            KernelSpec::parametric("scan", FAMILY, [("N", n)]),
            memory.clone(),
            Backend::sampled(),
        );
        service.submit(&request).expect("run succeeds")
    };
    submit(&lru, 60_000);
    // Same policy, neighbouring binding: a hit.
    submit(&lru, 61_000);
    assert_eq!(service.stats().calibration_hits, 1);
    // New policy and new hierarchy: both must calibrate cold (a fresh
    // slot each), not reuse the LRU calibration.
    submit(&plru, 60_000);
    submit(&two_level, 60_000);
    let stats = service.stats();
    assert_eq!(stats.calibration_hits, 1, "no cross-coordinate reuse");
    assert_eq!(stats.calibration_misses, 3);
    assert_eq!(service.calibration_stats().len(), 3);
}
