//! End-to-end service behaviour: thundering-herd coalescing, cache-hit
//! bit-identity under α-renaming, and batch scheduling through the
//! work-stealing pool.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, KernelSpec, SimRequest};
use serve::{ServeConfig, Served, SimService};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

fn memory() -> MemoryConfig {
    MemoryConfig::single(CacheConfig::with_sets(4, 8, 64, ReplacementPolicy::Lru))
}

fn request(code: &str) -> SimRequest {
    SimRequest::new(KernelSpec::source("k", code), memory(), Backend::warping())
}

const KERNEL: &str = "double A[64]; for (i = 0; i < 64; i++) A[i] = A[i - 1] + A[i];";
/// `KERNEL` under α-renaming: different array, iterator and whitespace-free
/// bound spelling, same simulation.
const KERNEL_RENAMED: &str =
    "double buf[64]; for (t = 0; t <= 63; t++) buf[t] = buf[t - 1] + buf[t];";

/// A thundering herd of N identical submissions costs one simulation: the
/// leader's runner is gated until every follower has coalesced, so the test
/// is deterministic, not racy.
#[test]
fn thundering_herd_coalesces_onto_one_simulation() {
    const HERD: usize = 8;
    let runs = Arc::new(AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let service = {
        let runs = runs.clone();
        let release = release.clone();
        Arc::new(
            SimService::new(ServeConfig {
                workers: 2,
                cache_capacity: 16,
            })
            .with_runner(move |request| {
                runs.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    thread::yield_now();
                }
                Engine::new().run(request)
            }),
        )
    };

    let submitters: Vec<_> = (0..HERD)
        .map(|_| {
            let service = service.clone();
            thread::spawn(move || service.submit(&request(KERNEL)).expect("herd is served"))
        })
        .collect();
    // Followers count themselves before they park, so once HERD-1 have
    // coalesced the leader (already inside the gated runner) is the only
    // submission that will ever simulate.
    while service.stats().coalesced < (HERD - 1) as u64 {
        thread::yield_now();
    }
    release.store(true, Ordering::SeqCst);

    let outcomes: Vec<_> = submitters
        .into_iter()
        .map(|handle| handle.join().expect("submitter thread"))
        .collect();
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "one simulation for the herd"
    );
    let simulated = outcomes
        .iter()
        .filter(|(_, how)| *how == Served::Simulated)
        .count();
    let coalesced = outcomes
        .iter()
        .filter(|(_, how)| *how == Served::Coalesced)
        .count();
    assert_eq!((simulated, coalesced), (1, HERD - 1));
    let reference = outcomes[0].0.to_json();
    for (report, _) in &outcomes {
        assert_eq!(
            report.to_json(),
            reference,
            "herd reports are bit-identical"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.requests, HERD as u64);
    assert_eq!(stats.simulated, 1);
    assert_eq!(stats.coalesced, (HERD - 1) as u64);
}

/// An α-renamed resubmission is a cache hit and its report is byte-for-byte
/// the cold report (cached timing fields included).
#[test]
fn renamed_resubmission_hits_the_cache_bit_identically() {
    let service = SimService::new(ServeConfig {
        workers: 1,
        cache_capacity: 8,
    });
    let (cold, how) = service.submit(&request(KERNEL)).expect("cold run succeeds");
    assert_eq!(how, Served::Simulated);
    let (warm, how) = service
        .submit(&request(KERNEL_RENAMED))
        .expect("warm run succeeds");
    assert_eq!(how, Served::CacheHit);
    assert_eq!(warm.to_json(), cold.to_json());
    let stats = service.stats();
    assert_eq!((stats.simulated, stats.cache_hits), (1, 1));
}

/// Errors are reported but never cached: a failing request is retried on
/// its next submission.
#[test]
fn errors_are_not_cached() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let service = {
        let attempts = attempts.clone();
        SimService::new(ServeConfig {
            workers: 1,
            cache_capacity: 8,
        })
        .with_runner(move |request| {
            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                Err(engine::EngineError::InvalidOptions("transient".to_string()))
            } else {
                Engine::new().run(request)
            }
        })
    };
    assert!(service.submit(&request(KERNEL)).is_err());
    let (_, how) = service.submit(&request(KERNEL)).expect("retry succeeds");
    assert_eq!(how, Served::Simulated, "the error was not cached");
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
    assert_eq!(service.stats().errors, 1);
}

/// `run_batch` returns results in input order, dedups duplicates within the
/// batch, and stamps the measured queue latency into simulated reports.
#[test]
fn batch_results_are_ordered_deduped_and_queue_stamped() {
    let service = Arc::new(SimService::new(ServeConfig {
        workers: 4,
        cache_capacity: 32,
    }));
    let distinct = [
        "double A[16]; for (i = 0; i < 16; i++) A[i] = A[i];",
        "double A[32]; for (i = 0; i < 32; i++) A[i] = A[i];",
        "double A[48]; for (i = 0; i < 48; i++) A[i] = A[i];",
        "double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];",
    ];
    // 16 requests over 4 distinct kernels, duplicates interleaved.
    let requests: Vec<SimRequest> = (0..16).map(|i| request(distinct[i % 4])).collect();
    let outcomes = service.run_batch(&requests);
    assert_eq!(outcomes.len(), requests.len());

    let mut by_kernel = Vec::new();
    for (outcome, request) in outcomes.iter().zip(&requests) {
        let (report, _) = outcome.as_ref().expect("batch request served");
        // Input order: each slot's report answers its own request.
        assert_eq!(
            report.result.accesses,
            2 * expected_extent(request),
            "slot answers its own kernel"
        );
        assert!(
            report.queue_ns.is_some(),
            "batch reports carry queue latency"
        );
        by_kernel.push(report.to_json());
    }
    // Duplicates got bit-identical reports.
    for i in 0..16 {
        assert_eq!(by_kernel[i], by_kernel[i % 4]);
    }
    let stats = service.stats();
    assert_eq!(stats.requests, 16);
    assert_eq!(stats.simulated, 4, "one simulation per distinct kernel");
    assert_eq!(
        stats.cache_hits + stats.coalesced,
        12,
        "every duplicate was deduped or cached"
    );
}

/// The loop extent encoded in the bodies of
/// [`batch_results_are_ordered_deduped_and_queue_stamped`]'s kernels.
fn expected_extent(request: &SimRequest) -> u64 {
    match &request.kernel {
        KernelSpec::Source { code, .. } => {
            let marker = "i < ";
            let start = code.find(marker).expect("kernel has a bound") + marker.len();
            code[start..]
                .split(';')
                .next()
                .expect("bound ends")
                .trim()
                .parse()
                .expect("numeric bound")
        }
        _ => unreachable!("batch test uses source kernels"),
    }
}
