//! Simulation-as-a-service over the [`Engine`] facade.
//!
//! PRs 3–5 made a single request cheap (~1–2 ms even over 64 MiB
//! hierarchies); the remaining cost of serving heavy traffic sits *above*
//! [`Engine::run_batch`]: every request used to re-simulate from scratch,
//! identical in-flight requests each paid full price, and batch fan-out
//! was static.  This crate adds the serving layer the ROADMAP's
//! millions-of-users story needs:
//!
//! * a **content-addressed report cache** ([`cache::ReportCache`]) keyed by
//!   [`SimRequest::canonical_hash`] — repeated kernels, under any spelling,
//!   are cache hits;
//! * **in-flight dedup** ([`dedup::PendingMap`]) — a thundering herd of one
//!   kernel coalesces onto a single simulation;
//! * a **work-stealing worker pool** ([`pool::WorkerPool`]) replacing
//!   `run_batch`'s static fan-out, recording per-request queue latency;
//! * a **JSON-lines wire protocol** ([`wire::serve_lines`]) streaming
//!   reports back out of order as they finish, with a GraphBrew-style
//!   [`ServeStats`] JSON summary on shutdown;
//! * a **degraded mode** ([`ServeConfig::exact_budget`]) — exact requests
//!   whose kernels exceed an operator-set access budget are rewritten onto
//!   the interval-sampling backend ([`engine::Backend::Sampled`]) with a
//!   reported error bound, so one oversized kernel cannot monopolise a
//!   worker.  Degraded reports are cached under the sampled request's own
//!   canonical address (cached exact reports are never silently replaced)
//!   and their wire envelopes are marked `"approx": true`.
//!
//! # Example
//!
//! ```
//! use engine::{Backend, KernelSpec, SimRequest};
//! use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
//! use serve::{Served, ServeConfig, SimService};
//!
//! let service = SimService::new(ServeConfig::default());
//! let request = SimRequest::new(
//!     KernelSpec::source("k", "double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];"),
//!     MemoryConfig::from(CacheConfig::fully_associative(8, 8, ReplacementPolicy::Lru)),
//!     Backend::warping(),
//! );
//! let (cold, how) = service.submit(&request).unwrap();
//! assert_eq!(how, Served::Simulated);
//! let (warm, how) = service.submit(&request).unwrap();
//! assert_eq!(how, Served::CacheHit);
//! // The warm report is byte-identical to the cold one.
//! assert_eq!(cold.to_json(), warm.to_json());
//! assert_eq!(service.stats().cache_hits, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dedup;
pub mod family;
pub mod planner;
pub mod pool;
pub mod wire;

pub use cache::{CacheCounters, ReportCache};
pub use dedup::{Claim, Follower, LeaderToken, PendingMap};
pub use family::{CalibrationCache, CalibrationStats, FamilyStats};
pub use planner::{plan_order, PlanPoint};
pub use pool::{PoolCounters, WorkerPool};
pub use wire::{serve_lines, serve_lines_with, WireOptions};

use family::{FamilyEntry, FamilyRegistry};

use engine::{Backend, Engine, EngineError, KernelSpec, SamplingOptions, SimReport, SimRequest};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How the serving layer answered a submission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Served {
    /// The request ran on the engine (a cold miss).
    Simulated,
    /// The report came from the content-addressed cache.
    CacheHit,
    /// The submission coalesced onto an identical in-flight simulation.
    Coalesced,
}

impl Served {
    /// A short stable identifier used on the wire.
    pub fn label(self) -> &'static str {
        match self {
            Served::Simulated => "simulated",
            Served::CacheHit => "cache_hit",
            Served::Coalesced => "coalesced",
        }
    }
}

/// Configuration of a [`SimService`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads in the scheduling pool.
    pub workers: usize,
    /// Report-cache bound, in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Exact-simulation budget, in dynamic accesses.  When set, an exact
    /// simulation request (classic, warping or trace) whose kernel exceeds
    /// this many accesses is served **degraded**: the service rewrites it
    /// onto [`Backend::Sampled`] with the default sampling options, so one
    /// oversized kernel cannot monopolise a worker.  Degraded reports are
    /// cached under the *sampled* request's canonical address — a cached
    /// exact report is never silently replaced by an approximation — and
    /// the wire protocol marks their envelopes `"approx": true`.  `None`
    /// (the default) serves every request exactly as asked.
    pub exact_budget: Option<u64>,
    /// Cross-instance warm paths ([`CalibrationCache`]): parametric
    /// submissions donate sampling calibrations and warp-attempt hints to
    /// the next instance of their family under the same memory × backend
    /// coordinate.  Donations never change exact counts (warp hints only
    /// reschedule match attempts) and every seeded sampling quantity is
    /// re-validated in-run, so this is on by default; turning it off
    /// exists for A/B benchmarking the reuse itself.
    pub warm_paths: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_capacity: 4096,
            exact_budget: None,
            warm_paths: true,
        }
    }
}

impl ServeConfig {
    /// The default configuration with `WARPSIM_SERVE_WORKERS` /
    /// `WARPSIM_SERVE_CACHE_CAP` environment overrides applied (the
    /// GraphBrew-style env-var configuration idiom, so deployments can tune
    /// the service without new flags).
    pub fn from_env() -> Self {
        let mut config = ServeConfig::default();
        if let Some(workers) = env_usize("WARPSIM_SERVE_WORKERS") {
            config.workers = workers.max(1);
        }
        if let Some(capacity) = env_usize("WARPSIM_SERVE_CACHE_CAP") {
            config.cache_capacity = capacity;
        }
        if let Some(budget) = env_u64("WARPSIM_SERVE_EXACT_BUDGET") {
            config.exact_budget = Some(budget);
        }
        if let Some(warm) = env_usize("WARPSIM_SERVE_WARM_PATHS") {
            config.warm_paths = warm != 0;
        }
        config
    }

    /// Validates operator-supplied values for a *server* deployment: both
    /// the worker pool and the report cache must be non-degenerate.
    /// (Embedders may still construct a `cache_capacity: 0` config directly
    /// to disable caching; a server with no cache or no workers is a
    /// misconfiguration, not a mode.)
    ///
    /// # Errors
    ///
    /// A message naming the offending field and a working range.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err(
                "workers must be at least 1: a pool with zero workers would accept \
                 requests but never run them"
                    .to_string(),
            );
        }
        if self.cache_capacity == 0 {
            return Err(
                "cache capacity must be at least 1 entry: capacity 0 disables the \
                 content-addressed report cache, so every request would re-simulate"
                    .to_string(),
            );
        }
        if self.exact_budget == Some(0) {
            return Err(
                "exact budget must be at least 1 access: a budget of 0 would degrade \
                 every request to sampling; omit the budget to serve everything exactly"
                    .to_string(),
            );
        }
        Ok(())
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// A JSON-serializable snapshot of the service counters (exported on
/// shutdown by the wire protocol, GraphBrew-style, so downstream tools can
/// scrape cache efficiency without parsing logs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ServeStats {
    /// Submissions accepted.
    pub requests: u64,
    /// Submissions that ran a simulation.
    pub simulated: u64,
    /// Submissions answered from the report cache.
    pub cache_hits: u64,
    /// First-probe cache misses (simulated + coalesced + errored).
    pub cache_misses: u64,
    /// Submissions that coalesced onto an in-flight identical request.
    pub coalesced: u64,
    /// Reports evicted to keep the cache within its bound.
    pub evictions: u64,
    /// Reports currently cached.
    pub cache_entries: u64,
    /// Cache bound, in entries.
    pub cache_capacity: u64,
    /// Submissions that returned an error (errors are never cached).
    pub errors: u64,
    /// Submissions rewritten onto the sampling backend because their kernel
    /// exceeded the exact-simulation budget
    /// ([`ServeConfig::exact_budget`]).  Counts every degraded submission,
    /// including ones then answered from the report cache.
    pub degraded: u64,
    /// Worker threads in the scheduling pool.
    pub workers: u64,
    /// Jobs a worker stole from another worker's deque.
    pub steals: u64,
    /// Kernel families registered (explicitly or on first parametric
    /// submission).
    pub families: u64,
    /// Submissions routed through the family tier.
    pub family_requests: u64,
    /// Family-tier submissions answered from the report cache.
    pub family_hits: u64,
    /// Sampled family submissions seeded from a stored calibration
    /// ([`CalibrationCache`]).
    pub calibration_hits: u64,
    /// Sampled family submissions that found no stored calibration and
    /// calibrated cold (the first instance per coordinate).
    pub calibration_misses: u64,
    /// Seeded submissions whose donated state failed validation and fell
    /// back to full cold calibration (sound, just slower).
    pub calibration_fallbacks: u64,
    /// Warping family submissions that received donor warp-attempt hints.
    pub warp_donations: u64,
}

type Runner = Box<dyn Fn(&SimRequest) -> Result<SimReport, EngineError> + Send + Sync>;

/// What one submission resolves to: the report and how it was served, or
/// the engine's error.
pub type Outcome = Result<(SimReport, Served), EngineError>;

/// The simulation service: an [`Engine`] behind a content-addressed report
/// cache, an in-flight dedup map and a work-stealing scheduler.
///
/// The service is `Sync`: share one per process (typically behind an
/// [`Arc`], which [`SimService::run_batch`] and the wire protocol require)
/// and submit from any thread.
pub struct SimService {
    engine: Engine,
    cache: ReportCache,
    pending: PendingMap,
    pool: WorkerPool,
    families: FamilyRegistry,
    calibrations: CalibrationCache,
    runner: Option<Runner>,
    exact_budget: Option<u64>,
    /// Memoised budget verdicts, keyed by the request's canonical hash:
    /// whether the kernel exceeds [`ServeConfig::exact_budget`].  The
    /// verdict is pure in the kernel (and the budget is fixed per
    /// service), so repeat submissions of an oversized kernel skip the
    /// build + probe entirely.
    budget_verdicts: Mutex<HashMap<u128, bool>>,
    warm_paths: bool,
    requests: AtomicU64,
    simulated: AtomicU64,
    errors: AtomicU64,
    degraded: AtomicU64,
}

impl SimService {
    /// A service over a default [`Engine`] whose per-request thread budget
    /// is the machine's parallelism divided by the pool's worker count —
    /// when several workers simulate concurrently, none of them
    /// oversubscribes the machine with parallel warp application.
    pub fn new(config: ServeConfig) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let engine = Engine::new().with_threads((cores / config.workers.max(1)).max(1));
        SimService::with_engine(engine, config)
    }

    /// A service over a caller-configured engine.
    pub fn with_engine(engine: Engine, config: ServeConfig) -> Self {
        SimService {
            engine,
            cache: ReportCache::new(config.cache_capacity),
            pending: PendingMap::new(),
            pool: WorkerPool::new(config.workers),
            families: FamilyRegistry::new(),
            calibrations: CalibrationCache::new(),
            runner: None,
            exact_budget: config.exact_budget,
            budget_verdicts: Mutex::new(HashMap::new()),
            warm_paths: config.warm_paths,
            requests: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Replaces the engine call with an arbitrary runner.  This is the
    /// instrumentation seam: tests use it to count or gate simulations
    /// deterministically (e.g. holding the leader until a known number of
    /// followers have coalesced); embedders could use it to delegate to a
    /// remote simulator.  Caching, dedup and scheduling behave exactly as
    /// with the real engine.
    pub fn with_runner(
        mut self,
        runner: impl Fn(&SimRequest) -> Result<SimReport, EngineError> + Send + Sync + 'static,
    ) -> Self {
        self.runner = Some(Box::new(runner));
        self
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Serves one request: cache hit, coalesced wait, or a fresh
    /// simulation whose report is cached for the next identical request.
    ///
    /// # Errors
    ///
    /// Whatever the engine reports ([`EngineError`]); errors are published
    /// to coalesced followers but never cached, so a transiently failing
    /// request is retried on its next submission.
    pub fn submit(&self, request: &SimRequest) -> Result<(SimReport, Served), EngineError> {
        self.submit_queued(request, None)
    }

    /// [`SimService::submit`] with the scheduler-measured queue latency of
    /// the request, which is stamped into the report (and therefore into
    /// the cache) when this submission ends up simulating.
    pub fn submit_queued(
        &self,
        request: &SimRequest,
        queue_ns: Option<u64>,
    ) -> Result<(SimReport, Served), EngineError> {
        self.requests.fetch_add(1, Ordering::SeqCst);
        let degraded = self.degrade(request);
        let request = match &degraded {
            Some(rewritten) => {
                self.degraded.fetch_add(1, Ordering::SeqCst);
                rewritten
            }
            None => request,
        };
        let (key, family) = self.address(request);
        // Fast path: one shard-local read lock.
        if let Some(report) = self.cache.get(key) {
            if let Some(entry) = &family {
                entry.count_hit();
            }
            return Ok((report, Served::CacheHit));
        }
        match self.pending.claim(key) {
            Claim::Follower(follower) => follower.wait().map(|report| (report, Served::Coalesced)),
            Claim::Leader(token) => {
                // The leader that raced us may have published + cached
                // between our probe and our claim; quiet so the common
                // path does not double-count misses.
                if let Some(report) = self.cache.get_quiet(key) {
                    if let Some(entry) = &family {
                        entry.count_hit();
                    }
                    self.pending.complete(token, Ok(report.clone()));
                    return Ok((report, Served::CacheHit));
                }
                let mut outcome = match &self.runner {
                    Some(runner) => runner(request),
                    None => self.run_warm(request),
                };
                match &mut outcome {
                    Ok(report) => {
                        if queue_ns.is_some() {
                            report.queue_ns = queue_ns;
                        }
                        self.simulated.fetch_add(1, Ordering::SeqCst);
                        self.cache.insert(key, report.clone());
                    }
                    Err(_) => {
                        self.errors.fetch_add(1, Ordering::SeqCst);
                    }
                }
                self.pending.complete(token, outcome.clone());
                outcome.map(|report| (report, Served::Simulated))
            }
        }
    }

    /// Runs a cold-cache request on the engine, threading cross-instance
    /// warm state through the family tier's [`CalibrationCache`]: a
    /// parametric request under a warm-capable backend looks up the
    /// donation its `(family, config)` predecessor left behind, runs warm,
    /// and stores what it measured for its own successor.  Requests outside
    /// the family tier (or with warm paths disabled) run plain.
    fn run_warm(&self, request: &SimRequest) -> Result<SimReport, EngineError> {
        let family = match request.family_hash() {
            Some(family) if self.warm_paths => family.as_u128(),
            _ => return self.engine.run(request),
        };
        let wants_calibration = matches!(request.backend, Backend::Sampled(_));
        if !wants_calibration && !matches!(request.backend, Backend::Warping(_)) {
            return self.engine.run(request);
        }
        let config = request.config_text();
        let ctx = self.calibrations.lookup(family, &config, wants_calibration);
        let (report, warm) = self.engine.run_warm(request, &ctx)?;
        self.calibrations.store(family, &config, &warm);
        Ok(report)
    }

    /// Per-coordinate warm-state counters (calibration/hint slots, their
    /// hits and fallbacks), sorted by (family, config).
    pub fn calibration_stats(&self) -> Vec<CalibrationStats> {
        self.calibrations.snapshot()
    }

    /// Applies the exact-simulation budget ([`ServeConfig::exact_budget`]):
    /// an exact simulation request whose kernel exceeds the budgeted access
    /// count is rewritten onto [`Backend::Sampled`] with the default
    /// options.  Returns the rewritten request, or `None` when the request
    /// should run as submitted.
    ///
    /// The rewrite happens *before* the request is resolved to its cache
    /// address, so a degraded report lives under the sampled request's
    /// canonical hash: it can never overwrite — or be confused with — a
    /// cached exact report for the same kernel.  Only the simulating exact
    /// backends are degraded; the analytical backends are already cheap,
    /// and an explicitly sampled request keeps the options it asked for.
    ///
    /// The access count is answered in closed form whenever the kernel's
    /// domains are rectangular ([`CompiledScop::static_access_count`]
    /// (scop::CompiledScop::static_access_count) multiplies per-dimension
    /// trip counts — no walking at all); non-rectangular shapes fall back
    /// to the walking probe ([`scop::exceeds_access_count`], which
    /// short-circuits once the budget is crossed).  Either way the verdict
    /// is memoised per canonical hash, so repeat submissions of the same
    /// kernel — the common case behind the report cache — skip even the
    /// build.
    fn degrade(&self, request: &SimRequest) -> Option<SimRequest> {
        let budget = self.exact_budget?;
        if !matches!(
            request.backend,
            Backend::Classic | Backend::Warping(_) | Backend::Trace
        ) {
            return None;
        }
        let key = request.canonical_hash().as_u128();
        let memoised = self
            .budget_verdicts
            .lock()
            .expect("verdict map not poisoned")
            .get(&key)
            .copied();
        let over = match memoised {
            Some(over) => over,
            None => {
                // A kernel that fails to build is left to the engine,
                // which owns the error message (and is not memoised: the
                // verdict map only records real verdicts).
                let scop = request.kernel.build().ok()?;
                let over = match scop::compile(&scop).static_access_count() {
                    Some(total) => total > budget,
                    None => scop::exceeds_access_count(&scop, budget),
                };
                self.budget_verdicts
                    .lock()
                    .expect("verdict map not poisoned")
                    .insert(key, over);
                over
            }
        };
        if !over {
            return None;
        }
        let mut rewritten = request.clone();
        rewritten.backend = Backend::Sampled(SamplingOptions::DEFAULT);
        Some(rewritten)
    }

    /// Resolves a request to its cache address, routing parametric kernels
    /// through the family tier: the family is auto-registered on first
    /// sight, and the canonical instance address of every `(config,
    /// bindings)` pair is memoised, so repeat exploration submissions skip
    /// substitution and canonicalisation (the expensive half of
    /// [`SimRequest::canonical_hash`]) and go straight to the report cache.
    fn address(&self, request: &SimRequest) -> (u128, Option<Arc<FamilyEntry>>) {
        let (Some(family), KernelSpec::Parametric { name, code, .. }) =
            (request.family_hash(), &request.kernel)
        else {
            return (request.canonical_hash().as_u128(), None);
        };
        let params = scop::ParametricScop::cached(code)
            .map(|template| template.params().to_vec())
            .unwrap_or_default();
        let (entry, _) = self.families.ensure(family.as_u128(), name, code, &params);
        entry.count_request();
        let instance_key = format!(
            "{}|{}",
            request.config_text(),
            request.kernel.param_bindings().key()
        );
        let key = match entry.instance(&instance_key) {
            Some(hash) => hash,
            None => {
                let hash = request.canonical_hash().as_u128();
                entry.record_instance(instance_key, hash);
                hash
            }
        };
        (key, Some(entry))
    }

    /// Registers a parametric kernel family ahead of time, so later
    /// submissions can reference it by its 128-bit family address plus a
    /// bindings object ([`SimService::family_kernel`]) instead of
    /// re-sending the template source on every request line.
    ///
    /// Registration is idempotent: re-registering the same family (under
    /// any α-renaming of its parameters, arrays and iterators) returns the
    /// same address and keeps the existing counters.
    ///
    /// # Errors
    ///
    /// If the template does not parse, or declares no parameters (a
    /// constant kernel is an instance, not a family — submit it as a plain
    /// `source` request).
    pub fn register_family(&self, name: &str, code: &str) -> Result<FamilyStats, String> {
        let template = scop::ParametricScop::cached(code)
            .map_err(|e| format!("family `{name}` failed to parse: {e}"))?;
        if template.params().is_empty() {
            return Err(format!(
                "family `{name}` declares no parameters; submit it as a plain `source` kernel"
            ));
        }
        let kernel = KernelSpec::parametric(name, code, [] as [(String, i64); 0]);
        let family = kernel
            .family_hash()
            .expect("parametric kernels always have a family address");
        self.families
            .ensure(family.as_u128(), name, code, template.params());
        let stats = self
            .families
            .snapshot()
            .into_iter()
            .find(|stats| stats.family == family.to_string())
            .expect("the family was just registered");
        Ok(stats)
    }

    /// Builds the kernel spec for a request that references a registered
    /// family by hex address plus bindings (the wire protocol's
    /// `{"family": …, "bindings": {…}}` form).
    ///
    /// # Errors
    ///
    /// If the address is not valid hex or names no registered family.
    pub fn family_kernel(
        &self,
        family: &str,
        bindings: &[(String, i64)],
    ) -> Result<KernelSpec, String> {
        let raw = u128::from_str_radix(family, 16)
            .map_err(|_| format!("`{family}` is not a 128-bit hex family address"))?;
        let entry = self.families.get(raw).ok_or_else(|| {
            format!(
                "unknown family `{family}`; register it first with \
                 {{\"cmd\": \"register_family\", \"name\": …, \"code\": …}}"
            )
        })?;
        Ok(KernelSpec::parametric(
            entry.name(),
            entry.code(),
            bindings.iter().cloned(),
        ))
    }

    /// Per-family counters (requests, report-cache hits, distinct
    /// instances), sorted by family address.
    pub fn family_stats(&self) -> Vec<FamilyStats> {
        self.families.snapshot()
    }

    /// Serves a batch through the work-stealing pool: requests are placed
    /// round-robin on the workers' deques (each worker gets a private run;
    /// stealing rebalances stragglers), identical requests within the batch
    /// dedup/cache exactly like wire submissions, and every simulated
    /// report carries its measured queue latency
    /// ([`SimReport::queue_ns`](engine::SimReport)).
    ///
    /// Results come back in input order, like
    /// [`Engine::run_batch`](engine::Engine::run_batch).
    pub fn run_batch(self: &Arc<Self>, requests: &[SimRequest]) -> Vec<Outcome> {
        struct BatchState {
            slots: Vec<Mutex<Option<Outcome>>>,
            remaining: Mutex<usize>,
            done: Condvar,
        }
        let state = Arc::new(BatchState {
            slots: requests.iter().map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::new(requests.len()),
            done: Condvar::new(),
        });
        for (index, request) in requests.iter().enumerate() {
            let service = self.clone();
            let state = state.clone();
            let request = request.clone();
            let enqueued = Instant::now();
            self.pool.spawn_at(index, move || {
                let queue_ns = enqueued.elapsed().as_nanos() as u64;
                let outcome = service.submit_queued(&request, Some(queue_ns));
                *state.slots[index].lock().expect("batch slot not poisoned") = Some(outcome);
                let mut remaining = state.remaining.lock().expect("batch not poisoned");
                *remaining -= 1;
                if *remaining == 0 {
                    state.done.notify_all();
                }
            });
        }
        let mut remaining = state.remaining.lock().expect("batch not poisoned");
        while *remaining > 0 {
            remaining = state.done.wait(remaining).expect("batch not poisoned");
        }
        drop(remaining);
        Arc::try_unwrap(state)
            .map(|state| {
                state
                    .slots
                    .into_iter()
                    .map(|slot| {
                        slot.into_inner()
                            .expect("batch slot not poisoned")
                            .expect("every batch slot was filled")
                    })
                    .collect()
            })
            .unwrap_or_else(|state| {
                state
                    .slots
                    .iter()
                    .map(|slot| {
                        slot.lock()
                            .expect("batch slot not poisoned")
                            .clone()
                            .expect("every batch slot was filled")
                    })
                    .collect()
            })
    }

    /// The scheduling pool (used by the wire protocol to run line jobs).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServeStats {
        let cache = self.cache.counters();
        let pool = self.pool.counters();
        let (family_requests, family_hits) = self.families.totals();
        let (calibration_hits, calibration_misses, calibration_fallbacks, warp_donations) =
            self.calibrations.totals();
        ServeStats {
            requests: self.requests.load(Ordering::SeqCst),
            simulated: self.simulated.load(Ordering::SeqCst),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            coalesced: self.pending.coalesced(),
            evictions: cache.evictions,
            cache_entries: cache.entries,
            cache_capacity: cache.capacity,
            errors: self.errors.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
            workers: pool.workers,
            steals: pool.steals,
            families: self.families.len(),
            family_requests,
            family_hits,
            calibration_hits,
            calibration_misses,
            calibration_fallbacks,
            warp_donations,
        }
    }
}
