//! In-flight request deduplication.
//!
//! A thundering herd of identical requests — the wire protocol's duplicate
//! storm, or a batch that repeats one kernel across many grid points —
//! should cost one simulation, not N.  The [`PendingMap`] coalesces them:
//! the first submission of a canonical hash claims *leadership* and runs
//! the simulation; every concurrent submission of the same hash becomes a
//! *follower* that blocks on the leader's pending slot and receives a
//! clone of the leader's result (bit-identical report, or the same error).
//!
//! The map holds only in-flight keys: the leader removes its slot when it
//! publishes, so completed requests leave no residue (the report cache is
//! the long-lived store).

use engine::{EngineError, SimReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

type Outcome = Result<SimReport, EngineError>;

/// One in-flight simulation: followers block on `done` until the leader
/// publishes into `result`.
struct Slot {
    result: Mutex<Option<Outcome>>,
    done: Condvar,
}

impl Slot {
    fn publish(&self, outcome: Outcome) {
        let mut result = self.result.lock().expect("slot not poisoned");
        *result = Some(outcome);
        self.done.notify_all();
    }
}

type SlotMap = Arc<Mutex<HashMap<u128, Arc<Slot>>>>;

/// The leader's obligation to publish: consumed by [`PendingMap::complete`].
/// Dropping it unpublished (a panicking simulation) still removes the
/// in-flight slot and wakes followers, with an error instead of leaving
/// them blocked forever.
pub struct LeaderToken {
    key: u128,
    slot: Arc<Slot>,
    slots: SlotMap,
    published: bool,
}

impl LeaderToken {
    fn publish(&mut self, outcome: Outcome) {
        {
            let mut slots = self.slots.lock().expect("pending map not poisoned");
            slots.remove(&self.key);
        }
        self.slot.publish(outcome);
        self.published = true;
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        if !self.published {
            self.publish(Err(EngineError::Kernel {
                kernel: String::new(),
                message: "the serving worker aborted before publishing a result".to_string(),
            }));
        }
    }
}

/// What a submission got from the pending map.
pub enum Claim {
    /// No identical request is in flight: the caller must simulate and
    /// [`complete`](PendingMap::complete) the token.
    Leader(LeaderToken),
    /// An identical request is in flight: the caller should
    /// [`wait`](Follower::wait).
    Follower(Follower),
}

/// A handle on another submission's in-flight simulation.
pub struct Follower {
    slot: Arc<Slot>,
}

impl Follower {
    /// Blocks until the leader publishes, then returns a clone of its
    /// outcome.
    pub fn wait(self) -> Outcome {
        let mut result = self.slot.result.lock().expect("slot not poisoned");
        loop {
            if let Some(outcome) = result.as_ref() {
                return outcome.clone();
            }
            result = self.slot.done.wait(result).expect("slot not poisoned");
        }
    }
}

/// The map of in-flight canonical hashes.
pub struct PendingMap {
    slots: SlotMap,
    coalesced: AtomicU64,
}

impl PendingMap {
    /// An empty map.
    pub fn new() -> Self {
        PendingMap {
            slots: Arc::new(Mutex::new(HashMap::new())),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Claims `key`: leadership if no identical request is in flight,
    /// otherwise a follower handle on the one that is.  The coalesced
    /// counter is incremented *before* this returns a follower, so a
    /// leader can observe how many submissions are already waiting on it.
    pub fn claim(&self, key: u128) -> Claim {
        let mut slots = self.slots.lock().expect("pending map not poisoned");
        if let Some(slot) = slots.get(&key) {
            let follower = Follower { slot: slot.clone() };
            self.coalesced.fetch_add(1, Ordering::SeqCst);
            return Claim::Follower(follower);
        }
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        slots.insert(key, slot.clone());
        Claim::Leader(LeaderToken {
            key,
            slot,
            slots: self.slots.clone(),
            published: false,
        })
    }

    /// Publishes the leader's outcome: removes the in-flight slot (later
    /// submissions of the key claim fresh leadership — by then the report
    /// cache answers them) and wakes every follower with a clone.
    pub fn complete(&self, mut token: LeaderToken, outcome: Outcome) {
        token.publish(outcome);
    }

    /// Number of submissions that coalesced onto another request's
    /// in-flight simulation.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::SeqCst)
    }

    /// Number of keys currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.lock().expect("pending map not poisoned").len()
    }
}

impl Default for PendingMap {
    fn default() -> Self {
        PendingMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    fn error(tag: &str) -> EngineError {
        EngineError::InvalidOptions(tag.to_string())
    }

    #[test]
    fn leader_then_followers_then_release() {
        let map = Arc::new(PendingMap::new());
        let Claim::Leader(token) = map.claim(7) else {
            panic!("first claim must lead");
        };
        const FOLLOWERS: usize = 4;
        let arrived = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..FOLLOWERS)
            .map(|_| {
                let map = map.clone();
                let arrived = arrived.clone();
                thread::spawn(move || {
                    let Claim::Follower(follower) = map.claim(7) else {
                        panic!("in-flight claims must follow");
                    };
                    arrived.fetch_add(1, Ordering::SeqCst);
                    follower.wait()
                })
            })
            .collect();
        // Coalescing is counted at claim time, so the leader can wait for
        // every follower to be parked before publishing.
        while map.coalesced() < FOLLOWERS as u64 {
            thread::yield_now();
        }
        map.complete(token, Err(error("published")));
        for handle in handles {
            let outcome = handle.join().expect("follower thread");
            assert_eq!(outcome.unwrap_err(), error("published"));
        }
        assert_eq!(map.coalesced(), FOLLOWERS as u64);
        assert_eq!(map.in_flight(), 0);
    }

    #[test]
    fn completion_frees_the_key() {
        let map = PendingMap::new();
        let Claim::Leader(token) = map.claim(1) else {
            panic!()
        };
        map.complete(token, Err(error("done")));
        assert!(matches!(map.claim(1), Claim::Leader(_)));
    }

    #[test]
    fn dropped_leadership_unblocks_followers() {
        let map = Arc::new(PendingMap::new());
        let Claim::Leader(token) = map.claim(9) else {
            panic!()
        };
        let Claim::Follower(follower) = map.claim(9) else {
            panic!()
        };
        drop(token);
        let outcome = follower.wait();
        assert!(matches!(outcome, Err(EngineError::Kernel { .. })));
        // The aborted leadership must not wedge the key.
        assert_eq!(map.in_flight(), 0);
        assert!(matches!(map.claim(9), Claim::Leader(_)));
    }
}
