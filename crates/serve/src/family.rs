//! The family tier of the serving layer.
//!
//! A parametric kernel names a *family* of simulations: one template,
//! many `(bindings, memory, backend)` instances.  Exploration traffic
//! (tile-size sweeps, hierarchy grids) hammers one family with hundreds of
//! instances, so the service fronts the report cache with a family
//! registry:
//!
//! * **registration** — a client sends the template once
//!   (`{"cmd": "register_family"}`); later request lines reference it by
//!   its 128-bit family address plus a bindings object, never re-sending
//!   (or re-parsing) the source;
//! * **instance memo** — within a family, the canonical instance address
//!   of every `(config, bindings)` pair already seen is memoised, so
//!   repeat submissions skip substitution and canonicalisation entirely
//!   and go straight to the report cache (the two-tier lookup:
//!   family → bindings → report);
//! * **per-family counters** — how many submissions each family received
//!   and how many were answered from the report cache, exported via
//!   [`SimService::family_stats`](crate::SimService::family_stats) and the
//!   wire protocol's `{"cmd": "families"}` line.
//!
//! Families are auto-registered on first parametric submission, so the
//! counters also cover clients that ship full parametric specs instead of
//! registering first.

use engine::{WarmContext, WarmOutcome};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One registered kernel family: identity, template and counters.
pub(crate) struct FamilyEntry {
    /// Display name from registration (or the first submission's kernel).
    name: String,
    /// The parametric template source.
    code: String,
    /// Declared parameter names, in declaration order.
    params: Vec<String>,
    /// Submissions routed to this family.
    requests: AtomicU64,
    /// Submissions answered from the report cache.
    hits: AtomicU64,
    /// `config_text|bindings` → canonical instance address.
    instances: Mutex<HashMap<String, u128>>,
}

impl FamilyEntry {
    pub(crate) fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::SeqCst);
    }

    /// The memoised canonical instance address for `instance_key`, if this
    /// `(config, bindings)` pair has been seen before.
    pub(crate) fn instance(&self, instance_key: &str) -> Option<u128> {
        self.instances
            .lock()
            .expect("family memo not poisoned")
            .get(instance_key)
            .copied()
    }

    pub(crate) fn record_instance(&self, instance_key: String, hash: u128) {
        self.instances
            .lock()
            .expect("family memo not poisoned")
            .insert(instance_key, hash);
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn code(&self) -> &str {
        &self.code
    }
}

/// A JSON-serializable snapshot of one family's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyStats {
    /// The 128-bit family address, hex-encoded.
    pub family: String,
    /// Display name.
    pub name: String,
    /// Declared parameter names.
    pub params: Vec<String>,
    /// Submissions routed to this family.
    pub requests: u64,
    /// Submissions answered from the report cache.
    pub hits: u64,
    /// Distinct `(config, bindings)` instances seen.
    pub instances: u64,
}

impl Serialize for FamilyStats {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("family".to_string(), Value::Str(self.family.clone())),
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "params".to_string(),
                Value::Array(self.params.iter().map(|p| Value::Str(p.clone())).collect()),
            ),
            ("requests".to_string(), Value::UInt(self.requests)),
            ("hits".to_string(), Value::UInt(self.hits)),
            ("instances".to_string(), Value::UInt(self.instances)),
        ])
    }
}

/// One warm-state slot: the donations the last simulation under a given
/// `(family, config)` coordinate left behind, plus per-slot counters.
#[derive(Default)]
struct WarmSlot {
    state: WarmContext,
    hits: u64,
    fallbacks: u64,
}

/// A JSON-serializable snapshot of one warm-state slot's counters, exported
/// so sweep drivers can assert reuse per (hierarchy, policy) coordinate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CalibrationStats {
    /// The 128-bit family address, hex-encoded.
    pub family: String,
    /// The memory × backend coordinate (the request's canonical config
    /// text) this slot is keyed by.
    pub config: String,
    /// Submissions that consulted this slot's stored state.
    pub hits: u64,
    /// Seeded submissions whose validation failed and re-calibrated cold.
    pub fallbacks: u64,
    /// Whether the slot currently holds a sampling calibration.
    pub has_calibration: bool,
    /// Whether the slot currently holds donated warp hints.
    pub has_warp_hints: bool,
}

impl Serialize for CalibrationStats {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("family".to_string(), Value::Str(self.family.clone())),
            ("config".to_string(), Value::Str(self.config.clone())),
            ("hits".to_string(), Value::UInt(self.hits)),
            ("fallbacks".to_string(), Value::UInt(self.fallbacks)),
            (
                "has_calibration".to_string(),
                Value::Bool(self.has_calibration),
            ),
            (
                "has_warp_hints".to_string(),
                Value::Bool(self.has_warp_hints),
            ),
        ])
    }
}

/// The cross-instance warm-state store of the family tier: per
/// `(family, hierarchy × policy × backend)` coordinate, the sampling
/// calibration ([`engine::Calibration`]) and warp-attempt hints
/// ([`engine::WarpHints`]) the previous instance measured, ready to donate
/// to the next neighbouring binding.
///
/// The key includes the request's canonical config text, so a calibration
/// measured under one hierarchy or replacement policy is *never* offered
/// to a request under another — changing either simply addresses a fresh
/// slot (and the seeded engine re-validates every donated quantity anyway,
/// so even a stale same-key donation costs time, never soundness).
#[derive(Default)]
pub struct CalibrationCache {
    slots: Mutex<HashMap<(u128, String), WarmSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
    donations: AtomicU64,
}

impl CalibrationCache {
    /// An empty cache.
    pub fn new() -> Self {
        CalibrationCache::default()
    }

    /// The stored warm state for a `(family, config)` coordinate (empty
    /// context when nothing has been donated yet).  Counts a calibration
    /// hit or miss when `count_calibration` is set (sampled submissions),
    /// and a warp-hint donation when hints are handed out.
    pub fn lookup(&self, family: u128, config: &str, count_calibration: bool) -> WarmContext {
        let mut slots = self.slots.lock().expect("calibration cache not poisoned");
        let slot = slots.entry((family, config.to_string())).or_default();
        let state = slot.state.clone();
        if count_calibration {
            if state.calibration.is_some() {
                slot.hits += 1;
                self.hits.fetch_add(1, Ordering::SeqCst);
            } else {
                self.misses.fetch_add(1, Ordering::SeqCst);
            }
        }
        if state.warp_hints.is_some() {
            slot.hits += 1;
            self.donations.fetch_add(1, Ordering::SeqCst);
        }
        state
    }

    /// Records what a simulation left behind for the next instance under
    /// the same coordinate: a measured calibration and/or exported warp
    /// hints replace the stored ones (newer instances are better donors —
    /// the planner orders neighbours adjacently), and a seeded run that
    /// fell back to cold calibration bumps the fallback counters.
    pub fn store(&self, family: u128, config: &str, outcome: &WarmOutcome) {
        let mut slots = self.slots.lock().expect("calibration cache not poisoned");
        let slot = slots.entry((family, config.to_string())).or_default();
        if let Some(calibration) = &outcome.calibration {
            slot.state.calibration = Some(calibration.clone());
        }
        if let Some(hints) = &outcome.warp_hints {
            if !hints.is_empty() {
                slot.state.warp_hints = Some(hints.clone());
            }
        }
        if outcome.calibration_fallback {
            slot.fallbacks += 1;
            self.fallbacks.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Aggregate (hits, misses, fallbacks, warp donations).
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::SeqCst),
            self.misses.load(Ordering::SeqCst),
            self.fallbacks.load(Ordering::SeqCst),
            self.donations.load(Ordering::SeqCst),
        )
    }

    /// Per-slot snapshots, sorted by (family, config) for deterministic
    /// output.
    pub fn snapshot(&self) -> Vec<CalibrationStats> {
        let slots = self.slots.lock().expect("calibration cache not poisoned");
        let mut stats: Vec<CalibrationStats> = slots
            .iter()
            .map(|((family, config), slot)| CalibrationStats {
                family: format!("{family:032x}"),
                config: config.clone(),
                hits: slot.hits,
                fallbacks: slot.fallbacks,
                has_calibration: slot.state.calibration.is_some(),
                has_warp_hints: slot.state.warp_hints.is_some(),
            })
            .collect();
        stats.sort_by(|a, b| (&a.family, &a.config).cmp(&(&b.family, &b.config)));
        stats
    }
}

/// The process-wide registry of kernel families, keyed by family address.
#[derive(Default)]
pub(crate) struct FamilyRegistry {
    families: RwLock<HashMap<u128, Arc<FamilyEntry>>>,
}

impl FamilyRegistry {
    pub(crate) fn new() -> Self {
        FamilyRegistry::default()
    }

    /// The entry for `family`, creating it (with the given identity) on
    /// first sight.  Returns the entry and whether it was freshly created.
    pub(crate) fn ensure(
        &self,
        family: u128,
        name: &str,
        code: &str,
        params: &[String],
    ) -> (Arc<FamilyEntry>, bool) {
        if let Some(entry) = self
            .families
            .read()
            .expect("family registry not poisoned")
            .get(&family)
        {
            return (entry.clone(), false);
        }
        let mut families = self.families.write().expect("family registry not poisoned");
        // A racing writer may have inserted between our read and write
        // locks; keep theirs so counters never reset.
        if let Some(entry) = families.get(&family) {
            return (entry.clone(), false);
        }
        let entry = Arc::new(FamilyEntry {
            name: name.to_string(),
            code: code.to_string(),
            params: params.to_vec(),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            instances: Mutex::new(HashMap::new()),
        });
        families.insert(family, entry.clone());
        (entry, true)
    }

    /// The entry for `family`, if registered.
    pub(crate) fn get(&self, family: u128) -> Option<Arc<FamilyEntry>> {
        self.families
            .read()
            .expect("family registry not poisoned")
            .get(&family)
            .cloned()
    }

    /// The number of registered families.
    pub(crate) fn len(&self) -> u64 {
        self.families
            .read()
            .expect("family registry not poisoned")
            .len() as u64
    }

    /// Aggregate (requests, hits) across every family.
    pub(crate) fn totals(&self) -> (u64, u64) {
        let families = self.families.read().expect("family registry not poisoned");
        families.values().fold((0, 0), |(requests, hits), entry| {
            (
                requests + entry.requests.load(Ordering::SeqCst),
                hits + entry.hits.load(Ordering::SeqCst),
            )
        })
    }

    /// Per-family snapshots, sorted by family address for deterministic
    /// output.
    pub(crate) fn snapshot(&self) -> Vec<FamilyStats> {
        let families = self.families.read().expect("family registry not poisoned");
        let mut stats: Vec<FamilyStats> = families
            .iter()
            .map(|(family, entry)| FamilyStats {
                family: format!("{family:032x}"),
                name: entry.name.clone(),
                params: entry.params.clone(),
                requests: entry.requests.load(Ordering::SeqCst),
                hits: entry.hits.load(Ordering::SeqCst),
                instances: entry
                    .instances
                    .lock()
                    .expect("family memo not poisoned")
                    .len() as u64,
            })
            .collect();
        stats.sort_by(|a, b| a.family.cmp(&b.family));
        stats
    }
}
