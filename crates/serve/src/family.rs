//! The family tier of the serving layer.
//!
//! A parametric kernel names a *family* of simulations: one template,
//! many `(bindings, memory, backend)` instances.  Exploration traffic
//! (tile-size sweeps, hierarchy grids) hammers one family with hundreds of
//! instances, so the service fronts the report cache with a family
//! registry:
//!
//! * **registration** — a client sends the template once
//!   (`{"cmd": "register_family"}`); later request lines reference it by
//!   its 128-bit family address plus a bindings object, never re-sending
//!   (or re-parsing) the source;
//! * **instance memo** — within a family, the canonical instance address
//!   of every `(config, bindings)` pair already seen is memoised, so
//!   repeat submissions skip substitution and canonicalisation entirely
//!   and go straight to the report cache (the two-tier lookup:
//!   family → bindings → report);
//! * **per-family counters** — how many submissions each family received
//!   and how many were answered from the report cache, exported via
//!   [`SimService::family_stats`](crate::SimService::family_stats) and the
//!   wire protocol's `{"cmd": "families"}` line.
//!
//! Families are auto-registered on first parametric submission, so the
//! counters also cover clients that ship full parametric specs instead of
//! registering first.

use serde::{Serialize, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One registered kernel family: identity, template and counters.
pub(crate) struct FamilyEntry {
    /// Display name from registration (or the first submission's kernel).
    name: String,
    /// The parametric template source.
    code: String,
    /// Declared parameter names, in declaration order.
    params: Vec<String>,
    /// Submissions routed to this family.
    requests: AtomicU64,
    /// Submissions answered from the report cache.
    hits: AtomicU64,
    /// `config_text|bindings` → canonical instance address.
    instances: Mutex<HashMap<String, u128>>,
}

impl FamilyEntry {
    pub(crate) fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::SeqCst);
    }

    pub(crate) fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::SeqCst);
    }

    /// The memoised canonical instance address for `instance_key`, if this
    /// `(config, bindings)` pair has been seen before.
    pub(crate) fn instance(&self, instance_key: &str) -> Option<u128> {
        self.instances
            .lock()
            .expect("family memo not poisoned")
            .get(instance_key)
            .copied()
    }

    pub(crate) fn record_instance(&self, instance_key: String, hash: u128) {
        self.instances
            .lock()
            .expect("family memo not poisoned")
            .insert(instance_key, hash);
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn code(&self) -> &str {
        &self.code
    }
}

/// A JSON-serializable snapshot of one family's counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FamilyStats {
    /// The 128-bit family address, hex-encoded.
    pub family: String,
    /// Display name.
    pub name: String,
    /// Declared parameter names.
    pub params: Vec<String>,
    /// Submissions routed to this family.
    pub requests: u64,
    /// Submissions answered from the report cache.
    pub hits: u64,
    /// Distinct `(config, bindings)` instances seen.
    pub instances: u64,
}

impl Serialize for FamilyStats {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("family".to_string(), Value::Str(self.family.clone())),
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "params".to_string(),
                Value::Array(self.params.iter().map(|p| Value::Str(p.clone())).collect()),
            ),
            ("requests".to_string(), Value::UInt(self.requests)),
            ("hits".to_string(), Value::UInt(self.hits)),
            ("instances".to_string(), Value::UInt(self.instances)),
        ])
    }
}

/// The process-wide registry of kernel families, keyed by family address.
#[derive(Default)]
pub(crate) struct FamilyRegistry {
    families: RwLock<HashMap<u128, Arc<FamilyEntry>>>,
}

impl FamilyRegistry {
    pub(crate) fn new() -> Self {
        FamilyRegistry::default()
    }

    /// The entry for `family`, creating it (with the given identity) on
    /// first sight.  Returns the entry and whether it was freshly created.
    pub(crate) fn ensure(
        &self,
        family: u128,
        name: &str,
        code: &str,
        params: &[String],
    ) -> (Arc<FamilyEntry>, bool) {
        if let Some(entry) = self
            .families
            .read()
            .expect("family registry not poisoned")
            .get(&family)
        {
            return (entry.clone(), false);
        }
        let mut families = self.families.write().expect("family registry not poisoned");
        // A racing writer may have inserted between our read and write
        // locks; keep theirs so counters never reset.
        if let Some(entry) = families.get(&family) {
            return (entry.clone(), false);
        }
        let entry = Arc::new(FamilyEntry {
            name: name.to_string(),
            code: code.to_string(),
            params: params.to_vec(),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            instances: Mutex::new(HashMap::new()),
        });
        families.insert(family, entry.clone());
        (entry, true)
    }

    /// The entry for `family`, if registered.
    pub(crate) fn get(&self, family: u128) -> Option<Arc<FamilyEntry>> {
        self.families
            .read()
            .expect("family registry not poisoned")
            .get(&family)
            .cloned()
    }

    /// The number of registered families.
    pub(crate) fn len(&self) -> u64 {
        self.families
            .read()
            .expect("family registry not poisoned")
            .len() as u64
    }

    /// Aggregate (requests, hits) across every family.
    pub(crate) fn totals(&self) -> (u64, u64) {
        let families = self.families.read().expect("family registry not poisoned");
        families.values().fold((0, 0), |(requests, hits), entry| {
            (
                requests + entry.requests.load(Ordering::SeqCst),
                hits + entry.hits.load(Ordering::SeqCst),
            )
        })
    }

    /// Per-family snapshots, sorted by family address for deterministic
    /// output.
    pub(crate) fn snapshot(&self) -> Vec<FamilyStats> {
        let families = self.families.read().expect("family registry not poisoned");
        let mut stats: Vec<FamilyStats> = families
            .iter()
            .map(|(family, entry)| FamilyStats {
                family: format!("{family:032x}"),
                name: entry.name.clone(),
                params: entry.params.clone(),
                requests: entry.requests.load(Ordering::SeqCst),
                hits: entry.hits.load(Ordering::SeqCst),
                instances: entry
                    .instances
                    .lock()
                    .expect("family memo not poisoned")
                    .len() as u64,
            })
            .collect();
        stats.sort_by(|a, b| a.family.cmp(&b.family));
        stats
    }
}
