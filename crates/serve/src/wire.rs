//! The JSON-lines wire protocol.
//!
//! One request per input line, one envelope per output line, streamed back
//! **out of order** as simulations finish (a cache hit on line 500 is not
//! stuck behind a cold miss on line 3).  Envelopes carry the request id so
//! clients can reorder.
//!
//! Input lines are either a bare [`SimRequest`] JSON object (the id defaults
//! to the 1-based line number), an `{"id": …, "request": {…}}` wrapper, a
//! **family request** — `{"family": "<hex>", "bindings": {…}, "memory": …,
//! "backend": …}` referencing a registered kernel family instead of
//! re-sending its source — or a control line:
//!
//! * `{"cmd": "stats"}` — emit a `{"serve_stats": {…}}` line immediately;
//! * `{"cmd": "register_family", "name": …, "code": …}` — register a
//!   parametric kernel family; replies `{"registered": {…}}` with the
//!   family's hex address and parameter names;
//! * `{"cmd": "families"}` — emit a `{"families": […]}` line with
//!   per-family counters;
//! * `{"cmd": "shutdown"}` — drain in-flight work and stop reading.
//!
//! Output lines are `{"id", "served", "cached", "serve_ns", "report"}` on
//! success (`served` is a [`Served::label`], `cached` is true for cache hits,
//! `serve_ns` is this submission's wall time including queueing) or
//! `{"id", "error"}` on parse/simulation failure.  An envelope whose report
//! was extrapolated rather than fully simulated — an explicitly sampled
//! request, or an exact request degraded by the server's access budget
//! ([`crate::ServeConfig::exact_budget`]) — additionally carries
//! `"approx": true`, and the report's `approx` object holds the sampled
//! fraction and per-level error bounds.  With [`WireOptions::debug_hash`]
//! enabled, success envelopes also carry the request's `canonical_hash`
//! (hex), so clients can verify that two spellings of one kernel really
//! share a cache address.  End of input (or a shutdown line) flushes a
//! final `{"serve_stats": {…}}` summary whose `per_family` array surfaces
//! the per-family counters (requests, hits, instances) without a separate
//! `{"cmd": "families"}` round trip.

use crate::{ServeStats, Served, SimService};
use engine::{Backend, MemoryConfig, SimRequest};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Knobs of [`serve_lines_with`] that shape the output stream without
/// changing what is simulated.
#[derive(Clone, Copy, Debug, Default)]
pub struct WireOptions {
    /// Include each request's canonical hash (hex) in success envelopes.
    pub debug_hash: bool,
}

/// What one input line asked for.
enum Line {
    Request {
        id: Value,
        request: SimRequest,
    },
    FamilyRequest {
        id: Value,
        family: String,
        bindings: Vec<(String, i64)>,
        memory: MemoryConfig,
        backend: Backend,
    },
    RegisterFamily {
        name: String,
        code: String,
    },
    Families,
    Stats,
    Shutdown,
}

fn parse_line(line: &str, number: u64) -> Result<Line, (Value, String)> {
    let default_id = Value::UInt(number);
    let value: Value = match serde_json::from_str(line) {
        Ok(value) => value,
        Err(error) => return Err((default_id, format!("invalid JSON: {error}"))),
    };
    if let Some(cmd) = value.get("cmd").and_then(Value::as_str) {
        return match cmd {
            "stats" => Ok(Line::Stats),
            "families" => Ok(Line::Families),
            "register_family" => {
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("family")
                    .to_string();
                let code = value
                    .get("code")
                    .and_then(Value::as_str)
                    .ok_or_else(|| {
                        (
                            default_id.clone(),
                            "register_family is missing `code`".to_string(),
                        )
                    })?
                    .to_string();
                Ok(Line::RegisterFamily { name, code })
            }
            "shutdown" => Ok(Line::Shutdown),
            other => Err((default_id, format!("unknown command `{other}`"))),
        };
    }
    let (id, request_value) = match value.get("request") {
        Some(request) => (value.get("id").cloned().unwrap_or(default_id), request),
        None => (default_id, &value),
    };
    if request_value.get("family").is_some() {
        return parse_family_request(id, request_value);
    }
    match SimRequest::deserialize_value(request_value) {
        Ok(request) => Ok(Line::Request { id, request }),
        Err(error) => Err((id, error)),
    }
}

fn parse_family_request(id: Value, value: &Value) -> Result<Line, (Value, String)> {
    let fail = |message: String, id: &Value| (id.clone(), message);
    let family = value
        .get("family")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("`family` must be a hex family address".to_string(), &id))?
        .to_string();
    let bindings = match value.get("bindings") {
        Some(Value::Object(entries)) => {
            let mut bindings = Vec::with_capacity(entries.len());
            for (param, bound) in entries {
                let bound = bound.as_i64().ok_or_else(|| {
                    fail(
                        format!("binding for parameter `{param}` must be an integer"),
                        &id,
                    )
                })?;
                bindings.push((param.clone(), bound));
            }
            bindings
        }
        Some(other) => {
            return Err(fail(
                format!("`bindings` must be an object, got {other:?}"),
                &id,
            ))
        }
        None => Vec::new(),
    };
    let memory = value
        .get("memory")
        .ok_or_else(|| fail("family request is missing `memory`".to_string(), &id))
        .and_then(|memory| MemoryConfig::deserialize_value(memory).map_err(|e| fail(e, &id)))?;
    let backend = value
        .get("backend")
        .ok_or_else(|| fail("family request is missing `backend`".to_string(), &id))
        .and_then(|backend| Backend::deserialize_value(backend).map_err(|e| fail(e, &id)))?;
    Ok(Line::FamilyRequest {
        id,
        family,
        bindings,
        memory,
        backend,
    })
}

fn write_line<W: Write>(writer: &Mutex<W>, value: &Value) {
    let text = serde_json::to_string(value).expect("values render");
    let mut writer = writer.lock().expect("wire writer not poisoned");
    // A dead client is not the server's problem; drop the line.
    let _ = writeln!(writer, "{text}");
    let _ = writer.flush();
}

fn error_envelope(id: Value, message: String) -> Value {
    Value::Object(vec![
        ("id".to_string(), id),
        ("error".to_string(), Value::Str(message)),
    ])
}

/// The `{"serve_stats": …}` summary line: the flat [`ServeStats`] counters
/// plus a `per_family` array, so shutdown trailers surface the family-tier
/// counters without a separate `{"cmd": "families"}` round trip.
fn stats_line(service: &SimService, stats: &ServeStats) -> Value {
    let mut fields = match stats.serialize_value() {
        Value::Object(fields) => fields,
        other => return Value::Object(vec![("serve_stats".to_string(), other)]),
    };
    let families = service
        .family_stats()
        .iter()
        .map(Serialize::serialize_value)
        .collect();
    fields.push(("per_family".to_string(), Value::Array(families)));
    Value::Object(vec![("serve_stats".to_string(), Value::Object(fields))])
}

/// Tracks in-flight line jobs so end-of-input can drain them.
struct WaitGroup {
    pending: Mutex<usize>,
    drained: Condvar,
}

impl WaitGroup {
    fn new() -> Self {
        WaitGroup {
            pending: Mutex::new(0),
            drained: Condvar::new(),
        }
    }

    fn add(&self) {
        *self.pending.lock().expect("waitgroup not poisoned") += 1;
    }

    fn done(&self) {
        let mut pending = self.pending.lock().expect("waitgroup not poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.drained.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().expect("waitgroup not poisoned");
        while *pending > 0 {
            pending = self.drained.wait(pending).expect("waitgroup not poisoned");
        }
    }
}

/// Enqueues one request on the pool; its envelope streams out when it
/// finishes.
fn spawn_request<W>(
    service: &Arc<SimService>,
    writer: &Arc<Mutex<W>>,
    jobs: &Arc<WaitGroup>,
    options: WireOptions,
    id: Value,
    request: SimRequest,
) where
    W: Write + Send + 'static,
{
    let service = service.clone();
    let writer = writer.clone();
    let jobs = jobs.clone();
    let arrived = Instant::now();
    jobs.add();
    service.clone().pool().spawn(move || {
        let queue_ns = arrived.elapsed().as_nanos() as u64;
        let envelope = match service.submit_queued(&request, Some(queue_ns)) {
            Ok((report, served)) => {
                let mut fields = vec![
                    ("id".to_string(), id),
                    ("served".to_string(), Value::Str(served.label().to_string())),
                    (
                        "cached".to_string(),
                        Value::Bool(served == Served::CacheHit),
                    ),
                    (
                        "serve_ns".to_string(),
                        Value::UInt(arrived.elapsed().as_nanos() as u64),
                    ),
                ];
                // Extrapolated counts are flagged at the envelope level so
                // clients need not dig into the report to notice a
                // degraded (or explicitly sampled) answer.  A sampled run
                // that covered everything is exact and is not flagged.
                if report.approx.as_ref().is_some_and(|a| !a.is_exact()) {
                    fields.push(("approx".to_string(), Value::Bool(true)));
                }
                if options.debug_hash {
                    fields.push((
                        "canonical_hash".to_string(),
                        Value::Str(request.canonical_hash().to_string()),
                    ));
                }
                fields.push(("report".to_string(), report.serialize_value()));
                Value::Object(fields)
            }
            Err(error) => error_envelope(id, error.to_string()),
        };
        write_line(&writer, &envelope);
        jobs.done();
    });
}

/// [`serve_lines_with`] using the default [`WireOptions`].
///
/// # Errors
///
/// Propagates read errors on the input stream; output errors are ignored
/// (a client that hangs up mid-stream does not kill the server).
pub fn serve_lines<W>(
    service: &Arc<SimService>,
    reader: impl BufRead,
    writer: W,
) -> std::io::Result<(ServeStats, bool)>
where
    W: Write + Send + 'static,
{
    serve_lines_with(service, reader, writer, WireOptions::default())
}

/// Serves JSON-lines requests from `reader`, streaming envelopes to
/// `writer` as they finish, until end of input or a shutdown line.  Returns
/// the final stats snapshot (also written as the last output line) and
/// whether an explicit shutdown was requested — a TCP server keeps
/// accepting connections after a mere end-of-stream, but stops on
/// `{"cmd": "shutdown"}`.
///
/// # Errors
///
/// Propagates read errors on the input stream; output errors are ignored
/// (a client that hangs up mid-stream does not kill the server).
pub fn serve_lines_with<W>(
    service: &Arc<SimService>,
    reader: impl BufRead,
    writer: W,
    options: WireOptions,
) -> std::io::Result<(ServeStats, bool)>
where
    W: Write + Send + 'static,
{
    let writer = Arc::new(Mutex::new(writer));
    let jobs = Arc::new(WaitGroup::new());
    let mut shutdown = false;
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(&line, index as u64 + 1) {
            Ok(Line::Request { id, request }) => {
                spawn_request(service, &writer, &jobs, options, id, request);
            }
            Ok(Line::FamilyRequest {
                id,
                family,
                bindings,
                memory,
                backend,
            }) => match service.family_kernel(&family, &bindings) {
                Ok(kernel) => {
                    let request = SimRequest::new(kernel, memory, backend);
                    spawn_request(service, &writer, &jobs, options, id, request);
                }
                Err(message) => write_line(&writer, &error_envelope(id, message)),
            },
            Ok(Line::RegisterFamily { name, code }) => {
                let envelope = match service.register_family(&name, &code) {
                    Ok(stats) => {
                        Value::Object(vec![("registered".to_string(), stats.serialize_value())])
                    }
                    Err(message) => error_envelope(Value::UInt(index as u64 + 1), message),
                };
                write_line(&writer, &envelope);
            }
            Ok(Line::Families) => {
                let families = service
                    .family_stats()
                    .iter()
                    .map(Serialize::serialize_value)
                    .collect();
                write_line(
                    &writer,
                    &Value::Object(vec![("families".to_string(), Value::Array(families))]),
                );
            }
            Ok(Line::Stats) => {
                write_line(&writer, &stats_line(service, &service.stats()));
            }
            Ok(Line::Shutdown) => {
                shutdown = true;
                break;
            }
            Err((id, message)) => {
                write_line(&writer, &error_envelope(id, message));
            }
        }
    }
    jobs.wait();
    let stats = service.stats();
    write_line(&writer, &stats_line(service, &stats));
    Ok((stats, shutdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use std::io::Cursor;

    const KERNEL: &str = "double A[32]; for (i = 0; i < 32; i++) A[i] = A[i];";

    fn request_line(id: u64) -> String {
        format!(
            r#"{{"id":{id},"request":{{"kernel":{{"type":"source","name":"k","code":"{KERNEL}"}},"memory":{{"levels":[{{"sets":1,"assoc":8,"line_size":8,"policy":"lru"}}]}},"backend":"warping"}}}}"#
        )
    }

    /// A shared Vec<u8> sink the test can read back after serving.
    #[derive(Clone)]
    struct Sink(Arc<Mutex<Vec<u8>>>);

    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("sink").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lines_of(sink: &Sink) -> Vec<Value> {
        let bytes = sink.0.lock().expect("sink").clone();
        String::from_utf8(bytes)
            .expect("utf-8 output")
            .lines()
            .map(|line| serde_json::from_str(line).expect("every output line is JSON"))
            .collect()
    }

    #[test]
    fn duplicate_lines_hit_the_cache_and_stats_trail() {
        let service = Arc::new(SimService::new(ServeConfig {
            workers: 2,
            cache_capacity: 64,
            exact_budget: None,
            warm_paths: true,
        }));
        let input = format!(
            "{}\n{}\n{}\n",
            request_line(1),
            request_line(2),
            request_line(3)
        );
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        let (stats, shutdown) =
            serve_lines(&service, Cursor::new(input), sink.clone()).expect("serving succeeds");
        assert!(!shutdown);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.cache_hits + stats.coalesced, 2);

        let lines = lines_of(&sink);
        assert_eq!(lines.len(), 4, "three envelopes plus the stats trailer");
        assert!(lines[3].get("serve_stats").is_some());
        let mut reports = Vec::new();
        for envelope in &lines[..3] {
            let id = envelope.get("id").and_then(Value::as_u64).expect("id");
            assert!((1..=3).contains(&id));
            assert!(
                envelope.get("canonical_hash").is_none(),
                "hashes are debug-only"
            );
            let report = envelope.get("report").expect("success envelope");
            reports.push(serde_json::to_string(report).expect("renders"));
        }
        // Dedup/caching must not change the payload: all three reports are
        // byte-identical.
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
    }

    #[test]
    fn bad_lines_get_error_envelopes_and_shutdown_stops_reading() {
        let service = Arc::new(SimService::new(ServeConfig {
            workers: 1,
            cache_capacity: 4,
            exact_budget: None,
            warm_paths: true,
        }));
        let input = format!(
            "not json\n{{\"cmd\":\"stats\"}}\n{{\"cmd\":\"shutdown\"}}\n{}\n",
            request_line(9)
        );
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        let (stats, shutdown) =
            serve_lines(&service, Cursor::new(input), sink.clone()).expect("serving succeeds");
        assert!(shutdown);
        assert_eq!(stats.requests, 0, "the line after shutdown is never read");

        let lines = lines_of(&sink);
        assert_eq!(
            lines.len(),
            3,
            "error envelope, stats line, final stats line"
        );
        assert!(lines[0]
            .get("error")
            .and_then(Value::as_str)
            .expect("parse error envelope")
            .contains("invalid JSON"));
        assert_eq!(lines[0].get("id").and_then(Value::as_u64), Some(1));
        assert!(lines[1].get("serve_stats").is_some());
        assert!(lines[2].get("serve_stats").is_some());
    }

    #[test]
    fn families_register_resolve_and_report_debug_hashes() {
        let service = Arc::new(SimService::new(ServeConfig {
            workers: 2,
            cache_capacity: 64,
            exact_budget: None,
            warm_paths: true,
        }));
        let template = "param N; double A[N]; for (i = 0; i < N; i++) A[i] = A[i];";
        let register = format!(r#"{{"cmd":"register_family","name":"scan","code":"{template}"}}"#);

        // Register, then read back the family address from the reply.
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        serve_lines(&service, Cursor::new(format!("{register}\n")), sink.clone())
            .expect("registration succeeds");
        let registered = lines_of(&sink)[0]
            .get("registered")
            .cloned()
            .expect("registration envelope");
        let family = registered
            .get("family")
            .and_then(Value::as_str)
            .expect("family address")
            .to_string();
        assert_eq!(family.len(), 32);

        // A family request and the equivalent constant-source request share
        // one cache address, proven by the debug-hash envelopes.
        let memory = r#"{"levels":[{"sets":1,"assoc":8,"line_size":8,"policy":"lru"}]}"#;
        let by_family = format!(
            r#"{{"id":1,"request":{{"family":"{family}","bindings":{{"N":32}},"memory":{memory},"backend":"warping"}}}}"#
        );
        let input = format!("{}\n{by_family}\n", request_line(7));
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        let (stats, _) = serve_lines_with(
            &service,
            Cursor::new(input),
            sink.clone(),
            WireOptions { debug_hash: true },
        )
        .expect("serving succeeds");
        let lines = lines_of(&sink);
        let hashes: Vec<&str> = lines[..2]
            .iter()
            .map(|envelope| {
                envelope
                    .get("canonical_hash")
                    .and_then(Value::as_str)
                    .expect("debug hash present")
            })
            .collect();
        assert_eq!(hashes[0], hashes[1], "one instance, one address");
        assert_eq!(stats.family_requests, 1);
        assert_eq!(stats.families, 1);

        // Unknown family addresses get a clear error envelope.
        let bad = format!(
            r#"{{"id":9,"request":{{"family":"{0:032x}","bindings":{{}},"memory":{memory},"backend":"warping"}}}}"#,
            0xdead_beefu128
        );
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        serve_lines(&service, Cursor::new(format!("{bad}\n")), sink.clone())
            .expect("serving succeeds");
        assert!(lines_of(&sink)[0]
            .get("error")
            .and_then(Value::as_str)
            .expect("error envelope")
            .contains("unknown family"));
    }

    #[test]
    fn families_command_reports_per_family_counters() {
        let service = Arc::new(SimService::new(ServeConfig {
            workers: 1,
            cache_capacity: 16,
            exact_budget: None,
            warm_paths: true,
        }));
        let template = "param N; double A[N]; for (i = 0; i < N; i++) A[i] = A[i];";
        let register = format!(r#"{{"cmd":"register_family","name":"scan","code":"{template}"}}"#);
        let memory = r#"{"levels":[{"sets":1,"assoc":8,"line_size":8,"policy":"lru"}]}"#;
        let request = |id: u64, n: u64| {
            format!(
                r#"{{"id":{id},"request":{{"family":"FAMILY","bindings":{{"N":{n}}},"memory":{memory},"backend":"warping"}}}}"#
            )
        };

        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        serve_lines(&service, Cursor::new(format!("{register}\n")), sink.clone())
            .expect("registration succeeds");
        let family = lines_of(&sink)[0]
            .get("registered")
            .and_then(|r| r.get("family"))
            .and_then(Value::as_str)
            .expect("family address")
            .to_string();

        // Two instances, the second submitted twice: one family hit.
        let input = format!(
            "{}\n{}\n{}\n",
            request(1, 16).replace("FAMILY", &family),
            request(2, 32).replace("FAMILY", &family),
            request(3, 32).replace("FAMILY", &family),
        );
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        let (stats, _) =
            serve_lines(&service, Cursor::new(input), sink.clone()).expect("serving succeeds");
        assert_eq!(stats.family_requests, 3);
        assert_eq!(
            stats.family_hits + stats.coalesced,
            1,
            "the repeat either hit the cache or coalesced"
        );
        // The per-family counters are drained by now; ask for them on a
        // fresh connection.
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        serve_lines(
            &service,
            Cursor::new("{\"cmd\":\"families\"}\n"),
            sink.clone(),
        )
        .expect("serving succeeds");
        let families = lines_of(&sink)
            .iter()
            .find_map(|line| line.get("families").cloned())
            .expect("families line");
        match families {
            Value::Array(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].get("name").and_then(Value::as_str), Some("scan"));
                assert_eq!(entries[0].get("requests").and_then(Value::as_u64), Some(3));
                assert_eq!(entries[0].get("instances").and_then(Value::as_u64), Some(2));
            }
            other => panic!("families must be an array, got {other:?}"),
        }
    }

    #[test]
    fn stats_trailer_surfaces_per_family_counters() {
        let service = Arc::new(SimService::new(ServeConfig {
            workers: 1,
            cache_capacity: 16,
            exact_budget: None,
            warm_paths: true,
        }));
        let template = "param N; double A[N]; for (i = 0; i < N; i++) A[i] = A[i];";
        let register = format!(r#"{{"cmd":"register_family","name":"scan","code":"{template}"}}"#);
        let memory = r#"{"levels":[{"sets":1,"assoc":8,"line_size":8,"policy":"lru"}]}"#;

        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        serve_lines(&service, Cursor::new(format!("{register}\n")), sink.clone())
            .expect("registration succeeds");
        let family = lines_of(&sink)[0]
            .get("registered")
            .and_then(|r| r.get("family"))
            .and_then(Value::as_str)
            .expect("family address")
            .to_string();

        let input = format!(
            r#"{{"id":1,"request":{{"family":"{family}","bindings":{{"N":24}},"memory":{memory},"backend":"warping"}}}}"#
        );
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        serve_lines(&service, Cursor::new(format!("{input}\n")), sink.clone())
            .expect("serving succeeds");
        let lines = lines_of(&sink);
        let trailer = lines
            .last()
            .and_then(|line| line.get("serve_stats").cloned())
            .expect("stats trailer");
        // The flat counters are still there...
        assert_eq!(
            trailer.get("family_requests").and_then(Value::as_u64),
            Some(1)
        );
        // ...and the per-family breakdown rides along, no `families`
        // command needed.
        match trailer
            .get("per_family")
            .expect("per_family in the trailer")
        {
            Value::Array(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].get("name").and_then(Value::as_str), Some("scan"));
                assert_eq!(entries[0].get("requests").and_then(Value::as_u64), Some(1));
            }
            other => panic!("per_family must be an array, got {other:?}"),
        }
    }

    #[test]
    fn over_budget_requests_are_served_degraded_and_marked_approx() {
        let service = Arc::new(SimService::new(ServeConfig {
            workers: 1,
            cache_capacity: 16,
            exact_budget: Some(100),
            warm_paths: true,
        }));
        let big = "double A[4096]; for (i = 0; i < 4096; i++) A[i] = A[i];";
        let line = format!(
            r#"{{"id":1,"request":{{"kernel":{{"type":"source","name":"big","code":"{big}"}},"memory":{{"levels":[{{"sets":1,"assoc":8,"line_size":8,"policy":"lru"}}]}},"backend":"classic"}}}}"#
        );
        let sink = Sink(Arc::new(Mutex::new(Vec::new())));
        let (stats, _) = serve_lines(&service, Cursor::new(format!("{line}\n")), sink.clone())
            .expect("serving succeeds");
        assert_eq!(stats.degraded, 1);

        let lines = lines_of(&sink);
        let envelope = &lines[0];
        assert_eq!(
            envelope.get("approx").and_then(|v| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(true),
            "degraded envelopes are flagged at the top level"
        );
        let report = envelope.get("report").expect("success envelope");
        assert_eq!(
            report.get("backend").and_then(Value::as_str),
            Some("sampled"),
            "the oversized classic request ran on the sampling backend"
        );
        let approx = report
            .get("approx")
            .expect("sampled reports carry approx stats");
        assert!(approx.get("sampled_fraction").is_some());
        assert!(approx.get("per_level_error_bound").is_some());
        // The trailer counts the degradation.
        assert_eq!(
            lines
                .last()
                .and_then(|line| line.get("serve_stats"))
                .and_then(|stats| stats.get("degraded"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
