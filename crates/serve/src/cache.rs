//! The content-addressed report cache.
//!
//! A sharded, LRU-bounded map from [`CanonicalHash`](engine::CanonicalHash)
//! to the [`SimReport`] that request produced.  Sharding keeps the hit path
//! concurrent: a lookup takes one shard-local read lock, so a storm of
//! cache hits on different keys (the steady state the ROADMAP's
//! millions-of-users story aims for) never serialises on a global lock.
//! Recency is tracked with a global atomic tick stamped into each entry on
//! access, so hits need no write lock either; eviction scans its shard for
//! the stalest entry, which is O(shard size) but only runs on insertions
//! into a full shard.
//!
//! Cached reports are returned exactly as stored — timing fields included —
//! so a warm response is byte-identical to the cold response that populated
//! it (CI asserts this over the wire protocol).

use engine::SimReport;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Counter snapshot of a [`ReportCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a stored report.
    pub hits: u64,
    /// Lookups that found nothing (counted on the first probe of each
    /// submission; the serving layer's quiet re-probe under the dedup lock
    /// is not counted).
    pub misses: u64,
    /// Entries displaced to keep a shard within its capacity share.
    pub evictions: u64,
    /// Stored entries right now.
    pub entries: u64,
    /// Total entry bound.
    pub capacity: u64,
}

struct Entry {
    report: SimReport,
    /// Global tick of the last access; ordered by `tick` only, so the
    /// relaxed stamp races at worst demote a just-used entry.
    last_used: AtomicU64,
}

struct Shard {
    map: HashMap<u128, Entry>,
    /// This shard's share of the total entry bound.
    capacity: usize,
}

/// A sharded content-addressed LRU cache of simulation reports.
pub struct ReportCache {
    shards: Vec<RwLock<Shard>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    capacity: usize,
}

impl ReportCache {
    /// A cache bounded to `capacity` entries in total (0 disables caching:
    /// every lookup misses and insertions are dropped).
    pub fn new(capacity: usize) -> Self {
        let num_shards = capacity.clamp(1, 16);
        let shards = (0..num_shards)
            .map(|i| {
                // Distribute the bound exactly: the first `capacity % n`
                // shards take one extra entry.
                let share = capacity / num_shards + usize::from(i < capacity % num_shards);
                RwLock::new(Shard {
                    map: HashMap::new(),
                    capacity: share,
                })
            })
            .collect();
        ReportCache {
            shards,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
        }
    }

    fn shard(&self, key: u128) -> &RwLock<Shard> {
        // The key is already a uniform digest; fold the high half in so
        // shard choice and any HashMap bucketing stay decorrelated.
        let fold = (key >> 64) as u64 ^ key as u64;
        &self.shards[(fold % self.shards.len() as u64) as usize]
    }

    /// Looks `key` up, counting the outcome and refreshing recency.
    pub fn get(&self, key: u128) -> Option<SimReport> {
        match self.probe(key) {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks `key` up without touching the hit/miss counters (used for the
    /// leader's re-probe under the dedup lock, which would otherwise count
    /// every simulated request as two misses).  Still refreshes recency.
    pub fn get_quiet(&self, key: u128) -> Option<SimReport> {
        self.probe(key)
    }

    fn probe(&self, key: u128) -> Option<SimReport> {
        let shard = self.shard(key).read().expect("cache shard not poisoned");
        let entry = shard.map.get(&key)?;
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(now, Ordering::Relaxed);
        Some(entry.report.clone())
    }

    /// Stores `report` under `key`, evicting the least-recently-used entry
    /// of the target shard if it is at capacity.
    pub fn insert(&self, key: u128, report: SimReport) {
        if self.capacity == 0 {
            return;
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut shard = self.shard(key).write().expect("cache shard not poisoned");
        if let Some(existing) = shard.map.get_mut(&key) {
            existing.report = report;
            existing.last_used.store(now, Ordering::Relaxed);
            return;
        }
        if shard.map.len() >= shard.capacity {
            if shard.capacity == 0 {
                // A shard can end up with no share when the bound is below
                // the shard count; such shards simply never store.
                return;
            }
            let stalest = shard
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
                .expect("full shard has entries");
            shard.map.remove(&stalest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.map.insert(
            key,
            Entry {
                report,
                last_used: AtomicU64::new(now),
            },
        );
    }

    /// The number of stored entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard not poisoned").map.len())
            .sum()
    }

    /// Whether the cache currently stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cache counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{Backend, Engine, KernelSpec, SimRequest};

    fn report(tag: u64) -> SimReport {
        let request = SimRequest::new(
            KernelSpec::source(
                format!("k{tag}"),
                "double A[8]; for (i = 0; i < 8; i++) A[i] = A[i];",
            ),
            cache_model::MemoryConfig::from(cache_model::CacheConfig::fully_associative(
                4,
                8,
                cache_model::ReplacementPolicy::Lru,
            )),
            Backend::Classic,
        );
        Engine::new().run(&request).expect("kernel builds")
    }

    #[test]
    fn hit_miss_and_identity() {
        let cache = ReportCache::new(8);
        assert!(cache.get(1).is_none());
        let stored = report(1);
        cache.insert(1, stored.clone());
        let got = cache.get(1).expect("hit");
        assert_eq!(got.to_json(), stored.to_json());
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses), (1, 1));
    }

    #[test]
    fn lru_eviction_is_by_recency() {
        // Capacity 20 → 16 shards, shard 0 holding 2 entries.  Keys 0, 16
        // and 32 all fold onto shard 0, so the three insertions below
        // exercise a genuine recency choice inside one shard: after
        // touching key 0, key 16 is the stalest and must be the victim.
        let cache = ReportCache::new(20);
        cache.insert(0, report(0));
        cache.insert(16, report(16));
        assert!(cache.get(0).is_some());
        cache.insert(32, report(32));
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.get_quiet(0).is_some(), "recently used entry survives");
        assert!(cache.get_quiet(32).is_some(), "new entry is stored");
        assert!(cache.get_quiet(16).is_none(), "stalest entry was evicted");
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ReportCache::new(0);
        cache.insert(1, report(1));
        assert!(cache.get(1).is_none());
        assert!(cache.is_empty());
    }
}
