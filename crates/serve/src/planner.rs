//! The sweep planner: ordering a family sweep for cross-instance reuse.
//!
//! A `harness explore` grid visits every `(bindings, hierarchy, policy)`
//! combination of a parametric family.  The *order* of those visits is
//! free — results are keyed by content, not sequence — but it decides how
//! warm the serving layer's cross-instance state
//! ([`CalibrationCache`](crate::CalibrationCache)) is when each request
//! arrives: instance *k+1* seeds its sampling schedule and warp-attempt
//! cadence from whatever instance *k* left in its `(family, config)` slot,
//! and the closer the two bindings are, the more of that donation
//! validates.
//!
//! [`plan_order`] therefore arranges the points so that
//!
//! 1. all points sharing a memory × backend coordinate (the slot key) are
//!    **contiguous** — a slot is never left to cool while the sweep visits
//!    other hierarchies, and
//! 2. within a coordinate, bindings follow a **boustrophedon** (snake)
//!    walk of the grid: lexicographic over the parameter axes with every
//!    axis reversing direction each time an outer axis steps, so
//!    consecutive points differ in a single parameter by one grid step —
//!    the nearest-neighbour order a mesh admits without solving TSP.
//!
//! The planner only permutes; it never drops or merges points, so a
//! planned sweep produces exactly the same set of reports as a naive one.

use std::collections::BTreeMap;

/// One sweep point as the planner sees it: an opaque grouping key (the
/// memory × backend coordinate — points in different groups share no warm
/// state) and the parameter values that position the point on the grid,
/// in a consistent axis order across all points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanPoint {
    /// The warm-state coordinate: points with equal groups can donate to
    /// each other (typically `config_text` or `hierarchy|policy`).
    pub group: String,
    /// Parameter values along each swept axis, same axis order for every
    /// point.
    pub values: Vec<i64>,
}

impl PlanPoint {
    /// A point from any group key and value list.
    pub fn new(group: impl Into<String>, values: Vec<i64>) -> Self {
        PlanPoint {
            group: group.into(),
            values,
        }
    }
}

/// The warm visiting order for `points`, as a permutation of indices into
/// the input slice (apply with `order.iter().map(|&i| &points[i])`).
///
/// Groups are visited in sorted order, each one contiguously; within a
/// group the points follow the snake walk described in the module docs.
/// Duplicate points keep their relative input order (the sort is stable),
/// and ragged value lists are handled by treating missing axes as smaller
/// than any value.
pub fn plan_order(points: &[PlanPoint]) -> Vec<usize> {
    // Per-axis rank tables, global across groups: the snake direction of
    // an axis depends only on the ranks of the axes before it, so equal
    // bindings land adjacently even when groups interleave in the input.
    let axes = points.iter().map(|p| p.values.len()).max().unwrap_or(0);
    let mut ranks: Vec<BTreeMap<i64, usize>> = vec![BTreeMap::new(); axes];
    for point in points {
        for (axis, value) in point.values.iter().enumerate() {
            ranks[axis].insert(*value, 0);
        }
    }
    for table in &mut ranks {
        for (rank, (_, slot)) in table.iter_mut().enumerate() {
            *slot = rank;
        }
    }

    // The snake key of one point: axis i keeps its rank when the ranks of
    // the axes before it sum even, and reverses (max − rank) when they sum
    // odd, so stepping any outer axis flips every inner axis's direction.
    let snake_key = |point: &PlanPoint| -> Vec<usize> {
        let mut key = Vec::with_capacity(axes);
        let mut parity = 0usize;
        for (axis, table) in ranks.iter().enumerate() {
            let rank = point.values.get(axis).map_or(0, |value| {
                table[value] + if table.is_empty() { 0 } else { 1 }
            });
            let span = table.len() + 1; // +1 for the missing-axis slot 0
            let keyed = if parity.is_multiple_of(2) {
                rank
            } else {
                span - 1 - rank
            };
            key.push(keyed);
            parity += rank;
        }
        key
    };

    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by_cached_key(|&i| (points[i].group.clone(), snake_key(&points[i])));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(group: &str, ts: &[i64], us: &[i64]) -> Vec<PlanPoint> {
        let mut points = Vec::new();
        for &t in ts {
            for &u in us {
                points.push(PlanPoint::new(group, vec![t, u]));
            }
        }
        points
    }

    /// Number of axes on which two points differ, counting rank distance.
    fn step(a: &PlanPoint, b: &PlanPoint) -> (usize, i64) {
        let changed = a
            .values
            .iter()
            .zip(&b.values)
            .filter(|(x, y)| x != y)
            .count();
        let dist = a
            .values
            .iter()
            .zip(&b.values)
            .map(|(x, y)| (x - y).abs())
            .sum();
        (changed, dist)
    }

    #[test]
    fn snake_walk_moves_one_axis_one_step_at_a_time() {
        // Shuffled 4×4 grid: the planned order must visit it as a snake —
        // every consecutive pair differs in exactly one axis.
        let mut points = grid("g", &[8, 16, 32, 64], &[1, 2, 3, 4]);
        points.reverse();
        points.swap(3, 11);
        let order = plan_order(&points);
        assert_eq!(order.len(), points.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..points.len()).collect::<Vec<_>>());
        for pair in order.windows(2) {
            let (a, b) = (&points[pair[0]], &points[pair[1]]);
            let (changed, _) = step(a, b);
            assert_eq!(changed, 1, "{:?} -> {:?}", a.values, b.values);
        }
    }

    #[test]
    fn groups_stay_contiguous() {
        let mut points = grid("l1|lru", &[8, 16], &[1, 2]);
        points.extend(grid("l2|plru", &[8, 16], &[1, 2]));
        points.extend(grid("l1|lru", &[32], &[1, 2]));
        let order = plan_order(&points);
        let groups: Vec<&str> = order.iter().map(|&i| points[i].group.as_str()).collect();
        let mut switches = 0;
        for pair in groups.windows(2) {
            if pair[0] != pair[1] {
                switches += 1;
            }
        }
        assert_eq!(switches, 1, "each group visited in one contiguous run");
    }

    #[test]
    fn planning_permutes_but_never_drops() {
        let points = grid("g", &[1, 5, 9], &[2, 4]);
        let order = plan_order(&points);
        let mut seen: Vec<&PlanPoint> = order.iter().map(|&i| &points[i]).collect();
        seen.sort_by_key(|p| p.values.clone());
        let mut expect: Vec<&PlanPoint> = points.iter().collect();
        expect.sort_by_key(|p| p.values.clone());
        assert_eq!(seen, expect);
    }

    #[test]
    fn empty_and_degenerate_inputs_are_fine() {
        assert!(plan_order(&[]).is_empty());
        let one = [PlanPoint::new("g", vec![])];
        assert_eq!(plan_order(&one), vec![0]);
    }
}
