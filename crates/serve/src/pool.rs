//! A work-stealing worker pool built on `std` only.
//!
//! [`Engine::run_batch`](engine::Engine::run_batch) fans a batch out with a
//! shared atomic cursor: every worker contends on one counter and a
//! one-slow-request tail leaves the other workers idle only at the very
//! end.  The serving layer replaces that static fan-out with the classic
//! crossbeam-deque shape (reimplemented here because the build is offline
//! and may not add dependencies):
//!
//! * each worker owns a deque and pops **LIFO** from its back (locality:
//!   the jobs it was just handed);
//! * a shared injector queue receives externally submitted jobs (the wire
//!   protocol's line-at-a-time arrivals) and is drained FIFO;
//! * an idle worker **steals FIFO** from the front of a victim's deque, so
//!   long runs of queued work migrate to whoever is free.
//!
//! The deques are small mutex-protected ring buffers rather than lock-free
//! Chase–Lev deques — each job here is a whole simulation (microseconds to
//! seconds), so queue overhead is noise; what matters is that a stalled
//! worker never strands queued jobs, which stealing guarantees.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counter snapshot of a [`WorkerPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolCounters {
    /// Number of worker threads.
    pub workers: u64,
    /// Jobs executed to completion.
    pub executed: u64,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
}

struct Shared {
    /// Per-worker deques: the owner pops the back, thieves pop the front.
    local: Vec<Mutex<VecDeque<Job>>>,
    /// Externally submitted jobs, drained FIFO by whoever is free.
    injector: Mutex<VecDeque<Job>>,
    /// Paired with `injector`: idle workers park here.  Waits use a short
    /// timeout so a stealable job pushed to a *local* deque (whose lock is
    /// deliberately not held while notifying) is picked up promptly even
    /// under missed-wakeup races.
    wakeup: Condvar,
    /// Jobs pushed but not yet dequeued, for the shutdown drain check.
    queued: AtomicUsize,
    shutdown: AtomicBool,
    executed: AtomicU64,
    steals: AtomicU64,
}

impl Shared {
    fn next_job(&self, own: usize) -> Option<Job> {
        // 1. Own deque, newest first.
        if let Some(job) = self.local[own]
            .lock()
            .expect("worker deque not poisoned")
            .pop_back()
        {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        // 2. The injector, oldest first.
        if let Some(job) = self
            .injector
            .lock()
            .expect("injector not poisoned")
            .pop_front()
        {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        // 3. Steal from a victim, oldest first.
        let n = self.local.len();
        for offset in 1..n {
            let victim = (own + offset) % n;
            if let Some(job) = self.local[victim]
                .lock()
                .expect("worker deque not poisoned")
                .pop_front()
            {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                self.steals.fetch_add(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(&self, own: usize) {
        loop {
            if let Some(job) = self.next_job(own) {
                job();
                self.executed.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            let guard = self.injector.lock().expect("injector not poisoned");
            if self.queued.load(Ordering::SeqCst) > 0 {
                // Something was pushed between our scan and the lock.
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let (_guard, _timeout) = self
                .wakeup
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("injector not poisoned");
        }
    }
}

/// The work-stealing pool.  Dropping it drains every queued job, then joins
/// the workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            local: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            wakeup: Condvar::new(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{idx}"))
                    .spawn(move || shared.worker_loop(idx))
                    .expect("worker threads spawn")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job through the shared injector (the path for jobs that
    /// arrive one at a time, e.g. wire-protocol lines).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.queued.fetch_add(1, Ordering::SeqCst);
        self.shared
            .injector
            .lock()
            .expect("injector not poisoned")
            .push_back(Box::new(job));
        self.shared.wakeup.notify_one();
    }

    /// Submits a job directly onto worker `worker % workers()`'s deque (the
    /// path for batch distribution: round-robin placement gives every
    /// worker a private run of jobs, and stealing rebalances the tail).
    pub fn spawn_at(&self, worker: usize, job: impl FnOnce() + Send + 'static) {
        let worker = worker % self.workers.len();
        self.shared.queued.fetch_add(1, Ordering::SeqCst);
        self.shared.local[worker]
            .lock()
            .expect("worker deque not poisoned")
            .push_back(Box::new(job));
        self.shared.wakeup.notify_all();
    }

    /// A snapshot of the pool counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            workers: self.workers.len() as u64,
            executed: self.shared.executed.load(Ordering::SeqCst),
            steals: self.shared.steals.load(Ordering::SeqCst),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wakeup.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn executes_injected_jobs() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100usize {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).expect("receiver alive"));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(pool.counters().executed, 100);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..50usize {
            let tx = tx.clone();
            pool.spawn_at(i, move || tx.send(()).expect("receiver alive"));
        }
        drop(tx);
        drop(pool);
        assert_eq!(rx.iter().count(), 50);
    }

    #[test]
    fn idle_workers_steal_from_a_blocked_owner() {
        // Deterministic stealing with two workers: both jobs land on worker
        // 0's deque and the first blocks until the second has run.  Whether
        // worker 0 or worker 1 ends up holding the blocking job, the other
        // can only reach the second job by stealing it (steals ≥ 1), and
        // the test only terminates if it does.
        let pool = WorkerPool::new(2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        pool.spawn_at(0, move || {
            release_rx.recv().expect("stolen job releases the owner");
        });
        // Wait until a worker has dequeued (and blocked inside) job 1, so
        // job 2 cannot be handed to it.
        while pool.shared.queued.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
        pool.spawn_at(0, move || {
            done_tx.send(()).expect("test alive");
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("the queued job must run while its owner blocks");
        let steals = pool.counters().steals;
        release_tx.send(()).expect("owner still blocked");
        drop(pool);
        assert!(steals >= 1, "the second job can only have been stolen");
    }
}
