//! PolyCache-style per-set multi-level LRU model.

use crate::haystack::StackDistanceAnalyzer;
use cache_model::{CacheConfig, HierarchyConfig, MemBlock};
use scop::{for_each_access, Scop};

/// Miss counts of the PolyCache-style model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PolyCacheResult {
    /// Total number of accesses analysed.
    pub accesses: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (only the L1 misses reach the L2).
    pub l2_misses: u64,
}

/// A PolyCache-style analytical model of a two-level set-associative LRU
/// cache with write-back write-allocate policy.
///
/// PolyCache characterises the misses of each cache set independently and
/// propagates the miss sequence of one level as the access sequence of the
/// next.  This stand-in follows the same decomposition: per-set stack
/// distances at the L1, and per-set stack distances over the L1 miss
/// sequence at the L2.  For LRU caches the resulting counts are exactly the
/// misses a cycle-by-cycle simulation produces.
///
/// ```
/// use analytical::PolyCacheModel;
/// use cache_model::HierarchyConfig;
/// use scop::parse_scop;
///
/// let scop = parse_scop(
///     "double A[1000]; double B[1000];
///      for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
/// ).unwrap();
/// let result = PolyCacheModel::new(HierarchyConfig::polycache_comparison()).analyze(&scop);
/// assert_eq!(result.accesses, 3 * 998);
/// // The arrays fit into the 256 KiB L2: it only suffers cold misses.
/// assert_eq!(result.l2_misses, 125 + 125);
/// ```
#[derive(Clone, Debug)]
pub struct PolyCacheModel {
    config: HierarchyConfig,
}

impl PolyCacheModel {
    /// A model of the given two-level hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if either level does not use LRU replacement — PolyCache (and
    /// this stand-in) only supports LRU.
    pub fn new(config: HierarchyConfig) -> Self {
        assert_eq!(
            config.l1.policy(),
            cache_model::ReplacementPolicy::Lru,
            "the PolyCache model supports LRU caches only"
        );
        assert_eq!(
            config.l2.policy(),
            cache_model::ReplacementPolicy::Lru,
            "the PolyCache model supports LRU caches only"
        );
        PolyCacheModel { config }
    }

    /// The modelled hierarchy.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Analyses a SCoP and returns per-level miss counts.
    pub fn analyze(&self, scop: &Scop) -> PolyCacheResult {
        let line_size = self.config.line_size();
        let mut l1 = PerSetLru::new(&self.config.l1);
        let mut l2 = PerSetLru::new(&self.config.l2);
        let mut result = PolyCacheResult::default();
        for_each_access(scop, |acc| {
            result.accesses += 1;
            let block = MemBlock::of_address(acc.address, line_size);
            if !l1.access(block) {
                result.l1_misses += 1;
                if !l2.access(block) {
                    result.l2_misses += 1;
                }
            }
        });
        result
    }
}

/// Per-set LRU hit/miss classification via per-set stack distances.
struct PerSetLru {
    assoc: usize,
    num_sets: u64,
    sets: Vec<StackDistanceAnalyzer>,
}

impl PerSetLru {
    fn new(config: &CacheConfig) -> Self {
        PerSetLru {
            assoc: config.assoc(),
            num_sets: config.num_sets() as u64,
            sets: (0..config.num_sets())
                .map(|_| StackDistanceAnalyzer::new())
                .collect(),
        }
    }

    /// Returns `true` on a hit: the access's stack distance within its cache
    /// set is smaller than the associativity.
    fn access(&mut self, block: MemBlock) -> bool {
        let set = (block.0 % self.num_sets) as usize;
        matches!(self.sets[set].record(block), Some(d) if d < self.assoc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::ReplacementPolicy;
    use scop::parse_scop;
    use simulate::simulate_hierarchy;

    fn stencil() -> Scop {
        parse_scop(
            "double A[4000]; double B[4000];\n\
             for (i = 1; i < 3999; i++) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap()
    }

    #[test]
    fn matches_explicit_hierarchy_simulation() {
        let config = HierarchyConfig::new(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let reference = simulate_hierarchy(&stencil(), &config);
        let result = PolyCacheModel::new(config).analyze(&stencil());
        assert_eq!(result.l1_misses, reference.l1().misses);
        assert_eq!(result.l2_misses, reference.l2().unwrap().misses);
        assert_eq!(result.accesses, reference.accesses);
    }

    #[test]
    fn matches_on_the_paper_configuration() {
        let config = HierarchyConfig::polycache_comparison();
        let reference = simulate_hierarchy(&stencil(), &config);
        let result = PolyCacheModel::new(config).analyze(&stencil());
        assert_eq!(result.l1_misses, reference.l1().misses);
        assert_eq!(result.l2_misses, reference.l2().unwrap().misses);
    }

    #[test]
    #[should_panic(expected = "LRU caches only")]
    fn rejects_non_lru_policies() {
        let config = HierarchyConfig::new(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Plru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let _ = PolyCacheModel::new(config);
    }
}
