//! HayStack-style fully-associative LRU model based on exact stack distances.

use cache_model::MemBlock;
use scop::{for_each_access, Scop};
use std::collections::HashMap;

/// The stack-distance profile of an access sequence.
///
/// `histogram[d]` is the number of accesses with stack distance exactly `d`
/// (the number of *distinct* memory blocks accessed since the previous
/// access to the same block); `cold` is the number of first-time (compulsory)
/// accesses.  Under a fully-associative LRU cache with `k` lines an access
/// misses iff its stack distance is `>= k` or it is cold, so one profile
/// yields the miss count for every capacity.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StackDistanceProfile {
    /// Histogram of finite stack distances.
    pub histogram: Vec<u64>,
    /// Number of cold (first-touch) accesses.
    pub cold: u64,
    /// Total number of accesses.
    pub accesses: u64,
}

impl StackDistanceProfile {
    /// Number of misses of a fully-associative LRU cache with `lines` lines.
    pub fn misses(&self, lines: usize) -> u64 {
        let warm_misses: u64 = self
            .histogram
            .iter()
            .enumerate()
            .filter(|(d, _)| *d >= lines)
            .map(|(_, count)| *count)
            .sum();
        warm_misses + self.cold
    }

    /// Number of hits of a fully-associative LRU cache with `lines` lines.
    pub fn hits(&self, lines: usize) -> u64 {
        self.accesses - self.misses(lines)
    }

    /// The number of distinct memory blocks touched by the sequence.
    pub fn footprint_blocks(&self) -> u64 {
        self.cold
    }
}

/// A HayStack-style model of a fully-associative LRU cache.
///
/// ```
/// use analytical::HaystackModel;
/// use scop::parse_scop;
///
/// let scop = parse_scop(
///     "double A[1000]; double B[1000];
///      for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
/// ).unwrap();
/// // One array element per line, like the paper's running example.
/// let profile = HaystackModel::new(8).analyze(&scop);
/// assert_eq!(profile.misses(2), 3 + 2 * 997);
/// assert_eq!(profile.misses(4096), 999 + 998); // only cold misses
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HaystackModel {
    line_size: u64,
}

impl HaystackModel {
    /// A model operating on memory blocks of `line_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero.
    pub fn new(line_size: u64) -> Self {
        assert!(line_size > 0, "line size must be positive");
        HaystackModel { line_size }
    }

    /// Computes the stack-distance profile of a SCoP's access sequence.
    pub fn analyze(&self, scop: &Scop) -> StackDistanceProfile {
        let mut analyzer = StackDistanceAnalyzer::new();
        for_each_access(scop, |acc| {
            analyzer.record(MemBlock::of_address(acc.address, self.line_size));
        });
        analyzer.finish()
    }

    /// Computes the profile of an explicit block sequence (useful for the
    /// per-set decomposition of the PolyCache stand-in and for tests).
    pub fn analyze_blocks(
        &self,
        blocks: impl IntoIterator<Item = MemBlock>,
    ) -> StackDistanceProfile {
        let mut analyzer = StackDistanceAnalyzer::new();
        for b in blocks {
            analyzer.record(b);
        }
        analyzer.finish()
    }
}

/// Incremental exact stack-distance computation (Mattson's algorithm with a
/// Fenwick tree over access timestamps): `O(log n)` per access.
pub struct StackDistanceAnalyzer {
    /// Fenwick tree over timestamps; a 1 marks the most recent access to
    /// some block.
    tree: FenwickTree,
    last_access: HashMap<MemBlock, usize>,
    time: usize,
    profile: StackDistanceProfile,
}

impl Default for StackDistanceAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl StackDistanceAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> Self {
        StackDistanceAnalyzer {
            tree: FenwickTree::new(),
            last_access: HashMap::new(),
            time: 0,
            profile: StackDistanceProfile::default(),
        }
    }

    /// Records one access, updates the profile, and returns the access's
    /// stack distance (`None` for a cold access).
    pub fn record(&mut self, block: MemBlock) -> Option<usize> {
        self.profile.accesses += 1;
        let t = self.time;
        self.time += 1;
        self.tree.grow_to(t + 1);
        let distance = match self.last_access.insert(block, t) {
            None => {
                self.profile.cold += 1;
                None
            }
            Some(prev) => {
                // Distinct blocks accessed strictly between prev and t.
                let distance = self.tree.range_sum(prev + 1, t) as usize;
                if self.profile.histogram.len() <= distance {
                    self.profile.histogram.resize(distance + 1, 0);
                }
                self.profile.histogram[distance] += 1;
                self.tree.add(prev, -1);
                Some(distance)
            }
        };
        self.tree.add(t, 1);
        distance
    }

    /// Finishes the analysis and returns the profile.
    pub fn finish(self) -> StackDistanceProfile {
        self.profile
    }
}

/// A growable Fenwick (binary indexed) tree over `i64` counts.
struct FenwickTree {
    data: Vec<i64>,
}

impl FenwickTree {
    fn new() -> Self {
        FenwickTree { data: Vec::new() }
    }

    fn grow_to(&mut self, len: usize) {
        if self.data.len() < len {
            // Rebuild on growth; growth is amortised by doubling.
            let new_len = len.next_power_of_two().max(1024);
            if new_len > self.data.len() {
                let mut new = FenwickTree {
                    data: vec![0; new_len],
                };
                // Re-insert the prefix sums: reconstruct point values first.
                let old_points = self.point_values();
                for (i, v) in old_points.into_iter().enumerate() {
                    if v != 0 {
                        new.add(i, v);
                    }
                }
                *self = new;
            }
        }
    }

    fn point_values(&self) -> Vec<i64> {
        let n = self.data.len();
        let mut out = vec![0; n];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.prefix_sum(i) - if i == 0 { 0 } else { self.prefix_sum(i - 1) };
        }
        out
    }

    fn add(&mut self, index: usize, delta: i64) {
        let mut i = index + 1;
        while i <= self.data.len() {
            self.data[i - 1] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=index`.
    fn prefix_sum(&self, index: usize) -> i64 {
        let mut i = index + 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.data[i - 1];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of positions `lo..=hi` (0 if the range is empty).
    fn range_sum(&self, lo: usize, hi: usize) -> i64 {
        if lo > hi {
            return 0;
        }
        let upper = self.prefix_sum(hi);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix_sum(lo - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distances(blocks: &[u64]) -> StackDistanceProfile {
        HaystackModel::new(1).analyze_blocks(blocks.iter().map(|b| MemBlock(*b)))
    }

    #[test]
    fn simple_sequence_distances() {
        // a b a c b a
        let p = distances(&[0, 1, 0, 2, 1, 0]);
        assert_eq!(p.cold, 3);
        // a@2: distance 1 (b); b@4: distance 2 (a, c); a@5: distance 2 (c, b).
        assert_eq!(p.histogram, vec![0, 1, 2]);
        assert_eq!(p.misses(1), 6);
        assert_eq!(p.misses(2), 5);
        assert_eq!(p.misses(3), 3);
        assert_eq!(p.misses(100), 3);
    }

    #[test]
    fn repeated_block_has_distance_zero() {
        let p = distances(&[7, 7, 7, 7]);
        assert_eq!(p.cold, 1);
        assert_eq!(p.histogram, vec![3]);
        assert_eq!(p.misses(1), 1);
    }

    #[test]
    fn misses_decrease_with_capacity() {
        let blocks: Vec<u64> = (0..200).map(|i| (i * 7) % 40).collect();
        let p = distances(&blocks);
        let mut prev = u64::MAX;
        for lines in 1..64 {
            let m = p.misses(lines);
            assert!(m <= prev, "misses must be monotone in the capacity");
            prev = m;
        }
        assert_eq!(p.misses(64), p.cold);
    }

    #[test]
    fn fenwick_growth_preserves_counts() {
        let mut t = FenwickTree::new();
        t.grow_to(10);
        t.add(3, 1);
        t.add(7, 1);
        t.grow_to(5000);
        assert_eq!(t.range_sum(0, 4999), 2);
        assert_eq!(t.range_sum(4, 6), 0);
        assert_eq!(t.range_sum(3, 3), 1);
    }
}
