//! Analytical cache-model baselines.
//!
//! The paper compares warping cache simulation against two analytical
//! models: HayStack (Gysi et al., PLDI 2019) and PolyCache (Bao et al.,
//! POPL 2018).  Neither tool is available in this reproduction, so this
//! crate provides stand-ins that compute the *same cache models* — the miss
//! counts the tools would report — from the SCoP's access sequence:
//!
//! * [`haystack`] models a fully-associative LRU cache via exact stack
//!   distances (Mattson et al.).  A single pass yields the complete stack
//!   distance histogram, from which the number of misses of *any* capacity
//!   follows immediately — the property HayStack exploits analytically.
//! * [`polycache`] models multi-level set-associative LRU caches by
//!   computing stack distances independently per cache set and filtering
//!   the L2 access stream through the L1 misses, mirroring PolyCache's
//!   per-set, per-level decomposition.
//!
//! The runtime of these stand-ins is `O(N log N)` in the number of accesses
//! rather than problem-size-independent; EXPERIMENTS.md discusses how this
//! affects the runtime comparisons of Fig. 8 and Fig. 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod haystack;
pub mod polycache;

pub use haystack::{HaystackModel, StackDistanceProfile};
pub use polycache::{PolyCacheModel, PolyCacheResult};
