//! The analytical models must agree exactly with explicit simulation of the
//! corresponding cache (fully-associative LRU for the HayStack stand-in,
//! set-associative LRU hierarchies for the PolyCache stand-in).

use analytical::{HaystackModel, PolyCacheModel};
use cache_model::{CacheConfig, HierarchyConfig, ReplacementPolicy};
use proptest::prelude::*;
use scop::ast::{access, assign, for_loop, Expr, Program};
use scop::{elaborate, ElaborateOptions, Scop};
use simulate::{simulate_hierarchy, simulate_single};

fn arb_program() -> impl Strategy<Value = Program> {
    (
        2i64..40,
        proptest::collection::vec((0i64..3, 0i64..3, 0usize..2), 1..4),
    )
        .prop_map(|(n, accesses)| {
            let mut program = Program::new()
                .with_array("A", &[200], 8)
                .with_array("B", &[200], 8);
            let body = accesses
                .into_iter()
                .map(|(c0, c1, which)| {
                    let arr = if which == 0 { "A" } else { "B" };
                    assign(
                        access(arr, vec![Expr::iter("i").scale(c1).offset(c0)]),
                        vec![access(arr, vec![Expr::iter("i").scale(c1)])],
                    )
                })
                .collect();
            program = program.with_stmt(for_loop("i", Expr::Const(0), Expr::Const(n), body));
            program
        })
}

fn build(p: &Program) -> Scop {
    elaborate(p, &ElaborateOptions::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn haystack_equals_fully_associative_lru(program in arb_program(), lines in 1usize..64) {
        let scop = build(&program);
        let profile = HaystackModel::new(64).analyze(&scop);
        let config = CacheConfig::fully_associative(lines, 64, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &config);
        prop_assert_eq!(profile.misses(lines), reference.l1().misses);
        prop_assert_eq!(profile.hits(lines), reference.l1().hits);
        prop_assert_eq!(profile.accesses, reference.accesses);
    }

    #[test]
    fn polycache_equals_hierarchy_simulation(program in arb_program()) {
        let scop = build(&program);
        let config = HierarchyConfig::new(
            CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(16, 4, 64, ReplacementPolicy::Lru),
        );
        let reference = simulate_hierarchy(&scop, &config);
        let result = PolyCacheModel::new(config).analyze(&scop);
        prop_assert_eq!(result.l1_misses, reference.l1().misses);
        prop_assert_eq!(result.l2_misses, reference.l2().unwrap().misses);
    }

    #[test]
    fn one_profile_covers_all_capacities(program in arb_program()) {
        let scop = build(&program);
        let profile = HaystackModel::new(8).analyze(&scop);
        for lines in [1usize, 2, 3, 5, 8, 13] {
            let config = CacheConfig::fully_associative(lines, 8, ReplacementPolicy::Lru);
            let reference = simulate_single(&scop, &config);
            prop_assert_eq!(profile.misses(lines), reference.l1().misses, "lines = {}", lines);
        }
    }
}
