//! Warp planning: the sufficient conditions of the symbolic warping theorem.
//!
//! Given a match between the symbolic cache state at the top of loop
//! iteration `v0` and the (equal up to rotation and shift) state at the top
//! of iteration `v1 = v0 + period`, [`plan_warp`] decides how many further
//! periods can be warped across soundly.  The checks are a conservative
//! implementation of Theorem 4 of the paper:
//!
//! 1. **Uniform shift** — every access node below the loop must shift its
//!    byte address by one common amount `δ = coeff · period` per period, and
//!    `δ` must be a multiple of the cache line size.  This makes the block
//!    bijection `π` of the theorem a global shift by `δ / linesize`, which
//!    preserves the partition into cache sets (`π ∈ Π_index=`).
//! 2. **Cache agreement** (the `CacheAgrees` check of the paper) — every
//!    cached line, at every *shifted* level, must be consistent with `π`:
//!    lines labelled by descendant access nodes shift by construction, and
//!    any other (stale) line forces `δ = 0`.  Levels matched as **frozen**
//!    ([`LevelWarpMode::Frozen`]) are exempt: their states are bit-identical
//!    between the matched iterations (equal labels under equal epochs), and
//!    the caller has verified they stay untouched across the warp window —
//!    either the shift is zero, or the level recorded zero accesses during
//!    the matched chunk, so the repeating access pattern never reaches it.
//! 3. **Domain periodicity** (the `FurthestByDomains` check) — the iteration
//!    domain of every descendant access node, restricted to the current
//!    values of the outer iterators, must be invariant under translation by
//!    `period` within the warp window.  The earliest violation truncates the
//!    window.
//!
//! Cross-node conflicts (the `FurthestByOverlap` check of the paper) cannot
//! arise under condition 1, because all nodes shift by the same amount.
//! Whenever a check cannot be decided (e.g. a polyhedral query exceeds its
//! budget) the plan is rejected and the simulator falls back to explicit
//! simulation, which keeps the miss counts exact.

use crate::symstate::SymLevel;
use polyhedra::{LexResult, Set};
use scop::AccessNode;
use std::collections::HashSet;

/// A validated warp: jump `chunks` periods ahead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WarpPlan {
    /// Number of periods (copies of the matched access sequence) to warp
    /// across.
    pub chunks: i64,
    /// The common byte shift of all accesses per period.
    pub byte_shift_per_chunk: i64,
}

/// How one cache level participates in a warp, reconstructed by the
/// simulator from the per-level label shift between the two matched states
/// (the difference of their epoch normalisers).
///
/// * A level whose labels advanced by exactly one period between the
///   matched states is [`Shifted`](LevelWarpMode::Shifted): it moves under
///   the block bijection `π`, its sets rotate and its labels advance.
/// * A level whose labels did not move at all is
///   [`Frozen`](LevelWarpMode::Frozen): its state is bit-identical between
///   the matched iterations and stays put across the warp.  This is the
///   shape L1-resident kernels leave behind in big hierarchies — the outer
///   levels were filled during warm-up and are never touched again — and
///   recognising it is what makes such kernels warpable at all.
/// * Any other label shift is inconsistent with a warp; the simulator
///   rejects the match before planning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LevelWarpMode {
    /// The level moves under the uniform block shift: sets rotate, labels
    /// advance by `chunks * period`.
    Shifted,
    /// The level is bit-identical between the matched states and untouched
    /// across the warp window: warp application skips it.
    Frozen,
}

/// Decides whether and how far the simulation may warp.
///
/// * `descendant_nodes` — the access nodes below the warping loop.
/// * `descendant_ids` — their ids (for label classification).
/// * `levels` — the symbolic cache levels, innermost first.
/// * `modes` — how each level participates (parallel to `levels`); frozen
///   levels are exempt from cache agreement, see [`LevelWarpMode`].
/// * `warp_depth` — the depth of the warping loop (its iterator is dimension
///   `warp_depth - 1`).
/// * `outer` — current values of the enclosing iterators
///   (length `warp_depth - 1`).
/// * `v0`, `v1` — warped-iterator values of the matched and current states.
/// * `v_last` — final value of the warped iterator for this loop execution.
///
/// # Panics
///
/// Panics if `modes` is shorter than `levels`.
#[allow(clippy::too_many_arguments)]
pub fn plan_warp(
    descendant_nodes: &[&AccessNode],
    descendant_ids: &HashSet<usize>,
    levels: &[SymLevel],
    modes: &[LevelWarpMode],
    warp_depth: usize,
    outer: &[i64],
    v0: i64,
    v1: i64,
    v_last: i64,
) -> Option<WarpPlan> {
    assert!(modes.len() >= levels.len(), "one mode per level");
    let period = v1 - v0;
    if period <= 0 || descendant_nodes.is_empty() {
        return None;
    }
    let line_size = levels.first()?.config.line_size() as i64;

    // 1. Uniform, line-aligned shift across all access nodes of the body.
    let dim = warp_depth - 1;
    let mut shift: Option<i64> = None;
    for node in descendant_nodes {
        let node_shift = node.address.coeff(dim) * period;
        match shift {
            None => shift = Some(node_shift),
            Some(s) if s == node_shift => {}
            Some(_) => return None,
        }
    }
    let byte_shift = shift.unwrap_or(0);
    if byte_shift != 0 && byte_shift % line_size != 0 {
        return None;
    }
    if byte_shift != 0
        && levels
            .iter()
            .any(|l| l.config.line_size() as i64 != line_size)
    {
        return None;
    }

    // 2. Cache agreement: every cached line of a *shifted* level must be
    //    consistent with the uniform shift.  Frozen levels are exempt: they
    //    are bit-identical between the matched states and the caller
    //    guaranteed they stay untouched across the window, so their lines
    //    (stale or not) simply persist.  Only the occupied sets can hold
    //    lines, so the scan is O(occupied), independent of the total number
    //    of sets (the sparse store's borrowing iterator yields the sets
    //    directly).
    for (level, mode) in levels.iter().zip(modes) {
        if *mode == LevelWarpMode::Frozen {
            continue;
        }
        for (_, set) in level.state.occupied_entries() {
            for line in set.lines().iter().flatten() {
                let shifts_with_loop =
                    descendant_ids.contains(&line.node) && line.iter.len() >= warp_depth;
                let line_shift = if shifts_with_loop { byte_shift } else { 0 };
                if line_shift != byte_shift {
                    return None;
                }
            }
        }
    }

    // 3. Domain periodicity of every access node over the warp window, and
    //    the resulting furthest iteration.
    let mut v_fence = v_last + 1;
    for node in descendant_nodes {
        match domain_periodicity_fence(node, outer, dim, period, v0, v_last) {
            Some(fence) => v_fence = v_fence.min(fence),
            None => return None,
        }
    }

    if v_fence <= v1 {
        return None;
    }
    let chunks = (v_fence - 1 - v1) / period;
    if chunks <= 0 {
        return None;
    }
    Some(WarpPlan {
        chunks,
        byte_shift_per_chunk: byte_shift,
    })
}

/// Checks that `node`'s iteration domain (with the outer iterators fixed) is
/// invariant under translation by `period` along `dim` within
/// `[v0, v_last]`.  Returns the first iterator value at which periodicity is
/// violated (or `v_last + 1` if it never is), and `None` if the check could
/// not be decided.
fn domain_periodicity_fence(
    node: &AccessNode,
    outer: &[i64],
    dim: usize,
    period: i64,
    v0: i64,
    v_last: i64,
) -> Option<i64> {
    // Fix the outer iterators to their current values.
    let mut domain = node.domain.clone();
    for (d, v) in outer.iter().enumerate() {
        domain = domain.fix_dim(d, *v);
    }
    let dims = domain.dims();
    let range = |lo: i64, hi: i64| {
        Set::from_basic(
            polyhedra::BasicSet::universe(dims)
                .with_ge(polyhedra::Aff::var(dims, dim).offset(-lo))
                .with_ge(polyhedra::Aff::constant(dims, hi).sub(&polyhedra::Aff::var(dims, dim))),
        )
    };
    // A = domain restricted to [v0, v_last - period], shifted forward.
    // B = domain restricted to [v0 + period, v_last].
    // Periodicity <=> translate(A) == B.
    let a = domain.intersect(&range(v0, v_last - period));
    let b = domain.intersect(&range(v0 + period, v_last));
    let a_shifted = a.translate_dim(dim, period);
    let forward = a_shifted.subtract(&b);
    let backward = b.subtract(&a_shifted);
    let earliest = |diff: &Set| -> Option<Option<i64>> {
        match diff.lexmin() {
            LexResult::Empty => Some(None),
            LexResult::Point(p) => Some(Some(p[dim])),
            LexResult::Unknown => None,
        }
    };
    let f = earliest(&forward)?;
    let g = earliest(&backward)?;
    Some(match (f, g) {
        (None, None) => v_last + 1,
        (Some(a), None) | (None, Some(a)) => a,
        (Some(a), Some(b)) => a.min(b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::{AccessKind, CacheConfig, MemBlock, ReplacementPolicy};
    use scop::parse_scop;

    /// Extracts the access nodes of a single-loop SCoP.
    fn nodes_of(src: &str) -> (scop::Scop, Vec<usize>) {
        let scop = parse_scop(src).unwrap();
        let ids = scop.access_nodes().map(|a| a.id).collect();
        (scop, ids)
    }

    fn empty_level() -> SymLevel {
        SymLevel::new(CacheConfig::with_sets(8, 2, 8, ReplacementPolicy::Lru))
    }

    /// All levels shifted — the classic (pre-epoch) planning mode.
    fn shifted(levels: &[SymLevel]) -> Vec<LevelWarpMode> {
        vec![LevelWarpMode::Shifted; levels.len()]
    }

    #[test]
    fn stencil_warps_to_the_end() {
        let (scop, ids) = nodes_of(
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
        );
        let nodes: Vec<&AccessNode> = scop.access_nodes().collect();
        let ids: HashSet<usize> = ids.into_iter().collect();
        let levels = vec![empty_level()];
        let plan = plan_warp(&nodes, &ids, &levels, &shifted(&levels), 1, &[], 5, 6, 998)
            .expect("warpable");
        assert_eq!(plan.byte_shift_per_chunk, 8);
        assert_eq!(plan.chunks, 998 - 6);
    }

    #[test]
    fn mixed_coefficients_are_rejected() {
        // A[i] and A[2*i] shift differently per iteration: no single
        // bijection relates consecutive iterations (the example of §5.2).
        let (scop, ids) = nodes_of(
            "double A[4000];\n\
             for (i = 0; i < 1000; i++) A[i] = A[2*i];",
        );
        let nodes: Vec<&AccessNode> = scop.access_nodes().collect();
        let ids: HashSet<usize> = ids.into_iter().collect();
        let levels = vec![empty_level()];
        assert!(plan_warp(&nodes, &ids, &levels, &shifted(&levels), 1, &[], 5, 6, 999).is_none());
    }

    #[test]
    fn unaligned_shift_is_rejected_until_period_matches() {
        // With 64-byte lines and 8-byte elements, a period of 1 shifts by 8
        // bytes (not line aligned), but a period of 8 shifts by a full line.
        let (scop, ids) = nodes_of(
            "double A[4000]; double B[4000];\n\
             for (i = 1; i < 3999; i++) B[i-1] = A[i-1] + A[i];",
        );
        let nodes: Vec<&AccessNode> = scop.access_nodes().collect();
        let ids: HashSet<usize> = ids.into_iter().collect();
        let levels = vec![SymLevel::new(CacheConfig::with_sets(
            8,
            2,
            64,
            ReplacementPolicy::Lru,
        ))];
        assert!(plan_warp(&nodes, &ids, &levels, &shifted(&levels), 1, &[], 5, 6, 3998).is_none());
        let plan = plan_warp(
            &nodes,
            &ids,
            &levels,
            &shifted(&levels),
            1,
            &[],
            2,
            10,
            3998,
        )
        .expect("period 8 warps");
        assert_eq!(plan.byte_shift_per_chunk, 64);
    }

    #[test]
    fn stale_cache_lines_block_warping() {
        let (scop, ids) = nodes_of(
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
        );
        let nodes: Vec<&AccessNode> = scop.access_nodes().collect();
        let ids: HashSet<usize> = ids.into_iter().collect();
        let mut level = empty_level();
        // A line labelled by an access node that is not part of the loop.
        level.access(MemBlock(123_456), AccessKind::Read, 99, &[0]);
        let levels = vec![level];
        assert!(plan_warp(&nodes, &ids, &levels, &shifted(&levels), 1, &[], 5, 6, 998).is_none());
    }

    #[test]
    fn frozen_levels_are_exempt_from_cache_agreement() {
        // A two-level system: the L1 streams with the loop, the outer level
        // froze after warm-up and holds lines — stale and descendant alike —
        // that do not shift.  As a shifted level the stale line would veto
        // any non-zero shift; marked frozen the plan goes through.
        let (scop, ids) = nodes_of(
            "double A[4000]; double B[4000];\n\
             for (i = 1; i < 3999; i++) B[i-1] = A[i-1] + A[i];",
        );
        let nodes: Vec<&AccessNode> = scop.access_nodes().collect();
        let ids: HashSet<usize> = ids.into_iter().collect();
        let l1 = SymLevel::new(CacheConfig::with_sets(8, 2, 64, ReplacementPolicy::Lru));
        let mut outer = SymLevel::new(CacheConfig::with_sets(64, 4, 64, ReplacementPolicy::Lru));
        outer.access(MemBlock(123_456), AccessKind::Read, 99, &[0]);
        outer.access(MemBlock(7), AccessKind::Read, 0, &[56]);
        let levels = vec![l1, outer];
        let all_shifted = shifted(&levels);
        assert!(
            plan_warp(&nodes, &ids, &levels, &all_shifted, 1, &[], 2, 10, 3998).is_none(),
            "a shifted outer level with a stale line vetoes the shift"
        );
        let mixed = vec![LevelWarpMode::Shifted, LevelWarpMode::Frozen];
        let plan = plan_warp(&nodes, &ids, &levels, &mixed, 1, &[], 2, 10, 3998)
            .expect("a frozen outer level does not block the warp");
        assert_eq!(plan.byte_shift_per_chunk, 64);
    }

    #[test]
    fn guarded_domains_truncate_the_window() {
        // The access only executes for i < 500; beyond that the pattern
        // changes, so warping must stop before the guard boundary.
        let (scop, ids) = nodes_of(
            "double A[2000]; double B[2000];\n\
             for (i = 1; i < 999; i++) if (i < 500) B[i-1] = A[i-1] + A[i];",
        );
        let nodes: Vec<&AccessNode> = scop.access_nodes().collect();
        let ids: HashSet<usize> = ids.into_iter().collect();
        let levels = vec![empty_level()];
        let plan = plan_warp(&nodes, &ids, &levels, &shifted(&levels), 1, &[], 5, 6, 998)
            .expect("warp until guard");
        assert!(6 + plan.chunks < 500);
        assert!(6 + plan.chunks >= 498);
    }

    #[test]
    fn invariant_bodies_warp_with_zero_shift() {
        // The body touches the same element every iteration: π is the
        // identity and warping covers the whole loop.
        let (scop, ids) = nodes_of("double A[10];\nfor (i = 0; i < 100; i++) A[0] = A[0];");
        let nodes: Vec<&AccessNode> = scop.access_nodes().collect();
        let ids: HashSet<usize> = ids.into_iter().collect();
        let levels = vec![empty_level()];
        let plan = plan_warp(&nodes, &ids, &levels, &shifted(&levels), 1, &[], 1, 2, 99)
            .expect("identity warp");
        assert_eq!(plan.byte_shift_per_chunk, 0);
        assert_eq!(plan.chunks, 97);
    }
}
