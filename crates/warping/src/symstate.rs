//! Symbolic cache states.
//!
//! A symbolic cache state associates every occupied cache line with a
//! *symbolic memory block*: the identifier of the access node that loaded
//! (or most recently touched) the line together with the iteration vector at
//! which that happened.  Concretising the label — evaluating the access
//! node's affine address function at the recorded iteration — yields the
//! concrete memory block, which the state also caches for fast
//! classification.  This mirrors §5.2 of the paper; keeping absolute
//! iteration vectors (instead of rewriting expressions on every iterator
//! increment) is the "on demand" renormalisation the paper alludes to.

use cache_model::{AccessKind, CacheConfig, CacheState, LevelStats, MemBlock};
use polyhedra::Aff;

/// A symbolic cache line: concrete block plus symbolic label.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SymLine {
    /// The concrete memory block currently held by the line.
    pub block: MemBlock,
    /// Identifier of the access node that most recently touched the line.
    pub node: usize,
    /// The iteration vector (at the node's depth) of that access.
    pub iter: Vec<i64>,
}

/// One cache level simulated symbolically.
#[derive(Clone, Debug)]
pub struct SymLevel {
    /// The level's configuration.
    pub config: CacheConfig,
    /// The symbolic cache state.
    pub state: CacheState<SymLine>,
    /// Index of the most recently accessed cache set (anchor for the
    /// rotation-invariant canonical key).
    pub mru_set: usize,
    /// Hit/miss counters of the level.
    pub stats: LevelStats,
}

impl SymLevel {
    /// An empty symbolic level.
    pub fn new(config: CacheConfig) -> Self {
        let state = CacheState::new(&config);
        SymLevel {
            config,
            state,
            mru_set: 0,
            stats: LevelStats::default(),
        }
    }

    /// Classifies and performs an access to `block`, labelling the touched
    /// line with `(node, iter)`.  Returns `true` on a hit.
    ///
    /// For no-write-allocate configurations a write miss does not allocate.
    pub fn access(&mut self, block: MemBlock, kind: AccessKind, node: usize, iter: &[i64]) -> bool {
        let set_idx = self.config.index(block);
        self.mru_set = set_idx;
        let policy = self.config.policy();
        let set = self.state.set_mut(set_idx);
        let hit = match set.find(|l| l.block == block) {
            Some(way) => {
                set.on_hit(policy, way);
                // The paper's SymUpSet replaces the hit line's symbolic block
                // by the freshly accessed one.
                let way = set
                    .find(|l| l.block == block)
                    .expect("the hit block remains cached");
                let line = set.line_mut(way).expect("occupied line");
                line.node = node;
                line.iter.clear();
                line.iter.extend_from_slice(iter);
                true
            }
            None => {
                if kind != AccessKind::Write || self.config.write_allocate() {
                    set.on_miss_insert(
                        policy,
                        SymLine {
                            block,
                            node,
                            iter: iter.to_vec(),
                        },
                    );
                }
                false
            }
        };
        self.stats.record(hit);
        hit
    }

    /// Resets the level to an empty state.
    pub fn reset(&mut self) {
        self.state = CacheState::new(&self.config);
        self.mru_set = 0;
        self.stats = LevelStats::default();
    }

    /// Applies a warp of `chunks` periods to the level: every line whose
    /// label belongs to one of the `descendants` access nodes (at depth
    /// `>= warp_depth`) advances its label by `chunks * period` along
    /// dimension `warp_depth - 1`, its concrete block shifts by
    /// `total_block_shift`, and the cache sets rotate accordingly
    /// (Equation 18 of the paper: the new state is `γ(sym-c ∘ π_Set^n)`).
    pub fn apply_warp(
        &mut self,
        addresses: &[Aff],
        descendants: &std::collections::HashSet<usize>,
        warp_depth: usize,
        period: i64,
        chunks: i64,
        total_byte_shift: i64,
    ) {
        let line_size = self.config.line_size() as i64;
        debug_assert_eq!(total_byte_shift % line_size, 0);
        let total_block_shift = total_byte_shift / line_size;
        let num_sets = self.config.num_sets() as i64;
        let rotation = total_block_shift.rem_euclid(num_sets);
        // Rotate the sets: the set holding a block b now holds b + shift, and
        // (b + shift) mod S = (old index + rotation) mod S.
        let rotated = self
            .state
            .permute_sets(|i| ((i as i64 - rotation).rem_euclid(num_sets)) as usize);
        self.state = rotated.map_payloads(|line| {
            if descendants.contains(&line.node) && line.iter.len() >= warp_depth {
                let mut iter = line.iter.clone();
                iter[warp_depth - 1] += chunks * period;
                let address = addresses[line.node].eval(&iter);
                debug_assert!(address >= 0);
                let block = MemBlock(address as u64 / self.config.line_size());
                debug_assert_eq!(
                    block.0 as i64,
                    line.block.0 as i64 + total_block_shift,
                    "warped label concretisation must shift uniformly"
                );
                SymLine {
                    block,
                    node: line.node,
                    iter,
                }
            } else {
                debug_assert_eq!(total_block_shift, 0, "stale lines require a zero shift");
                line.clone()
            }
        });
        self.mru_set = ((self.mru_set as i64 + rotation).rem_euclid(num_sets)) as usize;
    }

    /// The concrete cache state (dropping symbolic labels).
    pub fn concrete_state(&self) -> CacheState<MemBlock> {
        self.state.map_payloads(|l| l.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::ReplacementPolicy;

    fn level() -> SymLevel {
        SymLevel::new(CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru))
    }

    #[test]
    fn access_tracks_labels_and_stats() {
        let mut l = level();
        assert!(!l.access(MemBlock(0), AccessKind::Read, 7, &[1, 2]));
        assert!(l.access(MemBlock(0), AccessKind::Read, 9, &[1, 3]));
        assert_eq!(l.stats.hits, 1);
        assert_eq!(l.stats.misses, 1);
        let line = l.state.set(0).lines()[0].clone().unwrap();
        assert_eq!(line.node, 9, "a hit refreshes the symbolic label");
        assert_eq!(line.iter, vec![1, 3]);
        assert_eq!(l.mru_set, 0);
    }

    #[test]
    fn no_write_allocate_does_not_fill() {
        let config = CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru).no_write_allocate();
        let mut l = SymLevel::new(config);
        assert!(!l.access(MemBlock(0), AccessKind::Write, 0, &[0]));
        assert!(l.state.set(0).lines().iter().all(Option::is_none));
        assert!(!l.access(MemBlock(0), AccessKind::Read, 0, &[0]));
        assert!(l.access(MemBlock(0), AccessKind::Read, 0, &[0]));
    }

    #[test]
    fn concrete_state_projection() {
        let mut l = level();
        l.access(MemBlock(5), AccessKind::Read, 0, &[0]);
        let c = l.concrete_state();
        assert_eq!(c.set(1).lines()[0], Some(MemBlock(5)));
    }
}
