//! Symbolic cache states.
//!
//! A symbolic cache state associates every occupied cache line with a
//! *symbolic memory block*: the identifier of the access node that loaded
//! (or most recently touched) the line together with the iteration vector at
//! which that happened.  Concretising the label — evaluating the access
//! node's affine address function at the recorded iteration — yields the
//! concrete memory block, which the state also caches for fast
//! classification.  This mirrors §5.2 of the paper; keeping absolute
//! iteration vectors (instead of rewriting expressions on every iterator
//! increment) is the "on demand" renormalisation the paper alludes to.
//!
//! Renormalisation needs a reference point.  Each level carries a
//! **level-local epoch** (see [`cache_model::CacheState::epoch`]): the
//! iteration vector of the last access that wrote a label at this level,
//! stamped on every fill and hit promotion.  Labels are *stored* absolute
//! and *compared* relative to the epoch of their level — so outer-level
//! lines whose labels froze (the working set fits in L1, nothing touches
//! them any more) still compare equal across iterations, instead of
//! drifting ever further from the current iterator.
//!
//! The cache state itself is sparse (`cache_model::CacheState` stores only
//! the touched sets next to a shared empty template), so a [`SymLevel`]
//! reads its **occupied-set view straight from the store** — canonical keys
//! and warp plans never iterate over the (possibly millions of) empty sets
//! of a big L3 — and adds one derived structure of its own: a
//! [`FingerprintTracker`] of per-set digests and rolling level
//! fingerprints, kept fresh with dirty-set tracking.

use crate::fingerprint::FingerprintTracker;
use cache_model::{AccessKind, CacheConfig, CacheState, LevelStats, MemBlock, SetState};
use polyhedra::Aff;
use std::collections::HashSet;

/// Minimum number of occupied cache sets before warp application within a
/// level is split across threads; below this the per-thread setup cost
/// dominates.
const PARALLEL_SETS_THRESHOLD: usize = 2048;

/// A symbolic cache line: concrete block plus symbolic label.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SymLine {
    /// The concrete memory block currently held by the line.
    pub block: MemBlock,
    /// Identifier of the access node that most recently touched the line.
    pub node: usize,
    /// The iteration vector (at the node's depth) of that access.
    pub iter: Vec<i64>,
}

/// One cache level simulated symbolically.
#[derive(Clone, Debug)]
pub struct SymLevel {
    /// The level's configuration.
    pub config: CacheConfig,
    /// The symbolic cache state.
    pub state: CacheState<SymLine>,
    /// Index of the most recently accessed cache set (anchor for the
    /// rotation-invariant canonical key).
    pub mru_set: usize,
    /// Hit/miss counters of the level.
    pub stats: LevelStats,
    /// Incrementally maintained per-set digests and level fingerprints.
    tracker: FingerprintTracker,
}

impl SymLevel {
    /// An empty symbolic level.  O(1) whatever the level's size: the sparse
    /// cache state and the fingerprint tracker both start from shared empty
    /// templates.
    pub fn new(config: CacheConfig) -> Self {
        let state = CacheState::new(&config);
        let tracker = FingerprintTracker::new(&state);
        SymLevel {
            config,
            state,
            mru_set: 0,
            stats: LevelStats::default(),
            tracker,
        }
    }

    /// Classifies and performs an access to `block`, labelling the touched
    /// line with `(node, iter)`.  Returns `true` on a hit.
    ///
    /// Every payload write — a hit promotion or a miss fill — also stamps
    /// `iter` as the level's [epoch](cache_model::CacheState::epoch), so the
    /// epoch always names the last access that refreshed a label at this
    /// level.  For no-write-allocate configurations a write miss does not
    /// allocate (and leaves an untouched set untouched in the sparse store,
    /// and the epoch unstamped).
    pub fn access(&mut self, block: MemBlock, kind: AccessKind, node: usize, iter: &[i64]) -> bool {
        let set_idx = self.config.index(block);
        self.mru_set = set_idx;
        let policy = self.config.policy();
        // Classify on the shared (immutable) view first: only mutating paths
        // may materialise the set in the sparse store or dirty the tracker.
        let found = self.state.set(set_idx).find(|l| l.block == block);
        let hit = match found {
            Some(way) => {
                let set = self.state.set_mut(set_idx);
                set.on_hit(policy, way);
                // The paper's SymUpSet replaces the hit line's symbolic block
                // by the freshly accessed one.
                let way = set
                    .find(|l| l.block == block)
                    .expect("the hit block remains cached");
                let line = set.line_mut(way).expect("occupied line");
                line.node = node;
                line.iter.clear();
                line.iter.extend_from_slice(iter);
                self.state.stamp_epoch(iter);
                self.tracker.mark_dirty(set_idx);
                true
            }
            None => {
                if kind != AccessKind::Write || self.config.write_allocate() {
                    self.state.set_mut(set_idx).on_miss_insert(
                        policy,
                        SymLine {
                            block,
                            node,
                            iter: iter.to_vec(),
                        },
                    );
                    self.state.stamp_epoch(iter);
                    self.tracker.mark_dirty(set_idx);
                }
                false
            }
        };
        self.stats.record(hit);
        hit
    }

    /// The level epoch's value on iterator dimension `dim`: the warped-dim
    /// stamp of the last access that wrote a label at this level, or `None`
    /// when no write ever reached that deep (the level is empty, or its
    /// last write came from a shallower loop).  Canonical keys encode each
    /// descendant label's warped-dim value relative to this stamp, which
    /// makes frozen labels — lines that stopped being touched because the
    /// working set fits in an inner level — shift-invariant for free.
    pub fn epoch_at(&self, dim: usize) -> Option<i64> {
        self.state.epoch().get(dim).copied()
    }

    /// Resets the level to an empty state.
    pub fn reset(&mut self) {
        self.state = CacheState::new(&self.config);
        self.mru_set = 0;
        self.stats = LevelStats::default();
        self.tracker = FingerprintTracker::new(&self.state);
    }

    /// Sorted indices of the cache sets holding at least one line, read
    /// straight from the sparse store (no allocation).  Sets are filled and
    /// replaced but never emptied, so this view only grows (until a
    /// [`reset`](SymLevel::reset)), and every set outside it is guaranteed
    /// to be in its initial state — empty lines *and* initial
    /// replacement-policy metadata.
    pub fn occupied_sets(&self) -> impl Iterator<Item = usize> + '_ {
        self.state.occupied_indices()
    }

    /// Brings the fingerprint tracker up to date with the cache state
    /// (recomputing the digests of sets dirtied since the last call).
    /// Must be called before [`SymLevel::fingerprint`].
    pub fn prepare_match(&mut self) {
        self.tracker.flush(&self.state);
    }

    /// The rolling level fingerprint with iterator dimension
    /// `excluded_dim` factored out, or `None` when the dimension is beyond
    /// [`MAX_TRACKED_DIMS`](crate::fingerprint::MAX_TRACKED_DIMS).
    ///
    /// Requires a preceding [`SymLevel::prepare_match`].
    pub fn fingerprint(&self, excluded_dim: usize) -> Option<u64> {
        self.tracker.fingerprint(excluded_dim)
    }

    /// Applies a warp of `chunks` periods to the level: every line whose
    /// label belongs to one of the `descendants` access nodes (at depth
    /// `>= warp_depth`) advances its label by `chunks * period` along
    /// dimension `warp_depth - 1`, its concrete block shifts by
    /// `total_block_shift`, and the cache sets rotate accordingly
    /// (Equation 18 of the paper: the new state is `γ(sym-c ∘ π_Set^n)`).
    ///
    /// With `threads > 1` and a large level the per-set rewrites are fanned
    /// out over that many scoped threads; the result is bit-identical to the
    /// sequential rewrite (every set is transformed independently).
    #[allow(clippy::too_many_arguments)]
    pub fn apply_warp(
        &mut self,
        addresses: &[Aff],
        descendants: &HashSet<usize>,
        warp_depth: usize,
        period: i64,
        chunks: i64,
        total_byte_shift: i64,
        threads: usize,
    ) {
        let line_size = self.config.line_size() as i64;
        debug_assert_eq!(total_byte_shift % line_size, 0);
        let total_block_shift = total_byte_shift / line_size;
        let num_sets = self.config.num_sets();
        let rotation = total_block_shift.rem_euclid(num_sets as i64) as usize;
        let transform = |line: &SymLine| -> SymLine {
            if descendants.contains(&line.node) && line.iter.len() >= warp_depth {
                let mut iter = line.iter.clone();
                iter[warp_depth - 1] += chunks * period;
                let address = addresses[line.node].eval(&iter);
                debug_assert!(address >= 0);
                let block = MemBlock(address as u64 / self.config.line_size());
                debug_assert_eq!(
                    block.0 as i64,
                    line.block.0 as i64 + total_block_shift,
                    "warped label concretisation must shift uniformly"
                );
                SymLine {
                    block,
                    node: line.node,
                    iter,
                }
            } else {
                debug_assert_eq!(total_block_shift, 0, "stale lines require a zero shift");
                line.clone()
            }
        };
        // Rotate the sets: the set holding a block b now holds b + shift,
        // and (b + shift) mod S = (old index + rotation) mod S.  Empty sets
        // are interchangeable — they are always in their initial state — so
        // the warp drains the touched entries out of the sparse store (the
        // vacated slots revert to the shared empty template for free),
        // transforms them, and lands them on their rotated positions: the
        // warp costs O(occupied sets), not O(total sets).  Each set is
        // rewritten independently, so the transforms parallelise across
        // disjoint chunks of the drained entry list.
        let entries = self.state.take_entries();
        let transformed: Vec<SetState<SymLine>> =
            if threads > 1 && entries.len() >= PARALLEL_SETS_THRESHOLD {
                let mut out: Vec<Option<SetState<SymLine>>> = vec![None; entries.len()];
                let chunk = entries.len().div_ceil(threads);
                let transform = &transform;
                let entries = &entries;
                std::thread::scope(|scope| {
                    for (t, slice) in out.chunks_mut(chunk).enumerate() {
                        scope.spawn(move || {
                            for (off, slot) in slice.iter_mut().enumerate() {
                                let (_, set) = &entries[t * chunk + off];
                                *slot = Some(set.map_payloads(|l| transform(l)));
                            }
                        });
                    }
                });
                out.into_iter().map(|s| s.expect("chunk filled")).collect()
            } else {
                entries
                    .iter()
                    .map(|(_, set)| set.map_payloads(&transform))
                    .collect()
            };
        // The rotation is a bijection, so no landing slot is written twice.
        // Derived structures follow: vacated and landed-on slots both get
        // their digests refreshed on the next match attempt.
        for (&(s_old, _), set) in entries.iter().zip(transformed) {
            let s_new = (s_old + rotation) % num_sets;
            self.state.insert_set(s_new, set);
            self.tracker.mark_dirty(s_old);
            self.tracker.mark_dirty(s_new);
        }
        self.mru_set = (self.mru_set + rotation) % num_sets;
        // The level's last label write advances with its labels: in the
        // execution the warp skipped, the corresponding access would have
        // stamped the epoch `chunks * period` iterations later.  A no-op
        // when the stamp does not reach the warped dimension — a level can
        // arrive here with such a stamp (the simulator's normaliser then
        // fell back to the current iterator, classifying it as shifted),
        // and its too-shallow stamp deliberately stays put so later
        // attempts keep using the same fallback.
        self.state.shift_epoch(warp_depth - 1, chunks * period);
    }

    /// The concrete cache state (dropping symbolic labels).
    pub fn concrete_state(&self) -> CacheState<MemBlock> {
        self.state.map_payloads(|l| l.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::rebuild_level_fingerprint;
    use cache_model::ReplacementPolicy;

    fn level() -> SymLevel {
        SymLevel::new(CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru))
    }

    #[test]
    fn access_tracks_labels_and_stats() {
        let mut l = level();
        assert!(!l.access(MemBlock(0), AccessKind::Read, 7, &[1, 2]));
        assert!(l.access(MemBlock(0), AccessKind::Read, 9, &[1, 3]));
        assert_eq!(l.stats.hits, 1);
        assert_eq!(l.stats.misses, 1);
        let line = l.state.set(0).lines()[0].clone().unwrap();
        assert_eq!(line.node, 9, "a hit refreshes the symbolic label");
        assert_eq!(line.iter, vec![1, 3]);
        assert_eq!(l.mru_set, 0);
        assert_eq!(l.occupied_sets().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn no_write_allocate_does_not_fill() {
        let config = CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru).no_write_allocate();
        let mut l = SymLevel::new(config);
        assert!(!l.access(MemBlock(0), AccessKind::Write, 0, &[0]));
        assert!(l.state.set(0).lines().iter().all(Option::is_none));
        assert_eq!(l.occupied_sets().count(), 0, "no fill, no occupied set");
        assert_eq!(l.state.occupied_len(), 0, "not even a touched-set entry");
        assert!(!l.access(MemBlock(0), AccessKind::Read, 0, &[0]));
        assert!(l.access(MemBlock(0), AccessKind::Read, 0, &[0]));
        assert_eq!(l.occupied_sets().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn concrete_state_projection() {
        let mut l = level();
        l.access(MemBlock(5), AccessKind::Read, 0, &[0]);
        let c = l.concrete_state();
        assert_eq!(c.set(1).lines()[0], Some(MemBlock(5)));
    }

    #[test]
    fn incremental_fingerprint_matches_rebuild_after_accesses() {
        let mut l = level();
        for (i, b) in [0u64, 5, 9, 2, 5, 13].into_iter().enumerate() {
            l.access(MemBlock(b), AccessKind::Read, i % 2, &[i as i64]);
            l.prepare_match();
            let rebuilt = rebuild_level_fingerprint(&l.state);
            for (d, word) in rebuilt.iter().enumerate() {
                assert_eq!(l.fingerprint(d), Some(*word), "dim {d} after {i}");
            }
        }
    }

    #[test]
    fn post_warp_accesses_cannot_resurrect_stale_digests() {
        // Regression test: a warp replaces sets wholesale (resetting their
        // content versions), and a later access can bring a replaced set's
        // version back to the value its slot had before the warp.  The
        // tracker must still recompute the digest — content versions are
        // not comparable across different set instances.
        let mut l = level();
        let addr = Aff::var(1, 0).scale(64);
        let descendants: HashSet<usize> = [0].into_iter().collect();
        l.access(MemBlock(1), AccessKind::Read, 0, &[1]);
        l.access(MemBlock(3), AccessKind::Read, 0, &[3]);
        l.prepare_match();
        // Shift by 2 lines: set 1 -> set 3, set 3 -> set 1.
        l.apply_warp(
            std::slice::from_ref(&addr),
            &descendants,
            1,
            2,
            1,
            2 * 64,
            1,
        );
        // One access to the landed-on set brings its (reset) version back
        // to the pre-warp slot value without an intervening flush.
        l.access(MemBlock(9), AccessKind::Read, 0, &[9]);
        l.prepare_match();
        let rebuilt = rebuild_level_fingerprint(&l.state);
        for (d, word) in rebuilt.iter().enumerate() {
            assert_eq!(l.fingerprint(d), Some(*word), "dim {d}");
        }
    }

    #[test]
    fn epoch_follows_label_writes_and_warps() {
        let mut l = level();
        assert_eq!(l.epoch_at(0), None, "a fresh level has no stamp");
        // A fill stamps the epoch; so does a hit promotion.
        l.access(MemBlock(0), AccessKind::Read, 0, &[4]);
        assert_eq!(l.epoch_at(0), Some(4));
        l.access(MemBlock(0), AccessKind::Read, 0, &[9]);
        assert_eq!(l.epoch_at(0), Some(9));
        assert_eq!(l.epoch_at(1), None, "the stamp is one deep");
        // A no-write-allocate write miss touches nothing: no stamp update.
        let nwa = CacheConfig::with_sets(4, 2, 64, ReplacementPolicy::Lru).no_write_allocate();
        let mut frozen = SymLevel::new(nwa);
        frozen.access(MemBlock(0), AccessKind::Write, 0, &[3]);
        assert_eq!(frozen.epoch_at(0), None);
        // A warp advances the stamp with the labels.
        let addr = Aff::var(1, 0).scale(64);
        let mut warped = level();
        warped.access(MemBlock(9), AccessKind::Read, 0, &[9]);
        warped.apply_warp(
            std::slice::from_ref(&addr),
            &[0].into_iter().collect(),
            1,
            2,
            3,
            6 * 64,
            1,
        );
        assert_eq!(warped.epoch_at(0), Some(9 + 6));
    }

    #[test]
    fn occupied_sets_survive_warp_rotation() {
        let mut l = level();
        // One descendant line in set 1; warp shifts blocks by 1 line.
        let addr = Aff::var(1, 0).scale(64);
        l.access(MemBlock(1), AccessKind::Read, 0, &[1]);
        l.apply_warp(
            std::slice::from_ref(&addr),
            &[0].into_iter().collect(),
            1,
            1,
            2,
            2 * 64,
            1,
        );
        assert_eq!(
            l.occupied_sets().collect::<Vec<_>>(),
            vec![3],
            "set 1 rotated to set 3"
        );
        assert_eq!(l.mru_set, 3);
        l.prepare_match();
        let rebuilt = rebuild_level_fingerprint(&l.state);
        assert_eq!(l.fingerprint(0), Some(rebuilt[0]));
    }
}
