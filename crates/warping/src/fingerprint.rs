//! Rolling fingerprints of symbolic cache levels: the cheap first phase of
//! the two-phase warp-match pipeline.
//!
//! A warp match requires two symbolic cache states to be equal up to a
//! rotation of their cache sets and a uniform shift of the warped iterator
//! (Theorem 3 of the paper).  Deciding that exactly means building a
//! [`CanonicalKey`](crate::key::CanonicalKey), which costs time proportional
//! to the occupied part of the state.  This module provides a sound
//! *filter* in front of the exact comparison: a 64-bit fingerprint that is
//! **invariant under every transformation the canonical key factors out**,
//! so
//!
//! > equal canonical keys ⟹ equal fingerprints.
//!
//! The contrapositive is what the simulator uses: when the fingerprints of
//! two states differ, no exact key needs to be built — the states cannot
//! match.  Fingerprint collisions (equal fingerprints, different states) are
//! harmless: the exact key is still consulted before any warp, so soundness
//! is entirely unaffected by hash quality.
//!
//! # The digest algebra
//!
//! Each cache set is digested into [`MAX_TRACKED_DIMS`] words, one per
//! candidate warped dimension `d` (a loop at depth `w` warps dimension
//! `w - 1`).  The digest of a set for excluded dimension `d` hashes, in line
//! order:
//!
//! * the occupancy pattern of the set and, per occupied line, the access
//!   node id and the iteration vector **without** the value at dimension
//!   `d` — a uniform shift of the warped iterator therefore cannot change
//!   the digest;
//! * the warped-dim *differences* between consecutive occupied lines that
//!   carry the **same access node** — see below;
//! * the *differences* between the concrete block numbers of consecutive
//!   occupied lines — a uniform block shift (the `π` of the warping theorem)
//!   leaves differences unchanged while still discriminating states whose
//!   line phase differs;
//! * the replacement-policy metadata verbatim, since matching states must
//!   agree on it exactly.
//!
//! # Why exclusion (not epoch deltas) encodes the warped dimension
//!
//! The canonical key normalises each level's descendant labels by the
//! *level epoch* — the warped-iterator stamp of the last label write at
//! that level — so key equality means "labels shifted uniformly per level"
//! (by the period for live levels, by zero for frozen ones).  A digest that
//! mixed in raw warped-dim values would break under either shift; a digest
//! that mixed in deltas from the epoch could not be maintained
//! incrementally, because every access moves the epoch and would dirty the
//! digests of *all* occupied sets.  Dropping the warped-dim value is
//! invariant under **any** uniform per-level shift — live, frozen, or
//! anything the key might factor out in the future — at zero incremental
//! cost.  The discrimination this gives up is partly recovered soundly:
//! two consecutive occupied lines labelled by the *same* node are either
//! both descendants of the warping loop or both stale, so their warped-dim
//! difference survives every transformation the key factors out (the shift
//! cancels pairwise) and can be hashed without risking a missed match.
//!
//! The level fingerprint is the wrapping **sum** of the per-set digests.
//! Summation is commutative, so rotating the sets — which permutes them —
//! cannot change the fingerprint.  (The sum is invariant under arbitrary
//! permutations, a superset of rotations: more collisions, still sound.)
//!
//! # Incrementality
//!
//! [`FingerprintTracker`] maintains the per-set digests and their sums
//! across state mutations with dirty-set tracking: an access dirties one
//! set (detected via the [content
//! version](cache_model::SetState::content_version) hook of the cache
//! crate), a warp dirties the occupied sets and *rotates* the stored digest
//! array alongside the state (the sums are unchanged by rotation).  Dirty
//! digests are recomputed lazily when a fingerprint is next requested, so
//! the cost of keeping fingerprints fresh is proportional to the number of
//! sets touched since the last match attempt — not to the total number of
//! sets of an 8 MiB L3.

use crate::symstate::SymLine;
use cache_model::{CacheState, MemBlock, PolicyState, SetState};
use std::collections::{HashMap, HashSet};

/// Number of candidate warped dimensions a digest covers.  Loops nested
/// deeper than this cannot use the fingerprint filter and fall back to
/// exhaustive exact-key matching (sound, just slower); PolyBench-style
/// kernels are at most three deep.
pub const MAX_TRACKED_DIMS: usize = 4;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const TAG_EMPTY_LINE: u64 = 0x9e37;
const TAG_LINE: u64 = 0x85eb;
const TAG_POLICY: [u64; 3] = [0x27d4, 0xeb2f, 0x1656];

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Final avalanche (SplitMix64), so that wrapping-add combination of set
/// digests does not cancel structured low-entropy inputs.
#[inline]
fn finalize(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The digest of one cache set: one word per excluded (candidate warped)
/// dimension.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SetDigest([u64; MAX_TRACKED_DIMS]);

impl SetDigest {
    /// The digest word for excluded dimension `d`.
    pub fn word(&self, d: usize) -> u64 {
        self.0[d]
    }
}

/// Digests one set of a symbolic cache state.  See the module documentation
/// for the invariances this encoding guarantees.
pub fn digest_set(set: &SetState<SymLine>) -> SetDigest {
    let mut words = [FNV_OFFSET; MAX_TRACKED_DIMS];
    let mut prev_block: Option<u64> = None;
    let mut prev_line: Option<&SymLine> = None;
    for line in set.lines() {
        match line {
            None => {
                for w in &mut words {
                    *w = mix(*w, TAG_EMPTY_LINE);
                }
            }
            Some(l) => {
                for w in &mut words {
                    *w = mix(*w, TAG_LINE);
                    *w = mix(*w, l.node as u64);
                    *w = mix(*w, l.iter.len() as u64);
                }
                for (k, v) in l.iter.iter().enumerate() {
                    for (d, w) in words.iter_mut().enumerate() {
                        if k != d {
                            *w = mix(*w, *v as u64);
                        }
                    }
                }
                // The excluded dimension re-enters as a pairwise difference
                // when the neighbouring line carries the same node: the pair
                // is then uniformly both-descendant or both-stale, so every
                // label shift the canonical key factors out cancels.
                if let Some(p) = prev_line {
                    if p.node == l.node {
                        for (d, w) in words.iter_mut().enumerate() {
                            if let (Some(a), Some(b)) = (l.iter.get(d), p.iter.get(d)) {
                                *w = mix(*w, a.wrapping_sub(*b) as u64);
                            }
                        }
                    }
                }
                // Consecutive block differences are invariant under the
                // uniform block shift of a warp; absolute blocks are not.
                if let Some(prev) = prev_block {
                    let diff = l.block.0.wrapping_sub(prev);
                    for w in &mut words {
                        *w = mix(*w, diff);
                    }
                }
                prev_block = Some(l.block.0);
                prev_line = Some(l);
            }
        }
    }
    match set.policy_state() {
        PolicyState::None => {
            for w in &mut words {
                *w = mix(*w, TAG_POLICY[0]);
            }
        }
        PolicyState::PlruBits(bits) => {
            for w in &mut words {
                *w = mix(*w, TAG_POLICY[1]);
                for b in bits {
                    *w = mix(*w, u64::from(*b));
                }
            }
        }
        PolicyState::Ages(ages) => {
            for w in &mut words {
                *w = mix(*w, TAG_POLICY[2]);
                for a in ages {
                    *w = mix(*w, u64::from(*a));
                }
            }
        }
    }
    for w in &mut words {
        *w = finalize(*w);
    }
    SetDigest(words)
}

/// Digests one set of a *concrete* cache state (payload = memory blocks
/// instead of symbolic lines).  The encoding mirrors [`digest_set`]'s
/// shift-invariant core: the occupancy pattern, the pairwise differences of
/// consecutive occupied blocks (invariant under a uniform block shift) and
/// the replacement-policy metadata verbatim.  Absolute block numbers are
/// deliberately dropped, so a streaming kernel that advances through memory
/// at a constant rate digests identically from one period to the next.
pub fn digest_concrete_set(set: &SetState<MemBlock>) -> u64 {
    let mut h = FNV_OFFSET;
    let mut prev_block: Option<u64> = None;
    for line in set.lines() {
        match line {
            None => h = mix(h, TAG_EMPTY_LINE),
            Some(block) => {
                h = mix(h, TAG_LINE);
                if let Some(prev) = prev_block {
                    h = mix(h, block.0.wrapping_sub(prev));
                }
                prev_block = Some(block.0);
            }
        }
    }
    match set.policy_state() {
        PolicyState::None => h = mix(h, TAG_POLICY[0]),
        PolicyState::PlruBits(bits) => {
            h = mix(h, TAG_POLICY[1]);
            for b in bits {
                h = mix(h, u64::from(*b));
            }
        }
        PolicyState::Ages(ages) => {
            h = mix(h, TAG_POLICY[2]);
            for a in ages {
                h = mix(h, u64::from(*a));
            }
        }
    }
    finalize(h)
}

/// A shift- and rotation-invariant fingerprint of a whole concrete
/// hierarchy (per-level states, L1 first).  Per level the occupied-set
/// digests are combined by wrapping sum — invariant under any permutation
/// of the sets, a superset of the rotations a moving working set induces —
/// plus the occupied-set count; levels are then mixed in order.
///
/// Interval samplers use this as the boundary detector: when the
/// fingerprint at the end of outer iteration `t` equals the one at
/// `t - p`, the cache is plausibly `p`-periodic and `p` outer iterations
/// make a representative interval.  Collisions merely pick a poorer
/// interval; counts are still measured, so accuracy is unaffected.
pub fn concrete_fingerprint(levels: &[CacheState<MemBlock>]) -> u64 {
    let mut h = FNV_OFFSET;
    for state in levels {
        let mut sum = 0u64;
        for (_, set) in state.occupied_entries() {
            sum = sum.wrapping_add(digest_concrete_set(set));
        }
        h = mix(h, sum);
        h = mix(h, state.occupied_len() as u64);
    }
    finalize(h)
}

/// Rebuilds the level fingerprint words from scratch — the reference the
/// incremental [`FingerprintTracker`] is tested against.
pub fn rebuild_level_fingerprint(state: &CacheState<SymLine>) -> [u64; MAX_TRACKED_DIMS] {
    let mut sums = [0u64; MAX_TRACKED_DIMS];
    for (_, set) in state.sets() {
        let digest = digest_set(set);
        for (s, w) in sums.iter_mut().zip(digest.0) {
            *s = s.wrapping_add(w);
        }
    }
    sums
}

/// Incrementally maintained per-set digests and rolling level fingerprints
/// of one symbolic cache level.
///
/// The tracker mirrors the cache state's sparse representation: digests are
/// stored only for sets whose content diverged from the shared empty
/// template, so construction is O(1) and memory is proportional to the
/// sets ever touched — not to the total number of sets of a 64 MiB level.
#[derive(Clone, Debug)]
pub struct FingerprintTracker {
    /// The digest every set in its initial (empty) state shares.
    empty: SetDigest,
    /// Digests of sets that diverged from the empty template.
    digests: HashMap<usize, SetDigest>,
    dirty_flag: HashSet<usize>,
    dirty: Vec<usize>,
    sums: [u64; MAX_TRACKED_DIMS],
}

impl FingerprintTracker {
    /// A tracker over a fresh (all-empty) state.  Every set of a fresh
    /// state is identical, so one template digest covers them all and
    /// construction does no per-set digesting or allocation.
    pub fn new(state: &CacheState<SymLine>) -> Self {
        let empty = digest_set(state.set(0));
        debug_assert!(state.occupied_indices().next().is_none());
        let num_sets = state.num_sets();
        let mut sums = [0u64; MAX_TRACKED_DIMS];
        for (s, w) in sums.iter_mut().zip(empty.0) {
            *s = w.wrapping_mul(num_sets as u64);
        }
        FingerprintTracker {
            empty,
            digests: HashMap::new(),
            dirty_flag: HashSet::new(),
            dirty: Vec::new(),
            sums,
        }
    }

    /// Marks one set's digest as possibly stale.
    pub fn mark_dirty(&mut self, set: usize) {
        if self.dirty_flag.insert(set) {
            self.dirty.push(set);
        }
    }

    /// Recomputes the digests of all dirty sets and updates the rolling
    /// sums.  O(dirty sets), independent of the total number of sets.
    ///
    /// Every dirty set is recomputed unconditionally: content versions are
    /// only comparable within one `SetState` instance, and warp application
    /// replaces sets wholesale (resetting their version), so a version
    /// match across a flush proves nothing about staleness.
    pub fn flush(&mut self, state: &CacheState<SymLine>) {
        for &s in &self.dirty {
            self.dirty_flag.remove(&s);
            let set = state.set(s);
            let digest = digest_set(set);
            // A set a warp vacated reverts to the shared empty digest; drop
            // its entry so the map tracks only diverged sets.
            let old = if set.is_empty() && digest == self.empty {
                self.digests.remove(&s).unwrap_or(self.empty)
            } else {
                self.digests.insert(s, digest).unwrap_or(self.empty)
            };
            for ((sum, old), new) in self.sums.iter_mut().zip(old.0).zip(digest.0) {
                *sum = sum.wrapping_sub(old).wrapping_add(new);
            }
        }
        self.dirty.clear();
    }

    /// Whether all digests are up to date (no pending dirty sets).
    pub fn is_flushed(&self) -> bool {
        self.dirty.is_empty()
    }

    /// The rolling level fingerprint for excluded dimension `d`, or `None`
    /// when `d` is beyond [`MAX_TRACKED_DIMS`] (the caller then falls back
    /// to exhaustive exact-key matching).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the tracker has been [flushed](Self::flush).
    pub fn fingerprint(&self, d: usize) -> Option<u64> {
        debug_assert!(self.is_flushed(), "fingerprint read from a dirty tracker");
        self.sums.get(d).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::{MemBlock, ReplacementPolicy};

    fn line(node: usize, iter: &[i64], block: u64) -> SymLine {
        SymLine {
            block: MemBlock(block),
            node,
            iter: iter.to_vec(),
        }
    }

    fn set_of(lines: &[Option<SymLine>]) -> SetState<SymLine> {
        let mut set = SetState::new(ReplacementPolicy::Lru, lines.len());
        // Insert back to front so the final line order matches `lines`.
        for l in lines.iter().rev().flatten() {
            set.on_miss_insert(ReplacementPolicy::Lru, l.clone());
        }
        set
    }

    #[test]
    fn digest_excludes_only_the_excluded_dim() {
        let a = set_of(&[Some(line(0, &[5, 7], 10)), None]);
        let b = set_of(&[Some(line(0, &[6, 7], 10)), None]);
        let c = set_of(&[Some(line(0, &[5, 8], 10)), None]);
        // Shifting dim 0 changes every word except word 0.
        assert_eq!(digest_set(&a).word(0), digest_set(&b).word(0));
        assert_ne!(digest_set(&a).word(1), digest_set(&b).word(1));
        // Shifting dim 1 changes every word except word 1.
        assert_eq!(digest_set(&a).word(1), digest_set(&c).word(1));
        assert_ne!(digest_set(&a).word(0), digest_set(&c).word(0));
    }

    #[test]
    fn digest_is_invariant_under_uniform_block_shift() {
        let a = set_of(&[Some(line(0, &[5], 10)), Some(line(1, &[5], 26))]);
        let b = set_of(&[Some(line(0, &[6], 14)), Some(line(1, &[6], 30))]);
        assert_eq!(digest_set(&a).word(0), digest_set(&b).word(0));
        // A non-uniform shift changes the block differences.
        let c = set_of(&[Some(line(0, &[6], 14)), Some(line(1, &[6], 34))]);
        assert_ne!(digest_set(&a).word(0), digest_set(&c).word(0));
    }

    #[test]
    fn same_node_warped_dim_spacing_is_hashed_shift_invariantly() {
        // Two same-node lines: their warped-dim spacing discriminates (word
        // 0 differs between spacing 1 and spacing 2) ...
        let a = set_of(&[Some(line(0, &[5], 10)), Some(line(0, &[4], 26))]);
        let b = set_of(&[Some(line(0, &[5], 10)), Some(line(0, &[3], 26))]);
        assert_ne!(digest_set(&a).word(0), digest_set(&b).word(0));
        // ... while a uniform label shift — what the epoch-relative key
        // factors out, for live and frozen levels alike — cancels pairwise.
        let shifted = set_of(&[Some(line(0, &[9], 10)), Some(line(0, &[8], 26))]);
        assert_eq!(digest_set(&a).word(0), digest_set(&shifted).word(0));
        // Mixed-node neighbours contribute no pair: one side could be a
        // stale (absolute) label, so their spacing must stay out of the
        // digest to preserve "equal keys ⟹ equal fingerprints".
        let c = set_of(&[Some(line(0, &[5], 10)), Some(line(1, &[4], 26))]);
        let d = set_of(&[Some(line(0, &[5], 10)), Some(line(1, &[3], 26))]);
        assert_eq!(digest_set(&c).word(0), digest_set(&d).word(0));
        assert_ne!(
            digest_set(&c).word(1),
            digest_set(&d).word(1),
            "other words still see the absolute value"
        );
    }

    #[test]
    fn digest_discriminates_nodes_occupancy_and_policy() {
        let a = set_of(&[Some(line(0, &[5], 10)), None]);
        let other_node = set_of(&[Some(line(1, &[5], 10)), None]);
        let empty = set_of(&[None, None]);
        assert_ne!(digest_set(&a).word(0), digest_set(&other_node).word(0));
        assert_ne!(digest_set(&a).word(0), digest_set(&empty).word(0));

        let mut qlru = SetState::new(ReplacementPolicy::Qlru, 2);
        qlru.on_miss_insert(ReplacementPolicy::Qlru, line(0, &[5], 10));
        let once = digest_set(&qlru);
        qlru.on_hit(ReplacementPolicy::Qlru, 0); // age 2 -> 0
        assert_ne!(once.word(0), digest_set(&qlru).word(0));
    }

    #[test]
    fn concrete_fingerprint_is_shift_invariant_and_discriminating() {
        use cache_model::CacheConfig;
        let config = CacheConfig::with_sets(8, 2, 64, ReplacementPolicy::Lru);
        let touch = |blocks: &[u64]| {
            let mut state = CacheState::new(&config);
            for &b in blocks {
                state.access_block(&config, MemBlock(b));
            }
            state
        };
        // A streaming working set and the same set shifted uniformly by a
        // whole number of blocks digest identically: the set indices rotate
        // (the sum is permutation-invariant) and the in-set block diffs are
        // unchanged.
        let a = touch(&[0, 1, 2, 3]);
        let shifted = touch(&[16, 17, 18, 19]);
        assert_eq!(
            concrete_fingerprint(std::slice::from_ref(&a)),
            concrete_fingerprint(std::slice::from_ref(&shifted))
        );
        // A different occupancy pattern or a different access order
        // (policy order differs) changes the fingerprint.
        let fewer = touch(&[0, 1, 2]);
        assert_ne!(
            concrete_fingerprint(std::slice::from_ref(&a)),
            concrete_fingerprint(std::slice::from_ref(&fewer))
        );
        let reordered = touch(&[8, 1, 2, 3, 0, 8]);
        assert_ne!(
            concrete_fingerprint(std::slice::from_ref(&a)),
            concrete_fingerprint(std::slice::from_ref(&reordered))
        );
        // Levels are order-sensitive: (a, fewer) != (fewer, a).
        assert_ne!(
            concrete_fingerprint(&[a.clone(), fewer.clone()]),
            concrete_fingerprint(&[fewer, a])
        );
    }
}
