//! The warping symbolic cache simulator (Algorithm 2 of the paper).
//!
//! # The two-phase match pipeline
//!
//! A match attempt no longer builds an exact [`CanonicalKey`] up front.
//! Instead it runs in two phases:
//!
//! 1. **Fingerprint phase** — the rolling level fingerprints (see
//!    [`fingerprint`](crate::fingerprint)) of all levels are combined and
//!    looked up in the per-loop match map.  Fingerprints are maintained
//!    incrementally with dirty-set tracking, so this phase costs time
//!    proportional to the sets touched since the last attempt — not to the
//!    size of the outermost cache level.
//! 2. **Exact phase** — only on a fingerprint hit is the exact canonical
//!    key constructed (itself sparse: O(occupied sets)) and compared.
//!    Soundness is unchanged: a warp still requires exact key equality,
//!    which implies symbolic state equality (Theorem 3).
//!
//! A state's exact key is built lazily: the first sighting of a fingerprint
//! stores only the fingerprint; the second sighting attaches the key; the
//! third sighting can match exactly and warp.  Loops whose states never
//! recur therefore never pay for key construction at all.
//!
//! # Relative-label addressing
//!
//! Keys normalise each level's descendant labels by that **level's epoch**
//! (the warped-iterator stamp of the last label write at the level, see
//! [`SymLevel::epoch_at`]) rather than by the current iterator.  When a
//! match fires, the difference between the two states' normalisers
//! reconstructs each level's true label shift: `period` means the level
//! moves with the loop ([`LevelWarpMode::Shifted`]), `0` means the level is
//! bit-identical and stays put ([`LevelWarpMode::Frozen`] — legal when the
//! block shift is zero or the level saw no traffic during the matched
//! chunk).  This is what lets kernels whose working set fits in the L1 warp
//! over arbitrarily large outer levels: the outer levels' labels froze
//! during warm-up, and under current-iterator normalisation ([
//! `WarpingOptions::label_renorm`] = `false`) their keys would drift apart
//! forever even though the states are physically identical.

use crate::fingerprint::MAX_TRACKED_DIMS;
use crate::key::CanonicalKey;
use crate::plan::{plan_warp, LevelWarpMode};
use crate::symstate::SymLevel;
use cache_model::{CacheConfig, HierarchyConfig, LevelStats, MemBlock, MemoryConfig};
use polyhedra::Aff;
use scop::{
    compile, AccessNode, CompiledAccess, CompiledLoop, CompiledNode, EntryBounds, LoopNode, Node,
    Scop,
};
use simulate::{SimulationResult, WalkMode};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::time::Instant;

/// The memory system simulated by the warping simulator.
///
/// This is the workspace-wide [`MemoryConfig`] — the old parallel
/// `WarpingMemory` enum (`Single`/`Hierarchy`) is gone; construct a
/// `MemoryConfig` (e.g. via `From<CacheConfig>` or `From<HierarchyConfig>`)
/// and pass it to [`WarpingSimulator::new`].  The warping simulator supports
/// memory systems of any depth ≥ 1.
pub type WarpingMemory = MemoryConfig;

/// The outcome of a warping simulation.
///
/// Equality ignores [`warp_apply_ns`](WarpingOutcome::warp_apply_ns), which
/// is wall-clock telemetry and varies run to run.
#[derive(Clone, Debug, Default)]
pub struct WarpingOutcome {
    /// Access and miss counts, identical to what non-warping simulation
    /// produces.
    pub result: SimulationResult,
    /// Number of accesses that were simulated explicitly.
    pub non_warped_accesses: u64,
    /// Number of accesses that were skipped by warping.
    pub warped_accesses: u64,
    /// Number of successful warp events.
    pub warps: u64,
    /// Number of warp-match attempts (both phases combined).
    pub match_attempts: u64,
    /// Match attempts whose fingerprint found a candidate in the match map
    /// (the only attempts that proceed to the exact phase).
    pub fingerprint_hits: u64,
    /// Number of exact [`CanonicalKey`] constructions.  With the
    /// fingerprint filter enabled this is typically a small fraction of
    /// [`match_attempts`](WarpingOutcome::match_attempts).
    pub exact_key_builds: u64,
    /// Number of levels, summed over applied warps, whose stale (frozen)
    /// labels were matched through epoch renormalisation — levels holding
    /// lines that stopped being touched and were recognised as bit-identical
    /// instead of blocking the match.  The warps the pre-epoch,
    /// current-iterator normalisation could never find (frozen
    /// *descendant* labels, e.g. L1-resident kernels over big hierarchies)
    /// always show up here; a frozen level holding only non-descendant
    /// (absolutely encoded) lines also counts, even though an identity
    /// (zero-shift) warp over it could have matched under the old
    /// normalisation too.
    pub stale_label_renorms: u64,
    /// Wall-clock nanoseconds spent applying warps (counter extrapolation
    /// plus symbolic state advancement).  Ignored by `PartialEq`.
    pub warp_apply_ns: u64,
}

impl PartialEq for WarpingOutcome {
    fn eq(&self, other: &Self) -> bool {
        // warp_apply_ns is timing telemetry, not an outcome.
        self.result == other.result
            && self.non_warped_accesses == other.non_warped_accesses
            && self.warped_accesses == other.warped_accesses
            && self.warps == other.warps
            && self.match_attempts == other.match_attempts
            && self.fingerprint_hits == other.fingerprint_hits
            && self.exact_key_builds == other.exact_key_builds
            && self.stale_label_renorms == other.stale_label_renorms
    }
}

impl Eq for WarpingOutcome {}

impl WarpingOutcome {
    /// The share of accesses that could not be warped (the quantity plotted
    /// at the top of Fig. 6 of the paper), in `[0, 1]`.
    pub fn non_warped_share(&self) -> f64 {
        let total = self.non_warped_accesses + self.warped_accesses;
        if total == 0 {
            0.0
        } else {
            self.non_warped_accesses as f64 / total as f64
        }
    }
}

/// Warp-plan hints a finished run exports for a *similar* future run —
/// typically the next instance of the same kernel family in a tile-size
/// sweep, where the loop structure is identical and only the bounds move.
///
/// Hints are keyed by loop **depth** (the only structural coordinate that
/// transfers across instances whose ASTs differ) and only influence the
/// match-*attempt* schedule: a depth the donor found barren skips the
/// eager phase and probes on the backoff cadence alone, saving the
/// fingerprint/key work that dominates non-warping loops.  Every count a
/// hinted run produces is bit-identical to a cold run's — any warp that
/// does fire is sound regardless of when it was attempted, and skipped
/// attempts only forgo speed, never correctness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarpHints {
    /// Depths at which the donor run applied at least one warp, sorted.
    pub warped_depths: Vec<usize>,
    /// Depths at which some loop exhausted its fruitless-attempt budget
    /// without ever warping (and no sibling loop at the depth warped
    /// either), sorted.
    pub barren_depths: Vec<usize>,
}

impl WarpHints {
    /// Whether the donor saw the depth warp.
    pub fn is_warped(&self, depth: usize) -> bool {
        self.warped_depths.binary_search(&depth).is_ok()
    }

    /// Whether the donor gave up on the depth without a single warp.
    pub fn is_barren(&self, depth: usize) -> bool {
        self.barren_depths.binary_search(&depth).is_ok()
    }

    /// Whether the hints carry any information at all.
    pub fn is_empty(&self) -> bool {
        self.warped_depths.is_empty() && self.barren_depths.is_empty()
    }
}

/// Tuning knobs of the warping simulator.
///
/// The defaults keep the overhead of key construction small on loops that
/// never warp while still finding matches whose period is a small multiple
/// of the cache-line phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WarpingOptions {
    /// Number of initial iterations of each loop execution during which a
    /// match is attempted on every iteration.
    pub eager_attempts: u64,
    /// After the eager phase, matches are attempted every `backoff_interval`
    /// iterations.  This bounds the overhead of key construction on loops
    /// that never warp.
    pub backoff_interval: u64,
    /// Maximum number of symbolic states remembered per loop execution.
    pub max_map_entries: usize,
    /// Loops whose trip count (for the current outer iteration) is below
    /// this threshold are simulated without attempting to warp: the possible
    /// gain cannot amortise the cost of key construction.
    pub min_trip_count: i64,
    /// Warping is abandoned for a loop node after this many *costly* match
    /// attempts (across all executions of the node) that did not lead to a
    /// warp.  An attempt counts as costly when it paid for an exact
    /// canonical-key construction, or when it could not even remember the
    /// state because the match map was full; attempts that the fingerprint
    /// filter dismisses cheaply do not count, since the knob exists to cap
    /// overhead, not opportunity.  This bounds the cost on loops whose
    /// states never recur while still allowing matches that only appear
    /// after the cache has warmed up.
    pub max_fruitless_attempts: u64,
    /// Whether match attempts run the cheap fingerprint phase before
    /// constructing exact canonical keys.  Disabling it restores the
    /// exhaustive key-per-attempt pipeline (useful for differential testing
    /// and ablation); results are bit-identical either way.
    pub fingerprint_filter: bool,
    /// Whether canonical keys normalise each level's descendant labels by
    /// that level's epoch (the warped-iterator stamp of the last access
    /// that wrote a label there) instead of the current iterator value.
    /// Epoch normalisation makes *frozen* labels — outer-level lines that
    /// stopped being touched because the working set fits further in —
    /// shift-invariant, unlocking warps on L1-resident kernels over big
    /// hierarchies.  Disabling it restores the pre-epoch pipeline (every
    /// level normalised by the current iterator); miss counts are
    /// bit-identical either way — renormalisation only changes *which*
    /// states are recognised as matching, never what a warp extrapolates.
    pub label_renorm: bool,
    /// Whether warp application may fan out across levels (and across sets
    /// within large levels) over the simulator's [thread
    /// budget](WarpingSimulator::with_threads).  The rewrite of each set is
    /// independent, so the resulting state — and every simulation count —
    /// is bit-identical to the sequential rewrite.  Depth-1 or small
    /// configurations fall back to the sequential path automatically.
    pub parallel_warp: bool,
}

impl Default for WarpingOptions {
    fn default() -> Self {
        WarpingOptions::DEFAULT
    }
}

impl WarpingOptions {
    /// The default tuning, as a `const` so it can appear in constant
    /// contexts (e.g. backend tables).
    pub const DEFAULT: WarpingOptions = WarpingOptions {
        eager_attempts: 32,
        backoff_interval: 16,
        max_map_entries: 4096,
        min_trip_count: 24,
        max_fruitless_attempts: 512,
        fingerprint_filter: true,
        label_renorm: true,
        parallel_warp: true,
    };

    /// Checks the options for values that would make the simulator loop or
    /// thrash instead of warping.
    ///
    /// # Errors
    ///
    /// * `backoff_interval == 0` — the match-attempt schedule would divide
    ///   by zero once the eager phase ends.
    /// * `max_map_entries == 0` — no symbolic state could ever be
    ///   remembered, so every match attempt would pay the key-construction
    ///   cost without any chance of a warp.
    pub fn validate(&self) -> Result<(), InvalidWarpingOptions> {
        if self.backoff_interval == 0 {
            return Err(InvalidWarpingOptions {
                message: "backoff_interval must be positive (0 would divide by zero in the \
                          match-attempt schedule)",
            });
        }
        if self.max_map_entries == 0 {
            return Err(InvalidWarpingOptions {
                message: "max_map_entries must be positive (0 would attempt matches without \
                          ever remembering a state, thrashing instead of warping)",
            });
        }
        Ok(())
    }
}

/// An invalid [`WarpingOptions`] value, reported by
/// [`WarpingOptions::validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InvalidWarpingOptions {
    message: &'static str,
}

impl fmt::Display for InvalidWarpingOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for InvalidWarpingOptions {}

/// Per-entry bookkeeping of the per-loop match map of Algorithm 2, keyed by
/// the rolling fingerprint.
#[derive(Clone, Debug)]
struct MatchEntry {
    /// Warped-iterator value at which the state was recorded.
    v: i64,
    /// Counter snapshot at that point.
    counters: Counters,
    /// The per-level label normalisers in effect when the state was
    /// recorded (each level's epoch on the warped dimension, falling back
    /// to `v`).  On a key match, the difference between the current
    /// normalisers and these reconstructs each level's true label shift —
    /// `period` for levels moving with the loop, `0` for frozen levels —
    /// which decides the level's [`LevelWarpMode`].
    epochs: Vec<i64>,
    /// The exact canonical key of the recorded state.  Built lazily: `None`
    /// until the entry's fingerprint is sighted a second time, so loops
    /// whose states never recur never pay for key construction.
    key: Option<CanonicalKey>,
}

/// Snapshot of all monotonically increasing counters, used to extrapolate
/// across warped chunks.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct Counters {
    accesses: u64,
    level: Vec<LevelStats>,
}

/// Per-loop-node data that is invariant across executions of the node:
/// the access nodes below it, their id set, and the common per-iteration
/// address coefficient on the loop's dimension (if any).  Computed once and
/// cached for the whole [`WarpingSimulator::run`], instead of being
/// recollected on every execution of an inner loop.
struct LoopInfo<'a> {
    nodes: Vec<&'a AccessNode>,
    ids: HashSet<usize>,
    uniform_coeff: Option<i64>,
}

/// Per-run context threaded through the tree walk: the address table and
/// the per-node [`LoopInfo`] cache.
struct RunCtx<'a> {
    addresses: Vec<Aff>,
    loops: HashMap<usize, Rc<LoopInfo<'a>>>,
}

/// The warping symbolic cache simulator.
///
/// One generic code path simulates memory systems of any depth ≥ 1: the
/// symbolic levels live in a `Vec<SymLevel>`, and fingerprint maintenance,
/// canonical-key construction, warp planning and warp application all
/// iterate over it.
///
/// See the crate-level documentation for an example.
#[derive(Clone, Debug)]
pub struct WarpingSimulator {
    levels: Vec<SymLevel>,
    options: WarpingOptions,
    /// Thread budget for parallel warp application (see
    /// [`WarpingSimulator::with_threads`]); 1 means sequential.
    warp_threads: usize,
    accesses: u64,
    warped_accesses: u64,
    warps: u64,
    match_attempts: u64,
    fingerprint_hits: u64,
    exact_key_builds: u64,
    stale_label_renorms: u64,
    warp_apply_ns: u64,
    /// Match attempts that did not result in a warp, per loop node (keyed by
    /// the node's address within the SCoP currently being simulated).
    fruitless: HashMap<usize, u64>,
    /// Donor hints from a similar earlier run (see [`WarpHints`]); `None`
    /// runs the cold schedule.
    hints: Option<WarpHints>,
    /// How the explicit (non-warped) iterations step through the SCoP:
    /// the compiled walk hoists loop bounds and guards (see
    /// [`scop::compile`]), the reference walk re-derives them per entry.
    /// The match-attempt schedule — and every count — is bit-identical
    /// either way.
    walk: WalkMode,
    /// Depths at which this run applied at least one warp.
    warped_depths: HashSet<usize>,
    /// Depths at which some loop exhausted its fruitless budget.
    exhausted_depths: HashSet<usize>,
}

impl WarpingSimulator {
    /// A simulator for a single cache level.  Compatibility wrapper over
    /// [`WarpingSimulator::new`].
    pub fn single(config: CacheConfig) -> Self {
        WarpingSimulator::new(MemoryConfig::from(config))
    }

    /// A simulator for a two-level hierarchy.  Compatibility wrapper over
    /// [`WarpingSimulator::new`].
    pub fn hierarchy(config: HierarchyConfig) -> Self {
        WarpingSimulator::new(MemoryConfig::from(config))
    }

    /// A simulator for any memory system of depth ≥ 1.  The configuration is
    /// [normalized](MemoryConfig::normalized) first, so the hierarchy-wide
    /// write policy governs write allocation at every level, exactly as in
    /// non-warping simulation.
    ///
    /// # Errors
    ///
    /// Infallible today — every valid [`MemoryConfig`] is supported — but
    /// kept fallible so callers stay source-compatible if a future memory
    /// model (e.g. exclusive hierarchies) is only partially covered.
    pub fn try_new(memory: WarpingMemory) -> Result<Self, String> {
        let memory = memory.normalized();
        Ok(WarpingSimulator {
            levels: memory
                .levels()
                .iter()
                .map(|level| SymLevel::new(level.clone()))
                .collect(),
            options: WarpingOptions::default(),
            warp_threads: 1,
            accesses: 0,
            warped_accesses: 0,
            warps: 0,
            match_attempts: 0,
            fingerprint_hits: 0,
            exact_key_builds: 0,
            stale_label_renorms: 0,
            warp_apply_ns: 0,
            fruitless: HashMap::new(),
            hints: None,
            walk: WalkMode::default(),
            warped_depths: HashSet::new(),
            exhausted_depths: HashSet::new(),
        })
    }

    /// A simulator for any memory system of depth ≥ 1.
    pub fn new(memory: WarpingMemory) -> Self {
        WarpingSimulator::try_new(memory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Overrides the tuning options.
    ///
    /// # Panics
    ///
    /// Panics if the options fail [`WarpingOptions::validate`]
    /// (`backoff_interval == 0` or `max_map_entries == 0`).
    pub fn with_options(mut self, options: WarpingOptions) -> Self {
        if let Err(e) = options.validate() {
            panic!("invalid warping options: {e}");
        }
        self.options = options;
        self
    }

    /// Grants the simulator a thread budget for parallel warp application
    /// (clamped to at least 1; the default is 1, i.e. sequential).  Only
    /// effective when [`WarpingOptions::parallel_warp`] is enabled; results
    /// are bit-identical for every budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.warp_threads = threads.max(1);
        self
    }

    /// Selects how the explicit (non-warped) iterations walk the SCoP.
    /// The default is [`WalkMode::Compiled`]: loop bounds and access
    /// guards are hoisted once per run, so exact loops skip the
    /// per-iteration membership checks.  [`WalkMode::Reference`] restores
    /// the literal per-entry lexmin/lexmax stepping; every simulation
    /// count is bit-identical either way.
    pub fn with_walk(mut self, walk: WalkMode) -> Self {
        self.walk = walk;
        self
    }

    /// Seeds the match-attempt schedule with a donor run's [`WarpHints`].
    /// Depths the donor found barren skip the eager phase (attempts run on
    /// the backoff cadence alone); everything else is unchanged.  All
    /// simulation counts stay bit-identical to a cold run.
    pub fn with_hints(mut self, hints: WarpHints) -> Self {
        self.hints = if hints.is_empty() { None } else { Some(hints) };
        self
    }

    /// Exports this run's warp-plan facts for donation to a similar future
    /// run (see [`WarpHints`]).  A depth only counts as barren when no loop
    /// at that depth warped, so mixed evidence errs on the side of
    /// attempting.
    pub fn export_hints(&self) -> WarpHints {
        let mut warped: Vec<usize> = self.warped_depths.iter().copied().collect();
        warped.sort_unstable();
        let mut barren: Vec<usize> = self
            .exhausted_depths
            .difference(&self.warped_depths)
            .copied()
            .collect();
        barren.sort_unstable();
        WarpHints {
            warped_depths: warped,
            barren_depths: barren,
        }
    }

    /// Simulates a SCoP and returns the outcome.  The cache state persists
    /// across calls, so SCoPs can be simulated in sequence; use a fresh
    /// simulator for independent runs.
    pub fn run(&mut self, scop: &Scop) -> WarpingOutcome {
        let addresses: Vec<Aff> = {
            let mut v: Vec<(usize, Aff)> = scop
                .access_nodes()
                .map(|a| (a.id, a.address.clone()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v.into_iter().map(|(_, a)| a).collect()
        };
        let mut ctx = RunCtx {
            addresses,
            loops: HashMap::new(),
        };
        // The compiled tree mirrors the source tree node for node, so the
        // explicit walk steps both in lockstep and consults the compiled
        // side for hoisted bounds and guards.
        let compiled = (self.walk == WalkMode::Compiled).then(|| compile(scop));
        for (idx, root) in scop.roots().iter().enumerate() {
            let croot = compiled.as_ref().map(|c| &c.roots()[idx]);
            self.simulate_node(root, croot, &[], &mut ctx);
        }
        self.outcome()
    }

    /// The accumulated outcome.
    pub fn outcome(&self) -> WarpingOutcome {
        WarpingOutcome {
            result: SimulationResult {
                accesses: self.accesses,
                levels: self.levels.iter().map(|l| l.stats).collect(),
            },
            non_warped_accesses: self.accesses - self.warped_accesses,
            warped_accesses: self.warped_accesses,
            warps: self.warps,
            match_attempts: self.match_attempts,
            fingerprint_hits: self.fingerprint_hits,
            exact_key_builds: self.exact_key_builds,
            stale_label_renorms: self.stale_label_renorms,
            warp_apply_ns: self.warp_apply_ns,
        }
    }

    fn counters(&self) -> Counters {
        Counters {
            accesses: self.accesses,
            level: self.levels.iter().map(|l| l.stats).collect(),
        }
    }

    fn simulate_node<'a>(
        &mut self,
        node: &'a Node,
        cnode: Option<&CompiledNode>,
        outer: &[i64],
        ctx: &mut RunCtx<'a>,
    ) {
        match node {
            Node::Access(a) => {
                let ca = cnode.and_then(|c| match c {
                    CompiledNode::Access(ca) => Some(ca),
                    CompiledNode::Loop(_) => None,
                });
                self.simulate_access(a, ca, outer);
            }
            Node::Loop(l) => {
                let cl = cnode.and_then(|c| match c {
                    CompiledNode::Loop(cl) => Some(cl),
                    CompiledNode::Access(_) => None,
                });
                self.simulate_loop(l, cl, outer, ctx);
            }
        }
    }

    fn simulate_access(&mut self, access: &AccessNode, ca: Option<&CompiledAccess>, outer: &[i64]) {
        // A hoisted-trivial guard means membership is implied by the
        // enclosing exact loops — skip the per-point union-set check.
        let guard_free = ca.is_some_and(|c| c.guard_is_trivial());
        if !guard_free && !access.domain.contains(outer) {
            return;
        }
        let address = access.address_at(outer);
        self.accesses += 1;
        // The inclusive walk of the N-level hierarchy: each level is only
        // consulted — and updated — when the previous one misses.
        for level in &mut self.levels {
            let block = MemBlock(address / level.config.line_size());
            if level.access(block, access.kind, access.id, outer) {
                break;
            }
        }
    }

    /// The per-node [`LoopInfo`], computed on first sight and cached for
    /// the rest of the run.
    fn loop_info<'a>(loop_node: &'a LoopNode, ctx: &mut RunCtx<'a>) -> Rc<LoopInfo<'a>> {
        let node_key = loop_node as *const LoopNode as usize;
        if let Some(info) = ctx.loops.get(&node_key) {
            return Rc::clone(info);
        }
        let nodes = descendants(loop_node);
        let ids: HashSet<usize> = nodes.iter().map(|a| a.id).collect();
        let uniform_coeff = uniform_coefficient(&nodes, loop_node.depth - 1);
        let info = Rc::new(LoopInfo {
            nodes,
            ids,
            uniform_coeff,
        });
        ctx.loops.insert(node_key, Rc::clone(&info));
        info
    }

    /// Combines the per-level rolling fingerprints for a warp attempt at
    /// the given depth.  `None` when the warped dimension is beyond the
    /// tracked range, in which case the caller falls back to exhaustive
    /// exact-key matching.
    fn combined_fingerprint(&mut self, warp_depth: usize) -> Option<u64> {
        let dim = warp_depth - 1;
        if dim >= MAX_TRACKED_DIMS {
            return None;
        }
        let mut combined: u64 = 0x517c_c1b7_2722_0a95;
        for level in &mut self.levels {
            level.prepare_match();
            let fp = level.fingerprint(dim).expect("dim is tracked");
            combined = (combined ^ fp)
                .wrapping_mul(0x0000_0100_0000_01b3)
                .rotate_left(17);
        }
        Some(combined)
    }

    /// The per-level label normalisers for a match attempt at loop depth
    /// `depth` with current warped-iterator value `v`: each level's epoch on
    /// the warped dimension, falling back to `v` for levels without a stamp
    /// that deep (empty levels, or levels last written by a shallower
    /// access — the fallback reproduces the pre-epoch behaviour for them).
    /// With [`WarpingOptions::label_renorm`] disabled every level
    /// normalises by `v`, restoring the old pipeline bit for bit.
    fn epoch_normalizers(&self, depth: usize, v: i64) -> Vec<i64> {
        let dim = depth - 1;
        self.levels
            .iter()
            .map(|level| {
                if self.options.label_renorm {
                    level.epoch_at(dim).unwrap_or(v)
                } else {
                    v
                }
            })
            .collect()
    }

    fn build_key(
        &mut self,
        descendant_ids: &HashSet<usize>,
        depth: usize,
        normalizers: &[i64],
    ) -> CanonicalKey {
        self.exact_key_builds += 1;
        CanonicalKey::of_levels(&self.levels, descendant_ids, depth, normalizers)
    }

    fn simulate_loop<'a>(
        &mut self,
        loop_node: &'a LoopNode,
        cl: Option<&CompiledLoop>,
        outer: &[i64],
        ctx: &mut RunCtx<'a>,
    ) {
        let depth = loop_node.depth;
        // Hoisted bounds: an exact entry interval makes the per-iteration
        // domain checks redundant, and an exactly-empty entry returns
        // without the lexmin/lexmax searches the reference path pays.
        let bounds = cl.map(|c| c.entry_bounds(outer));
        if matches!(bounds, Some(EntryBounds::Empty)) {
            return;
        }
        let exact = matches!(bounds, Some(EntryBounds::Exact(..)));
        if loop_node.stride < 0 {
            // Decreasing loops walk lexmax-first.  They are simulated
            // explicitly: warp matching assumes increasing iterators (the
            // match map stores the *earlier* state), and extending it to
            // negative periods is an open ROADMAP item.
            let (mut i, v_lo) = match bounds {
                Some(EntryBounds::Exact(lo, hi)) => {
                    let mut i = Vec::with_capacity(depth);
                    i.extend_from_slice(outer);
                    i.push(hi);
                    (i, lo)
                }
                _ => {
                    let Some(i) = loop_node.last(outer) else {
                        return;
                    };
                    let Some(lowest) = loop_node.initial(outer) else {
                        return;
                    };
                    (i, lowest[depth - 1])
                }
            };
            while i[depth - 1] >= v_lo {
                if exact || loop_node.domain.contains(&i) {
                    for (idx, child) in loop_node.children.iter().enumerate() {
                        self.simulate_node(child, cl.map(|c| &c.children()[idx]), &i, ctx);
                    }
                }
                i[depth - 1] += loop_node.stride;
            }
            return;
        }
        let (mut i, v_last) = match bounds {
            Some(EntryBounds::Exact(lo, hi)) => {
                let mut i = Vec::with_capacity(depth);
                i.extend_from_slice(outer);
                i.push(lo);
                (i, hi)
            }
            _ => {
                let Some(i) = loop_node.initial(outer) else {
                    return;
                };
                let Some(last) = loop_node.last(outer) else {
                    return;
                };
                (i, last[depth - 1])
            }
        };
        let stride = loop_node.stride.max(1);
        // Cheap gating: warping at this loop can only ever succeed if every
        // access below it shifts by the same amount per iteration (see
        // `plan_warp`), and it can only pay off if the loop has enough
        // iterations to amortise the cost of match attempts.  The loop
        // structure facts come from the per-run cache, so inner loops do not
        // recollect their descendants on every outer iteration.
        let trip_count = (v_last - i[depth - 1]) / stride + 1;
        let node_key = loop_node as *const LoopNode as usize;
        let mut fruitless = self.fruitless.get(&node_key).copied().unwrap_or(0);
        let info = Self::loop_info(loop_node, ctx);
        let warpable = trip_count >= self.options.min_trip_count
            && !info.nodes.is_empty()
            && info.uniform_coeff.is_some();
        // Donor hints demote the eager phase on depths a similar run
        // already probed exhaustively without a single warp; a depth the
        // donor saw warp (or never saw at all) keeps the cold schedule.
        let eager = match &self.hints {
            Some(hints) => !hints.is_barren(depth) || hints.is_warped(depth),
            None => true,
        };
        let mut map: HashMap<u64, MatchEntry> = HashMap::new();
        let mut iteration_index: u64 = 0;

        while i[depth - 1] <= v_last {
            let v1 = i[depth - 1];
            if warpable
                && fruitless < self.options.max_fruitless_attempts
                && self.should_attempt(iteration_index, eager)
            {
                if let Some(warped) = self.attempt_match(
                    &info,
                    &ctx.addresses,
                    depth,
                    outer,
                    v1,
                    v_last,
                    &mut map,
                    &mut fruitless,
                ) {
                    let period_total = warped; // iterator units warped across
                    i[depth - 1] += period_total;
                    fruitless = 0;
                    // Iterator units advance by `stride` per iteration.
                    iteration_index += (period_total / stride) as u64;
                    // Do not consume this iteration: re-enter the loop
                    // header so the landed-on iteration is simulated (or
                    // warped again).
                    continue;
                }
            }
            if exact || loop_node.domain.contains(&i) {
                for (idx, child) in loop_node.children.iter().enumerate() {
                    self.simulate_node(child, cl.map(|c| &c.children()[idx]), &i, ctx);
                }
            }
            i[depth - 1] += loop_node.stride;
            iteration_index += 1;
        }
        if warpable {
            if fruitless >= self.options.max_fruitless_attempts {
                self.exhausted_depths.insert(depth);
            }
            self.fruitless.insert(node_key, fruitless);
        }
    }

    /// One two-phase match attempt at iterator value `v1`.  Returns the
    /// number of iterator units warped across on success (the caller
    /// advances the loop), `None` otherwise.
    #[allow(clippy::too_many_arguments)]
    fn attempt_match(
        &mut self,
        info: &LoopInfo<'_>,
        addresses: &[Aff],
        depth: usize,
        outer: &[i64],
        v1: i64,
        v_last: i64,
        map: &mut HashMap<u64, MatchEntry>,
        fruitless: &mut u64,
    ) -> Option<i64> {
        self.match_attempts += 1;
        // The per-level label normalisers of this attempt's key: the level
        // epochs (or the current iterator value, see `epoch_normalizers`).
        let normalizers = self.epoch_normalizers(depth, v1);
        // Phase 1: the cheap rolling fingerprint (when enabled and the
        // warped dimension is tracked); otherwise fall back to hashing the
        // exact key, i.e. the exhaustive pipeline.  Only attempts that pay
        // for an exact key — or that cannot even be remembered — count
        // toward the fruitless-attempt budget: the budget caps overhead,
        // and fingerprint-dismissed attempts are nearly free.
        let filtered = self.options.fingerprint_filter;
        let (slot, mut current_key) =
            match filtered.then(|| self.combined_fingerprint(depth)).flatten() {
                Some(fp) => (fp, None),
                None => {
                    *fruitless += 1;
                    let key = self.build_key(&info.ids, depth, &normalizers);
                    let mut hasher = std::collections::hash_map::DefaultHasher::new();
                    key.hash(&mut hasher);
                    (hasher.finish(), Some(key))
                }
            };
        let Some(entry) = map.get(&slot) else {
            if map.len() < self.options.max_map_entries {
                map.insert(
                    slot,
                    MatchEntry {
                        v: v1,
                        counters: self.counters(),
                        epochs: normalizers,
                        key: current_key,
                    },
                );
            } else {
                // Pure overhead with no future benefit: the state cannot be
                // remembered, so this attempt can never enable a warp.
                *fruitless += 1;
            }
            return None;
        };
        if current_key.is_none() {
            self.fingerprint_hits += 1;
            *fruitless += 1;
        }
        // Phase 2: the exact canonical key decides.
        let key = current_key
            .take()
            .unwrap_or_else(|| self.build_key(&info.ids, depth, &normalizers));
        if entry.key.as_ref() != Some(&key) {
            // Either the stored state's key was never built (first
            // re-sighting of its fingerprint) or the fingerprints collided:
            // re-anchor the slot on the current state, now with its key.
            map.insert(
                slot,
                MatchEntry {
                    v: v1,
                    counters: self.counters(),
                    epochs: normalizers,
                    key: Some(key),
                },
            );
            return None;
        }
        let period = v1 - entry.v;
        // Equal keys say each level's labels moved uniformly; the normaliser
        // difference says by *how much*.  A level that advanced by exactly
        // one period moves with the loop (shifted); a level whose labels
        // did not move at all is bit-identical between the matched states
        // (frozen) — sound to leave in place when either the block shift is
        // zero (π is the identity, an identical level trivially agrees) or
        // the level saw no traffic during the chunk (the repeating access
        // pattern never descends to it, so it stays untouched across the
        // window).  Any other per-level shift is inconsistent with a warp.
        let byte_shift_per_period = info
            .uniform_coeff
            .expect("attempts are gated on a uniform coefficient")
            * period;
        let chunk = self.counters();
        let mut modes = Vec::with_capacity(self.levels.len());
        for (idx, (&now, &then)) in normalizers.iter().zip(&entry.epochs).enumerate() {
            let label_shift = now - then;
            if label_shift == period {
                modes.push(LevelWarpMode::Shifted);
            } else if label_shift == 0 {
                let chunk_traffic = chunk.level[idx].accesses - entry.counters.level[idx].accesses;
                if byte_shift_per_period != 0 && chunk_traffic != 0 {
                    return None;
                }
                modes.push(LevelWarpMode::Frozen);
            } else {
                return None;
            }
        }
        let plan = plan_warp(
            &info.nodes,
            &info.ids,
            &self.levels,
            &modes,
            depth,
            outer,
            entry.v,
            v1,
            v_last,
        )?;
        debug_assert_eq!(
            plan.byte_shift_per_chunk, byte_shift_per_period,
            "the plan's shift must agree with the gating coefficient"
        );
        let warp_start = Instant::now();
        let chunk_accesses = chunk.accesses - entry.counters.accesses;
        // Extrapolate the counters across the warped chunks
        // (Equation 19 / line 12 of Algorithm 2).
        let n = plan.chunks as u64;
        self.accesses += n * chunk_accesses;
        self.warped_accesses += n * chunk_accesses;
        for (idx, level) in self.levels.iter_mut().enumerate() {
            let diff_hits = chunk.level[idx].hits - entry.counters.level[idx].hits;
            let diff_misses = chunk.level[idx].misses - entry.counters.level[idx].misses;
            level.stats.hits += n * diff_hits;
            level.stats.misses += n * diff_misses;
            level.stats.accesses += n * (diff_hits + diff_misses);
        }
        // Advance the symbolic cache state (Equation 18), fanning the
        // per-level (and per-set) rewrites out over the thread budget.
        // Frozen levels are skipped wholesale: their state — labels, epoch,
        // MRU anchor — stays exactly where the warm-up left it, which is
        // also what explicit simulation of the warped window would have
        // produced (the window never touches them).
        let total_shift = plan.byte_shift_per_chunk * plan.chunks;
        let budget = if self.options.parallel_warp {
            self.warp_threads
        } else {
            1
        };
        // Fan out across levels only when the budget covers one thread per
        // *rotating* level (frozen levels spawn no work and do not dilute
        // the budget); a smaller budget stays sequential across levels
        // (each level may still split its sets over the full budget), so
        // the number of running threads never exceeds the budget.
        let rotating = modes
            .iter()
            .filter(|m| **m == LevelWarpMode::Shifted)
            .count();
        if rotating > 1 && budget >= rotating {
            let per_level = (budget / rotating).max(1);
            std::thread::scope(|scope| {
                for (level, mode) in self.levels.iter_mut().zip(&modes) {
                    if *mode == LevelWarpMode::Frozen {
                        continue;
                    }
                    let ids = &info.ids;
                    scope.spawn(move || {
                        level.apply_warp(
                            addresses,
                            ids,
                            depth,
                            period,
                            plan.chunks,
                            total_shift,
                            per_level,
                        );
                    });
                }
            });
        } else {
            for (level, mode) in self.levels.iter_mut().zip(&modes) {
                if *mode == LevelWarpMode::Frozen {
                    continue;
                }
                level.apply_warp(
                    addresses,
                    &info.ids,
                    depth,
                    period,
                    plan.chunks,
                    total_shift,
                    budget,
                );
            }
        }
        // Telemetry: frozen levels that actually hold stale lines are the
        // matches the pre-epoch normalisation could never have made.
        self.stale_label_renorms += self
            .levels
            .iter()
            .zip(&modes)
            .filter(|(level, mode)| {
                **mode == LevelWarpMode::Frozen && level.state.occupied_indices().next().is_some()
            })
            .count() as u64;
        self.warps += 1;
        self.warped_depths.insert(depth);
        self.warp_apply_ns += warp_start.elapsed().as_nanos() as u64;
        Some(plan.chunks * period)
    }

    fn should_attempt(&self, iteration_index: u64, eager: bool) -> bool {
        (eager && iteration_index < self.options.eager_attempts)
            || iteration_index.is_multiple_of(self.options.backoff_interval)
    }
}

/// The common per-iteration byte-shift coefficient of all access nodes on
/// the given dimension, if they agree (`None` if they differ, in which case
/// warping at that loop can never satisfy the uniform-shift condition).
fn uniform_coefficient(nodes: &[&AccessNode], dim: usize) -> Option<i64> {
    let mut common = None;
    for node in nodes {
        let c = node.address.coeff(dim);
        match common {
            None => common = Some(c),
            Some(existing) if existing == c => {}
            Some(_) => return None,
        }
    }
    common
}

/// Collects the access nodes below a loop node.
fn descendants(loop_node: &LoopNode) -> Vec<&AccessNode> {
    let mut out = Vec::new();
    let mut stack: Vec<&Node> = loop_node.children.iter().collect();
    while let Some(node) = stack.pop() {
        match node {
            Node::Access(a) => out.push(a),
            Node::Loop(l) => stack.extend(l.children.iter()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::ReplacementPolicy;
    use scop::parse_scop;
    use simulate::{simulate_hierarchy, simulate_single};

    fn stencil(n: i64) -> Scop {
        parse_scop(&format!(
            "double A[{n}]; double B[{n}];\n\
             for (i = 1; i < {m}; i++) B[i-1] = A[i-1] + A[i];",
            n = n,
            m = n - 1
        ))
        .unwrap()
    }

    #[test]
    fn warping_is_exact_on_the_running_example() {
        let scop = stencil(1000);
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
        assert!(outcome.warps >= 1, "the stencil must warp");
        assert!(
            outcome.non_warped_accesses < reference.accesses / 10,
            "most accesses are warped ({} of {})",
            outcome.non_warped_accesses,
            reference.accesses
        );
    }

    #[test]
    fn warping_is_exact_on_a_set_associative_plru_cache() {
        let scop = stencil(4000);
        let config = CacheConfig::new(4 * 1024, 8, 64, ReplacementPolicy::Plru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
        assert!(outcome.warps >= 1);
    }

    #[test]
    fn warping_is_exact_for_all_policies() {
        let scop = stencil(3000);
        for policy in ReplacementPolicy::ALL {
            let config = CacheConfig::new(2 * 1024, 4, 64, policy);
            let reference = simulate_single(&scop, &config);
            let outcome = WarpingSimulator::single(config).run(&scop);
            assert_eq!(outcome.result, reference, "{policy}");
        }
    }

    #[test]
    fn warping_is_exact_on_a_two_level_hierarchy() {
        let scop = stencil(3000);
        let config = HierarchyConfig::new(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let reference = simulate_hierarchy(&scop, &config);
        let outcome = WarpingSimulator::hierarchy(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn triangular_matvec_is_exact() {
        let scop = parse_scop(
            "double A[200][200]; double x[200]; double c[200];\n\
             for (i = 0; i < 200; i++) {\n\
               c[i] = 0;\n\
               for (j = i; j < 200; j++) c[i] = c[i] + A[i][j] * x[j];\n\
             }",
        )
        .unwrap();
        let config = CacheConfig::new(2 * 1024, 4, 64, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn guarded_kernel_is_exact() {
        let scop = parse_scop(
            "double A[3000]; double B[3000];\n\
             for (i = 1; i < 2999; i++) if (i < 1500) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap();
        let config = CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn multiple_loop_nests_are_exact() {
        let scop = parse_scop(
            "double A[2000]; double B[2000]; double C[2000];\n\
             for (i = 0; i < 2000; i++) B[i] = A[i];\n\
             for (j = 0; j < 2000; j++) C[j] = B[j] + A[j];",
        )
        .unwrap();
        let config = CacheConfig::new(2 * 1024, 8, 64, ReplacementPolicy::Plru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn options_validation_rejects_degenerate_knobs() {
        assert!(WarpingOptions::default().validate().is_ok());
        let zero_backoff = WarpingOptions {
            backoff_interval: 0,
            ..WarpingOptions::default()
        };
        assert!(zero_backoff
            .validate()
            .unwrap_err()
            .to_string()
            .contains("backoff_interval"));
        let zero_map = WarpingOptions {
            max_map_entries: 0,
            ..WarpingOptions::default()
        };
        assert!(zero_map
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_map_entries"));
    }

    #[test]
    #[should_panic(expected = "backoff_interval")]
    fn with_options_panics_on_zero_backoff() {
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let _ = WarpingSimulator::single(config).with_options(WarpingOptions {
            backoff_interval: 0,
            ..WarpingOptions::default()
        });
    }

    #[test]
    fn memory_config_construction_matches_dedicated_constructors() {
        let scop = stencil(1000);
        let single = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let from_memory = WarpingSimulator::new(WarpingMemory::from(single.clone())).run(&scop);
        let direct = WarpingSimulator::single(single).run(&scop);
        assert_eq!(from_memory, direct);

        let hierarchy = HierarchyConfig::new(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let from_memory = WarpingSimulator::new(WarpingMemory::from(hierarchy.clone())).run(&scop);
        let direct = WarpingSimulator::hierarchy(hierarchy).run(&scop);
        assert_eq!(from_memory, direct);
    }

    #[test]
    fn three_level_memory_is_exact() {
        let scop = stencil(3000);
        let memory = WarpingMemory::new(vec![
            CacheConfig::with_sets(2, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(4, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(8, 8, 64, ReplacementPolicy::Lru),
        ])
        .unwrap();
        let reference = simulate::simulate_memory(&scop, &memory);
        let outcome = WarpingSimulator::new(memory).run(&scop);
        assert_eq!(outcome.result, reference);
        assert_eq!(outcome.result.depth(), 3);
        assert!(outcome.warps >= 1, "the stencil must warp at depth 3");
    }

    #[test]
    fn strided_stencil_is_exact_and_warps() {
        // A stride-2 stencil: the per-iteration byte shift is 16, so warping
        // must find line-aligned periods on the stride grid.
        let scop = parse_scop(
            "double A[8000]; double B[8000];\n\
             for (i = 1; i < 7999; i += 2) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap();
        for policy in ReplacementPolicy::ALL {
            let config = CacheConfig::new(2 * 1024, 4, 64, policy);
            let reference = simulate_single(&scop, &config);
            let outcome = WarpingSimulator::single(config).run(&scop);
            assert_eq!(outcome.result, reference, "{policy}");
        }
        let config = CacheConfig::new(2 * 1024, 4, 64, ReplacementPolicy::Lru);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert!(outcome.warps >= 1, "the strided stencil must warp");
    }

    #[test]
    fn strided_loop_on_a_hierarchy_is_exact() {
        let scop = parse_scop(
            "double A[6000];\n\
             for (i = 0; i < 6000; i += 3) A[i] = A[i];",
        )
        .unwrap();
        let memory = WarpingMemory::two_level(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Plru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Plru),
        );
        let reference = simulate::simulate_memory(&scop, &memory);
        let outcome = WarpingSimulator::new(memory).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn small_working_sets_do_not_warp_incorrectly() {
        // jacobi-1d-like situation: the working set fits in the cache, so
        // warping opportunities are limited but correctness must hold.
        let scop = stencil(64);
        let config = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn fingerprint_filter_matches_exhaustive_matching() {
        // The two pipelines must produce identical simulation results; the
        // filtered one must build far fewer exact keys.
        let scop = stencil(4000);
        let memory = WarpingMemory::two_level(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let filtered = WarpingSimulator::new(memory.clone())
            .with_options(WarpingOptions {
                fingerprint_filter: true,
                ..WarpingOptions::default()
            })
            .run(&scop);
        let exhaustive = WarpingSimulator::new(memory)
            .with_options(WarpingOptions {
                fingerprint_filter: false,
                ..WarpingOptions::default()
            })
            .run(&scop);
        assert_eq!(
            filtered.result, exhaustive.result,
            "the filter must not change any simulation count"
        );
        assert!(filtered.warps >= 1);
        assert!(exhaustive.warps >= 1);
        assert_eq!(
            exhaustive.exact_key_builds, exhaustive.match_attempts,
            "the exhaustive pipeline builds a key per attempt"
        );
        assert!(
            filtered.exact_key_builds < filtered.match_attempts,
            "the filter must skip key construction on fingerprint misses \
             ({} builds, {} attempts)",
            filtered.exact_key_builds,
            filtered.match_attempts
        );
    }

    #[test]
    fn parallel_warp_application_is_bit_identical() {
        // The arrays exceed every level, so all three levels reach a
        // periodic steady state and warp; the 4096-set L3 crosses the
        // per-set parallelisation threshold.
        let scop = stencil(75_000);
        let memory = WarpingMemory::new(vec![
            CacheConfig::with_sets(64, 2, 8, ReplacementPolicy::Lru),
            CacheConfig::with_sets(512, 2, 8, ReplacementPolicy::Lru),
            CacheConfig::with_sets(4096, 2, 8, ReplacementPolicy::Lru),
        ])
        .unwrap();
        let sequential = WarpingSimulator::new(memory.clone()).run(&scop);
        let parallel = WarpingSimulator::new(memory).with_threads(4).run(&scop);
        assert_eq!(
            sequential, parallel,
            "thread budget must not change anything"
        );
        assert!(parallel.warps >= 1);
    }

    #[test]
    fn donor_hints_keep_counts_bit_identical() {
        // The donor run exports its warp-plan facts; a hinted rerun of a
        // *different* (neighbouring) instance must produce exactly the
        // counts a cold run produces — hints only reschedule attempts.
        let memory = WarpingMemory::two_level(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let mut donor_sim = WarpingSimulator::new(memory.clone());
        let donor_outcome = donor_sim.run(&stencil(4000));
        assert!(donor_outcome.warps >= 1);
        let hints = donor_sim.export_hints();
        assert!(
            hints.is_warped(1),
            "the stencil warps at depth 1: {hints:?}"
        );

        for n in [3500, 4500] {
            let scop = stencil(n);
            let cold = WarpingSimulator::new(memory.clone()).run(&scop);
            let hinted = WarpingSimulator::new(memory.clone())
                .with_hints(hints.clone())
                .run(&scop);
            assert_eq!(
                hinted.result, cold.result,
                "hints must not change any simulation count (n = {n})"
            );
        }

        // A barren hint demotes the eager phase: fewer match attempts on a
        // loop that never warps, same counts.  The triangular matvec's
        // inner loop exhausts its budget without warping on a tiny cache.
        let tri = parse_scop(
            "double A[200][200]; double x[200]; double c[200];\n\
             for (i = 0; i < 200; i++) {\n\
               c[i] = 0;\n\
               for (j = i; j < 200; j++) c[i] = c[i] + A[i][j] * x[j];\n\
             }",
        )
        .unwrap();
        let tiny = WarpingMemory::from(CacheConfig::with_sets(2, 2, 64, ReplacementPolicy::Lru));
        let mut cold_sim = WarpingSimulator::new(tiny.clone());
        let cold = cold_sim.run(&tri);
        let tri_hints = cold_sim.export_hints();
        if !tri_hints.barren_depths.is_empty() {
            let hinted = WarpingSimulator::new(tiny).with_hints(tri_hints).run(&tri);
            assert_eq!(hinted.result, cold.result);
            assert!(
                hinted.match_attempts <= cold.match_attempts,
                "barren hints must not add attempts ({} > {})",
                hinted.match_attempts,
                cold.match_attempts
            );
        }
    }

    #[test]
    fn compiled_and_reference_walks_produce_identical_outcomes() {
        // The walk mode only changes how explicit iterations derive
        // bounds and guards; every count — including the match-attempt
        // telemetry, which depends on the attempt schedule — must be
        // bit-identical.
        let kernels = [
            stencil(4000),
            parse_scop(
                "double A[200][200]; double x[200]; double c[200];\n\
                 for (i = 0; i < 200; i++) {\n\
                   c[i] = 0;\n\
                   for (j = i; j < 200; j++) c[i] = c[i] + A[i][j] * x[j];\n\
                 }",
            )
            .unwrap(),
            parse_scop(
                "double A[3000]; double B[3000];\n\
                 for (i = 1; i < 2999; i++) if (i < 1500) B[i-1] = A[i-1] + A[i];",
            )
            .unwrap(),
            parse_scop(
                "double A[4000];\n\
                 for (i = 3999; i >= 0; i -= 2) A[i] = A[i];",
            )
            .unwrap(),
        ];
        let memory = WarpingMemory::two_level(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Plru),
        );
        for (idx, scop) in kernels.iter().enumerate() {
            let compiled = WarpingSimulator::new(memory.clone())
                .with_walk(WalkMode::Compiled)
                .run(scop);
            let reference = WarpingSimulator::new(memory.clone())
                .with_walk(WalkMode::Reference)
                .run(scop);
            assert_eq!(compiled, reference, "kernel {idx}");
        }
    }

    #[test]
    fn telemetry_counters_are_consistent() {
        let scop = stencil(3000);
        let config = CacheConfig::new(2 * 1024, 4, 64, ReplacementPolicy::Lru);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert!(outcome.match_attempts >= outcome.fingerprint_hits);
        assert!(outcome.match_attempts >= outcome.exact_key_builds);
        assert!(outcome.fingerprint_hits >= outcome.warps);
        assert!(outcome.warps >= 1);
    }
}
