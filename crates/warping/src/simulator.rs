//! The warping symbolic cache simulator (Algorithm 2 of the paper).

use crate::key::CanonicalKey;
use crate::plan::plan_warp;
use crate::symstate::SymLevel;
use cache_model::{CacheConfig, HierarchyConfig, LevelStats, MemBlock, MemoryConfig};
use polyhedra::Aff;
use scop::{AccessNode, LoopNode, Node, Scop};
use simulate::SimulationResult;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The memory system simulated by the warping simulator.
///
/// This is the workspace-wide [`MemoryConfig`] — the old parallel
/// `WarpingMemory` enum (`Single`/`Hierarchy`) is gone; construct a
/// `MemoryConfig` (e.g. via `From<CacheConfig>` or `From<HierarchyConfig>`)
/// and pass it to [`WarpingSimulator::new`].  The warping simulator supports
/// memory systems of any depth ≥ 1.
pub type WarpingMemory = MemoryConfig;

/// The outcome of a warping simulation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct WarpingOutcome {
    /// Access and miss counts, identical to what non-warping simulation
    /// produces.
    pub result: SimulationResult,
    /// Number of accesses that were simulated explicitly.
    pub non_warped_accesses: u64,
    /// Number of accesses that were skipped by warping.
    pub warped_accesses: u64,
    /// Number of successful warp events.
    pub warps: u64,
}

impl WarpingOutcome {
    /// The share of accesses that could not be warped (the quantity plotted
    /// at the top of Fig. 6 of the paper), in `[0, 1]`.
    pub fn non_warped_share(&self) -> f64 {
        let total = self.non_warped_accesses + self.warped_accesses;
        if total == 0 {
            0.0
        } else {
            self.non_warped_accesses as f64 / total as f64
        }
    }
}

/// Tuning knobs of the warping simulator.
///
/// The defaults keep the overhead of key construction small on loops that
/// never warp while still finding matches whose period is a small multiple
/// of the cache-line phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WarpingOptions {
    /// Number of initial iterations of each loop execution during which a
    /// match is attempted on every iteration.
    pub eager_attempts: u64,
    /// After the eager phase, matches are attempted every `backoff_interval`
    /// iterations.  This bounds the overhead of key construction on loops
    /// that never warp.
    pub backoff_interval: u64,
    /// Maximum number of symbolic states remembered per loop execution.
    pub max_map_entries: usize,
    /// Loops whose trip count (for the current outer iteration) is below
    /// this threshold are simulated without attempting to warp: the possible
    /// gain cannot amortise the cost of key construction.
    pub min_trip_count: i64,
    /// Warping is abandoned for a loop node after this many match attempts
    /// (across all executions of the node) that did not lead to a warp.
    /// This caps the overhead on loops whose states never recur while still
    /// allowing matches that only appear after the cache has warmed up.
    pub max_fruitless_attempts: u64,
}

impl Default for WarpingOptions {
    fn default() -> Self {
        WarpingOptions::DEFAULT
    }
}

impl WarpingOptions {
    /// The default tuning, as a `const` so it can appear in constant
    /// contexts (e.g. backend tables).
    pub const DEFAULT: WarpingOptions = WarpingOptions {
        eager_attempts: 32,
        backoff_interval: 16,
        max_map_entries: 4096,
        min_trip_count: 24,
        max_fruitless_attempts: 512,
    };

    /// Checks the options for values that would make the simulator loop or
    /// thrash instead of warping.
    ///
    /// # Errors
    ///
    /// * `backoff_interval == 0` — the match-attempt schedule would divide
    ///   by zero once the eager phase ends.
    /// * `max_map_entries == 0` — no symbolic state could ever be
    ///   remembered, so every match attempt would pay the key-construction
    ///   cost without any chance of a warp.
    pub fn validate(&self) -> Result<(), InvalidWarpingOptions> {
        if self.backoff_interval == 0 {
            return Err(InvalidWarpingOptions {
                message: "backoff_interval must be positive (0 would divide by zero in the \
                          match-attempt schedule)",
            });
        }
        if self.max_map_entries == 0 {
            return Err(InvalidWarpingOptions {
                message: "max_map_entries must be positive (0 would attempt matches without \
                          ever remembering a state, thrashing instead of warping)",
            });
        }
        Ok(())
    }
}

/// An invalid [`WarpingOptions`] value, reported by
/// [`WarpingOptions::validate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InvalidWarpingOptions {
    message: &'static str,
}

impl fmt::Display for InvalidWarpingOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.message)
    }
}

impl std::error::Error for InvalidWarpingOptions {}

/// Per-entry bookkeeping of the per-loop hash map of Algorithm 2.
#[derive(Clone, Debug)]
struct MatchEntry {
    /// Warped-iterator value at which the state was recorded.
    v: i64,
    /// Counter snapshot at that point.
    counters: Counters,
}

/// Snapshot of all monotonically increasing counters, used to extrapolate
/// across warped chunks.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct Counters {
    accesses: u64,
    level: Vec<LevelStats>,
}

/// The warping symbolic cache simulator.
///
/// One generic code path simulates memory systems of any depth ≥ 1: the
/// symbolic levels live in a `Vec<SymLevel>`, and canonical-key
/// construction, warp planning and warp application all iterate over it.
///
/// See the crate-level documentation for an example.
#[derive(Clone, Debug)]
pub struct WarpingSimulator {
    levels: Vec<SymLevel>,
    options: WarpingOptions,
    accesses: u64,
    warped_accesses: u64,
    warps: u64,
    /// Match attempts that did not result in a warp, per loop node (keyed by
    /// the node's address within the SCoP currently being simulated).
    fruitless: HashMap<usize, u64>,
}

impl WarpingSimulator {
    /// A simulator for a single cache level.  Compatibility wrapper over
    /// [`WarpingSimulator::new`].
    pub fn single(config: CacheConfig) -> Self {
        WarpingSimulator::new(MemoryConfig::from(config))
    }

    /// A simulator for a two-level hierarchy.  Compatibility wrapper over
    /// [`WarpingSimulator::new`].
    pub fn hierarchy(config: HierarchyConfig) -> Self {
        WarpingSimulator::new(MemoryConfig::from(config))
    }

    /// A simulator for any memory system of depth ≥ 1.  The configuration is
    /// [normalized](MemoryConfig::normalized) first, so the hierarchy-wide
    /// write policy governs write allocation at every level, exactly as in
    /// non-warping simulation.
    ///
    /// # Errors
    ///
    /// Infallible today — every valid [`MemoryConfig`] is supported — but
    /// kept fallible so callers stay source-compatible if a future memory
    /// model (e.g. exclusive hierarchies) is only partially covered.
    pub fn try_new(memory: WarpingMemory) -> Result<Self, String> {
        let memory = memory.normalized();
        Ok(WarpingSimulator {
            levels: memory
                .levels()
                .iter()
                .map(|level| SymLevel::new(level.clone()))
                .collect(),
            options: WarpingOptions::default(),
            accesses: 0,
            warped_accesses: 0,
            warps: 0,
            fruitless: HashMap::new(),
        })
    }

    /// A simulator for any memory system of depth ≥ 1.
    pub fn new(memory: WarpingMemory) -> Self {
        WarpingSimulator::try_new(memory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Overrides the tuning options.
    ///
    /// # Panics
    ///
    /// Panics if the options fail [`WarpingOptions::validate`]
    /// (`backoff_interval == 0` or `max_map_entries == 0`).
    pub fn with_options(mut self, options: WarpingOptions) -> Self {
        if let Err(e) = options.validate() {
            panic!("invalid warping options: {e}");
        }
        self.options = options;
        self
    }

    /// Simulates a SCoP and returns the outcome.  The cache state persists
    /// across calls, so SCoPs can be simulated in sequence; use a fresh
    /// simulator for independent runs.
    pub fn run(&mut self, scop: &Scop) -> WarpingOutcome {
        let addresses: Vec<Aff> = {
            let mut v: Vec<(usize, Aff)> = scop
                .access_nodes()
                .map(|a| (a.id, a.address.clone()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v.into_iter().map(|(_, a)| a).collect()
        };
        for root in scop.roots() {
            self.simulate_node(root, &[], &addresses);
        }
        self.outcome()
    }

    /// The accumulated outcome.
    pub fn outcome(&self) -> WarpingOutcome {
        WarpingOutcome {
            result: SimulationResult {
                accesses: self.accesses,
                levels: self.levels.iter().map(|l| l.stats).collect(),
            },
            non_warped_accesses: self.accesses - self.warped_accesses,
            warped_accesses: self.warped_accesses,
            warps: self.warps,
        }
    }

    fn counters(&self) -> Counters {
        Counters {
            accesses: self.accesses,
            level: self.levels.iter().map(|l| l.stats).collect(),
        }
    }

    fn simulate_node(&mut self, node: &Node, outer: &[i64], addresses: &[Aff]) {
        match node {
            Node::Access(a) => self.simulate_access(a, outer),
            Node::Loop(l) => self.simulate_loop(l, outer, addresses),
        }
    }

    fn simulate_access(&mut self, access: &AccessNode, outer: &[i64]) {
        if !access.domain.contains(outer) {
            return;
        }
        let address = access.address_at(outer);
        self.accesses += 1;
        // The inclusive walk of the N-level hierarchy: each level is only
        // consulted — and updated — when the previous one misses.
        for level in &mut self.levels {
            let block = MemBlock(address / level.config.line_size());
            if level.access(block, access.kind, access.id, outer) {
                break;
            }
        }
    }

    fn simulate_loop(&mut self, loop_node: &LoopNode, outer: &[i64], addresses: &[Aff]) {
        let Some(mut i) = loop_node.initial(outer) else {
            return;
        };
        let Some(last) = loop_node.last(outer) else {
            return;
        };
        let depth = loop_node.depth;
        let v_last = last[depth - 1];
        let stride = loop_node.stride.max(1);
        // Cheap gating: warping at this loop can only ever succeed if every
        // access below it shifts by the same amount per iteration (see
        // `plan_warp`), and it can only pay off if the loop has enough
        // iterations to amortise the cost of key construction.  Checking
        // these once per loop execution keeps the overhead on non-warpable
        // loops negligible.
        let trip_count = (v_last - i[depth - 1]) / stride + 1;
        let node_key = loop_node as *const LoopNode as usize;
        let mut fruitless = self.fruitless.get(&node_key).copied().unwrap_or(0);
        let descendant_nodes = descendants(loop_node);
        let warpable = trip_count >= self.options.min_trip_count
            && !descendant_nodes.is_empty()
            && uniform_coefficient(&descendant_nodes, depth - 1).is_some();
        let descendant_ids: HashSet<usize> = if warpable {
            descendant_nodes.iter().map(|a| a.id).collect()
        } else {
            HashSet::new()
        };
        let mut map: HashMap<CanonicalKey, MatchEntry> = HashMap::new();
        let mut iteration_index: u64 = 0;

        while i.as_slice() <= last.as_slice() {
            let v1 = i[depth - 1];
            if warpable
                && fruitless < self.options.max_fruitless_attempts
                && self.should_attempt(iteration_index)
            {
                fruitless += 1;
                let key = CanonicalKey::of_levels(&self.levels, &descendant_ids, depth, v1);
                if let Some(entry) = map.get(&key) {
                    if let Some(plan) = plan_warp(
                        &descendant_nodes,
                        &descendant_ids,
                        &self.levels,
                        depth,
                        outer,
                        entry.v,
                        v1,
                        v_last,
                    ) {
                        let period = v1 - entry.v;
                        let chunk = self.counters();
                        let chunk_accesses = chunk.accesses - entry.counters.accesses;
                        // Extrapolate the counters across the warped chunks
                        // (Equation 19 / line 12 of Algorithm 2).
                        let n = plan.chunks as u64;
                        self.accesses += n * chunk_accesses;
                        self.warped_accesses += n * chunk_accesses;
                        for (idx, level) in self.levels.iter_mut().enumerate() {
                            let diff_hits = chunk.level[idx].hits - entry.counters.level[idx].hits;
                            let diff_misses =
                                chunk.level[idx].misses - entry.counters.level[idx].misses;
                            level.stats.hits += n * diff_hits;
                            level.stats.misses += n * diff_misses;
                            level.stats.accesses += n * (diff_hits + diff_misses);
                        }
                        // Advance the symbolic cache state (Equation 18).
                        for level in &mut self.levels {
                            level.apply_warp(
                                addresses,
                                &descendant_ids,
                                depth,
                                period,
                                plan.chunks,
                                plan.byte_shift_per_chunk * plan.chunks,
                            );
                        }
                        i[depth - 1] += plan.chunks * period;
                        self.warps += 1;
                        fruitless = 0;
                        // `period` is in iterator units, which advance by
                        // `stride` per iteration.
                        iteration_index += (plan.chunks * period / stride) as u64;
                        // Do not consume this iteration: re-enter the loop
                        // header so the landed-on iteration is simulated (or
                        // warped again).
                        continue;
                    }
                } else if map.len() < self.options.max_map_entries {
                    map.insert(
                        key,
                        MatchEntry {
                            v: v1,
                            counters: self.counters(),
                        },
                    );
                }
            }
            if loop_node.domain.contains(&i) {
                for child in &loop_node.children {
                    self.simulate_node(child, &i, addresses);
                }
            }
            i[depth - 1] += loop_node.stride;
            iteration_index += 1;
        }
        if warpable {
            self.fruitless.insert(node_key, fruitless);
        }
    }

    fn should_attempt(&self, iteration_index: u64) -> bool {
        iteration_index < self.options.eager_attempts
            || iteration_index.is_multiple_of(self.options.backoff_interval)
    }
}

/// The common per-iteration byte-shift coefficient of all access nodes on
/// the given dimension, if they agree (`None` if they differ, in which case
/// warping at that loop can never satisfy the uniform-shift condition).
fn uniform_coefficient(nodes: &[&AccessNode], dim: usize) -> Option<i64> {
    let mut common = None;
    for node in nodes {
        let c = node.address.coeff(dim);
        match common {
            None => common = Some(c),
            Some(existing) if existing == c => {}
            Some(_) => return None,
        }
    }
    common
}

/// Collects the access nodes below a loop node.
fn descendants(loop_node: &LoopNode) -> Vec<&AccessNode> {
    let mut out = Vec::new();
    let mut stack: Vec<&Node> = loop_node.children.iter().collect();
    while let Some(node) = stack.pop() {
        match node {
            Node::Access(a) => out.push(a),
            Node::Loop(l) => stack.extend(l.children.iter()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::ReplacementPolicy;
    use scop::parse_scop;
    use simulate::{simulate_hierarchy, simulate_single};

    fn stencil(n: i64) -> Scop {
        parse_scop(&format!(
            "double A[{n}]; double B[{n}];\n\
             for (i = 1; i < {m}; i++) B[i-1] = A[i-1] + A[i];",
            n = n,
            m = n - 1
        ))
        .unwrap()
    }

    #[test]
    fn warping_is_exact_on_the_running_example() {
        let scop = stencil(1000);
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
        assert!(outcome.warps >= 1, "the stencil must warp");
        assert!(
            outcome.non_warped_accesses < reference.accesses / 10,
            "most accesses are warped ({} of {})",
            outcome.non_warped_accesses,
            reference.accesses
        );
    }

    #[test]
    fn warping_is_exact_on_a_set_associative_plru_cache() {
        let scop = stencil(4000);
        let config = CacheConfig::new(4 * 1024, 8, 64, ReplacementPolicy::Plru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
        assert!(outcome.warps >= 1);
    }

    #[test]
    fn warping_is_exact_for_all_policies() {
        let scop = stencil(3000);
        for policy in ReplacementPolicy::ALL {
            let config = CacheConfig::new(2 * 1024, 4, 64, policy);
            let reference = simulate_single(&scop, &config);
            let outcome = WarpingSimulator::single(config).run(&scop);
            assert_eq!(outcome.result, reference, "{policy}");
        }
    }

    #[test]
    fn warping_is_exact_on_a_two_level_hierarchy() {
        let scop = stencil(3000);
        let config = HierarchyConfig::new(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let reference = simulate_hierarchy(&scop, &config);
        let outcome = WarpingSimulator::hierarchy(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn triangular_matvec_is_exact() {
        let scop = parse_scop(
            "double A[200][200]; double x[200]; double c[200];\n\
             for (i = 0; i < 200; i++) {\n\
               c[i] = 0;\n\
               for (j = i; j < 200; j++) c[i] = c[i] + A[i][j] * x[j];\n\
             }",
        )
        .unwrap();
        let config = CacheConfig::new(2 * 1024, 4, 64, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn guarded_kernel_is_exact() {
        let scop = parse_scop(
            "double A[3000]; double B[3000];\n\
             for (i = 1; i < 2999; i++) if (i < 1500) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap();
        let config = CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn multiple_loop_nests_are_exact() {
        let scop = parse_scop(
            "double A[2000]; double B[2000]; double C[2000];\n\
             for (i = 0; i < 2000; i++) B[i] = A[i];\n\
             for (j = 0; j < 2000; j++) C[j] = B[j] + A[j];",
        )
        .unwrap();
        let config = CacheConfig::new(2 * 1024, 8, 64, ReplacementPolicy::Plru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn options_validation_rejects_degenerate_knobs() {
        assert!(WarpingOptions::default().validate().is_ok());
        let zero_backoff = WarpingOptions {
            backoff_interval: 0,
            ..WarpingOptions::default()
        };
        assert!(zero_backoff
            .validate()
            .unwrap_err()
            .to_string()
            .contains("backoff_interval"));
        let zero_map = WarpingOptions {
            max_map_entries: 0,
            ..WarpingOptions::default()
        };
        assert!(zero_map
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_map_entries"));
    }

    #[test]
    #[should_panic(expected = "backoff_interval")]
    fn with_options_panics_on_zero_backoff() {
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let _ = WarpingSimulator::single(config).with_options(WarpingOptions {
            backoff_interval: 0,
            ..WarpingOptions::default()
        });
    }

    #[test]
    fn memory_config_construction_matches_dedicated_constructors() {
        let scop = stencil(1000);
        let single = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let from_memory = WarpingSimulator::new(WarpingMemory::from(single.clone())).run(&scop);
        let direct = WarpingSimulator::single(single).run(&scop);
        assert_eq!(from_memory, direct);

        let hierarchy = HierarchyConfig::new(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Lru),
        );
        let from_memory = WarpingSimulator::new(WarpingMemory::from(hierarchy.clone())).run(&scop);
        let direct = WarpingSimulator::hierarchy(hierarchy).run(&scop);
        assert_eq!(from_memory, direct);
    }

    #[test]
    fn three_level_memory_is_exact() {
        let scop = stencil(3000);
        let memory = WarpingMemory::new(vec![
            CacheConfig::with_sets(2, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(4, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(8, 8, 64, ReplacementPolicy::Lru),
        ])
        .unwrap();
        let reference = simulate::simulate_memory(&scop, &memory);
        let outcome = WarpingSimulator::new(memory).run(&scop);
        assert_eq!(outcome.result, reference);
        assert_eq!(outcome.result.depth(), 3);
        assert!(outcome.warps >= 1, "the stencil must warp at depth 3");
    }

    #[test]
    fn strided_stencil_is_exact_and_warps() {
        // A stride-2 stencil: the per-iteration byte shift is 16, so warping
        // must find line-aligned periods on the stride grid.
        let scop = parse_scop(
            "double A[8000]; double B[8000];\n\
             for (i = 1; i < 7999; i += 2) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap();
        for policy in ReplacementPolicy::ALL {
            let config = CacheConfig::new(2 * 1024, 4, 64, policy);
            let reference = simulate_single(&scop, &config);
            let outcome = WarpingSimulator::single(config).run(&scop);
            assert_eq!(outcome.result, reference, "{policy}");
        }
        let config = CacheConfig::new(2 * 1024, 4, 64, ReplacementPolicy::Lru);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert!(outcome.warps >= 1, "the strided stencil must warp");
    }

    #[test]
    fn strided_loop_on_a_hierarchy_is_exact() {
        let scop = parse_scop(
            "double A[6000];\n\
             for (i = 0; i < 6000; i += 3) A[i] = A[i];",
        )
        .unwrap();
        let memory = WarpingMemory::two_level(
            CacheConfig::new(1024, 4, 64, ReplacementPolicy::Plru),
            CacheConfig::new(8 * 1024, 8, 64, ReplacementPolicy::Plru),
        );
        let reference = simulate::simulate_memory(&scop, &memory);
        let outcome = WarpingSimulator::new(memory).run(&scop);
        assert_eq!(outcome.result, reference);
    }

    #[test]
    fn small_working_sets_do_not_warp_incorrectly() {
        // jacobi-1d-like situation: the working set fits in the cache, so
        // warping opportunities are limited but correctness must hold.
        let scop = stencil(64);
        let config = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config).run(&scop);
        assert_eq!(outcome.result, reference);
    }
}
