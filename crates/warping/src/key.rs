//! Rotation-invariant canonical keys of symbolic cache states.
//!
//! Two symbolic cache states recorded at different iterations of the same
//! loop are candidates for warping when they are equal up to a rotation of
//! their cache sets and a uniform shift of the warped loop iterator in their
//! symbolic labels (Theorem 3 of the paper).  The canonical key makes such
//! states compare equal:
//!
//! * the enumeration of cache sets starts at the most-recently-accessed set
//!   and cycles around, which factors out set rotations;
//! * labels of access nodes that are descendants of the warping loop are
//!   stored relative to a **per-level normaliser** — the level's
//!   [epoch](crate::symstate::SymLevel::epoch_at) on the warped dimension,
//!   i.e. the warped-iterator stamp of the last access that wrote a label
//!   at that level — which factors out the iterator shift *per level*;
//! * replacement-policy metadata is included verbatim, since matching states
//!   must agree on it exactly.
//!
//! Normalising by the level epoch instead of the current iterator value is
//! what lets L1-resident kernels warp over big hierarchies: a level whose
//! lines stopped being touched (the working set fits further in) keeps a
//! frozen epoch next to its frozen labels, so the deltas — and hence the
//! key — stay constant across iterations, where deltas from the *current*
//! iterator would drift and physically identical states would never
//! compare equal.  The per-level shift the normalisers factored out is not
//! lost: the match bookkeeping remembers each entry's normalisers, and warp
//! planning reconstructs the true per-level label shift from them (see
//! [`plan`](crate::plan)).  Labels of non-descendant (stale) nodes remain
//! absolute: no uniform shift ever applies to them, so matching states must
//! agree on them exactly.
//!
//! The key is an exact encoding (not just a hash), so key equality implies
//! symbolic equality — hash collisions cannot cause unsound warps.
//!
//! # Sparse encoding
//!
//! Only the *occupied* sets are encoded, each prefixed by its rotational
//! offset from the most-recently-used set.  Cache sets are filled and
//! replaced but never emptied, so an empty set is guaranteed to be in its
//! initial state (no lines, initial policy metadata): two states whose
//! occupied sets sit at the same offsets with equal content are therefore
//! equal everywhere.  This makes key construction O(occupied sets) — on a
//! kernel touching a handful of sets, the cost no longer scales with the
//! total number of sets of a large outer level.

use crate::symstate::SymLevel;
use cache_model::PolicyState;
use std::collections::HashSet;

/// An exact, rotation- and shift-invariant encoding of one or more symbolic
/// cache levels.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalKey(Vec<i64>);

impl CanonicalKey {
    /// Builds the canonical key of a collection of cache levels for a warp
    /// attempt at a loop of depth `warp_depth`, normalising each level's
    /// descendant labels by that level's entry in `normalizers` (one value
    /// per level: the level epoch on the warped dimension, with the current
    /// iterator value as the fallback for levels that carry no usable
    /// stamp — see [`crate::simulator::WarpingSimulator`]).
    ///
    /// `descendants` are the ids of the access nodes below the loop: only
    /// their labels are normalised; stale labels stay absolute.
    ///
    /// # Panics
    ///
    /// Panics if `normalizers` is shorter than `levels`.
    pub fn of_levels(
        levels: &[SymLevel],
        descendants: &HashSet<usize>,
        warp_depth: usize,
        normalizers: &[i64],
    ) -> Self {
        assert!(
            normalizers.len() >= levels.len(),
            "one normaliser per level"
        );
        let mut data = Vec::new();
        for (level, &normalizer) in levels.iter().zip(normalizers) {
            encode_level(level, descendants, warp_depth, normalizer, &mut data);
        }
        CanonicalKey(data)
    }
}

fn encode_level(
    level: &SymLevel,
    descendants: &HashSet<usize>,
    warp_depth: usize,
    normalizer: i64,
    data: &mut Vec<i64>,
) {
    let num_sets = level.state.num_sets();
    data.push(i64::MIN + 1); // level separator
                             // Occupied sets in rotation order: ascending offset from the MRU set.
                             // Their offsets are part of the encoding, so two states only compare
                             // equal when their occupied sets line up under the same rotation; the
                             // remaining sets are empty-and-initial on both sides by construction.
                             // The entries come straight off the sparse store's borrowing
                             // iterator — no per-set re-lookup, no allocation beyond the sort.
    let mut offsets: Vec<(usize, &cache_model::SetState<crate::symstate::SymLine>)> = level
        .state
        .occupied_entries()
        .map(|(s, set)| ((s + num_sets - level.mru_set % num_sets) % num_sets, set))
        .collect();
    offsets.sort_unstable_by_key(|(offset, _)| *offset);
    for (offset, set) in offsets {
        data.push(i64::MIN + 2); // set separator
        data.push(offset as i64);
        for line in set.lines() {
            match line {
                None => data.push(i64::MIN + 3),
                Some(l) => {
                    data.push(l.node as i64);
                    let normalise = descendants.contains(&l.node) && l.iter.len() >= warp_depth;
                    for (d, v) in l.iter.iter().enumerate() {
                        if normalise && d == warp_depth - 1 {
                            data.push(v - normalizer);
                        } else {
                            data.push(*v);
                        }
                    }
                    data.push(i64::MIN + 4); // label terminator
                }
            }
        }
        encode_policy_state(set.policy_state(), data);
    }
}

fn encode_policy_state(state: &PolicyState, data: &mut Vec<i64>) {
    match state {
        PolicyState::None => data.push(0),
        PolicyState::PlruBits(bits) => {
            data.push(1);
            for b in bits {
                data.push(i64::from(*b));
            }
        }
        PolicyState::Ages(ages) => {
            data.push(2);
            for a in ages {
                data.push(i64::from(*a));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::{AccessKind, CacheConfig, MemBlock, ReplacementPolicy};

    fn level() -> SymLevel {
        SymLevel::new(CacheConfig::with_sets(4, 2, 1, ReplacementPolicy::Lru))
    }

    fn key_of(level: &SymLevel, descendants: &HashSet<usize>, normalizer: i64) -> CanonicalKey {
        CanonicalKey::of_levels(std::slice::from_ref(level), descendants, 1, &[normalizer])
    }

    #[test]
    fn shifted_states_have_equal_keys() {
        // The 1D stencil pattern on a tiny cache: after iteration i the cache
        // holds A[i] and B[i-1]; states of consecutive iterations are equal
        // up to rotation and label shift.
        let descendants: HashSet<usize> = [0, 1].into_iter().collect();
        let mut s1 = level();
        s1.access(MemBlock(10), AccessKind::Read, 0, &[5]);
        s1.access(MemBlock(110), AccessKind::Write, 1, &[5]);
        let mut s2 = level();
        s2.access(MemBlock(11), AccessKind::Read, 0, &[6]);
        s2.access(MemBlock(111), AccessKind::Write, 1, &[6]);
        assert_eq!(
            key_of(&s1, &descendants, 5),
            key_of(&s2, &descendants, 6),
            "states shifted by one iteration must produce identical keys"
        );
        assert_ne!(
            key_of(&s1, &descendants, 5),
            key_of(&s2, &descendants, 7),
            "a wrong iterator value breaks the match"
        );
    }

    #[test]
    fn non_descendant_labels_are_absolute() {
        let descendants: HashSet<usize> = HashSet::new();
        let mut s1 = level();
        s1.access(MemBlock(10), AccessKind::Read, 0, &[5]);
        let mut s2 = level();
        s2.access(MemBlock(10), AccessKind::Read, 0, &[6]);
        assert_ne!(
            key_of(&s1, &descendants, 5),
            key_of(&s2, &descendants, 6),
            "labels of non-descendant nodes must match exactly"
        );
    }

    #[test]
    fn policy_state_is_part_of_the_key() {
        let config = CacheConfig::with_sets(1, 4, 1, ReplacementPolicy::Qlru);
        let descendants: HashSet<usize> = [0].into_iter().collect();
        let mut s1 = SymLevel::new(config.clone());
        let mut s2 = SymLevel::new(config);
        s1.access(MemBlock(0), AccessKind::Read, 0, &[0]);
        s2.access(MemBlock(0), AccessKind::Read, 0, &[0]);
        // Promote the block in s2 only: ages differ, keys must differ.
        s2.access(MemBlock(0), AccessKind::Read, 0, &[0]);
        let k1 = CanonicalKey::of_levels(std::slice::from_ref(&s1), &descendants, 1, &[0]);
        let k2 = CanonicalKey::of_levels(std::slice::from_ref(&s2), &descendants, 1, &[0]);
        assert_ne!(k1, k2);
    }

    #[test]
    fn frozen_levels_match_under_their_own_epoch() {
        // The L1-resident scenario: an outer level froze at iteration 5 and
        // is never touched again.  Normalised by its own (frozen) epoch the
        // key is constant across match attempts; normalised by the current
        // iterator — the pre-epoch behaviour — it drifts and never matches.
        let descendants: HashSet<usize> = [0].into_iter().collect();
        let mut frozen = level();
        frozen.access(MemBlock(10), AccessKind::Read, 0, &[5]);
        let epoch = frozen.epoch_at(0).expect("the fill stamped the epoch");
        assert_eq!(epoch, 5);
        let at_iteration = |normalizer: i64| key_of(&frozen, &descendants, normalizer);
        assert_eq!(at_iteration(epoch), at_iteration(epoch));
        assert_ne!(
            at_iteration(100),
            at_iteration(200),
            "current-iterator normalisation drifts on frozen labels"
        );
    }

    #[test]
    fn different_occupancy_or_nodes_differ() {
        let descendants: HashSet<usize> = [0, 1].into_iter().collect();
        let mut s1 = level();
        s1.access(MemBlock(10), AccessKind::Read, 0, &[5]);
        let mut s2 = level();
        s2.access(MemBlock(10), AccessKind::Read, 1, &[5]);
        assert_ne!(key_of(&s1, &descendants, 5), key_of(&s2, &descendants, 5));
        let empty = level();
        assert_ne!(
            key_of(&s1, &descendants, 5),
            key_of(&empty, &descendants, 5)
        );
    }

    #[test]
    fn occupied_offsets_anchor_the_rotation() {
        // Two states with equal content in their occupied sets but a
        // different offset from the MRU set must not compare equal.
        let descendants: HashSet<usize> = [0].into_iter().collect();
        let mut s1 = level();
        s1.access(MemBlock(10), AccessKind::Read, 0, &[5]); // set 2, MRU 2
        let mut s2 = level();
        s2.access(MemBlock(10), AccessKind::Read, 0, &[5]); // set 2
        s2.access(MemBlock(11), AccessKind::Read, 0, &[5]); // MRU now 3
                                                            // Give s1 the same line in set 3 so occupancy matches.
        s1.access(MemBlock(11), AccessKind::Read, 0, &[5]);
        s1.access(MemBlock(10), AccessKind::Read, 0, &[5]); // MRU back to 2
        assert_ne!(
            key_of(&s1, &descendants, 5),
            key_of(&s2, &descendants, 5),
            "same occupied content at different MRU offsets must differ"
        );
    }
}
