//! Warping symbolic cache simulation of polyhedral programs.
//!
//! This crate implements the primary contribution of *Warping Cache
//! Simulation of Polyhedral Programs* (Morelli & Reineke, PLDI 2022):
//! a cache simulator whose results are exactly those of classic per-access
//! simulation (Algorithm 1, the [`simulate`] crate), but which exploits the
//! data independence of caches (Theorems 1–4 of the paper) to *warp* —
//! fast-forward — across repetitive portions of the access sequence, making
//! its runtime often independent of the number of memory accesses.
//!
//! # How it works
//!
//! * The simulator operates on **symbolic cache states**: every cache line
//!   carries, next to the concrete memory block, a symbolic label recording
//!   which access node loaded it and at which iteration
//!   ([`symstate`]).
//! * At the top of selected loop iterations the simulator attempts a match
//!   in two phases: it first compares an incrementally maintained,
//!   rotation- and shift-invariant **rolling fingerprint** of the symbolic
//!   state ([`fingerprint`]), and only on a fingerprint hit constructs the
//!   exact rotation-invariant canonical key ([`key`]) — sparse over the
//!   occupied cache sets — and looks it up in a per-loop hash map.  Equal
//!   keys identify cache states that are equal up to a bijection on memory
//!   blocks (Theorem 3); fingerprint collisions are filtered out by the
//!   exact key, so soundness never depends on hash quality.
//! * On a match, the simulator checks the sufficient conditions of the
//!   symbolic warping theorem (Theorem 4) using polyhedral reasoning
//!   ([`plan`]): all accesses of the loop body must shift by one common,
//!   line-aligned stride per period, the access-node domains must be
//!   periodic over the warp window, and every cached line must be consistent
//!   with that shift.  Any check that cannot be decided makes the simulator
//!   fall back to explicit simulation, so miss counts are always exact.
//! * If the checks succeed, the simulation warps: the iteration counter
//!   jumps ahead, miss counters are extrapolated linearly, and the symbolic
//!   cache state is advanced by rotating its sets and shifting its labels
//!   ([`WarpingSimulator`]).
//!
//! # Example
//!
//! ```
//! use cache_model::{CacheConfig, ReplacementPolicy};
//! use scop::parse_scop;
//! use simulate::{simulate_single};
//! use warping::WarpingSimulator;
//!
//! let scop = parse_scop(
//!     "double A[32000]; double B[32000];
//!      for (i = 1; i < 31999; i++) B[i-1] = A[i-1] + A[i];",
//! ).unwrap();
//! let config = CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru);
//!
//! let reference = simulate_single(&scop, &config);
//! let outcome = WarpingSimulator::single(config).run(&scop);
//!
//! // Warping is exact ...
//! assert_eq!(outcome.result.l1().misses, reference.l1().misses);
//! assert_eq!(outcome.result.accesses, reference.accesses);
//! // ... and skips the bulk of the accesses of this stencil.
//! assert!(outcome.warped_accesses > outcome.non_warped_accesses);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod key;
pub mod plan;
pub mod simulator;
pub mod symstate;

pub use fingerprint::FingerprintTracker;
pub use key::CanonicalKey;
pub use plan::{LevelWarpMode, WarpPlan};
pub use simulator::{
    InvalidWarpingOptions, WarpHints, WarpingMemory, WarpingOptions, WarpingOutcome,
    WarpingSimulator,
};
pub use symstate::{SymLevel, SymLine};
