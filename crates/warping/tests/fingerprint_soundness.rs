//! Property tests of the incremental fingerprint machinery.
//!
//! Two properties protect the two-phase match pipeline:
//!
//! 1. **Incrementality** — after *any* interleaving of accesses and warp
//!    applications, the dirty-set-tracked rolling fingerprint of a
//!    [`SymLevel`] equals a from-scratch rebuild over the raw cache state,
//!    and the occupied-set list matches the state's actual occupancy.
//! 2. **Filter neutrality** — fingerprint-filtered matching produces
//!    bit-identical per-level statistics to the exhaustive
//!    key-per-attempt pipeline on random kernels, geometries and policies
//!    (warp opportunities may be found at slightly different iterations;
//!    the counts never change).

use cache_model::{AccessKind, CacheConfig, MemBlock, ReplacementPolicy};
use polyhedra::Aff;
use proptest::prelude::*;
use scop::parse_scop;
use simulate::simulate_single;
use std::collections::HashSet;
use warping::fingerprint::rebuild_level_fingerprint;
use warping::{SymLevel, WarpingOptions, WarpingSimulator};

const NUM_NODES: usize = 3;
const LINE_SIZE: u64 = 8;

/// Per-node affine address functions over one iterator, all with the same
/// coefficient (`LINE_SIZE` per iteration), so that every warp shifts every
/// cached line uniformly — the precondition `apply_warp` debug-asserts.
fn addresses() -> Vec<Aff> {
    (0..NUM_NODES)
        .map(|n| {
            Aff::var(1, 0)
                .scale(LINE_SIZE as i64)
                .offset((n * 4096) as i64 * 8)
        })
        .collect()
}

/// One step of a random symbolic-level history: an access (node, iteration,
/// kind) or a warp (period, chunks).
#[derive(Clone, Copy, Debug)]
enum Step {
    Access { node: usize, iter: i64, write: bool },
    Warp { period: i64, chunks: i64 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        0u64..10,
        0usize..NUM_NODES,
        0i64..64,
        prop::bool::ANY,
        1i64..4,
        1i64..5,
    )
        .prop_map(|(kind, node, iter, write, period, chunks)| {
            if kind < 7 {
                Step::Access { node, iter, write }
            } else {
                Step::Warp { period, chunks }
            }
        })
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(ReplacementPolicy::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_fingerprint_equals_rebuild(
        steps in proptest::collection::vec(arb_step(), 1..60),
        policy in arb_policy(),
        sets in prop::sample::select(vec![1usize, 2, 4, 8]),
        assoc in prop::sample::select(vec![2usize, 4]),
    ) {
        let addresses = addresses();
        let descendants: HashSet<usize> = (0..NUM_NODES).collect();
        let mut level = SymLevel::new(CacheConfig::with_sets(sets, assoc, LINE_SIZE, policy));
        let total = steps.len();
        for (i, step) in steps.into_iter().enumerate() {
            match step {
                Step::Access { node, iter, write } => {
                    let address = addresses[node].eval(&[iter]);
                    prop_assert!(address >= 0);
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    level.access(MemBlock(address as u64 / LINE_SIZE), kind, node, &[iter]);
                }
                Step::Warp { period, chunks } => {
                    // Every cached line is labelled by a descendant with the
                    // common coefficient, so the uniform-shift precondition
                    // holds by construction.
                    let byte_shift = LINE_SIZE as i64 * period * chunks;
                    level.apply_warp(
                        &addresses,
                        &descendants,
                        1,
                        period,
                        chunks,
                        byte_shift,
                        1,
                    );
                }
            }
            // Flush only intermittently (and always at the end): real match
            // attempts are backoff-spaced, so several mutations — including
            // warps, which reset set versions — accumulate between flushes.
            if i % 3 != 0 && i + 1 != total {
                continue;
            }
            level.prepare_match();
            let rebuilt = rebuild_level_fingerprint(&level.state);
            for (d, word) in rebuilt.iter().enumerate() {
                prop_assert_eq!(
                    level.fingerprint(d),
                    Some(*word),
                    "incremental fingerprint diverged at dim {}",
                    d
                );
            }
            prop_assert_eq!(
                level.occupied_sets().collect::<Vec<_>>(),
                level.state.occupied_indices().collect::<Vec<_>>(),
                "occupied-set view diverged from the state"
            );
        }
    }

    #[test]
    fn parallel_warp_equals_sequential_warp(
        steps in proptest::collection::vec(arb_step(), 1..40),
        policy in arb_policy(),
    ) {
        // The same history applied with a parallel thread budget must yield
        // the exact same state (the per-set rewrites are independent).  The
        // set count sits at the parallelisation threshold so the threaded
        // path really runs.
        let addresses = addresses();
        let descendants: HashSet<usize> = (0..NUM_NODES).collect();
        let config = CacheConfig::with_sets(2048, 2, LINE_SIZE, policy);
        let mut sequential = SymLevel::new(config.clone());
        let mut parallel = SymLevel::new(config);
        for step in steps {
            match step {
                Step::Access { node, iter, write } => {
                    let address = addresses[node].eval(&[iter]);
                    let block = MemBlock(address as u64 / LINE_SIZE);
                    let kind = if write { AccessKind::Write } else { AccessKind::Read };
                    sequential.access(block, kind, node, &[iter]);
                    parallel.access(block, kind, node, &[iter]);
                }
                Step::Warp { period, chunks } => {
                    let byte_shift = LINE_SIZE as i64 * period * chunks;
                    sequential.apply_warp(&addresses, &descendants, 1, period, chunks, byte_shift, 1);
                    parallel.apply_warp(&addresses, &descendants, 1, period, chunks, byte_shift, 4);
                }
            }
            prop_assert_eq!(&sequential.state, &parallel.state);
            prop_assert_eq!(sequential.mru_set, parallel.mru_set);
            // State equality ignores the epoch (bookkeeping), so check the
            // clocks agree explicitly — matching depends on them.
            prop_assert_eq!(sequential.state.epoch(), parallel.state.epoch());
            prop_assert_eq!(
                sequential.occupied_sets().collect::<Vec<_>>(),
                parallel.occupied_sets().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn filtered_matching_is_stat_neutral(
        n in 200i64..2000,
        stride in 1i64..3,
        policy in arb_policy(),
        sets in prop::sample::select(vec![1usize, 4, 16]),
        assoc in prop::sample::select(vec![2usize, 4]),
        line in prop::sample::select(vec![8u64, 64]),
    ) {
        let scop = parse_scop(&format!(
            "double A[{size}]; double B[{size}];\n\
             for (i = 1; i < {n}; i += {stride}) B[i-1] = A[i-1] + A[i];",
            size = n + 1,
        ))
        .unwrap();
        let config = CacheConfig::with_sets(sets, assoc, line, policy);
        let reference = simulate_single(&scop, &config);
        for filter in [true, false] {
            let outcome = WarpingSimulator::single(config.clone())
                .with_options(WarpingOptions {
                    fingerprint_filter: filter,
                    ..WarpingOptions::default()
                })
                .run(&scop);
            prop_assert_eq!(
                &outcome.result,
                &reference,
                "filter={} config={:?}",
                filter,
                config
            );
        }
    }
}
