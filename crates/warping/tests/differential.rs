//! Differential testing: warping simulation must produce exactly the same
//! access, hit and miss counts as non-warping simulation (Algorithm 1), for
//! random polyhedral programs, random cache geometries and all replacement
//! policies.  This is the central correctness property of the paper: warping
//! only accelerates the simulation, it never changes its outcome.

use cache_model::{CacheConfig, HierarchyConfig, ReplacementPolicy};
use proptest::prelude::*;
use scop::ast::{access, assign, for_loop_strided, Expr, Program, Statement};
use scop::{elaborate, ElaborateOptions, Scop};
use simulate::{simulate_hierarchy, simulate_single};
use warping::{WarpingOptions, WarpingSimulator};

/// A randomly generated affine index expression `c0 + c1*i (+ c2*j)`.
fn arb_index(depth: usize) -> impl Strategy<Value = Expr> {
    (0i64..3, 0i64..3, 0i64..3).prop_map(move |(c0, c1, c2)| {
        let mut e = Expr::Const(c0);
        e = e.add(Expr::iter("i").scale(c1));
        if depth > 1 {
            e = e.add(Expr::iter("j").scale(c2));
        }
        e
    })
}

/// A random statement accessing one of the declared arrays.
fn arb_statement(depth: usize, num_arrays: usize) -> impl Strategy<Value = Statement> {
    let arrays: Vec<String> = (0..num_arrays).map(|k| format!("A{k}")).collect();
    (
        prop::sample::select(arrays.clone()),
        arb_index(depth),
        proptest::collection::vec((prop::sample::select(arrays), arb_index(depth)), 0..3),
    )
        .prop_map(|(warr, widx, reads)| {
            assign(
                access(&warr, vec![widx]),
                reads
                    .into_iter()
                    .map(|(arr, idx)| access(&arr, vec![idx]))
                    .collect(),
            )
        })
}

/// A random one- or two-deep loop nest over small 1D arrays, with random
/// positive strides on both loops.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        1usize..=3,      // number of arrays
        8i64..48,        // outer trip count
        prop::bool::ANY, // nested?
        prop::bool::ANY, // triangular inner loop?
        4i64..24,        // inner trip count
        1usize..=3,      // statements in the innermost body
        1i64..=3,        // outer stride
        1i64..=2,        // inner stride
    )
        .prop_flat_map(|(arrays, n, nested, triangular, m, stmts, s_out, s_in)| {
            let depth = if nested { 2 } else { 1 };
            (
                Just((arrays, n, nested, triangular, m, s_out, s_in)),
                proptest::collection::vec(arb_statement(depth, arrays), stmts),
            )
        })
        .prop_map(|((arrays, n, nested, triangular, m, s_out, s_in), body)| {
            let mut program = Program::new();
            for k in 0..arrays {
                // Large enough that all generated subscripts stay in bounds.
                program = program.with_array(&format!("A{k}"), &[600], 8);
            }
            let inner_lower = if triangular && nested {
                Expr::iter("i")
            } else {
                Expr::Const(0)
            };
            let stmt = if nested {
                for_loop_strided(
                    "i",
                    Expr::Const(0),
                    Expr::Const(n),
                    s_out,
                    vec![for_loop_strided(
                        "j",
                        inner_lower,
                        Expr::Const(m + n),
                        s_in,
                        body,
                    )],
                )
            } else {
                for_loop_strided("i", Expr::Const(0), Expr::Const(n), s_out, body)
            };
            program.with_stmt(stmt)
        })
}

fn build(program: &Program) -> Scop {
    elaborate(program, &ElaborateOptions::default()).expect("generated programs elaborate")
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(ReplacementPolicy::ALL.to_vec())
}

fn arb_cache() -> impl Strategy<Value = CacheConfig> {
    (
        arb_policy(),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![2usize, 4]),
        prop::sample::select(vec![8u64, 32, 64]),
    )
        .prop_map(|(policy, sets, assoc, line)| CacheConfig::with_sets(sets, assoc, line, policy))
}

/// Aggressive options so that warping is attempted as often as possible,
/// maximising the chance of exposing an unsound warp.
fn eager() -> WarpingOptions {
    WarpingOptions {
        eager_attempts: u64::MAX,
        backoff_interval: 1,
        max_map_entries: 1 << 16,
        min_trip_count: 0,
        max_fruitless_attempts: u64::MAX,
        ..WarpingOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn warping_matches_nonwarping_single_level(program in arb_program(), config in arb_cache()) {
        let scop = build(&program);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config.clone())
            .with_options(eager())
            .run(&scop);
        prop_assert_eq!(outcome.result, reference, "config: {:?}", config);
        prop_assert_eq!(
            outcome.non_warped_accesses + outcome.warped_accesses,
            reference.accesses
        );
    }

    #[test]
    fn warping_matches_nonwarping_hierarchy(
        program in arb_program(),
        policy1 in arb_policy(),
        policy2 in arb_policy(),
    ) {
        let scop = build(&program);
        let config = HierarchyConfig::new(
            CacheConfig::with_sets(2, 2, 32, policy1),
            CacheConfig::with_sets(8, 4, 32, policy2),
        );
        let reference = simulate_hierarchy(&scop, &config);
        let outcome = WarpingSimulator::hierarchy(config)
            .with_options(eager())
            .run(&scop);
        prop_assert_eq!(outcome.result, reference);
    }

    #[test]
    fn appending_a_level_never_changes_upstream_counts(
        program in arb_program(),
        config in arb_cache(),
        extra_sets_factor in prop::sample::select(vec![1usize, 2, 4]),
        extra_assoc in prop::sample::select(vec![2usize, 4, 8]),
        extra_policy in arb_policy(),
    ) {
        // Inclusive forwarding means an appended (outer) level only ever
        // *observes* the misses of the levels before it: their hit/miss
        // counts must be identical with and without it.
        let scop = build(&program);
        let base = cache_model::MemoryConfig::from(config.clone());
        let extra = CacheConfig::with_sets(
            config.num_sets() * extra_sets_factor,
            extra_assoc,
            config.line_size(),
            extra_policy,
        );
        let extended = base.clone().with_level(extra).expect("compatible level");
        let without = simulate::simulate_memory(&scop, &base);
        let with = simulate::simulate_memory(&scop, &extended);
        prop_assert_eq!(without.accesses, with.accesses);
        prop_assert_eq!(without.depth() + 1, with.depth());
        prop_assert_eq!(
            &without.levels[..],
            &with.levels[..without.depth()],
            "upstream levels must be untouched by an appended level"
        );
        // The same holds through the warping simulator.
        let warped = WarpingSimulator::new(extended)
            .with_options(eager())
            .run(&scop);
        prop_assert_eq!(warped.result, with);
    }

    #[test]
    fn warping_matches_nonwarping_across_sequential_nests(
        first in arb_program(),
        second in arb_program(),
        config in arb_cache(),
    ) {
        // Concatenate two random programs over a shared set of arrays: the
        // second nest starts with a warm, possibly stale cache, exercising
        // the cache-agreement check.
        let mut program = Program::new();
        for k in 0..3 {
            program = program.with_array(&format!("A{k}"), &[600], 8);
        }
        for stmt in first.stmts.into_iter().chain(second.stmts) {
            program.stmts.push(stmt);
        }
        let scop = build(&program);
        let reference = simulate_single(&scop, &config);
        let outcome = WarpingSimulator::single(config)
            .with_options(eager())
            .run(&scop);
        prop_assert_eq!(outcome.result, reference);
    }
}

/// A deterministic stress test: the paper's running example on every policy
/// and several geometries, with eager warping.
#[test]
fn stencil_exact_across_policies_and_geometries() {
    let scop = scop::parse_scop(
        "double A[6000]; double B[6000];\n\
         for (i = 1; i < 5999; i++) B[i-1] = A[i-1] + A[i];",
    )
    .unwrap();
    for policy in ReplacementPolicy::ALL {
        for (sets, assoc, line) in [(1, 2, 8), (4, 2, 8), (64, 8, 64), (16, 4, 32)] {
            let config = CacheConfig::with_sets(sets, assoc, line, policy);
            let reference = simulate_single(&scop, &config);
            let outcome = WarpingSimulator::single(config.clone())
                .with_options(WarpingOptions {
                    eager_attempts: u64::MAX,
                    backoff_interval: 1,
                    max_map_entries: 1 << 16,
                    min_trip_count: 0,
                    max_fruitless_attempts: u64::MAX,
                    ..WarpingOptions::default()
                })
                .run(&scop);
            assert_eq!(
                outcome.result, reference,
                "policy {policy}, sets {sets}, assoc {assoc}, line {line}"
            );
        }
    }
}
