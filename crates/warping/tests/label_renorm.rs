//! Differential tests of relative-label (epoch) addressing.
//!
//! The scenario under test is the one the ROADMAP called out as the reason
//! the fig13 bench had to be designed around a gap: a kernel whose working
//! set fits in the L1 leaves the outer levels of a big hierarchy *frozen* —
//! filled during warm-up, never touched again.  Under current-iterator
//! label normalisation those frozen labels drift away from every later
//! match attempt and physically identical states never compare equal, so
//! warping degenerates to explicit simulation.  Epoch-relative keys fix
//! that; these tests pin down both directions:
//!
//! 1. **Exactness** — warping with label renormalisation equals classic
//!    simulation bit for bit (per-level hit/miss counts) on randomly
//!    generated L1-resident kernels over depth-2/3 hierarchies and all four
//!    replacement policies, and renormalisation on/off never changes a
//!    count either.
//! 2. **Effectiveness** — a regression kernel that previously never
//!    matched (tiny working set, deep hierarchy, inner loop too short to
//!    amortise warping on its own) now warps at the time loop, with the
//!    frozen outer levels matched through `stale_label_renorms`.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use proptest::prelude::*;
use scop::parse_scop;
use simulate::simulate_memory;
use warping::{WarpingOptions, WarpingSimulator};

/// An L1-resident kernel: an outer time loop re-sweeping arrays that fit
/// comfortably into the innermost cache level.
fn time_sweep_source(arrays: usize, n: i64, trips: i64, stride: i64, stencil: bool) -> String {
    let mut decls = String::new();
    for a in 0..arrays {
        decls.push_str(&format!("double A{a}[{size}]; ", size = n + 1));
    }
    let mut body = String::new();
    for a in 0..arrays {
        if stencil && n > stride {
            body.push_str(&format!("A{a}[i-{stride}] = A{a}[i-{stride}] + A{a}[i]; "));
        } else {
            body.push_str(&format!("A{a}[i] = A{a}[i]; "));
        }
    }
    let lo = if stencil { stride } else { 0 };
    format!(
        "{decls}\n\
         for (t = 0; t < {trips}; t++)\n\
           for (i = {lo}; i < {n}; i += {stride}) {{ {body} }}"
    )
}

/// A hierarchy whose L1 holds the whole working set and whose outer levels
/// are orders of magnitude larger.
fn memory(depth: usize, policy: ReplacementPolicy, outer_kib: u64) -> MemoryConfig {
    let mut levels = vec![CacheConfig::new(1024, 4, 64, policy)];
    if depth >= 3 {
        levels.push(CacheConfig::new(16 * 1024, 8, 64, policy));
    }
    levels.push(CacheConfig::new(outer_kib * 1024, 16, 64, policy));
    MemoryConfig::new(levels).expect("valid hierarchy")
}

#[test]
fn l1_resident_kernel_warps_over_a_64_mib_outer_level() {
    // 16 doubles re-swept 2000 times: the inner loop is too short to warp
    // on its own (trip count below `min_trip_count`), so everything hinges
    // on matching the time loop — which requires the frozen L2/L3 labels
    // to renormalise.
    let scop = parse_scop(&time_sweep_source(1, 16, 2000, 1, false)).unwrap();
    let memory = memory(3, ReplacementPolicy::Lru, 64 * 1024);
    let reference = simulate_memory(&scop, &memory);

    let renormalised = WarpingSimulator::new(memory.clone()).run(&scop);
    assert_eq!(
        renormalised.result, reference,
        "warping must stay bit-exact while warping the time loop"
    );
    assert!(
        renormalised.warps >= 1,
        "the time loop must warp over the 64 MiB outer level"
    );
    assert!(
        renormalised.stale_label_renorms >= 1,
        "the frozen outer levels must be matched via epoch renormalisation"
    );
    assert!(
        renormalised.warped_accesses > reference.accesses / 2,
        "the bulk of the re-sweeps must be skipped ({} of {})",
        renormalised.warped_accesses,
        reference.accesses
    );

    // The pre-epoch pipeline (normalise by the current iterator) never
    // matches this kernel: the frozen labels drift on every attempt.
    let legacy = WarpingSimulator::new(memory)
        .with_options(WarpingOptions {
            label_renorm: false,
            ..WarpingOptions::default()
        })
        .run(&scop);
    assert_eq!(legacy.result, reference, "legacy mode is still exact");
    assert_eq!(
        legacy.warps, 0,
        "without renormalisation the kernel never matches — the gap this \
         refactor closes"
    );
    assert_eq!(legacy.stale_label_renorms, 0);
}

#[test]
fn l1_resident_kernel_is_exact_for_all_policies_at_depth_2_and_3() {
    let scop = parse_scop(&time_sweep_source(2, 24, 600, 1, true)).unwrap();
    for policy in ReplacementPolicy::ALL {
        for depth in [2, 3] {
            let memory = memory(depth, policy, 4 * 1024);
            let reference = simulate_memory(&scop, &memory);
            let outcome = WarpingSimulator::new(memory).run(&scop);
            assert_eq!(outcome.result, reference, "{policy} depth {depth}");
        }
    }
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(ReplacementPolicy::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random L1-resident kernels over depth-2/3 hierarchies: warping (with
    /// and without label renormalisation) equals classic simulation bit for
    /// bit, per level.
    #[test]
    fn warping_equals_classic_on_l1_resident_kernels(
        arrays in 1usize..=2,
        n in 8i64..48,
        trips in 40i64..220,
        stride in 1i64..=3,
        stencil in prop::bool::ANY,
        policy in arb_policy(),
        depth in prop::sample::select(vec![2usize, 3]),
        outer_kib in prop::sample::select(vec![256u64, 4 * 1024]),
    ) {
        let source = time_sweep_source(arrays, n, trips, stride, stencil);
        let scop = parse_scop(&source).unwrap();
        let memory = memory(depth, policy, outer_kib);
        let reference = simulate_memory(&scop, &memory);
        for renorm in [true, false] {
            let outcome = WarpingSimulator::new(memory.clone())
                .with_options(WarpingOptions {
                    label_renorm: renorm,
                    ..WarpingOptions::default()
                })
                .run(&scop);
            prop_assert_eq!(
                &outcome.result,
                &reference,
                "label_renorm={} policy={} depth={} source:\n{}",
                renorm,
                policy,
                depth,
                source
            );
        }
    }
}
