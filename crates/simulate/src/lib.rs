//! Non-warping cache simulation of polyhedral programs.
//!
//! This crate implements Algorithm 1 of *Warping Cache Simulation of
//! Polyhedral Programs* (Morelli & Reineke, PLDI 2022): the SCoP tree is
//! walked in execution order and every dynamic memory access is classified
//! and applied to a cache model.  Its runtime is proportional to the number
//! of memory accesses — it is the baseline that warping accelerates.
//!
//! The cache model is abstracted behind the [`MemorySystem`] trait.  The
//! canonical implementation is the depth-N [`MultiLevelSystem`], driven by a
//! [`MemoryConfig`]; [`SingleCacheSystem`] and [`TwoLevelSystem`] remain as
//! compatibility shims for the legacy one- and two-level entry points.
//!
//! # Example
//!
//! ```
//! use cache_model::{CacheConfig, ReplacementPolicy};
//! use scop::parse_scop;
//! use simulate::{simulate, SingleCacheSystem};
//!
//! let scop = parse_scop(
//!     "double A[1000]; double B[1000];
//!      for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
//! ).unwrap();
//! // A two-line fully-associative LRU cache with 8-byte lines: the paper's
//! // running example (each array cell occupies a full cache line).
//! let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
//! let mut memory = SingleCacheSystem::new(config);
//! let result = simulate(&scop, &mut memory);
//! assert_eq!(result.accesses, 3 * 998);
//! assert_eq!(result.l1().misses, 3 + 2 * 997);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cache_model::{
    AccessKind, CacheConfig, CacheState, HierarchyConfig, HierarchyState, HierarchyStats,
    LevelStats, MemBlock, MemoryConfig, MultiLevelState,
};
use scop::{compile, for_each_access, Scop};
use serde::{Serialize, Value};

/// Which SCoP traversal drives a simulation.
///
/// Both walks produce the identical access stream; the compiled walk
/// strength-reduces addresses, hoists bounds/guards and batches
/// same-line accesses (see `scop::compile`), while the reference walk
/// is the literal Algorithm 1 kept as the differential oracle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WalkMode {
    /// The compile-once/walk-many path (the default everywhere).
    #[default]
    Compiled,
    /// The per-access reference walk of Algorithm 1.
    Reference,
}

/// The result of simulating a SCoP against a memory system: per-level
/// hit/miss counters for every level of the hierarchy, L1 first.  No level's
/// statistics are ever dropped, whatever the depth.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimulationResult {
    /// Total number of dynamic memory accesses simulated.
    pub accesses: u64,
    /// Per-level statistics, L1 first.
    pub levels: Vec<LevelStats>,
}

impl SimulationResult {
    /// First-level statistics (compatibility accessor for the old `l1`
    /// field; zeroed counters if the result is empty).
    pub fn l1(&self) -> LevelStats {
        self.levels.first().copied().unwrap_or_default()
    }

    /// Second-level statistics, if the memory system has an L2
    /// (compatibility accessor for the old `l2` field).
    pub fn l2(&self) -> Option<LevelStats> {
        self.levels.get(1).copied()
    }

    /// Number of simulated cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The number of misses at the last simulated level (the quantity the
    /// paper's figures report as "cache misses").  This is the single
    /// definition the whole workspace delegates to.
    pub fn last_level_misses(&self) -> u64 {
        self.levels.last().map_or(0, |level| level.misses)
    }
}

impl Serialize for SimulationResult {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("accesses".to_string(), Value::UInt(self.accesses)),
            // The legacy `l1`/`l2` keys stay for wire compatibility; the
            // `levels` array is the canonical, depth-N representation.
            ("l1".to_string(), self.l1().serialize_value()),
            ("l2".to_string(), self.l2().serialize_value()),
            ("levels".to_string(), self.levels.serialize_value()),
        ])
    }
}

/// A memory system that can be driven by the simulator.
pub trait MemorySystem {
    /// Performs one access and updates internal statistics.
    fn access(&mut self, address: u64, kind: AccessKind);
    /// The statistics accumulated so far.
    fn result(&self) -> SimulationResult;
    /// Resets the cache contents and statistics.
    fn reset(&mut self);

    /// Performs a run of `count` accesses starting at `base` with a
    /// constant byte `stride`.  The default expands the run one access
    /// at a time; systems with a batched fast path (the depth-N
    /// [`MultiLevelSystem`]) override it.
    fn access_run(&mut self, base: u64, stride: i64, count: u64, kind: AccessKind) {
        let mut address = base as i64;
        for _ in 0..count {
            self.access(address as u64, kind);
            address += stride;
        }
    }
}

/// A single set-associative (or fully-associative) cache level.
///
/// Compatibility shim: equivalent to a depth-1 [`MultiLevelSystem`].
#[derive(Clone, Debug)]
pub struct SingleCacheSystem {
    config: CacheConfig,
    state: CacheState<MemBlock>,
    stats: LevelStats,
    accesses: u64,
}

impl SingleCacheSystem {
    /// An empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let state = CacheState::new(&config);
        SingleCacheSystem {
            config,
            state,
            stats: LevelStats::default(),
            accesses: 0,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The current cache state (for inspection in tests).
    pub fn state(&self) -> &CacheState<MemBlock> {
        &self.state
    }
}

impl MemorySystem for SingleCacheSystem {
    fn access(&mut self, address: u64, kind: AccessKind) {
        let hit = self
            .state
            .access(&self.config, cache_model::Access { address, kind });
        self.stats.record(hit);
        self.accesses += 1;
    }

    fn result(&self) -> SimulationResult {
        SimulationResult {
            accesses: self.accesses,
            levels: vec![self.stats],
        }
    }

    fn reset(&mut self) {
        self.state = CacheState::new(&self.config);
        self.stats = LevelStats::default();
        self.accesses = 0;
    }
}

/// A two-level non-inclusive non-exclusive hierarchy.
///
/// Compatibility shim: equivalent to a depth-2 [`MultiLevelSystem`].
#[derive(Clone, Debug)]
pub struct TwoLevelSystem {
    config: HierarchyConfig,
    state: HierarchyState<MemBlock>,
    stats: HierarchyStats,
    accesses: u64,
}

impl TwoLevelSystem {
    /// An empty hierarchy with the given configuration.
    pub fn new(config: HierarchyConfig) -> Self {
        let state = HierarchyState::new(&config);
        TwoLevelSystem {
            config,
            state,
            stats: HierarchyStats::default(),
            accesses: 0,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }
}

impl MemorySystem for TwoLevelSystem {
    fn access(&mut self, address: u64, kind: AccessKind) {
        let outcome = self
            .state
            .access(&self.config, cache_model::Access { address, kind });
        self.stats.record(outcome);
        self.accesses += 1;
    }

    fn result(&self) -> SimulationResult {
        SimulationResult {
            accesses: self.accesses,
            levels: vec![self.stats.l1, self.stats.l2],
        }
    }

    fn reset(&mut self) {
        self.state = HierarchyState::new(&self.config);
        self.stats = HierarchyStats::default();
        self.accesses = 0;
    }
}

/// An N-level non-inclusive non-exclusive memory system driven by a
/// [`MemoryConfig`]: the single simulation code path behind every depth,
/// and the memory model of the `engine` facade's `Backend::Classic`.
///
/// On a miss at level `i` the access is forwarded to level `i + 1`; write
/// misses allocate according to the configuration's write policy.  For one-
/// and two-level configurations the hit/miss counts are bit-for-bit those of
/// the legacy systems.
#[derive(Clone, Debug)]
pub struct MultiLevelSystem {
    /// Configuration with the write-allocate flag of every level normalized
    /// to the hierarchy-wide write policy.
    config: MemoryConfig,
    state: MultiLevelState<MemBlock>,
    stats: Vec<LevelStats>,
    accesses: u64,
}

impl MultiLevelSystem {
    /// An empty memory system with the given configuration.  Construction
    /// is independent of the cache sizes (the per-level states are sparse),
    /// so building one system per request — as `Engine::run_batch` does —
    /// stays cheap even for 64 MiB outer levels.
    pub fn new(config: MemoryConfig) -> Self {
        let config = config.normalized();
        let state = MultiLevelState::new(&config);
        let stats = vec![LevelStats::default(); config.depth()];
        MultiLevelSystem {
            config,
            state,
            stats,
            accesses: 0,
        }
    }

    /// The (normalized) memory configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Per-level statistics, L1 first.
    pub fn level_stats(&self) -> &[LevelStats] {
        &self.stats
    }
}

impl MemorySystem for MultiLevelSystem {
    fn access(&mut self, address: u64, kind: AccessKind) {
        self.accesses += 1;
        self.state
            .access(&self.config, cache_model::Access { address, kind })
            .record_into(&mut self.stats);
    }

    fn access_run(&mut self, base: u64, stride: i64, count: u64, kind: AccessKind) {
        self.accesses += count;
        self.state
            .access_run(&self.config, base, stride, count, kind, &mut self.stats);
    }

    fn result(&self) -> SimulationResult {
        SimulationResult {
            accesses: self.accesses,
            levels: self.stats.clone(),
        }
    }

    fn reset(&mut self) {
        self.state = MultiLevelState::new(&self.config);
        self.stats.fill(LevelStats::default());
        self.accesses = 0;
    }
}

/// Simulates a SCoP against a memory system and returns the accumulated
/// statistics.  The memory system is *not* reset first, so simulations
/// can be composed, as discussed at the end of §4 of the paper.
///
/// Uses the compiled walk; [`simulate_reference`] (or
/// [`simulate_with_walk`] with [`WalkMode::Reference`]) runs the literal
/// Algorithm 1 with bit-identical results.
pub fn simulate<M: MemorySystem>(scop: &Scop, memory: &mut M) -> SimulationResult {
    simulate_with_walk(scop, memory, WalkMode::Compiled)
}

/// Simulates a SCoP with an explicit [`WalkMode`].
pub fn simulate_with_walk<M: MemorySystem>(
    scop: &Scop,
    memory: &mut M,
    walk: WalkMode,
) -> SimulationResult {
    match walk {
        WalkMode::Compiled => {
            let compiled = compile(scop);
            let mut scratch = compiled.new_scratch();
            compiled.for_each_run(&mut scratch, |run| {
                memory.access_run(run.base, run.stride, run.count, run.kind);
            });
        }
        WalkMode::Reference => {
            for_each_access(scop, |acc| memory.access(acc.address, acc.kind));
        }
    }
    memory.result()
}

/// Simulates a SCoP with the reference walk of Algorithm 1 — the
/// differential oracle the compiled path is diffed against.
pub fn simulate_reference<M: MemorySystem>(scop: &Scop, memory: &mut M) -> SimulationResult {
    simulate_with_walk(scop, memory, WalkMode::Reference)
}

/// Simulates a SCoP on a fresh N-level memory system.
pub fn simulate_memory(scop: &Scop, config: &MemoryConfig) -> SimulationResult {
    let mut memory = MultiLevelSystem::new(config.clone());
    simulate(scop, &mut memory)
}

/// Convenience helper: simulates a SCoP on a fresh single-level cache.
/// Thin wrapper over [`simulate_memory`].
pub fn simulate_single(scop: &Scop, config: &CacheConfig) -> SimulationResult {
    simulate_memory(scop, &MemoryConfig::from(config.clone()))
}

/// Convenience helper: simulates a SCoP on a fresh two-level hierarchy.
/// Thin wrapper over [`simulate_memory`].
pub fn simulate_hierarchy(scop: &Scop, config: &HierarchyConfig) -> SimulationResult {
    simulate_memory(scop, &MemoryConfig::from(config.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::ReplacementPolicy;
    use scop::parse_scop;

    fn stencil() -> Scop {
        parse_scop(
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap()
    }

    #[test]
    fn running_example_miss_count() {
        // Figure 1: 3 misses in the first iteration, then 1 hit and 2 misses
        // per iteration.
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let result = simulate_single(&stencil(), &config);
        assert_eq!(result.accesses, 3 * 998);
        assert_eq!(result.l1().misses, 3 + 2 * 997);
        assert_eq!(result.l1().hits, 997);
        assert_eq!(result.depth(), 1);
        assert_eq!(result.last_level_misses(), 3 + 2 * 997);
    }

    #[test]
    fn set_associative_example_matches_figure_3() {
        // Figure 3: 4 sets of associativity 2, LRU, one array cell per line.
        // The steady state is also 1 hit + 2 misses per iteration.
        let config = CacheConfig::with_sets(4, 2, 8, ReplacementPolicy::Lru);
        let result = simulate_single(&stencil(), &config);
        assert_eq!(result.l1().misses, 3 + 2 * 997);
    }

    #[test]
    fn two_level_hierarchy_counts() {
        let config = HierarchyConfig::new(
            CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru),
            CacheConfig::fully_associative(1024, 8, ReplacementPolicy::Lru),
        );
        let result = simulate_hierarchy(&stencil(), &config);
        // L2 sees exactly the L1 misses; it is big enough that every block
        // misses only once (cold misses: 999 of A, 998 of B).
        assert_eq!(result.l2().unwrap().accesses, result.l1().misses);
        assert_eq!(result.l2().unwrap().misses, 999 + 998);
        assert_eq!(result.last_level_misses(), 999 + 998);
    }

    #[test]
    fn larger_cache_only_cold_misses() {
        let config = CacheConfig::fully_associative(4096, 8, ReplacementPolicy::Lru);
        let result = simulate_single(&stencil(), &config);
        assert_eq!(result.l1().misses, 999 + 998);
    }

    #[test]
    fn policies_agree_on_streaming_workload() {
        // A pure streaming kernel has no reuse, so every policy misses on
        // every access.
        let scop = parse_scop("double A[4096]; for (i = 0; i < 4096; i++) A[i] = 0;").unwrap();
        for policy in ReplacementPolicy::ALL {
            let config = CacheConfig::with_sets(8, 2, 8, policy);
            let result = simulate_single(&scop, &config);
            assert_eq!(result.l1().misses, 4096, "{policy}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let mut memory = SingleCacheSystem::new(config);
        let first = simulate(&stencil(), &mut memory);
        memory.reset();
        let second = simulate(&stencil(), &mut memory);
        assert_eq!(first, second);
    }

    #[test]
    fn multi_level_system_matches_legacy_systems() {
        let scop = stencil();
        for policy in ReplacementPolicy::ALL {
            let single = CacheConfig::with_sets(4, 2, 8, policy);
            let mut legacy = SingleCacheSystem::new(single.clone());
            let mut multi = MultiLevelSystem::new(MemoryConfig::from(single));
            assert_eq!(simulate(&scop, &mut multi), simulate(&scop, &mut legacy));
        }
        let hierarchy = HierarchyConfig::new(
            CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru),
            CacheConfig::fully_associative(1024, 8, ReplacementPolicy::Lru),
        );
        let mut legacy = TwoLevelSystem::new(hierarchy.clone());
        let mut multi = MultiLevelSystem::new(MemoryConfig::from(hierarchy));
        assert_eq!(simulate(&scop, &mut multi), simulate(&scop, &mut legacy));
    }

    #[test]
    fn write_policy_overrides_per_level_flags() {
        // The hierarchy-wide write policy governs, exactly as in the legacy
        // TwoLevelSystem, even if a level's own flag disagrees.
        let scop = parse_scop("double A[64]; for (i = 0; i < 64; i++) A[i] = 0;").unwrap();
        let l1 = CacheConfig::fully_associative(4, 8, ReplacementPolicy::Lru).no_write_allocate();
        let l2 = CacheConfig::fully_associative(64, 8, ReplacementPolicy::Lru);
        let hierarchy = HierarchyConfig::new(l1, l2);
        let mut legacy = TwoLevelSystem::new(hierarchy.clone());
        let mut multi = MultiLevelSystem::new(MemoryConfig::from(hierarchy));
        assert_eq!(simulate(&scop, &mut multi), simulate(&scop, &mut legacy));
    }

    #[test]
    fn three_level_memory_surfaces_every_level() {
        let config = MemoryConfig::new(vec![
            CacheConfig::with_sets(2, 2, 8, ReplacementPolicy::Lru),
            CacheConfig::with_sets(8, 4, 8, ReplacementPolicy::Lru),
            CacheConfig::with_sets(64, 8, 8, ReplacementPolicy::Lru),
        ])
        .unwrap();
        let mut memory = MultiLevelSystem::new(config);
        let result = simulate(&stencil(), &mut memory);
        assert_eq!(result.depth(), 3);
        assert_eq!(result.levels, memory.level_stats());
        // Each level only sees the misses of the previous one.
        assert_eq!(result.levels[1].accesses, result.levels[0].misses);
        assert_eq!(result.levels[2].accesses, result.levels[1].misses);
        assert_eq!(result.last_level_misses(), result.levels[2].misses);
    }

    #[test]
    fn strided_stencil_counts() {
        // i = 1, 3, ..., 997: 499 iterations; every iteration touches two
        // fresh cells of A (A[i-1], A[i]) and one of B, so with one cell per
        // line everything misses except nothing — no reuse across strides.
        let scop = parse_scop(
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i += 2) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap();
        let config = CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru);
        let result = simulate_single(&scop, &config);
        assert_eq!(result.accesses, 3 * 499);
        assert_eq!(result.l1().misses, 3 * 499);
        // With 8-byte elements and a 16-byte line, A[i-1] and A[i] share a
        // line: one miss plus one hit per iteration, B misses every other
        // iteration's line.
        let wide = CacheConfig::fully_associative(4, 16, ReplacementPolicy::Lru);
        let result = simulate_single(&scop, &wide);
        assert_eq!(result.l1().hits, 499);
    }

    #[test]
    fn compiled_and_reference_walks_are_bit_identical() {
        for src in [
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
            "double A[100]; for (i = 0; i < 100; i++) if (i >= 90) A[i] = 0;",
            "double A[100][100]; double x[100]; double c[100];\n\
             for (i = 0; i < 100; i++) {\n\
               c[i] = 0;\n\
               for (j = i; j < 100; j++) c[i] = c[i] + A[i][j] * x[j];\n\
             }",
            "double A[10]; for (i = 9; i >= 0; i -= 3) if (i < 7) A[i] = 0;",
        ] {
            let scop = parse_scop(src).unwrap();
            for policy in ReplacementPolicy::ALL {
                let config = MemoryConfig::new(vec![
                    CacheConfig::with_sets(2, 2, 64, policy),
                    CacheConfig::with_sets(16, 4, 64, policy),
                ])
                .unwrap();
                let mut compiled = MultiLevelSystem::new(config.clone());
                let mut reference = MultiLevelSystem::new(config);
                assert_eq!(
                    simulate(&scop, &mut compiled),
                    simulate_reference(&scop, &mut reference),
                    "{policy} {src}"
                );
            }
        }
    }

    #[test]
    fn composition_without_reset_keeps_state() {
        let config = CacheConfig::fully_associative(64, 8, ReplacementPolicy::Lru);
        let scop = parse_scop("double A[32]; for (i = 0; i < 32; i++) A[i] = A[i];").unwrap();
        let mut memory = SingleCacheSystem::new(config);
        let first = simulate(&scop, &mut memory);
        assert_eq!(first.l1().misses, 32);
        // Second run hits everywhere because the cache is still warm.
        let second = simulate(&scop, &mut memory);
        assert_eq!(second.l1().misses, 32);
        assert_eq!(second.l1().hits, 2 * 32 + 32);
    }
}
