//! Abstract syntax tree for affine loop nests.
//!
//! The AST is deliberately small: it can express exactly the static control
//! parts (SCoPs) the simulator handles — `for` loops with affine bounds and
//! constant strides, `if` guards with conjunctions of affine comparisons,
//! and assignment statements whose array subscripts are affine expressions
//! of the surrounding loop iterators.
//!
//! Programs may additionally declare named **parameters** (`param N;`).
//! A parameter behaves like a free name usable in bounds, extents, strides
//! and subscripts; it must be substituted by a constant (see
//! [`crate::param::ParametricScop`]) before elaboration.  To express tile
//! shapes like `N / T * T` the expression grammar carries a truncating
//! division [`Expr::Div`] and a general product [`Expr::Prod`]; both must
//! fold to constants (or a constant times an affine expression) after
//! substitution.

use std::fmt;

/// An affine expression over named loop iterators and parameters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// An integer constant.
    Const(i64),
    /// A loop iterator or parameter, referred to by name.
    Iter(String),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of a constant and an expression (affine multiplication).
    Mul(i64, Box<Expr>),
    /// Truncating integer division (C semantics).  Only meaningful over
    /// parameters: both operands must fold to constants after parameter
    /// substitution.
    Div(Box<Expr>, Box<Expr>),
    /// Product of two expressions.  At least one side must fold to a
    /// constant after parameter substitution for the program to stay
    /// affine.
    Prod(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for an iterator reference.
    pub fn iter(name: &str) -> Expr {
        Expr::Iter(name.to_owned())
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self + k`.
    pub fn offset(self, k: i64) -> Expr {
        self.add(Expr::Const(k))
    }

    /// `k * self`.
    pub fn scale(self, k: i64) -> Expr {
        Expr::Mul(k, Box::new(self))
    }

    /// `self / other` with C (truncating) division semantics.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(other))
    }

    /// `self * other` as a general (symbolic) product.
    pub fn prod(self, other: Expr) -> Expr {
        Expr::Prod(Box::new(self), Box::new(other))
    }

    /// Folds the expression to a constant if it contains no names, using
    /// checked arithmetic and C truncating division.  Returns `None` for
    /// expressions mentioning iterators/parameters, on overflow, and on
    /// division by zero.
    pub fn eval_const(&self) -> Option<i64> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Iter(_) => None,
            Expr::Add(a, b) => a.eval_const()?.checked_add(b.eval_const()?),
            Expr::Sub(a, b) => a.eval_const()?.checked_sub(b.eval_const()?),
            Expr::Mul(k, e) => k.checked_mul(e.eval_const()?),
            Expr::Div(a, b) => match b.eval_const()? {
                0 => None,
                d => a.eval_const()?.checked_div(d),
            },
            Expr::Prod(a, b) => a.eval_const()?.checked_mul(b.eval_const()?),
        }
    }

    /// The iterator/parameter names referenced by the expression, in
    /// first-use order.
    pub fn iterators(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_iterators(&mut out);
        out
    }

    fn collect_iterators<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Const(_) => {}
            Expr::Iter(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Div(a, b) | Expr::Prod(a, b) => {
                a.collect_iterators(out);
                b.collect_iterators(out);
            }
            Expr::Mul(_, e) => e.collect_iterators(out),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Iter(name) => write!(f, "{name}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(k, e) => write!(f, "{k}*{e}"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Prod(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

/// A comparison operator in a guard condition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
}

/// A single affine comparison `lhs op rhs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Condition {
    /// Left-hand side.
    pub lhs: Expr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Expr,
}

/// A reference to an array element, e.g. `A[i][j-1]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayAccess {
    /// Array name.
    pub array: String,
    /// One affine subscript per array dimension (empty for scalars).
    pub indices: Vec<Expr>,
}

/// A statement of the loop nest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Statement {
    /// `for (iter = lower; iter < upper; iter += stride) body` — `upper` is
    /// exclusive and `stride` must fold to a non-zero constant by
    /// elaboration time (1 for `iter++`; a parameter name for tiled sweeps).
    /// Decreasing loops (`iter--`, `iter -= k`) are normalised to the same
    /// `[lower, upper)` bounds with a negative stride; they start at
    /// `upper - 1` and walk downwards.
    For {
        /// Iterator name (must be unique within the enclosing nest).
        iter: String,
        /// Inclusive lower bound.
        lower: Expr,
        /// Exclusive upper bound.
        upper: Expr,
        /// Iterator increment per iteration.  Must fold to a non-zero
        /// constant (negative for decreasing loops) once parameters are
        /// substituted.
        stride: Expr,
        /// Loop body.
        body: Vec<Statement>,
    },
    /// `if (c1 && c2 && ...) body` — a conjunction of affine comparisons
    /// guarding the body.
    If {
        /// The conjunction of conditions.
        conditions: Vec<Condition>,
        /// Guarded statements.
        body: Vec<Statement>,
    },
    /// An assignment: the reads are performed left to right, then the write
    /// (matching the access order used in §3.2 of the paper).
    Assign {
        /// The written array element.
        write: ArrayAccess,
        /// The array elements read by the right-hand side (and, for compound
        /// assignments, the left-hand side), in program order.
        reads: Vec<ArrayAccess>,
    },
}

/// Declaration of an array: name, extents and element size in bytes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Extent of each dimension (empty for scalars).  Each extent must fold
    /// to a positive constant once parameters are substituted.
    pub extents: Vec<Expr>,
    /// Element size in bytes.
    pub elem_size: u64,
}

/// A whole affine program: parameter and array declarations followed by a
/// loop nest.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Declared parameters (`param N;`), in declaration order.
    pub params: Vec<String>,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements.
    pub stmts: Vec<Statement>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Declares a parameter and returns `self` for chaining.
    pub fn with_param(mut self, name: &str) -> Self {
        self.params.push(name.to_owned());
        self
    }

    /// Declares an array with constant extents and returns `self` for
    /// chaining.
    pub fn with_array(mut self, name: &str, extents: &[u64], elem_size: u64) -> Self {
        self.arrays.push(ArrayDecl {
            name: name.to_owned(),
            extents: extents.iter().map(|&e| Expr::Const(e as i64)).collect(),
            elem_size,
        });
        self
    }

    /// Appends a top-level statement and returns `self` for chaining.
    pub fn with_stmt(mut self, stmt: Statement) -> Self {
        self.stmts.push(stmt);
        self
    }
}

/// Convenience constructor for a `for` statement with unit stride.
pub fn for_loop(iter: &str, lower: Expr, upper: Expr, body: Vec<Statement>) -> Statement {
    for_loop_strided(iter, lower, upper, 1, body)
}

/// Convenience constructor for a `for` statement with an explicit non-zero
/// stride (negative strides build decreasing loops that start at
/// `upper - 1`).
///
/// # Panics
///
/// Panics if `stride == 0`.
pub fn for_loop_strided(
    iter: &str,
    lower: Expr,
    upper: Expr,
    stride: i64,
    body: Vec<Statement>,
) -> Statement {
    assert!(stride != 0, "loop strides must be non-zero");
    Statement::For {
        iter: iter.to_owned(),
        lower,
        upper,
        stride: Expr::Const(stride),
        body,
    }
}

/// Convenience constructor for an array access.
pub fn access(array: &str, indices: Vec<Expr>) -> ArrayAccess {
    ArrayAccess {
        array: array.to_owned(),
        indices,
    }
}

/// Convenience constructor for an assignment statement.
pub fn assign(write: ArrayAccess, reads: Vec<ArrayAccess>) -> Statement {
    Statement::Assign { write, reads }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_builders_and_iterators() {
        let e = Expr::iter("i").scale(2).add(Expr::iter("j")).offset(-1);
        assert_eq!(e.iterators(), vec!["i", "j"]);
        assert_eq!(format!("{e}"), "((2*i + j) + -1)");
    }

    #[test]
    fn constant_folding_uses_truncating_division() {
        let e = Expr::Const(25).div(Expr::Const(8)).scale(8);
        assert_eq!(e.eval_const(), Some(24));
        let neg = Expr::Const(-7).div(Expr::Const(2));
        assert_eq!(neg.eval_const(), Some(-3), "C truncates toward zero");
        assert_eq!(Expr::Const(1).div(Expr::Const(0)).eval_const(), None);
        assert_eq!(Expr::iter("N").prod(Expr::Const(2)).eval_const(), None);
        assert_eq!(
            Expr::Const(3).prod(Expr::Const(4)).eval_const(),
            Some(12),
            "constant products fold"
        );
    }

    #[test]
    fn program_builder() {
        let p = Program::new().with_array("A", &[10], 8).with_stmt(for_loop(
            "i",
            Expr::Const(0),
            Expr::Const(10),
            vec![assign(access("A", vec![Expr::iter("i")]), vec![])],
        ));
        assert_eq!(p.arrays.len(), 1);
        assert_eq!(p.stmts.len(), 1);
    }
}
