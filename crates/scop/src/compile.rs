//! Compile-once / walk-many lowering of a SCoP: the compiled walk.
//!
//! The reference walk ([`crate::walk::for_each_access`]) re-evaluates a
//! full affine dot product per access, re-checks `domain.contains`
//! against every basic set per iteration, and derives loop bounds with a
//! fresh lexmin/lexmax search per loop entry.  All of that work is
//! affine in the iteration vector, so it can be paid once per *kernel*
//! instead of once per *access*:
//!
//! * **Strength-reduced addresses** — each access keeps a running base
//!   address; entering a loop at value `v` adds `coeff × v` for every
//!   access below it, advancing adds `coeff × stride`, and leaving
//!   subtracts the accumulated contribution (the per-level carry
//!   deltas).  Steady-state iteration never evaluates an [`Aff`] again.
//! * **Hoisted bounds** — a loop whose domain is a single conjunction
//!   compiles to `LoopBounds::Exact`: per entry, one pass over the
//!   constraints ([`BasicSet::dim_bounds`]) yields the inclusive bound
//!   interval, replacing the per-entry lexmin/lexmax searches, and makes
//!   the per-iteration `contains` check provably redundant.  Unions of
//!   conjunctions fall back to the reference enumeration
//!   (`LoopBounds::Dynamic`), still with strength-reduced addresses.
//! * **Hoisted guards** — an access whose domain constraints are all
//!   syntactically established by enclosing exact loops needs no
//!   membership test at all (`GuardPlan::Trivial`); a genuinely
//!   guarded single-conjunction domain clips the innermost interval once
//!   per entry (`GuardPlan::Exact`); only non-convex guards pay a
//!   per-point check (`GuardPlan::Dynamic`).
//! * **Runs** — an innermost loop whose body is a single guarded access
//!   emits one [`AccessRun`] (`base, stride, count`) per entry instead
//!   of `count` single accesses, letting the cache layer batch
//!   same-line accesses (see `MultiLevelState::access_run`).
//!
//! The compiled walk produces the *identical* access stream (node,
//! address, kind, order) as the reference walk; the
//! `compiled_walk_equivalence` suite in the engine crate asserts this
//! over random kernels, and the reference walk remains available as the
//! differential oracle.
//!
//! [`Aff`]: polyhedra::Aff

use crate::tree::{AccessNode, LoopNode, Node, Scop};
use cache_model::AccessKind;
use polyhedra::{BasicSet, Constraint, Set};

/// A run of dynamic accesses from one access node: `count` accesses
/// starting at `base`, each `stride` bytes after the previous one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessRun {
    /// Id of the access node that produced the run.
    pub node: usize,
    /// Byte address of the first access.
    pub base: u64,
    /// Byte delta between consecutive accesses (zero or negative are
    /// legal: a zero-stride run re-touches one address).
    pub stride: i64,
    /// Number of accesses in the run (always ≥ 1).
    pub count: u64,
    /// Read or write.
    pub kind: AccessKind,
}

impl AccessRun {
    /// The addresses of the run, in order.
    pub fn addresses(&self) -> impl Iterator<Item = u64> + '_ {
        let (base, stride) = (self.base as i64, self.stride);
        (0..self.count as i64).map(move |k| (base + k * stride) as u64)
    }
}

/// How a loop's bound interval is derived per entry.
#[derive(Clone, Debug)]
enum LoopBounds {
    /// Single-conjunction domain: one [`BasicSet::dim_bounds`] pass per
    /// entry yields the exact inclusive interval, and every grid point
    /// inside it is in the domain (no per-iteration `contains`).
    Exact(BasicSet),
    /// Union domain: reference-style lexmin/lexmax enumeration with
    /// per-point membership checks.
    Dynamic(Set),
}

/// How an access's guard is evaluated.
#[derive(Clone, Debug)]
enum GuardPlan {
    /// Every domain constraint is established by an enclosing exact
    /// loop: membership is implied, no check at runtime.
    Trivial,
    /// Single-conjunction guard: clipped to an interval of the
    /// innermost dimension once per loop entry (run fast path) or
    /// checked per point.
    Exact(BasicSet),
    /// Union guard: per-point membership check.
    Dynamic(Set),
}

/// The exact bound interval of one loop entry, when derivable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryBounds {
    /// The loop runs over the inclusive interval `[lo, hi]` on its
    /// stride grid; every grid point is in the domain.
    Exact(i64, i64),
    /// The entry is exactly empty: skip it.
    Empty,
    /// The domain did not compile exactly; derive bounds the reference
    /// way (lexmin/lexmax plus per-point membership).
    Dynamic,
}

/// A compiled access node: strength-reduced address plus a guard plan.
#[derive(Clone, Debug)]
pub struct CompiledAccess {
    /// Id of the source [`AccessNode`] (also its base-address slot).
    pub id: usize,
    /// Nesting depth (dimensionality of the guard domain).
    pub depth: usize,
    /// Read or write.
    pub kind: AccessKind,
    /// Address coefficients per iterator dimension.
    coeffs: Vec<i64>,
    /// Address constant term.
    constant: i64,
    guard: GuardPlan,
}

impl CompiledAccess {
    /// Whether the guard was hoisted away entirely (membership implied
    /// by enclosing exact loops).
    pub fn guard_is_trivial(&self) -> bool {
        matches!(self.guard, GuardPlan::Trivial)
    }

    /// Whether the iteration vector `iv` (of length `depth`) satisfies
    /// the guard.
    fn guard_holds(&self, iv: &[i64]) -> bool {
        match &self.guard {
            GuardPlan::Trivial => true,
            GuardPlan::Exact(bs) => bs.contains(iv),
            GuardPlan::Dynamic(set) => set.contains(iv),
        }
    }
}

/// A compiled loop node.
#[derive(Clone, Debug)]
pub struct CompiledLoop {
    /// Nesting depth (1 = outermost).
    pub depth: usize,
    /// Iterator increment per iteration (non-zero; negative walks
    /// lexmax-first).
    pub stride: i64,
    bounds: LoopBounds,
    /// Strength-reduction table: for every access slot in the subtree,
    /// the address coefficient on this loop's dimension (zero
    /// coefficients are omitted).
    deltas: Vec<(usize, i64)>,
    children: Vec<CompiledNode>,
    /// Whether the single-access-body run fast path applies (exactly
    /// one child, an access, exact bounds, non-dynamic guard).
    run_body: bool,
}

impl CompiledLoop {
    /// The compiled children, in execution order (mirrors the source
    /// [`LoopNode::children`] one to one).
    pub fn children(&self) -> &[CompiledNode] {
        &self.children
    }

    /// Whether the loop's bounds compiled exactly (per-iteration
    /// membership checks are redundant).
    pub fn is_exact(&self) -> bool {
        matches!(self.bounds, LoopBounds::Exact(_))
    }

    /// The bound interval of the entry with the given outer iteration
    /// vector (length `depth - 1`).
    pub fn entry_bounds(&self, outer: &[i64]) -> EntryBounds {
        match &self.bounds {
            LoopBounds::Exact(bs) => match bs.dim_bounds(self.depth - 1, outer) {
                Some((Some(lo), Some(hi))) if lo <= hi => EntryBounds::Exact(lo, hi),
                _ => EntryBounds::Empty,
            },
            LoopBounds::Dynamic(_) => EntryBounds::Dynamic,
        }
    }
}

/// A node of the compiled tree, mirroring the source [`Node`] shape.
#[derive(Clone, Debug)]
pub enum CompiledNode {
    /// A loop.
    Loop(CompiledLoop),
    /// An access.
    Access(CompiledAccess),
}

/// Reusable per-walk state: the iteration vector and the per-slot
/// running base addresses.  Steady-state iteration allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct WalkScratch {
    iv: Vec<i64>,
    bases: Vec<i64>,
    /// Endpoint buffers for the dynamic-bounds fallback.
    lex_a: Vec<i64>,
    lex_b: Vec<i64>,
}

/// A [`Scop`] lowered for the compiled walk.  Self-contained (owns
/// clones of the affine data it needs), so it can be cached next to the
/// parse-once kernel templates and shared across threads.
#[derive(Clone, Debug)]
pub struct CompiledScop {
    roots: Vec<CompiledNode>,
    num_slots: usize,
    max_depth: usize,
}

/// Lowers a SCoP for the compiled walk.
pub fn compile(scop: &Scop) -> CompiledScop {
    let mut established: Vec<Constraint> = Vec::new();
    let mut max_depth = 0;
    let roots = scop
        .roots()
        .iter()
        .map(|n| compile_node(n, &mut established, &mut max_depth))
        .collect();
    CompiledScop {
        roots,
        num_slots: scop.num_access_nodes(),
        max_depth,
    }
}

fn compile_node(
    node: &Node,
    established: &mut Vec<Constraint>,
    max_depth: &mut usize,
) -> CompiledNode {
    match node {
        Node::Access(a) => CompiledNode::Access(compile_access(a, established)),
        Node::Loop(l) => CompiledNode::Loop(compile_loop(l, established, max_depth)),
    }
}

fn compile_access(a: &AccessNode, established: &[Constraint]) -> CompiledAccess {
    let guard = match a.domain.basics() {
        [bs] if bs
            .constraints()
            .iter()
            .all(|c| established.iter().any(|e| same_constraint(e, c))) =>
        {
            GuardPlan::Trivial
        }
        [bs] => GuardPlan::Exact(bs.clone()),
        _ => GuardPlan::Dynamic(a.domain.clone()),
    };
    CompiledAccess {
        id: a.id,
        depth: a.depth,
        kind: a.kind,
        coeffs: a.address.coeffs().to_vec(),
        constant: a.address.constant_term(),
        guard,
    }
}

fn compile_loop(
    l: &LoopNode,
    established: &mut Vec<Constraint>,
    max_depth: &mut usize,
) -> CompiledLoop {
    *max_depth = (*max_depth).max(l.depth);
    let (bounds, pushed) = match l.domain.basics() {
        [bs] => {
            let n = bs.constraints().len();
            established.extend(bs.constraints().iter().cloned());
            (LoopBounds::Exact(bs.clone()), n)
        }
        _ => (LoopBounds::Dynamic(l.domain.clone()), 0),
    };
    let children: Vec<CompiledNode> = l
        .children
        .iter()
        .map(|c| compile_node(c, established, max_depth))
        .collect();
    established.truncate(established.len() - pushed);
    let mut deltas = Vec::new();
    for child in &children {
        collect_deltas(child, l.depth - 1, &mut deltas);
    }
    let run_body = matches!(bounds, LoopBounds::Exact(_))
        && children.len() == 1
        && matches!(
            &children[0],
            CompiledNode::Access(a) if !matches!(a.guard, GuardPlan::Dynamic(_))
        );
    CompiledLoop {
        depth: l.depth,
        stride: l.stride,
        bounds,
        deltas,
        children,
        run_body,
    }
}

/// Collects `(slot, coeff-on-dim)` pairs for every access in the
/// subtree whose address involves the dimension.
fn collect_deltas(node: &CompiledNode, dim: usize, out: &mut Vec<(usize, i64)>) {
    match node {
        CompiledNode::Access(a) => {
            let c = a.coeffs.get(dim).copied().unwrap_or(0);
            if c != 0 {
                out.push((a.id, c));
            }
        }
        CompiledNode::Loop(l) => {
            for child in &l.children {
                collect_deltas(child, dim, out);
            }
        }
    }
}

/// Whether two constraints are syntactically identical, comparing
/// coefficient vectors up to trailing zeros (enclosing loop domains
/// range over fewer dimensions than the access domains they imply).
fn same_constraint(a: &Constraint, b: &Constraint) -> bool {
    if a.kind() != b.kind() || a.aff().constant_term() != b.aff().constant_term() {
        return false;
    }
    let (x, y) = (a.aff().coeffs(), b.aff().coeffs());
    let n = x.len().max(y.len());
    (0..n).all(|i| x.get(i).copied().unwrap_or(0) == y.get(i).copied().unwrap_or(0))
}

impl CompiledScop {
    /// The compiled top-level nodes, in execution order (mirrors
    /// [`Scop::roots`] one to one).
    pub fn roots(&self) -> &[CompiledNode] {
        &self.roots
    }

    /// A scratch buffer sized for this SCoP.  Reuse it across walks to
    /// keep steady-state iteration allocation-free.
    pub fn new_scratch(&self) -> WalkScratch {
        WalkScratch {
            iv: Vec::with_capacity(self.max_depth),
            bases: vec![0; self.num_slots],
            lex_a: Vec::new(),
            lex_b: Vec::new(),
        }
    }

    /// Walks every access run of the SCoP in execution order.  Returns
    /// the number of dynamic accesses covered.
    pub fn for_each_run(
        &self,
        scratch: &mut WalkScratch,
        mut visit: impl FnMut(&AccessRun),
    ) -> u64 {
        let mut count = 0;
        for root in &self.roots {
            scratch.iv.clear();
            init_bases(root, &[], &mut scratch.bases);
            walk(root, scratch, &mut visit, &mut count);
        }
        count
    }

    /// Walks every dynamic access (runs expanded) in execution order.
    /// The stream is identical to the reference walk's: same node ids,
    /// addresses, kinds, same order.
    pub fn for_each_access(
        &self,
        scratch: &mut WalkScratch,
        mut visit: impl FnMut(usize, u64, AccessKind),
    ) -> u64 {
        self.for_each_run(scratch, |run| {
            let mut addr = run.base as i64;
            for _ in 0..run.count {
                visit(run.node, addr as u64, run.kind);
                addr += run.stride;
            }
        })
    }

    /// The exact dynamic access count in closed form, for SCoPs whose
    /// loop bounds and guards are all rectangular (every constraint
    /// involves a single dimension).  `None` means the shape is not
    /// rectangular and the count must be derived by walking; the count
    /// saturates at `u64::MAX` instead of overflowing.
    pub fn static_access_count(&self) -> Option<u64> {
        let mut grids = Vec::new();
        let mut established = Vec::new();
        let mut total: u64 = 0;
        for root in &self.roots {
            total = total.saturating_add(static_count_node(root, &mut grids, &mut established)?);
        }
        Some(total)
    }
}

/// Walks the access runs of one compiled subtree at a fixed outer
/// iteration vector — the per-subtree slice of
/// [`CompiledScop::for_each_run`], used by interval samplers to replay
/// one outer iteration at a time.  Returns the number of dynamic
/// accesses covered.
pub fn for_each_run_at(
    node: &CompiledNode,
    outer: &[i64],
    scratch: &mut WalkScratch,
    mut visit: impl FnMut(&AccessRun),
) -> u64 {
    scratch.iv.clear();
    scratch.iv.extend_from_slice(outer);
    init_bases(node, outer, &mut scratch.bases);
    let mut count = 0;
    walk(node, scratch, &mut visit, &mut count);
    count
}

/// Seeds the base-address slots of every access in the subtree with the
/// address constant plus the contribution of the fixed outer prefix.
fn init_bases(node: &CompiledNode, outer: &[i64], bases: &mut Vec<i64>) {
    match node {
        CompiledNode::Access(a) => {
            let mut v = a.constant;
            for (c, x) in a.coeffs.iter().zip(outer) {
                v += c * x;
            }
            if a.id >= bases.len() {
                bases.resize(a.id + 1, 0);
            }
            bases[a.id] = v;
        }
        CompiledNode::Loop(l) => {
            for child in &l.children {
                init_bases(child, outer, bases);
            }
        }
    }
}

fn walk(
    node: &CompiledNode,
    scratch: &mut WalkScratch,
    visit: &mut impl FnMut(&AccessRun),
    count: &mut u64,
) {
    match node {
        CompiledNode::Access(a) => {
            if a.guard_holds(&scratch.iv) {
                let base = scratch.bases[a.id];
                debug_assert!(base >= 0, "access to a negative address");
                visit(&AccessRun {
                    node: a.id,
                    base: base as u64,
                    stride: 0,
                    count: 1,
                    kind: a.kind,
                });
                *count += 1;
            }
        }
        CompiledNode::Loop(l) => walk_loop(l, scratch, visit, count),
    }
}

fn walk_loop(
    l: &CompiledLoop,
    scratch: &mut WalkScratch,
    visit: &mut impl FnMut(&AccessRun),
    count: &mut u64,
) {
    let d = l.depth;
    let (lo, hi) = match &l.bounds {
        LoopBounds::Exact(bs) => match bs.dim_bounds(d - 1, &scratch.iv) {
            Some((Some(lo), Some(hi))) if lo <= hi => (lo, hi),
            _ => return,
        },
        LoopBounds::Dynamic(set) => return walk_loop_dynamic(l, set, scratch, visit, count),
    };
    let s = l.stride;
    let n = (hi - lo) / s.abs() + 1;
    let v0 = if s > 0 { lo } else { hi };
    if l.run_body {
        let CompiledNode::Access(a) = &l.children[0] else {
            unreachable!("run_body implies a single access child");
        };
        return emit_run(a, d, s, v0, n, lo, hi, scratch, visit, count);
    }
    scratch.iv.push(v0);
    for &(slot, c) in &l.deltas {
        scratch.bases[slot] += c * v0;
    }
    let mut v = v0;
    let mut k: i64 = 0;
    loop {
        for child in &l.children {
            walk(child, scratch, visit, count);
        }
        k += 1;
        if k == n {
            break;
        }
        v += s;
        *scratch.iv.last_mut().expect("loop pushed its dimension") = v;
        for &(slot, c) in &l.deltas {
            scratch.bases[slot] += c * s;
        }
    }
    for &(slot, c) in &l.deltas {
        scratch.bases[slot] -= c * v;
    }
    scratch.iv.pop();
}

/// The run fast path: one [`AccessRun`] per loop entry, its interval
/// clipped to the access guard on the stride grid.
#[allow(clippy::too_many_arguments)]
fn emit_run(
    a: &CompiledAccess,
    d: usize,
    s: i64,
    v0: i64,
    n: i64,
    lo: i64,
    hi: i64,
    scratch: &mut WalkScratch,
    visit: &mut impl FnMut(&AccessRun),
    count: &mut u64,
) {
    let (k_min, k_max) = match &a.guard {
        GuardPlan::Trivial => (0, n - 1),
        GuardPlan::Exact(bs) => {
            let Some((glo, ghi)) = bs.dim_bounds(d - 1, &scratch.iv) else {
                return;
            };
            let (glo, ghi) = (glo.unwrap_or(lo), ghi.unwrap_or(hi));
            if glo > ghi {
                return;
            }
            // Grid indices k with glo <= v0 + k*s <= ghi.
            let (k_min, k_max) = if s > 0 {
                (div_ceil(glo - v0, s), div_floor(ghi - v0, s))
            } else {
                (div_ceil(v0 - ghi, -s), div_floor(v0 - glo, -s))
            };
            (k_min.max(0), k_max.min(n - 1))
        }
        GuardPlan::Dynamic(_) => unreachable!("run bodies never have dynamic guards"),
    };
    if k_min > k_max {
        return;
    }
    let c = a.coeffs.get(d - 1).copied().unwrap_or(0);
    let base = scratch.bases[a.id] + c * (v0 + k_min * s);
    debug_assert!(base >= 0, "access to a negative address");
    let run_len = (k_max - k_min + 1) as u64;
    visit(&AccessRun {
        node: a.id,
        base: base as u64,
        stride: c * s,
        count: run_len,
        kind: a.kind,
    });
    *count += run_len;
}

/// The reference-style enumeration for union domains: lexmin/lexmax
/// anchors, per-point membership — with strength-reduced addresses for
/// the subtree.
fn walk_loop_dynamic(
    l: &CompiledLoop,
    set: &Set,
    scratch: &mut WalkScratch,
    visit: &mut impl FnMut(&AccessRun),
    count: &mut u64,
) {
    let d = l.depth;
    let (v0, v_end) = {
        let WalkScratch {
            iv, lex_a, lex_b, ..
        } = &mut *scratch;
        let found = if l.stride < 0 {
            set.lexmax_with_prefix_into(iv, lex_a) && set.lexmin_with_prefix_into(iv, lex_b)
        } else {
            set.lexmin_with_prefix_into(iv, lex_a) && set.lexmax_with_prefix_into(iv, lex_b)
        };
        if !found {
            return;
        }
        (lex_a[d - 1], lex_b[d - 1])
    };
    scratch.iv.push(v0);
    for &(slot, c) in &l.deltas {
        scratch.bases[slot] += c * v0;
    }
    let mut v = v0;
    loop {
        if set.contains(&scratch.iv) {
            for child in &l.children {
                walk(child, scratch, visit, count);
            }
        }
        let next = v + l.stride;
        if (l.stride > 0 && next > v_end) || (l.stride < 0 && next < v_end) {
            break;
        }
        v = next;
        *scratch.iv.last_mut().expect("loop pushed its dimension") = v;
        for &(slot, c) in &l.deltas {
            scratch.bases[slot] += c * l.stride;
        }
    }
    for &(slot, c) in &l.deltas {
        scratch.bases[slot] -= c * v;
    }
    scratch.iv.pop();
}

/// One enclosing loop's stride grid for the closed-form count.
#[derive(Clone, Copy)]
struct Grid {
    /// First grid value (`lo` for positive strides, `hi` for negative).
    v0: i64,
    stride: i64,
    /// Inclusive bound interval.
    lo: i64,
    hi: i64,
    /// Grid points in the interval.
    n: i64,
}

fn static_count_node(
    node: &CompiledNode,
    grids: &mut Vec<Grid>,
    established: &mut Vec<Constraint>,
) -> Option<u64> {
    match node {
        CompiledNode::Access(a) => static_count_access(a, grids),
        CompiledNode::Loop(l) => {
            let LoopBounds::Exact(bs) = &l.bounds else {
                return None;
            };
            let interval = match rect_interval(bs, l.depth - 1, established)? {
                Some(iv) => iv,
                // Exactly empty: the subtree contributes nothing.
                None => return Some(0),
            };
            let (lo, hi) = interval;
            let s = l.stride;
            let grid = Grid {
                v0: if s > 0 { lo } else { hi },
                stride: s,
                lo,
                hi,
                n: (hi - lo) / s.abs() + 1,
            };
            grids.push(grid);
            let pushed = bs.constraints().len();
            established.extend(bs.constraints().iter().cloned());
            let mut sum: Option<u64> = Some(0);
            for child in &l.children {
                match static_count_node(child, grids, established) {
                    Some(c) => sum = sum.map(|s| s.saturating_add(c)),
                    None => {
                        sum = None;
                        break;
                    }
                }
            }
            established.truncate(established.len() - pushed);
            grids.pop();
            sum
        }
    }
}

fn static_count_access(a: &CompiledAccess, grids: &[Grid]) -> Option<u64> {
    debug_assert_eq!(a.depth, grids.len(), "grids mirror the enclosing loops");
    match &a.guard {
        GuardPlan::Trivial => Some(
            grids
                .iter()
                .fold(1u64, |acc, g| acc.saturating_mul(g.n as u64)),
        ),
        GuardPlan::Exact(bs) => {
            let mut product: u64 = 1;
            for (k, g) in grids.iter().enumerate() {
                let clipped = match rect_interval_for_dim(bs, k)? {
                    Some(iv) => iv,
                    None => return Some(0),
                };
                let (glo, ghi) = (clipped.0.max(g.lo), clipped.1.min(g.hi));
                if glo > ghi {
                    return Some(0);
                }
                let s = g.stride;
                let (k_min, k_max) = if s > 0 {
                    (div_ceil(glo - g.v0, s), div_floor(ghi - g.v0, s))
                } else {
                    (div_ceil(g.v0 - ghi, -s), div_floor(g.v0 - glo, -s))
                };
                let (k_min, k_max) = (k_min.max(0), k_max.min(g.n - 1));
                if k_min > k_max {
                    return Some(0);
                }
                product = product.saturating_mul((k_max - k_min + 1) as u64);
            }
            Some(product)
        }
        GuardPlan::Dynamic(set) if a.depth == 0 => Some(u64::from(set.contains(&[]))),
        GuardPlan::Dynamic(_) => None,
    }
}

/// The interval `[lo, hi]` a single-conjunction loop domain imposes on
/// dimension `dim`, when every constraint not already established by an
/// enclosing loop is rectangular (involves only that one dimension).
/// Outer `None` = not rectangular or unbounded (fall back to walking);
/// inner `None` = exactly empty.
fn rect_interval(
    bs: &BasicSet,
    dim: usize,
    established: &[Constraint],
) -> Option<Option<(i64, i64)>> {
    let mut lo = i64::MIN;
    let mut hi = i64::MAX;
    for c in bs.constraints() {
        // Constraints inherited from enclosing exact loops hold for
        // every entry by construction.
        if established.iter().any(|e| same_constraint(e, c)) {
            continue;
        }
        for ineq in c.as_inequalities() {
            let aff = ineq.aff();
            match aff.last_involved_dim() {
                None => {
                    if aff.constant_term() < 0 {
                        return Some(None);
                    }
                }
                Some(d)
                    if d == dim
                        && aff
                            .coeffs()
                            .iter()
                            .enumerate()
                            .all(|(i, &v)| i == dim || v == 0) =>
                {
                    // a*x + b >= 0
                    let a = aff.coeff(dim);
                    let b = aff.constant_term();
                    if a > 0 {
                        lo = lo.max(div_ceil(-b, a));
                    } else {
                        hi = hi.min(div_floor(b, -a));
                    }
                }
                _ => return None,
            }
        }
    }
    // Unbounded rectangular domains have no closed-form count.
    if lo == i64::MIN || hi == i64::MAX {
        return None;
    }
    if lo > hi {
        return Some(None);
    }
    Some(Some((lo, hi)))
}

/// Like [`rect_interval`] but for an access guard: constraints
/// involving *other* dimensions only make the guard non-rectangular,
/// and a dimension without bound constraints is unclipped.
fn rect_interval_for_dim(bs: &BasicSet, dim: usize) -> Option<Option<(i64, i64)>> {
    let mut lo = i64::MIN;
    let mut hi = i64::MAX;
    for c in bs.constraints() {
        for ineq in c.as_inequalities() {
            let aff = ineq.aff();
            match aff.last_involved_dim() {
                None => {
                    // Constant constraint: either trivially true or the
                    // whole domain is empty.
                    if aff.constant_term() < 0 {
                        return Some(None);
                    }
                }
                Some(d) if d == dim => {
                    let a = aff.coeff(dim);
                    let b = aff.constant_term();
                    // a*x + b >= 0
                    if aff
                        .coeffs()
                        .iter()
                        .enumerate()
                        .any(|(i, &v)| i != dim && v != 0)
                    {
                        return None;
                    }
                    if a > 0 {
                        lo = lo.max(div_ceil(-b, a));
                    } else {
                        hi = hi.min(div_floor(b, -a));
                    }
                }
                Some(d) => {
                    // Involves another dimension: rectangular only if it
                    // does not couple dimensions.
                    if aff.coeffs().iter().filter(|&&v| v != 0).count() > 1 {
                        return None;
                    }
                    let _ = d; // single-dim constraint on another dim:
                               // handled when that dim is queried.
                }
            }
        }
    }
    if lo > hi {
        return Some(None);
    }
    Some(Some((lo, hi)))
}

fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::for_each_access;
    use crate::{elaborate, parse_program, ElaborateOptions};

    fn scop_of(src: &str) -> Scop {
        elaborate(&parse_program(src).unwrap(), &ElaborateOptions::default()).unwrap()
    }

    fn reference_stream(scop: &Scop) -> Vec<(usize, u64, AccessKind)> {
        let mut out = Vec::new();
        for_each_access(scop, |acc| out.push((acc.node.id, acc.address, acc.kind)));
        out
    }

    fn compiled_stream(scop: &Scop) -> Vec<(usize, u64, AccessKind)> {
        let compiled = compile(scop);
        let mut scratch = compiled.new_scratch();
        let mut out = Vec::new();
        let n = compiled.for_each_access(&mut scratch, |node, addr, kind| {
            out.push((node, addr, kind));
        });
        assert_eq!(n as usize, out.len());
        out
    }

    #[track_caller]
    fn assert_equivalent(src: &str) {
        let scop = scop_of(src);
        assert_eq!(compiled_stream(&scop), reference_stream(&scop), "{src}");
    }

    #[test]
    fn streaming_kernel_is_one_run_per_entry() {
        let scop = scop_of("double A[1024]; for (i = 0; i < 1024; i++) A[i] = 0;");
        let compiled = compile(&scop);
        let mut scratch = compiled.new_scratch();
        let mut runs = Vec::new();
        let total = compiled.for_each_run(&mut scratch, |run| runs.push(*run));
        assert_eq!(total, 1024);
        assert_eq!(runs.len(), 1, "a single-access body emits one run");
        assert_eq!(runs[0].count, 1024);
        assert_eq!(runs[0].stride, 8);
        assert_eq!(runs[0].base, scop.arrays()[0].base_address);
    }

    #[test]
    fn stencil_matches_reference() {
        assert_equivalent(
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
        );
    }

    #[test]
    fn triangular_guarded_and_strided_match_reference() {
        assert_equivalent(
            "double A[100][100]; double x[100]; double c[100];\n\
             for (i = 0; i < 100; i++) {\n\
               c[i] = 0;\n\
               for (j = i; j < 100; j++) c[i] = c[i] + A[i][j] * x[j];\n\
             }",
        );
        assert_equivalent("double A[100]; for (i = 0; i < 100; i++) if (i >= 90) A[i] = 0;");
        assert_equivalent("double A[200]; for (i = 0; i < 100; i += 2) A[i] = A[i+1];");
        assert_equivalent("double A[20]; for (i = 0; i < 11; i += 3) A[i] = 0;");
    }

    #[test]
    fn decreasing_and_nested_loops_match_reference() {
        assert_equivalent("double A[10]; for (i = 9; i >= 0; i--) A[i] = 0;");
        assert_equivalent("double A[10]; for (i = 9; i >= 0; i -= 3) A[i] = 0;");
        assert_equivalent("double A[10]; for (i = 9; i > 1; i -= 3) A[i] = 0;");
        assert_equivalent("double A[10]; for (i = 9; i >= 0; i -= 3) if (i < 7) A[i] = 0;");
        assert_equivalent(
            "double A[8][8];\n\
             for (i = 0; i < 4; i++) for (j = 3; j >= 0; j--) A[i][j] = 0;",
        );
    }

    #[test]
    fn empty_domains_emit_nothing() {
        assert_equivalent("double A[10]; for (i = 5; i < 5; i++) A[i] = 0;");
        let scop = scop_of("double A[10]; for (i = 5; i < 5; i++) A[i] = 0;");
        assert_eq!(compile(&scop).static_access_count(), Some(0));
    }

    #[test]
    fn rectangular_guards_are_hoisted() {
        let scop = scop_of("double A[100]; for (i = 0; i < 100; i++) A[i] = 0;");
        let compiled = compile(&scop);
        let CompiledNode::Loop(l) = &compiled.roots()[0] else {
            panic!("root is a loop");
        };
        assert!(l.is_exact());
        let CompiledNode::Access(a) = &l.children()[0] else {
            panic!("child is an access");
        };
        assert!(
            a.guard_is_trivial(),
            "guard-free rectangular accesses hoist entirely"
        );
    }

    #[test]
    fn static_count_matches_walking() {
        for src in [
            "double A[100]; for (i = 0; i < 100; i++) A[i] = 0;",
            "double A[100]; for (i = 0; i < 100; i++) if (i >= 90) A[i] = 0;",
            "double A[20]; for (i = 0; i < 11; i += 3) A[i] = 0;",
            "double A[10]; for (i = 9; i >= 0; i -= 3) if (i < 7) A[i] = 0;",
            "double A[16][16]; for (i = 0; i < 16; i++) for (j = 0; j < 16; j++) A[i][j] = 0;",
        ] {
            let scop = scop_of(src);
            let walked = crate::walk::count_accesses(&scop);
            assert_eq!(compile(&scop).static_access_count(), Some(walked), "{src}");
        }
        // Triangular domains have no closed form: the walking probe decides.
        let tri = scop_of(
            "double A[10][10];\n\
             for (i = 0; i < 10; i++) for (j = i; j < 10; j++) A[i][j] = 0;",
        );
        assert_eq!(compile(&tri).static_access_count(), None);
    }

    #[test]
    fn per_subtree_runs_match_full_walk() {
        let scop = scop_of(
            "double A[200]; double B[200];\n\
             for (i = 1; i < 99; i++) B[i] = A[i-1] + A[i+1];",
        );
        let compiled = compile(&scop);
        let mut scratch = compiled.new_scratch();
        let mut full = Vec::new();
        compiled.for_each_access(&mut scratch, |node, addr, kind| {
            full.push((node, addr, kind));
        });
        let CompiledNode::Loop(l) = &compiled.roots()[0] else {
            panic!("root is a loop");
        };
        let mut replayed = Vec::new();
        let mut count = 0;
        for i in 1..99i64 {
            for child in l.children() {
                count += for_each_run_at(child, &[i], &mut scratch, |run| {
                    for addr in run.addresses() {
                        replayed.push((run.node, addr, run.kind));
                    }
                });
            }
        }
        assert_eq!(count as usize, full.len());
        assert_eq!(replayed, full);
    }
}
