//! Polyhedral program representation for cache simulation.
//!
//! This crate is the substitute for `pet` (the Polyhedral Extraction Tool)
//! used by the paper *Warping Cache Simulation of Polyhedral Programs*
//! (Morelli & Reineke, PLDI 2022).  It provides:
//!
//! * the tree-structured SCoP representation of §3.2 of the paper —
//!   [`LoopNode`]s with iteration domains and [`AccessNode`]s with iteration
//!   domains and affine access functions ([`tree`]),
//! * a small abstract syntax tree for affine loop nests ([`ast`]) together
//!   with an elaborator that turns it into the tree representation,
//!   assigning array base addresses and linearising subscripts
//!   ([`elaborate()`]),
//! * a mini-C frontend ([`parser`]) that parses affine loop nests written in
//!   a C-like syntax (the shape of the PolyBench kernels) into the AST,
//! * parametric kernel **families** ([`param`]): sources may declare
//!   symbolic parameters (`param N, T;`) used in extents, bounds and
//!   strides; a [`ParametricScop`] parses the template once and stamps out
//!   concrete instances per [`ParamBindings`] without re-parsing.
//!
//! # Example
//!
//! ```
//! use scop::parse_scop;
//!
//! // The 1D stencil running example of the paper (Figure 1).
//! let source = r#"
//!     double A[1000];
//!     double B[1000];
//!     for (i = 1; i < 999; i++)
//!         B[i-1] = A[i-1] + A[i];
//! "#;
//! let scop = parse_scop(source).expect("valid SCoP");
//! assert_eq!(scop.arrays().len(), 2);
//! assert_eq!(scop.access_nodes().count(), 3); // A[i-1], A[i], B[i-1]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod canon;
pub mod compile;
pub mod elaborate;
pub mod param;
pub mod parser;
pub mod tree;
pub mod walk;

pub use ast::{ArrayAccess, ArrayDecl, CmpOp, Condition, Expr, Program, Statement};
pub use canon::{canonical_text, canonicalize};
pub use compile::{
    compile, for_each_run_at, AccessRun, CompiledAccess, CompiledLoop, CompiledNode, CompiledScop,
    EntryBounds, WalkScratch,
};
pub use elaborate::{elaborate, ElaborateError, ElaborateOptions};
pub use param::{ParamBindings, ParamError, ParametricScop};
pub use parser::{parse_program, ParseError};
pub use tree::{AccessNode, ArrayInfo, LoopNode, Node, Scop};
pub use walk::{
    count_accesses, exceeds_access_count, for_each_access, for_each_access_at, DynamicAccess,
};

/// Parses a mini-C source text and elaborates it into a [`Scop`], using the
/// default elaboration options (array accesses only, 64-byte alignment).
///
/// # Errors
///
/// Returns an error string if parsing or elaboration fails.
pub fn parse_scop(source: &str) -> Result<Scop, String> {
    let program = parse_program(source).map_err(|e| e.to_string())?;
    elaborate(&program, &ElaborateOptions::default()).map_err(|e| e.to_string())
}
