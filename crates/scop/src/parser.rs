//! A mini-C frontend for affine loop nests.
//!
//! The parser accepts the subset of C that PolyBench-style kernels are
//! written in:
//!
//! * parameter declarations `param N;` / `param N, T;` — named symbolic
//!   constants usable in extents, bounds, strides and subscripts, bound to
//!   values later (see [`crate::param::ParametricScop`]),
//! * array declarations `double A[1000][1200];` (extents may be parameter
//!   expressions, e.g. `double A[N][N];`),
//! * `for` loops with affine bounds and any non-zero constant stride —
//!   increasing (`i++`, `i += k`, `i = i + k` with a `<`/`<=` bound) or
//!   decreasing (`i--`, `i -= k`, `i = i - k` with a `>`/`>=` bound) — or a
//!   declared parameter as the stride (`i += T`),
//! * `if` guards that are conjunctions of affine comparisons,
//! * assignment statements (including the compound assignments `+=`, `-=`,
//!   `*=`, `/=`) whose array subscripts are affine expressions of the loop
//!   iterators.
//!
//! Products and truncating divisions are allowed when they stay affine
//! after parameter substitution: `N / T * T` is accepted (both operands of
//! `/` are parameter expressions), `i * T` is accepted (one symbolic-affine
//! side times a parameter expression), but `i * i` and `i / 2` are
//! rejected as non-affine.
//!
//! Right-hand sides may contain arbitrary arithmetic, floating-point
//! literals and function calls; the parser only extracts the array (and
//! scalar) references in program order, which is all that cache simulation
//! needs.  Preprocessor lines and comments are skipped.

use crate::ast::{ArrayAccess, ArrayDecl, CmpOp, Condition, Expr, Program, Statement};
use std::fmt;

/// A parse error with a human-readable message and source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line on which the problem was detected.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a mini-C source text into an affine [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] when the source is outside the supported subset
/// (non-affine subscripts, unsupported loop forms, unbalanced brackets, ...).
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        params: Vec::new(),
    };
    parser.program()
}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Float,
    Punct(&'static str),
}

#[derive(Clone, Debug)]
struct Token {
    tok: Tok,
    line: usize,
}

const PUNCTS: &[&str] = &[
    "<=", ">=", "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "(", ")", "[", "]",
    "{", "}", ";", ",", "=", "+", "-", "*", "/", "<", ">", "%", "!", "?", ":", ".", "&",
];

fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    let bytes: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '#' || (c == '/' && bytes.get(i + 1) == Some(&'/')) {
            // Line comments: `#` (preprocessor-style) and `//`.
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
            i += 2;
            while i < bytes.len() && !(bytes[i] == '*' && bytes.get(i + 1) == Some(&'/')) {
                if bytes[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 2;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                tok: Tok::Ident(bytes[start..i].iter().collect()),
                line,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || bytes[i] == 'f'
                    || bytes[i] == 'F'
                    || ((bytes[i] == '+' || bytes[i] == '-')
                        && matches!(bytes.get(i - 1), Some('e') | Some('E'))))
            {
                if bytes[i] != '0'
                    && bytes[i] != '1'
                    && bytes[i] != '2'
                    && bytes[i] != '3'
                    && bytes[i] != '4'
                    && bytes[i] != '5'
                    && bytes[i] != '6'
                    && bytes[i] != '7'
                    && bytes[i] != '8'
                    && bytes[i] != '9'
                {
                    is_float = true;
                }
                i += 1;
            }
            let text: String = bytes[start..i].iter().collect();
            if is_float {
                tokens.push(Token {
                    tok: Tok::Float,
                    line,
                });
            } else {
                let value = text.parse::<i64>().map_err(|_| ParseError {
                    message: format!("invalid integer literal `{text}`"),
                    line,
                })?;
                tokens.push(Token {
                    tok: Tok::Int(value),
                    line,
                });
            }
        } else {
            let rest: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
            let punct = PUNCTS
                .iter()
                .find(|p| rest.starts_with(**p))
                .ok_or_else(|| ParseError {
                    message: format!("unexpected character `{c}`"),
                    line,
                })?;
            tokens.push(Token {
                tok: Tok::Punct(punct),
                line,
            });
            i += punct.len();
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Parameters declared so far (`param N;`), in declaration order.
    params: Vec<String>,
}

impl Parser {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self
                .tokens
                .get(self.pos.min(self.tokens.len().saturating_sub(1)))
                .map_or(0, |t| t.line),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, offset: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + offset).map(|t| &t.tok)
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn is_type_name(name: &str) -> bool {
        matches!(
            name,
            "double" | "float" | "int" | "long" | "char" | "unsigned" | "short"
        )
    }

    fn elem_size(name: &str) -> u64 {
        match name {
            "double" | "long" => 8,
            "float" | "int" | "unsigned" => 4,
            "short" => 2,
            _ => 1,
        }
    }

    /// Whether every name in `expr` is a declared parameter, i.e. the
    /// expression folds to a constant once parameters are bound.
    fn is_param_expr(&self, expr: &Expr) -> bool {
        expr.iterators()
            .iter()
            .all(|name| self.params.iter().any(|p| p == name))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        while self.peek().is_some() {
            if let Some(Tok::Ident(name)) = self.peek() {
                if name == "param" {
                    self.param_declaration(&mut program)?;
                    continue;
                }
                if Self::is_type_name(name) {
                    self.declaration(&mut program)?;
                    continue;
                }
            }
            let stmt = self.statement()?;
            program.stmts.push(stmt);
        }
        Ok(program)
    }

    fn param_declaration(&mut self, program: &mut Program) -> Result<(), ParseError> {
        self.expect_ident()?; // "param"
        loop {
            let name = self.expect_ident()?;
            if Self::is_type_name(&name) || name == "param" {
                return Err(self.error(format!("`{name}` cannot be used as a parameter name")));
            }
            if self.params.contains(&name) {
                return Err(self.error(format!("parameter `{name}` declared twice")));
            }
            self.params.push(name.clone());
            program.params.push(name);
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(";")?;
            break;
        }
        Ok(())
    }

    fn declaration(&mut self, program: &mut Program) -> Result<(), ParseError> {
        let type_name = self.expect_ident()?;
        let elem_size = Self::elem_size(&type_name);
        loop {
            let name = self.expect_ident()?;
            let mut extents = Vec::new();
            while self.eat_punct("[") {
                let extent = self.affine_expr()?;
                match extent.eval_const() {
                    Some(n) if n > 0 => extents.push(Expr::Const(n)),
                    Some(_) => {
                        return Err(self.error(format!(
                            "expected a positive array extent, found `{extent}`"
                        )))
                    }
                    None => {
                        if !self.is_param_expr(&extent) {
                            return Err(self.error(format!(
                                "array extent `{extent}` must be a constant or parameter \
                                 expression"
                            )));
                        }
                        extents.push(extent);
                    }
                }
                self.expect_punct("]")?;
            }
            program.arrays.push(ArrayDecl {
                name,
                extents,
                elem_size,
            });
            if self.eat_punct(",") {
                continue;
            }
            self.expect_punct(";")?;
            break;
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        match self.peek() {
            Some(Tok::Ident(name)) if name == "for" => self.for_statement(),
            Some(Tok::Ident(name)) if name == "if" => self.if_statement(),
            Some(Tok::Punct("{")) => {
                // An anonymous block: wrap it in an always-true guard.
                let body = self.block()?;
                Ok(Statement::If {
                    conditions: Vec::new(),
                    body,
                })
            }
            _ => self.assignment(),
        }
    }

    fn block(&mut self) -> Result<Vec<Statement>, ParseError> {
        self.expect_punct("{")?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::Punct("}")) {
            if self.peek().is_none() {
                return Err(self.error("unterminated block"));
            }
            body.push(self.statement()?);
        }
        self.expect_punct("}")?;
        Ok(body)
    }

    fn body(&mut self) -> Result<Vec<Statement>, ParseError> {
        if self.peek() == Some(&Tok::Punct("{")) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn for_statement(&mut self) -> Result<Statement, ParseError> {
        self.expect_ident()?; // "for"
        self.expect_punct("(")?;
        // Optional type of the induction variable: `int i = ...`.
        if let Some(Tok::Ident(name)) = self.peek() {
            if Self::is_type_name(name) {
                self.advance();
            }
        }
        let iter = self.expect_ident()?;
        if self.params.contains(&iter) {
            return Err(self.error(format!(
                "loop iterator `{iter}` shadows the parameter of the same name"
            )));
        }
        self.expect_punct("=")?;
        let init = self.affine_expr()?;
        self.expect_punct(";")?;
        let cond_iter = self.expect_ident()?;
        if cond_iter != iter {
            return Err(self.error(format!(
                "loop condition must test the loop iterator `{iter}`, found `{cond_iter}`"
            )));
        }
        // `<`/`<=` bound increasing loops from above; `>`/`>=` bound
        // decreasing loops (`i--`, `i -= k`) from below.
        let (decreasing, inclusive) = if self.eat_punct("<=") {
            (false, true)
        } else if self.eat_punct("<") {
            (false, false)
        } else if self.eat_punct(">=") {
            (true, true)
        } else if self.eat_punct(">") {
            (true, false)
        } else {
            return Err(self.error("only `<`, `<=`, `>` and `>=` loop conditions are supported"));
        };
        let bound = self.affine_expr()?;
        self.expect_punct(";")?;
        let inc_iter = self.expect_ident()?;
        if inc_iter != iter {
            return Err(self.error("loop increment must update the loop iterator"));
        }
        let stride = self.loop_stride(&iter, decreasing)?;
        self.expect_punct(")")?;
        let body = self.body()?;
        // Normalise to [lower, upper) bounds; a decreasing loop starts at
        // its initial value `upper - 1` and walks downwards.
        let (lower, upper) = if decreasing {
            let lower = if inclusive { bound } else { bound.offset(1) };
            (lower, init.offset(1))
        } else {
            let upper = if inclusive { bound.offset(1) } else { bound };
            (init, upper)
        };
        Ok(Statement::For {
            iter,
            lower,
            upper,
            stride,
            body,
        })
    }

    /// Parses the increment of a `for` loop after its iterator name:
    /// `++`/`--` (stride ±1), `+= k`/`-= k`, or `= i ± k` / `= k + i` where
    /// `k` is a positive integer constant or a declared parameter.  The
    /// direction of a constant stride must agree with the loop condition
    /// (`decreasing` is true for `>`/`>=` bounds); a parametric stride's
    /// direction is validated after substitution.
    fn loop_stride(&mut self, iter: &str, decreasing: bool) -> Result<Expr, ParseError> {
        let stride = if self.eat_punct("++") {
            Expr::Const(1)
        } else if self.eat_punct("--") {
            Expr::Const(-1)
        } else if self.eat_punct("+=") {
            self.stride_amount(false)?
        } else if self.eat_punct("-=") {
            self.stride_amount(true)?
        } else if self.eat_punct("=") {
            // `i = i + k`, `i = i - k` or `i = k + i`.
            match self.advance() {
                Some(Tok::Ident(name)) if name == iter => {
                    if self.eat_punct("+") {
                        self.stride_amount(false)?
                    } else if self.eat_punct("-") {
                        self.stride_amount(true)?
                    } else {
                        return Err(self.error(format!(
                            "loop increment must have the form `{iter} = {iter} + k`"
                        )));
                    }
                }
                Some(Tok::Int(k)) => {
                    self.expect_punct("+")?;
                    let rhs = self.expect_ident()?;
                    if rhs != iter {
                        return Err(self.error(format!(
                            "loop increment must add a constant to the iterator `{iter}`"
                        )));
                    }
                    Expr::Const(k)
                }
                other => {
                    return Err(self.error(format!(
                        "loop increment must have the form `{iter} = {iter} + k`, found {other:?}"
                    )))
                }
            }
        } else {
            return Err(self.error(
                "only `i++`, `i--`, `i += k`, `i -= k` and `i = i + k` loop increments are \
                 supported",
            ));
        };
        let Some(constant) = stride.eval_const() else {
            // A parametric stride: its magnitude (and hence direction
            // validity) is only known after substitution.
            return Ok(stride);
        };
        if constant == 0 {
            return Err(self.error("loop stride must be a non-zero integer constant"));
        }
        if decreasing && constant > 0 {
            return Err(self.error(format!(
                "a loop bounded by `>`/`>=` must decrease its iterator, got stride {constant}"
            )));
        }
        if !decreasing && constant < 0 {
            return Err(self.error(format!(
                "a loop bounded by `<`/`<=` must increase its iterator, got stride {constant} \
                 (use `>`/`>=` for decreasing loops)"
            )));
        }
        Ok(stride)
    }

    /// Parses the amount of a `+=`/`-=`-style stride: a (possibly negated)
    /// positive integer constant, or a declared parameter name.  `negate`
    /// is true for the `-=` / `i = i - k` forms.
    fn stride_amount(&mut self, negate: bool) -> Result<Expr, ParseError> {
        if let Some(Tok::Ident(name)) = self.peek() {
            if self.params.iter().any(|p| p == name) {
                let name = name.clone();
                self.advance();
                let amount = Expr::Iter(name);
                return Ok(if negate { amount.scale(-1) } else { amount });
            }
        }
        let constant = self.stride_constant()?;
        Ok(Expr::Const(if negate { -constant } else { constant }))
    }

    /// Parses the (possibly negated) integer constant of a loop stride.
    fn stride_constant(&mut self) -> Result<i64, ParseError> {
        let negative = self.eat_punct("-");
        match self.advance() {
            Some(Tok::Int(k)) => Ok(if negative { -k } else { k }),
            other => Err(self.error(format!(
                "loop stride must be a positive integer constant or parameter, found {other:?}"
            ))),
        }
    }

    fn if_statement(&mut self) -> Result<Statement, ParseError> {
        self.expect_ident()?; // "if"
        self.expect_punct("(")?;
        let mut conditions = vec![self.condition()?];
        while self.eat_punct("&&") {
            conditions.push(self.condition()?);
        }
        self.expect_punct(")")?;
        let body = self.body()?;
        Ok(Statement::If { conditions, body })
    }

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let lhs = self.affine_expr()?;
        let op = if self.eat_punct("<=") {
            CmpOp::Le
        } else if self.eat_punct(">=") {
            CmpOp::Ge
        } else if self.eat_punct("==") {
            CmpOp::Eq
        } else if self.eat_punct("<") {
            CmpOp::Lt
        } else if self.eat_punct(">") {
            CmpOp::Gt
        } else {
            return Err(self.error("expected a comparison operator"));
        };
        let rhs = self.affine_expr()?;
        Ok(Condition { lhs, op, rhs })
    }

    fn assignment(&mut self) -> Result<Statement, ParseError> {
        let write = self.array_reference()?;
        let compound = match self.peek() {
            Some(Tok::Punct("=")) => {
                self.advance();
                false
            }
            Some(Tok::Punct("+="))
            | Some(Tok::Punct("-="))
            | Some(Tok::Punct("*="))
            | Some(Tok::Punct("/=")) => {
                self.advance();
                true
            }
            other => {
                return Err(self.error(format!("expected an assignment operator, found {other:?}")))
            }
        };
        let mut reads = Vec::new();
        if compound {
            reads.push(write.clone());
        }
        self.scan_rhs(&mut reads)?;
        self.expect_punct(";")?;
        Ok(Statement::Assign { write, reads })
    }

    /// Parses `ident` optionally followed by affine subscripts.
    fn array_reference(&mut self) -> Result<ArrayAccess, ParseError> {
        let array = self.expect_ident()?;
        let mut indices = Vec::new();
        while self.peek() == Some(&Tok::Punct("[")) {
            self.advance();
            indices.push(self.affine_expr()?);
            self.expect_punct("]")?;
        }
        Ok(ArrayAccess { array, indices })
    }

    /// Tolerant scan of a right-hand side up to (but not including) the
    /// terminating `;`, extracting array and scalar references in order.
    fn scan_rhs(&mut self, reads: &mut Vec<ArrayAccess>) -> Result<(), ParseError> {
        let mut paren_depth = 0usize;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated statement")),
                Some(Tok::Punct(";")) if paren_depth == 0 => return Ok(()),
                Some(Tok::Punct("(")) => {
                    paren_depth += 1;
                    self.advance();
                }
                Some(Tok::Punct(")")) => {
                    if paren_depth == 0 {
                        return Err(self.error("unbalanced `)` in expression"));
                    }
                    paren_depth -= 1;
                    self.advance();
                }
                Some(Tok::Ident(_)) => {
                    // A function call: record nothing for the callee, its
                    // arguments are scanned as part of the surrounding loop.
                    if self.peek_at(1) == Some(&Tok::Punct("(")) {
                        self.advance();
                        continue;
                    }
                    let reference = self.array_reference()?;
                    reads.push(reference);
                }
                Some(_) => {
                    self.advance();
                }
            }
        }
    }

    /// Strict affine expression parser used for subscripts, bounds and guard
    /// conditions.
    fn affine_expr(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.affine_term()?;
        loop {
            if self.eat_punct("+") {
                expr = expr.add(self.affine_term()?);
            } else if self.eat_punct("-") {
                expr = expr.sub(self.affine_term()?);
            } else {
                return Ok(expr);
            }
        }
    }

    fn affine_term(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.affine_factor()?;
        loop {
            if self.eat_punct("*") {
                let rhs = self.affine_factor()?;
                expr = self.affine_product(expr, rhs)?;
            } else if self.eat_punct("/") {
                let rhs = self.affine_factor()?;
                expr = self.affine_quotient(expr, rhs)?;
            } else {
                return Ok(expr);
            }
        }
    }

    /// Builds `lhs * rhs`, folding constants and rejecting products that
    /// cannot become affine: at least one side must be a constant or a
    /// parameter expression (which substitution turns into a constant).
    fn affine_product(&mut self, lhs: Expr, rhs: Expr) -> Result<Expr, ParseError> {
        if let (Some(a), Some(b)) = (lhs.eval_const(), rhs.eval_const()) {
            return Ok(Expr::Const(a.wrapping_mul(b)));
        }
        if let Some(k) = lhs.eval_const() {
            return Ok(rhs.scale(k));
        }
        if let Some(k) = rhs.eval_const() {
            return Ok(lhs.scale(k));
        }
        if self.is_param_expr(&lhs) || self.is_param_expr(&rhs) {
            return Ok(lhs.prod(rhs));
        }
        Err(self.error("non-affine product of two iterators"))
    }

    /// Builds `lhs / rhs` (truncating), folding constants.  Both operands
    /// must be constants or parameter expressions — a quotient involving a
    /// loop iterator is non-affine even after substitution.
    fn affine_quotient(&mut self, lhs: Expr, rhs: Expr) -> Result<Expr, ParseError> {
        if let Some(0) = rhs.eval_const() {
            return Err(self.error("division by zero"));
        }
        if let (Some(a), Some(b)) = (lhs.eval_const(), rhs.eval_const()) {
            return Ok(Expr::Const(a / b));
        }
        if self.is_param_expr(&lhs) && self.is_param_expr(&rhs) {
            return Ok(lhs.div(rhs));
        }
        Err(self
            .error("non-affine division: `/` operands must be constants or parameter expressions"))
    }

    fn affine_factor(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Some(Tok::Int(n)) => Ok(Expr::Const(n)),
            Some(Tok::Ident(name)) => Ok(Expr::Iter(name)),
            Some(Tok::Punct("-")) => Ok(Expr::Const(0).sub(self.affine_factor()?)),
            Some(Tok::Punct("(")) => {
                let e = self.affine_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.error(format!("expected an affine expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_running_example() {
        let src = r#"
            double A[1000];
            double B[1000];
            for (i = 1; i < 999; i++)
                B[i-1] = A[i-1] + A[i];
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.arrays.len(), 2);
        assert_eq!(p.stmts.len(), 1);
        let Statement::For { iter, body, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(iter, "i");
        let Statement::Assign { write, reads } = &body[0] else {
            panic!()
        };
        assert_eq!(write.array, "B");
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].array, "A");
    }

    #[test]
    fn parses_triangular_matvec() {
        // The upper-triangular matrix-vector product of Figure 4.
        let src = r#"
            double A[100][100];
            double x[100];
            double c[100];
            for (i = 0; i < 100; i++) {
                c[i] = 0;
                for (j = i; j < 100; j++) {
                    c[i] = c[i] + A[i][j] * x[j];
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let Statement::For { body, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(body.len(), 2);
        let Statement::For { lower, .. } = &body[1] else {
            panic!()
        };
        assert_eq!(lower, &Expr::Iter("i".into()));
        let Statement::For { body: inner, .. } = &body[1] else {
            panic!()
        };
        let Statement::Assign { reads, .. } = &inner[0] else {
            panic!()
        };
        // Reads: c[i], A[i][j], x[j] — in program order.
        assert_eq!(reads.len(), 3);
        assert_eq!(reads[1].array, "A");
        assert_eq!(reads[1].indices.len(), 2);
    }

    #[test]
    fn compound_assignment_reads_lhs_first() {
        let src = r#"
            double C[10][10];
            for (i = 0; i < 10; i++)
                for (j = 0; j < 10; j++)
                    C[i][j] *= 2.5;
        "#;
        let p = parse_program(src).unwrap();
        let Statement::For { body, .. } = &p.stmts[0] else {
            panic!()
        };
        let Statement::For { body, .. } = &body[0] else {
            panic!()
        };
        let Statement::Assign { write, reads } = &body[0] else {
            panic!()
        };
        assert_eq!(write.array, "C");
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].array, "C");
    }

    #[test]
    fn function_calls_and_floats_are_tolerated() {
        let src = r#"
            double A[10];
            double B[10];
            for (i = 0; i < 10; i++)
                B[i] = sqrt(A[i]) * 1.5e-3 + alpha;
        "#;
        let p = parse_program(src).unwrap();
        let Statement::For { body, .. } = &p.stmts[0] else {
            panic!()
        };
        let Statement::Assign { reads, .. } = &body[0] else {
            panic!()
        };
        // A[i] and the scalar alpha; `sqrt` is recognised as a call.
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].array, "A");
        assert_eq!(reads[1].array, "alpha");
        assert!(reads[1].indices.is_empty());
    }

    #[test]
    fn if_guards_and_le_bounds() {
        let src = r#"
            double A[20];
            for (i = 0; i <= 18; i++)
                if (i >= 2 && i < 10)
                    A[i] = A[i-2];
        "#;
        let p = parse_program(src).unwrap();
        let Statement::For { upper, body, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(upper, &Expr::Const(18).offset(1));
        let Statement::If { conditions, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(conditions.len(), 2);
    }

    #[test]
    fn rejects_unsupported_constructs() {
        assert!(parse_program("for (i = 0; i < 10; i--) ;").is_err());
        assert!(parse_program("double A[10]; for (i = 0; i != 10; i++) A[i] = 0;").is_err());
        assert!(
            parse_program("double A[10]; for (i = 0; i < 10; i++) A[i*i] = 0;").is_err(),
            "non-affine subscripts are rejected"
        );
        assert!(parse_program("double A[-3];").is_err());
    }

    #[test]
    fn parses_positive_strides() {
        for (increment, expected) in [
            ("i++", 1),
            ("i += 1", 1),
            ("i += 2", 2),
            ("i += 7", 7),
            ("i = i + 3", 3),
            ("i = 4 + i", 4),
        ] {
            let src = format!("double A[100]; for (i = 0; i < 100; {increment}) A[i] = 0;");
            let p = parse_program(&src).unwrap_or_else(|e| panic!("`{increment}`: {e}"));
            let Statement::For { stride, .. } = &p.stmts[0] else {
                panic!()
            };
            assert_eq!(stride.eval_const(), Some(expected), "`{increment}`");
        }
    }

    #[test]
    fn rejects_non_positive_and_malformed_strides() {
        for increment in ["i += 0", "i += -1", "i = i + 0", "i = i - 2", "i -= 1"] {
            let src = format!("double A[100]; for (i = 0; i < 100; {increment}) A[i] = 0;");
            let err = parse_program(&src).expect_err(increment);
            assert!(
                err.message.contains("stride") || err.message.contains("increment"),
                "`{increment}` should mention the stride: {}",
                err.message
            );
        }
        // A non-constant stride is rejected too.
        assert!(parse_program("double A[100]; for (i = 0; i < 100; i += n) A[i] = 0;").is_err());
        // ... and so is an increment of a different variable.
        assert!(parse_program("double A[100]; for (i = 0; i < 100; i = j + 1) A[i] = 0;").is_err());
    }

    #[test]
    fn parses_decreasing_loops() {
        for (increment, expected) in [
            ("i--", -1),
            ("i -= 1", -1),
            ("i -= 3", -3),
            ("i = i - 2", -2),
        ] {
            let src = format!("double A[100]; for (i = 99; i >= 0; {increment}) A[i] = 0;");
            let p = parse_program(&src).unwrap_or_else(|e| panic!("`{increment}`: {e}"));
            let Statement::For {
                lower,
                upper,
                stride,
                ..
            } = &p.stmts[0]
            else {
                panic!()
            };
            assert_eq!(stride.eval_const(), Some(expected), "`{increment}`");
            assert_eq!(lower, &Expr::Const(0), "`{increment}`");
            assert_eq!(upper, &Expr::Const(99).offset(1), "`{increment}`");
        }
        // A strict `>` bound excludes the bound itself.
        let p = parse_program("double A[100]; for (i = 99; i > 5; i--) A[i] = 0;").unwrap();
        let Statement::For { lower, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(lower, &Expr::Const(5).offset(1));
    }

    #[test]
    fn rejects_direction_mismatches() {
        // An increasing condition with a decreasing increment (and vice
        // versa) would never terminate or never run as written.
        for src in [
            "double A[100]; for (i = 0; i < 100; i--) A[i] = 0;",
            "double A[100]; for (i = 0; i < 100; i -= 2) A[i] = 0;",
            "double A[100]; for (i = 99; i >= 0; i++) A[i] = 0;",
            "double A[100]; for (i = 99; i > 0; i += 2) A[i] = 0;",
        ] {
            let err = parse_program(src).expect_err(src);
            assert!(
                err.message.contains("iterator") || err.message.contains("stride"),
                "{src}: {}",
                err.message
            );
        }
    }

    #[test]
    fn parses_parameter_declarations_and_uses() {
        let src = r#"
            param N, T;
            double A[N][N];
            for (ii = 0; ii < N / T * T; ii += T)
                for (i = ii; i < ii + T; i++)
                    if (i < N)
                        A[i][i] = 0;
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.params, vec!["N", "T"]);
        assert_eq!(p.arrays[0].extents, vec![Expr::iter("N"), Expr::iter("N")]);
        let Statement::For { upper, stride, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(
            upper,
            &Expr::iter("N").div(Expr::iter("T")).prod(Expr::iter("T"))
        );
        assert_eq!(stride, &Expr::iter("T"), "parametric stride");
        // A decreasing parametric stride records the negation structurally.
        let p = parse_program("param T; double A[100]; for (i = 99; i >= 0; i -= T) A[i] = 0;")
            .unwrap();
        let Statement::For { stride, .. } = &p.stmts[0] else {
            panic!()
        };
        assert_eq!(stride, &Expr::iter("T").scale(-1));
    }

    #[test]
    fn rejects_malformed_parameter_programs() {
        // An undeclared name in a stride is not a parameter.
        assert!(parse_program("double A[100]; for (i = 0; i < 100; i += n) A[i] = 0;").is_err());
        // Duplicate parameter declarations.
        let err = parse_program("param N; param N;").expect_err("duplicate param");
        assert!(err.message.contains("declared twice"), "{}", err.message);
        // A loop iterator may not shadow a parameter.
        let err = parse_program("param N; double A[8]; for (N = 0; N < 8; N++) A[N] = 0;")
            .expect_err("shadowing iterator");
        assert!(err.message.contains("shadows"), "{}", err.message);
        // Extents must be constant or parametric, not iterator-dependent.
        let err = parse_program("double A[n]; for (i = 0; i < 4; i++) A[i] = 0;")
            .expect_err("free extent");
        assert!(err.message.contains("extent"), "{}", err.message);
        // Divisions by an iterator (or of an iterator) stay rejected.
        assert!(parse_program("double A[8]; for (i = 0; i < 8; i++) A[i / 2] = 0;").is_err());
        // Literal division by zero is caught eagerly.
        let err = parse_program("param N; double A[N / 0];").expect_err("div by zero");
        assert!(err.message.contains("division by zero"), "{}", err.message);
        // `param` itself cannot be a type-like name.
        assert!(parse_program("param double;").is_err());
    }

    #[test]
    fn preprocessor_and_comments_are_skipped() {
        let src = r#"
            #include <stdio.h>
            /* matrices */
            double A[4]; // data
            for (i = 0; i < 4; i++)
                A[i] = 0; // init
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.arrays.len(), 1);
        assert_eq!(p.stmts.len(), 1);
    }
}
