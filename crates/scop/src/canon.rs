//! Canonicalisation of affine loop-nest ASTs.
//!
//! Two mini-C kernels that differ only in spelling — iterator or array
//! names, the order/association of terms inside an affine expression,
//! `i < N` written as `i <= N - 1`, the order of conjuncts in a guard —
//! simulate identically: elaboration erases names and normalises bounds
//! into polyhedra.  The serving layer wants to recognise such requests
//! *before* paying for elaboration and simulation, so it can key a report
//! cache on the kernel's meaning rather than its spelling.
//!
//! [`canonicalize`] rewrites a [`Program`] into a canonical representative
//! of its α-equivalence class:
//!
//! * **α-renaming** — arrays become `a0, a1, …` in declaration order
//!   (declaration order is semantic: it determines the base addresses the
//!   elaborator assigns), parameters become `p0, p1, …` in declaration
//!   order (so a renamed parametric family shares its **family hash**),
//!   and loop iterators become `i0, i1, …` in binding (pre-order
//!   traversal) order;
//! * **normalised affine expressions** — every expression is flattened
//!   into a sum of `coefficient * iterator` terms plus a constant, with
//!   zero coefficients dropped and terms ordered by iterator binding
//!   index (free names, which would fail elaboration anyway, sort after
//!   all bound iterators by name);
//! * **normalised bounds/guards** — every comparison is rewritten into
//!   `expr >= 0` form (`<`/`<=`/`>` become `>=` with the constant folded
//!   in; equalities are sign-normalised), and the conjuncts of an `if`
//!   are sorted and deduplicated (conjunction is order-independent).
//!
//! Programs with the same canonical form elaborate to identical SCoPs and
//! therefore produce bit-identical simulation reports.  The converse does
//! not hold (canonicalisation is syntactic, not a polyhedral equivalence
//! check) — which is exactly what a cache key needs: it may split
//! semantically equal programs, but it must never merge distinct ones.

use crate::ast::{ArrayAccess, ArrayDecl, CmpOp, Condition, Expr, Program, Statement};
use std::collections::BTreeMap;

/// A term key of the canonical linear form: bound iterators order by
/// binding index, free names (canonicalised parameters included) after
/// them by name, opaque non-linear atoms (`Div`/`Prod` subexpressions)
/// last by their canonical rendering.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum TermKey {
    Bound(usize),
    Free(String),
    Atom(String),
}

/// An expression flattened to `sum(coeff * term) + constant`, where a term
/// is an iterator, a free name, or an opaque atom.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Linear {
    terms: BTreeMap<TermKey, i64>,
    constant: i64,
    /// Atom key → the canonicalised subexpression it stands for, so
    /// [`Linear::to_expr`] can reconstruct it.
    atoms: BTreeMap<String, Expr>,
}

impl Linear {
    fn constant(c: i64) -> Self {
        Linear {
            terms: BTreeMap::new(),
            constant: c,
            atoms: BTreeMap::new(),
        }
    }

    /// A linear form holding one opaque non-linear subexpression (already
    /// canonicalised) with coefficient 1.
    fn atom(expr: Expr) -> Self {
        let key = format!("{expr:?}");
        let mut terms = BTreeMap::new();
        terms.insert(TermKey::Atom(key.clone()), 1);
        let mut atoms = BTreeMap::new();
        atoms.insert(key, expr);
        Linear {
            terms,
            constant: 0,
            atoms,
        }
    }

    /// `Some(c)` iff the form is the constant `c` (no terms).
    fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.constant)
    }

    fn add(mut self, other: &Linear) -> Self {
        for (k, v) in &other.terms {
            *self.terms.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.atoms {
            self.atoms.entry(k.clone()).or_insert_with(|| v.clone());
        }
        self.constant += other.constant;
        self.prune()
    }

    fn scale(mut self, k: i64) -> Self {
        for v in self.terms.values_mut() {
            *v *= k;
        }
        self.constant *= k;
        self.prune()
    }

    fn negate(self) -> Self {
        self.scale(-1)
    }

    fn prune(mut self) -> Self {
        self.terms.retain(|_, v| *v != 0);
        self
    }

    /// The sign of the first non-zero coefficient (or of the constant for
    /// constant expressions); used to sign-normalise equalities.
    fn leading_sign(&self) -> i64 {
        self.terms
            .values()
            .next()
            .copied()
            .unwrap_or(self.constant)
            .signum()
    }

    /// Rebuilds a canonical [`Expr`]: terms in key order, left-associated
    /// sums, trailing constant only when non-zero (or when there are no
    /// terms at all).
    fn to_expr(&self, names: &dyn Fn(&TermKey) -> String) -> Expr {
        let mut expr: Option<Expr> = None;
        for (key, &coeff) in &self.terms {
            let var = match key {
                TermKey::Atom(rendering) => self
                    .atoms
                    .get(rendering)
                    .cloned()
                    .expect("every atom term has its expression recorded"),
                other => Expr::Iter(names(other)),
            };
            let term = if coeff == 1 { var } else { var.scale(coeff) };
            expr = Some(match expr {
                None => term,
                Some(prev) => prev.add(term),
            });
        }
        match expr {
            None => Expr::Const(self.constant),
            Some(e) if self.constant != 0 => e.add(Expr::Const(self.constant)),
            Some(e) => e,
        }
    }
}

/// Renaming state threaded through the rewrite.
struct Renamer {
    /// Declared array name → canonical name (`a0`, `a1`, …).
    arrays: BTreeMap<String, String>,
    /// Declared parameter name → canonical name (`p0`, `p1`, …).
    params: BTreeMap<String, String>,
    /// Stack of iterator bindings: original name → binding index.
    scope: Vec<(String, usize)>,
    /// Next fresh iterator binding index.
    next_iter: usize,
}

impl Renamer {
    fn lookup(&self, name: &str) -> TermKey {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, idx)| TermKey::Bound(*idx))
            .unwrap_or_else(|| {
                // Parameters canonicalise by declaration index; genuinely
                // free names (which fail elaboration) keep their spelling.
                let canonical = self.params.get(name).cloned();
                TermKey::Free(canonical.unwrap_or_else(|| name.to_string()))
            })
    }

    fn term_name(&self, key: &TermKey) -> String {
        match key {
            TermKey::Bound(idx) => format!("i{idx}"),
            TermKey::Free(name) => name.clone(),
            // Atoms are reconstructed from their recorded expression in
            // `Linear::to_expr`; the rendering is only a sort key.
            TermKey::Atom(rendering) => rendering.clone(),
        }
    }

    fn array_name(&self, name: &str) -> String {
        self.arrays.get(name).cloned().unwrap_or_else(|| {
            // Undeclared arrays fail elaboration; keep the spelling so the
            // canonical form still distinguishes such (broken) programs.
            name.to_string()
        })
    }
}

fn linearize(expr: &Expr, renamer: &Renamer) -> Linear {
    match expr {
        Expr::Const(c) => Linear::constant(*c),
        Expr::Iter(name) => {
            let mut terms = BTreeMap::new();
            terms.insert(renamer.lookup(name), 1);
            Linear {
                terms,
                constant: 0,
                atoms: BTreeMap::new(),
            }
        }
        Expr::Add(a, b) => linearize(a, renamer).add(&linearize(b, renamer)),
        Expr::Sub(a, b) => linearize(a, renamer).add(&linearize(b, renamer).negate()),
        Expr::Mul(k, e) => linearize(e, renamer).scale(*k),
        Expr::Div(a, b) => {
            let la = linearize(a, renamer);
            let lb = linearize(b, renamer);
            match (la.as_const(), lb.as_const()) {
                // Constant quotients fold (C truncation, never by zero).
                (Some(x), Some(y)) if y != 0 => Linear::constant(x / y),
                // Anything else stays an opaque atom over the *canonical*
                // operands, so `N/T` and `(2*N - N)/T` share an atom key.
                _ => Linear::atom(Expr::Div(
                    Box::new(la.to_expr(&|key| renamer.term_name(key))),
                    Box::new(lb.to_expr(&|key| renamer.term_name(key))),
                )),
            }
        }
        Expr::Prod(a, b) => {
            let la = linearize(a, renamer);
            let lb = linearize(b, renamer);
            if let Some(k) = la.as_const() {
                lb.scale(k)
            } else if let Some(k) = lb.as_const() {
                la.scale(k)
            } else {
                Linear::atom(Expr::Prod(
                    Box::new(la.to_expr(&|key| renamer.term_name(key))),
                    Box::new(lb.to_expr(&|key| renamer.term_name(key))),
                ))
            }
        }
    }
}

fn canon_expr(expr: &Expr, renamer: &Renamer) -> Expr {
    let linear = linearize(expr, renamer);
    linear.to_expr(&|key| renamer.term_name(key))
}

/// Rewrites `lhs op rhs` into canonical `expr >= 0` (or sign-normalised
/// `expr == 0`) form with the constant folded in.
fn canon_condition(condition: &Condition, renamer: &Renamer) -> Condition {
    let lhs = linearize(&condition.lhs, renamer);
    let rhs = linearize(&condition.rhs, renamer);
    let (linear, op) = match condition.op {
        // lhs < rhs  ⇔  rhs - lhs - 1 >= 0
        CmpOp::Lt => (rhs.add(&lhs.negate()).add(&Linear::constant(-1)), CmpOp::Ge),
        // lhs <= rhs  ⇔  rhs - lhs >= 0
        CmpOp::Le => (rhs.add(&lhs.negate()), CmpOp::Ge),
        // lhs > rhs  ⇔  lhs - rhs - 1 >= 0
        CmpOp::Gt => (lhs.add(&rhs.negate()).add(&Linear::constant(-1)), CmpOp::Ge),
        // lhs >= rhs  ⇔  lhs - rhs >= 0
        CmpOp::Ge => (lhs.add(&rhs.negate()), CmpOp::Ge),
        // lhs == rhs  ⇔  ±(lhs - rhs) == 0, sign-normalised.
        CmpOp::Eq => {
            let diff = lhs.add(&rhs.negate());
            let diff = if diff.leading_sign() < 0 {
                diff.negate()
            } else {
                diff
            };
            (diff, CmpOp::Eq)
        }
    };
    Condition {
        lhs: linear.to_expr(&|key| renamer.term_name(key)),
        op,
        rhs: Expr::Const(0),
    }
}

fn canon_access(access: &ArrayAccess, renamer: &Renamer) -> ArrayAccess {
    ArrayAccess {
        array: renamer.array_name(&access.array),
        indices: access
            .indices
            .iter()
            .map(|index| canon_expr(index, renamer))
            .collect(),
    }
}

fn canon_statements(stmts: &[Statement], renamer: &mut Renamer) -> Vec<Statement> {
    stmts
        .iter()
        .map(|stmt| match stmt {
            Statement::For {
                iter,
                lower,
                upper,
                stride,
                body,
            } => {
                // Bounds and the stride are evaluated in the enclosing
                // scope (a loop bound may not reference its own iterator).
                let lower = canon_expr(lower, renamer);
                let upper = canon_expr(upper, renamer);
                let stride = canon_expr(stride, renamer);
                let idx = renamer.next_iter;
                renamer.next_iter += 1;
                renamer.scope.push((iter.clone(), idx));
                let body = canon_statements(body, renamer);
                renamer.scope.pop();
                Statement::For {
                    iter: format!("i{idx}"),
                    lower,
                    upper,
                    stride,
                    body,
                }
            }
            Statement::If { conditions, body } => {
                let mut conditions: Vec<Condition> = conditions
                    .iter()
                    .map(|c| canon_condition(c, renamer))
                    .collect();
                // Conjunction is order-independent: sort (by the canonical
                // structural rendering, which is deterministic) and dedup.
                conditions.sort_by_key(|c| format!("{:?}", c));
                conditions.dedup();
                Statement::If {
                    conditions,
                    body: canon_statements(body, renamer),
                }
            }
            Statement::Assign { write, reads } => Statement::Assign {
                write: canon_access(write, renamer),
                // Read order is program order (it is the access order the
                // simulator replays) and therefore semantic: keep it.
                reads: reads.iter().map(|r| canon_access(r, renamer)).collect(),
            },
        })
        .collect()
}

/// Rewrites a program into the canonical representative of its
/// α-equivalence class (see the module docs for the exact normalisations).
///
/// Canonicalisation is idempotent, preserves elaboration semantics, and
/// maps programs that differ only in naming or affine spelling to equal
/// [`Program`] values.
pub fn canonicalize(program: &Program) -> Program {
    let mut renamer = Renamer {
        arrays: program
            .arrays
            .iter()
            .enumerate()
            .map(|(idx, decl)| (decl.name.clone(), format!("a{idx}")))
            .collect(),
        params: program
            .params
            .iter()
            .enumerate()
            .map(|(idx, name)| (name.clone(), format!("p{idx}")))
            .collect(),
        scope: Vec::new(),
        next_iter: 0,
    };
    let arrays = program
        .arrays
        .iter()
        .enumerate()
        .map(|(idx, decl)| ArrayDecl {
            name: format!("a{idx}"),
            extents: decl
                .extents
                .iter()
                .map(|extent| canon_expr(extent, &renamer))
                .collect(),
            elem_size: decl.elem_size,
        })
        .collect();
    let params = (0..program.params.len()).map(|i| format!("p{i}")).collect();
    let stmts = canon_statements(&program.stmts, &mut renamer);
    Program {
        params,
        arrays,
        stmts,
    }
}

/// A deterministic textual rendering of the canonical form of `program` —
/// two programs produce the same text iff [`canonicalize`] maps them to the
/// same AST.  This is the string the serving layer hashes to build
/// content-addressed cache keys.
pub fn canonical_text(program: &Program) -> String {
    format!("{:?}", canonicalize(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn canon_src(source: &str) -> String {
        canonical_text(&parse_program(source).expect("valid program"))
    }

    #[test]
    fn renaming_is_invisible() {
        let a = canon_src(
            "double A[100]; double B[100];\n\
             for (i = 1; i < 99; i++) B[i-1] = A[i-1] + A[i];",
        );
        let b = canon_src(
            "double xs[100]; double ys[100];\n\
             for (k = 1; k < 99; k++) ys[k-1] = xs[k-1] + xs[k];",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn affine_spelling_is_invisible() {
        let a = canon_src("double A[64]; for (i = 0; i < 64; i++) A[2*i - i] = A[i];");
        let b = canon_src("double A[64]; for (i = 0; i < 64; i++) A[i + 0] = A[i];");
        assert_eq!(a, b);
    }

    #[test]
    fn guard_spelling_and_order_are_invisible() {
        let a = canon_src(
            "double A[64];\n\
             for (i = 0; i < 64; i++) if (i >= 2 && i <= 10) A[i] = A[i];",
        );
        let b = canon_src(
            "double A[64];\n\
             for (i = 0; i < 64; i++) if (i < 11 && i > 1) A[i] = A[i];",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn semantic_differences_survive() {
        let base = canon_src("double A[64]; for (i = 0; i < 64; i++) A[i] = A[i];");
        for other in [
            // Different trip count.
            "double A[64]; for (i = 0; i < 63; i++) A[i] = A[i];",
            // Different subscript.
            "double A[64]; for (i = 0; i < 64; i++) A[0] = A[i];",
            // Different array size (different footprint/base addresses).
            "double A[128]; for (i = 0; i < 64; i++) A[i] = A[i];",
            // Different stride.
            "double A[64]; for (i = 0; i < 64; i += 2) A[i] = A[i];",
        ] {
            assert_ne!(base, canon_src(other), "{other}");
        }
    }

    #[test]
    fn declaration_order_is_semantic() {
        // Swapping declarations swaps the elaborator's base addresses; the
        // canonical form must keep them apart.
        let a = canon_src(
            "double A[64]; double B[128];\n\
             for (i = 0; i < 64; i++) A[i] = B[i];",
        );
        let b = canon_src(
            "double B[128]; double A[64];\n\
             for (i = 0; i < 64; i++) A[i] = B[i];",
        );
        assert_ne!(a, b);
    }

    #[test]
    fn parametric_families_share_a_canonical_form() {
        // Renaming parameters, arrays and iterators — and re-spelling the
        // affine parts — leaves the family's canonical text unchanged.
        let a = canon_src(
            "param N, T;\n\
             double A[N];\n\
             for (ii = 0; ii < N / T * T; ii += T)\n\
                 for (i = ii; i < ii + T; i++)\n\
                     if (i < N) A[i] = A[i];",
        );
        let b = canon_src(
            "param SIZE, TILE;\n\
             double buf[SIZE];\n\
             for (x = 0; x < SIZE / TILE * TILE; x += TILE)\n\
                 for (y = x; y < TILE + x; y++)\n\
                     if (y <= SIZE - 1) buf[y] = buf[y];",
        );
        assert_eq!(a, b);
        // Different parameter structure is a different family.
        let c = canon_src(
            "param N, T;\n\
             double A[N];\n\
             for (ii = 0; ii < N; ii += T)\n\
                 for (i = ii; i < ii + T; i++)\n\
                     if (i < N) A[i] = A[i];",
        );
        assert_ne!(a, c);
    }

    #[test]
    fn parameter_declaration_order_is_semantic() {
        // `param N, T;` and `param T, N;` assign different canonical names,
        // so the binding vectors (which are keyed positionally through the
        // canonical names) stay distinguishable.
        let a = canon_src("param N, T; double A[N]; for (i = 0; i < 8; i += T) A[i] = 0;");
        let b = canon_src("param T, N; double A[N]; for (i = 0; i < 8; i += T) A[i] = 0;");
        assert_ne!(a, b);
    }

    #[test]
    fn canonicalisation_is_idempotent() {
        let program = parse_program(
            "double A[100]; double B[100];\n\
             for (i = 1; i < 99; i++) if (i > 3) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap();
        let once = canonicalize(&program);
        let twice = canonicalize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn canonical_programs_elaborate_identically() {
        use crate::elaborate::{elaborate, ElaborateOptions};
        let original = parse_program(
            "double A[100]; double B[100];\n\
             for (i = 1; i < 99; i++) B[i-1] = A[i-1] + A[i];",
        )
        .unwrap();
        let renamed = parse_program(
            "double P[100]; double Q[100];\n\
             for (t = 1; t <= 98; t++) Q[t-1] = P[t-1] + P[t];",
        )
        .unwrap();
        let options = ElaborateOptions::default();
        let a = elaborate(&canonicalize(&original), &options).unwrap();
        let b = elaborate(&canonicalize(&renamed), &options).unwrap();
        assert_eq!(a, b);
    }
}
