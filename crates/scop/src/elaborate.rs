//! Elaboration of the affine AST into the SCoP tree representation.
//!
//! Elaboration resolves iterator names to dimensions, accumulates the
//! iteration domains of nested loops and guards, lays out arrays in a
//! simulated address space and linearises array subscripts into affine byte
//! address expressions (the `linearize`/`block` step of §3.2 of the paper).

use crate::ast::{ArrayAccess, CmpOp, Condition, Expr, Program, Statement};
use crate::tree::{AccessNode, ArrayInfo, LoopNode, Node, Scop};
use cache_model::AccessKind;
use polyhedra::{Aff, BasicSet, Constraint, Set};
use std::collections::HashMap;
use std::fmt;

/// Options controlling elaboration.
#[derive(Clone, Debug)]
pub struct ElaborateOptions {
    /// Whether references to undeclared identifiers are modelled as
    /// zero-dimensional arrays (scalars).  The paper's tool and HayStack
    /// consider array accesses only; Dinero IV also sees scalar accesses, so
    /// the trace-based reference model enables this option.
    pub include_scalars: bool,
    /// Alignment (in bytes) of each array's base address.
    pub array_alignment: u64,
    /// Base address of the first array.
    pub base_address: u64,
    /// Element size assumed for scalars.
    pub scalar_size: u64,
}

impl Default for ElaborateOptions {
    fn default() -> Self {
        ElaborateOptions {
            include_scalars: false,
            array_alignment: 64,
            base_address: 64,
            scalar_size: 8,
        }
    }
}

impl ElaborateOptions {
    /// Options that additionally model scalar accesses (used by the
    /// hardware-reference model).
    pub fn with_scalars() -> Self {
        ElaborateOptions {
            include_scalars: true,
            ..ElaborateOptions::default()
        }
    }
}

/// Errors reported by [`elaborate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ElaborateError {
    /// An expression refers to a name that is not a loop iterator in scope.
    UnknownIterator(String),
    /// A subscripted reference to an array that was never declared.
    UnknownArray(String),
    /// The number of subscripts does not match the array's dimensionality.
    SubscriptCount {
        /// Array name.
        array: String,
        /// Expected number of subscripts.
        expected: usize,
        /// Number of subscripts found.
        found: usize,
    },
    /// The same iterator name is used by two nested loops.
    DuplicateIterator(String),
    /// An array extent did not fold to a constant (an unbound parameter).
    NonConstantExtent {
        /// Array name.
        array: String,
        /// The offending extent expression.
        expr: String,
    },
    /// An array extent folded to a non-positive value after substitution.
    NonPositiveExtent {
        /// Array name.
        array: String,
        /// The folded extent value.
        value: i64,
    },
    /// A loop stride did not fold to a constant (an unbound parameter).
    NonConstantStride {
        /// Loop iterator name.
        iter: String,
        /// The offending stride expression.
        expr: String,
    },
    /// A loop stride folded to zero after substitution.
    ZeroStride(String),
    /// A division or product did not fold to an affine expression.
    NonAffine(String),
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::UnknownIterator(n) => write!(f, "unknown iterator `{n}`"),
            ElaborateError::UnknownArray(n) => write!(f, "unknown array `{n}`"),
            ElaborateError::SubscriptCount {
                array,
                expected,
                found,
            } => write!(
                f,
                "array `{array}` has {expected} dimensions but {found} subscripts were given"
            ),
            ElaborateError::DuplicateIterator(n) => {
                write!(f, "iterator `{n}` shadows an enclosing loop iterator")
            }
            ElaborateError::NonConstantExtent { array, expr } => write!(
                f,
                "array `{array}` has non-constant extent `{expr}` (bind its parameters before \
                 elaborating)"
            ),
            ElaborateError::NonPositiveExtent { array, value } => write!(
                f,
                "array `{array}` has non-positive extent {value} after parameter substitution"
            ),
            ElaborateError::NonConstantStride { iter, expr } => write!(
                f,
                "loop `{iter}` has non-constant stride `{expr}` (bind its parameters before \
                 elaborating)"
            ),
            ElaborateError::ZeroStride(iter) => write!(
                f,
                "loop `{iter}` has zero stride after parameter substitution"
            ),
            ElaborateError::NonAffine(expr) => write!(
                f,
                "non-affine expression `{expr}` (divisions and symbolic products must fold to \
                 constants after parameter substitution)"
            ),
        }
    }
}

impl std::error::Error for ElaborateError {}

/// Elaborates an affine [`Program`] into a [`Scop`].
///
/// # Errors
///
/// Returns an [`ElaborateError`] if the program refers to unknown iterators
/// or arrays, or subscripts an array with the wrong number of indices.
pub fn elaborate(program: &Program, options: &ElaborateOptions) -> Result<Scop, ElaborateError> {
    let mut elab = Elaborator::new(program, options.clone())?;
    let mut roots = Vec::new();
    let empty_domain = Set::universe(0);
    for stmt in &program.stmts {
        elab.statement(stmt, &mut Vec::new(), &empty_domain, &mut roots)?;
    }
    Ok(elab.finish(roots))
}

struct Elaborator {
    options: ElaborateOptions,
    arrays: Vec<ArrayInfo>,
    array_index: HashMap<String, usize>,
    next_base: u64,
    next_access_id: usize,
}

impl Elaborator {
    fn new(program: &Program, options: ElaborateOptions) -> Result<Self, ElaborateError> {
        let mut elab = Elaborator {
            next_base: options.base_address,
            options,
            arrays: Vec::new(),
            array_index: HashMap::new(),
            next_access_id: 0,
        };
        for decl in &program.arrays {
            let mut extents = Vec::with_capacity(decl.extents.len());
            for extent in &decl.extents {
                let value =
                    extent
                        .eval_const()
                        .ok_or_else(|| ElaborateError::NonConstantExtent {
                            array: decl.name.clone(),
                            expr: extent.to_string(),
                        })?;
                if value <= 0 {
                    return Err(ElaborateError::NonPositiveExtent {
                        array: decl.name.clone(),
                        value,
                    });
                }
                extents.push(value as u64);
            }
            elab.declare_array(&decl.name, extents, decl.elem_size);
        }
        Ok(elab)
    }

    fn declare_array(&mut self, name: &str, extents: Vec<u64>, elem_size: u64) -> usize {
        let align = self.options.array_alignment.max(1);
        let base = self.next_base.div_ceil(align) * align;
        let info = ArrayInfo {
            name: name.to_owned(),
            extents,
            elem_size,
            base_address: base,
        };
        self.next_base = base + info.size_bytes();
        let idx = self.arrays.len();
        self.arrays.push(info);
        self.array_index.insert(name.to_owned(), idx);
        idx
    }

    fn finish(self, roots: Vec<Node>) -> Scop {
        Scop::new(self.arrays, roots, self.next_access_id)
    }

    fn statement(
        &mut self,
        stmt: &Statement,
        iters: &mut Vec<String>,
        domain: &Set,
        out: &mut Vec<Node>,
    ) -> Result<(), ElaborateError> {
        match stmt {
            Statement::For {
                iter,
                lower,
                upper,
                stride,
                body,
            } => {
                if iters.iter().any(|i| i == iter) {
                    return Err(ElaborateError::DuplicateIterator(iter.clone()));
                }
                let stride =
                    stride
                        .eval_const()
                        .ok_or_else(|| ElaborateError::NonConstantStride {
                            iter: iter.clone(),
                            expr: stride.to_string(),
                        })?;
                if stride == 0 {
                    return Err(ElaborateError::ZeroStride(iter.clone()));
                }
                let depth = iters.len() + 1;
                iters.push(iter.clone());
                let lower_aff = expr_to_aff(lower, iters, depth)?;
                let upper_aff = expr_to_aff(upper, iters, depth)?;
                let var = Aff::var(depth, depth - 1);
                let bounds = BasicSet::universe(depth)
                    .with_ge(var.clone().sub(&lower_aff))
                    .with_gt(upper_aff.sub(&var));
                let loop_domain = domain.extend_dims(depth).intersect_basic(&bounds);
                let mut children = Vec::new();
                for s in body {
                    self.statement(s, iters, &loop_domain, &mut children)?;
                }
                iters.pop();
                out.push(Node::Loop(LoopNode {
                    depth,
                    domain: loop_domain,
                    stride,
                    children,
                }));
                Ok(())
            }
            Statement::If { conditions, body } => {
                let depth = iters.len();
                let mut guard = BasicSet::universe(depth);
                for c in conditions {
                    guard.add_constraint(condition_to_constraint(c, iters, depth)?);
                }
                let guarded = domain.intersect_basic(&guard);
                for s in body {
                    self.statement(s, iters, &guarded, out)?;
                }
                Ok(())
            }
            Statement::Assign { write, reads } => {
                for r in reads {
                    if let Some(node) = self.access_node(r, AccessKind::Read, iters, domain)? {
                        out.push(Node::Access(node));
                    }
                }
                if let Some(node) = self.access_node(write, AccessKind::Write, iters, domain)? {
                    out.push(Node::Access(node));
                }
                Ok(())
            }
        }
    }

    fn access_node(
        &mut self,
        access: &ArrayAccess,
        kind: AccessKind,
        iters: &[String],
        domain: &Set,
    ) -> Result<Option<AccessNode>, ElaborateError> {
        let depth = iters.len();
        let array_idx = match self.array_index.get(&access.array) {
            Some(&idx) => idx,
            None => {
                if !access.indices.is_empty() {
                    return Err(ElaborateError::UnknownArray(access.array.clone()));
                }
                if !self.options.include_scalars {
                    return Ok(None);
                }
                self.declare_array(&access.array, Vec::new(), self.options.scalar_size)
            }
        };
        let info = &self.arrays[array_idx];
        if access.indices.len() != info.extents.len() {
            return Err(ElaborateError::SubscriptCount {
                array: access.array.clone(),
                expected: info.extents.len(),
                found: access.indices.len(),
            });
        }
        // Row-major linearisation: ((i1 * e2 + i2) * e3 + i3) ...
        let mut linear = Aff::constant(depth, 0);
        for (dim, idx_expr) in access.indices.iter().enumerate() {
            let idx = expr_to_aff(idx_expr, iters, depth)?;
            if dim > 0 {
                linear = linear.scale(info.extents[dim] as i64);
            }
            linear = linear.add(&idx);
        }
        let address = linear
            .scale(info.elem_size as i64)
            .offset(info.base_address as i64);
        let id = self.next_access_id;
        self.next_access_id += 1;
        Ok(Some(AccessNode {
            id,
            array: array_idx,
            depth,
            domain: domain.clone(),
            address,
            kind,
        }))
    }
}

/// Converts an affine AST expression into an [`Aff`] over `dims` dimensions,
/// one per iterator in `iters`.
fn expr_to_aff(expr: &Expr, iters: &[String], dims: usize) -> Result<Aff, ElaborateError> {
    Ok(match expr {
        Expr::Const(c) => Aff::constant(dims, *c),
        Expr::Iter(name) => {
            let d = iters
                .iter()
                .position(|i| i == name)
                .ok_or_else(|| ElaborateError::UnknownIterator(name.clone()))?;
            Aff::var(dims, d)
        }
        Expr::Add(a, b) => expr_to_aff(a, iters, dims)?.add(&expr_to_aff(b, iters, dims)?),
        Expr::Sub(a, b) => expr_to_aff(a, iters, dims)?.sub(&expr_to_aff(b, iters, dims)?),
        Expr::Mul(k, e) => expr_to_aff(e, iters, dims)?.scale(*k),
        Expr::Div(_, _) => match expr.eval_const() {
            Some(c) => Aff::constant(dims, c),
            None => return Err(ElaborateError::NonAffine(expr.to_string())),
        },
        Expr::Prod(a, b) => {
            if let Some(c) = expr.eval_const() {
                Aff::constant(dims, c)
            } else if let Some(k) = a.eval_const() {
                expr_to_aff(b, iters, dims)?.scale(k)
            } else if let Some(k) = b.eval_const() {
                expr_to_aff(a, iters, dims)?.scale(k)
            } else {
                return Err(ElaborateError::NonAffine(expr.to_string()));
            }
        }
    })
}

/// Converts a guard condition into a polyhedral constraint.
fn condition_to_constraint(
    cond: &Condition,
    iters: &[String],
    dims: usize,
) -> Result<Constraint, ElaborateError> {
    let lhs = expr_to_aff(&cond.lhs, iters, dims)?;
    let rhs = expr_to_aff(&cond.rhs, iters, dims)?;
    Ok(match cond.op {
        CmpOp::Lt => Constraint::gt(rhs.sub(&lhs)),
        CmpOp::Le => Constraint::ge(rhs.sub(&lhs)),
        CmpOp::Gt => Constraint::gt(lhs.sub(&rhs)),
        CmpOp::Ge => Constraint::ge(lhs.sub(&rhs)),
        CmpOp::Eq => Constraint::eq(lhs.sub(&rhs)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{access, assign, for_loop};

    fn stencil_program() -> Program {
        // for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];
        Program::new()
            .with_array("A", &[1000], 8)
            .with_array("B", &[1000], 8)
            .with_stmt(for_loop(
                "i",
                Expr::Const(1),
                Expr::Const(999),
                vec![assign(
                    access("B", vec![Expr::iter("i").offset(-1)]),
                    vec![
                        access("A", vec![Expr::iter("i").offset(-1)]),
                        access("A", vec![Expr::iter("i")]),
                    ],
                )],
            ))
    }

    #[test]
    fn stencil_elaboration() {
        let scop = elaborate(&stencil_program(), &ElaborateOptions::default()).unwrap();
        assert_eq!(scop.arrays().len(), 2);
        assert_eq!(scop.num_access_nodes(), 3);
        let accesses: Vec<_> = scop.access_nodes().collect();
        // Order: reads A[i-1], A[i], then write B[i-1].
        assert_eq!(accesses[0].kind, AccessKind::Read);
        assert_eq!(accesses[2].kind, AccessKind::Write);
        let a_base = scop.arrays()[0].base_address;
        let b_base = scop.arrays()[1].base_address;
        assert_eq!(accesses[0].address_at(&[1]), a_base);
        assert_eq!(accesses[1].address_at(&[1]), a_base + 8);
        assert_eq!(accesses[2].address_at(&[1]), b_base);
        // Arrays do not overlap and are 64-byte aligned.
        assert!(b_base >= a_base + 8000);
        assert_eq!(b_base % 64, 0);
    }

    #[test]
    fn two_dimensional_linearisation() {
        let p = Program::new()
            .with_array("A", &[23, 42], 4)
            .with_stmt(for_loop(
                "i",
                Expr::Const(0),
                Expr::Const(23),
                vec![for_loop(
                    "j",
                    Expr::Const(0),
                    Expr::Const(42),
                    vec![assign(
                        access("A", vec![Expr::iter("i"), Expr::iter("j")]),
                        vec![],
                    )],
                )],
            ));
        let scop = elaborate(&p, &ElaborateOptions::default()).unwrap();
        let a = scop.access_nodes().next().unwrap();
        let base = scop.arrays()[0].base_address;
        // linearize(A[i][j]) = base + 42*4*i + 4*j (the example of §3.2).
        assert_eq!(a.address_at(&[3, 5]), base + 42 * 4 * 3 + 4 * 5);
    }

    #[test]
    fn guards_restrict_access_domains() {
        // for i in 0..10: if (i >= 5) A[i] = 0;
        let p = Program::new().with_array("A", &[10], 8).with_stmt(for_loop(
            "i",
            Expr::Const(0),
            Expr::Const(10),
            vec![Statement::If {
                conditions: vec![Condition {
                    lhs: Expr::iter("i"),
                    op: CmpOp::Ge,
                    rhs: Expr::Const(5),
                }],
                body: vec![assign(access("A", vec![Expr::iter("i")]), vec![])],
            }],
        ));
        let scop = elaborate(&p, &ElaborateOptions::default()).unwrap();
        let a = scop.access_nodes().next().unwrap();
        assert!(!a.domain.contains(&[4]));
        assert!(a.domain.contains(&[5]));
        // The loop itself still spans the full range.
        let Node::Loop(l) = &scop.roots()[0] else {
            panic!()
        };
        assert!(l.domain.contains(&[4]));
    }

    #[test]
    fn scalars_are_ignored_unless_requested() {
        let p = Program::new().with_array("A", &[4], 8).with_stmt(for_loop(
            "i",
            Expr::Const(0),
            Expr::Const(4),
            vec![Statement::Assign {
                write: access("s", vec![]),
                reads: vec![access("A", vec![Expr::iter("i")])],
            }],
        ));
        let without = elaborate(&p, &ElaborateOptions::default()).unwrap();
        assert_eq!(without.num_access_nodes(), 1);
        let with = elaborate(&p, &ElaborateOptions::with_scalars()).unwrap();
        assert_eq!(with.num_access_nodes(), 2);
        assert_eq!(with.arrays().len(), 2);
    }

    #[test]
    fn unbound_parameters_are_reported() {
        use crate::parser::parse_program;
        let unbound_extent =
            parse_program("param N; double A[N]; for (i = 0; i < 8; i++) A[i] = 0;").unwrap();
        let err = elaborate(&unbound_extent, &ElaborateOptions::default()).unwrap_err();
        assert!(
            matches!(err, ElaborateError::NonConstantExtent { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("bind its parameters"), "{err}");

        let unbound_stride =
            parse_program("param T; double A[8]; for (i = 0; i < 8; i += T) A[i] = 0;").unwrap();
        assert!(matches!(
            elaborate(&unbound_stride, &ElaborateOptions::default()),
            Err(ElaborateError::NonConstantStride { .. })
        ));

        let unbound_bound =
            parse_program("param N; double A[8]; for (i = 0; i < N; i++) A[i] = 0;").unwrap();
        assert!(matches!(
            elaborate(&unbound_bound, &ElaborateOptions::default()),
            Err(ElaborateError::UnknownIterator(_))
        ));
    }

    #[test]
    fn errors_are_reported() {
        let bad_iter = Program::new().with_array("A", &[4], 8).with_stmt(for_loop(
            "i",
            Expr::Const(0),
            Expr::iter("n"),
            vec![],
        ));
        assert!(matches!(
            elaborate(&bad_iter, &ElaborateOptions::default()),
            Err(ElaborateError::UnknownIterator(_))
        ));
        let bad_subscripts = Program::new()
            .with_array("A", &[4, 4], 8)
            .with_stmt(for_loop(
                "i",
                Expr::Const(0),
                Expr::Const(4),
                vec![assign(access("A", vec![Expr::iter("i")]), vec![])],
            ));
        assert!(matches!(
            elaborate(&bad_subscripts, &ElaborateOptions::default()),
            Err(ElaborateError::SubscriptCount { .. })
        ));
        let shadowed = Program::new().with_array("A", &[4], 8).with_stmt(for_loop(
            "i",
            Expr::Const(0),
            Expr::Const(4),
            vec![for_loop("i", Expr::Const(0), Expr::Const(4), vec![])],
        ));
        assert!(matches!(
            elaborate(&shadowed, &ElaborateOptions::default()),
            Err(ElaborateError::DuplicateIterator(_))
        ));
        let undeclared = Program::new().with_stmt(for_loop(
            "i",
            Expr::Const(0),
            Expr::Const(4),
            vec![assign(access("A", vec![Expr::iter("i")]), vec![])],
        ));
        assert!(matches!(
            elaborate(&undeclared, &ElaborateOptions::default()),
            Err(ElaborateError::UnknownArray(_))
        ));
    }
}
