//! The tree-structured SCoP representation of §3.2 of the paper.

use cache_model::AccessKind;
use polyhedra::{Aff, Set};
use std::fmt;

/// Information about one array of the SCoP, including its assigned base
/// address in the simulated address space.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArrayInfo {
    /// Array name.
    pub name: String,
    /// Extent of each dimension (empty for scalars).
    pub extents: Vec<u64>,
    /// Element size in bytes.
    pub elem_size: u64,
    /// Base byte address assigned during elaboration.
    pub base_address: u64,
}

impl ArrayInfo {
    /// Total size of the array in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.extents.iter().product::<u64>().max(1) * self.elem_size
    }
}

/// A leaf of the SCoP tree: one array reference of the program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccessNode {
    /// Unique identifier of this access node within its SCoP.
    pub id: usize,
    /// Index into [`Scop::arrays`] of the accessed array.
    pub array: usize,
    /// Nesting depth: the number of loop iterators in scope (and the
    /// dimensionality of [`AccessNode::domain`]).
    pub depth: usize,
    /// The loop iterations in which the access is performed.
    pub domain: Set,
    /// The accessed byte address as an affine expression of the iterators.
    pub address: Aff,
    /// Whether the access reads or writes.
    pub kind: AccessKind,
}

impl AccessNode {
    /// The byte address accessed at iteration `point`.
    pub fn address_at(&self, point: &[i64]) -> u64 {
        let a = self.address.eval(point);
        debug_assert!(a >= 0, "access to a negative address");
        a as u64
    }
}

/// An inner node of the SCoP tree: a loop of the program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LoopNode {
    /// Nesting depth of this loop: 1 for an outermost loop.  Equals the
    /// dimensionality of [`LoopNode::domain`].
    pub depth: usize,
    /// The iteration domain, including the constraints of enclosing loops.
    pub domain: Set,
    /// Increment of the loop iterator per iteration (a non-zero constant;
    /// 1 for the common `i++` loops).  Negative for decreasing loops, which
    /// start at the domain's lexicographic maximum and walk downwards.
    pub stride: i64,
    /// Children, in execution order.
    pub children: Vec<Node>,
}

impl LoopNode {
    /// The lexicographically smallest point of the domain whose outer
    /// dimensions equal `outer`, i.e. `L.initial(j)` of the paper.
    pub fn initial(&self, outer: &[i64]) -> Option<Vec<i64>> {
        let mut buf = Vec::new();
        self.initial_into(outer, &mut buf).then_some(buf)
    }

    /// The lexicographically largest such point, i.e. `L.final(j)`.
    pub fn last(&self, outer: &[i64]) -> Option<Vec<i64>> {
        let mut buf = Vec::new();
        self.last_into(outer, &mut buf).then_some(buf)
    }

    /// Writes `L.initial(j)` into `buf`, returning whether the entry is
    /// non-empty.  The buffer-reusing variant the reference walk calls
    /// once per loop entry: it neither clones the domain nor allocates
    /// the result when `buf` has capacity.
    pub fn initial_into(&self, outer: &[i64], buf: &mut Vec<i64>) -> bool {
        self.domain.lexmin_with_prefix_into(outer, buf)
    }

    /// The `L.final(j)` counterpart of [`Self::initial_into`].
    pub fn last_into(&self, outer: &[i64], buf: &mut Vec<i64>) -> bool {
        self.domain.lexmax_with_prefix_into(outer, buf)
    }
}

/// A node of the SCoP tree.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A loop.
    Loop(LoopNode),
    /// An array access.
    Access(AccessNode),
}

impl Node {
    /// The nesting depth of the node.
    pub fn depth(&self) -> usize {
        match self {
            Node::Loop(l) => l.depth,
            Node::Access(a) => a.depth,
        }
    }
}

/// A static control part: arrays plus a forest of loop/access nodes executed
/// in order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Scop {
    arrays: Vec<ArrayInfo>,
    roots: Vec<Node>,
    num_access_nodes: usize,
}

impl Scop {
    /// Assembles a SCoP from its parts.  Intended to be called by the
    /// elaborator; access node ids must be dense and unique.
    pub fn new(arrays: Vec<ArrayInfo>, roots: Vec<Node>, num_access_nodes: usize) -> Self {
        Scop {
            arrays,
            roots,
            num_access_nodes,
        }
    }

    /// The arrays of the SCoP.
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// The top-level nodes, in execution order.
    pub fn roots(&self) -> &[Node] {
        &self.roots
    }

    /// The number of access nodes (leaves) in the tree.
    pub fn num_access_nodes(&self) -> usize {
        self.num_access_nodes
    }

    /// Iterates over all access nodes of the tree in execution order.
    pub fn access_nodes(&self) -> impl Iterator<Item = &AccessNode> {
        let mut stack: Vec<&Node> = self.roots.iter().rev().collect();
        std::iter::from_fn(move || {
            while let Some(node) = stack.pop() {
                match node {
                    Node::Access(a) => return Some(a),
                    Node::Loop(l) => stack.extend(l.children.iter().rev()),
                }
            }
            None
        })
    }

    /// The total footprint of all arrays in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays.iter().map(ArrayInfo::size_bytes).sum()
    }

    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<(usize, &ArrayInfo)> {
        self.arrays.iter().enumerate().find(|(_, a)| a.name == name)
    }
}

impl fmt::Display for Scop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SCoP with {} arrays:", self.arrays.len())?;
        for a in &self.arrays {
            writeln!(
                f,
                "  {}[{}] ({} bytes/elem) @ {:#x}",
                a.name,
                a.extents
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("]["),
                a.elem_size,
                a.base_address
            )?;
        }
        fn rec(f: &mut fmt::Formatter<'_>, node: &Node, indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match node {
                Node::Loop(l) => {
                    writeln!(f, "{pad}loop depth {} stride {}", l.depth, l.stride)?;
                    for c in &l.children {
                        rec(f, c, indent + 1)?;
                    }
                    Ok(())
                }
                Node::Access(a) => writeln!(
                    f,
                    "{pad}access #{} array {} {:?} addr {:?}",
                    a.id, a.array, a.kind, a.address
                ),
            }
        }
        for r in &self.roots {
            rec(f, r, 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyhedra::BasicSet;

    fn one_loop_scop() -> Scop {
        // for (i = 0; i < 10; i++) A[i] = ...  (single write access)
        let domain = Set::from_basic(BasicSet::rect(&[(0, 9)]));
        let access = AccessNode {
            id: 0,
            array: 0,
            depth: 1,
            domain: domain.clone(),
            address: Aff::var(1, 0).scale(8),
            kind: AccessKind::Write,
        };
        let root = Node::Loop(LoopNode {
            depth: 1,
            domain,
            stride: 1,
            children: vec![Node::Access(access)],
        });
        Scop::new(
            vec![ArrayInfo {
                name: "A".into(),
                extents: vec![10],
                elem_size: 8,
                base_address: 0,
            }],
            vec![root],
            1,
        )
    }

    #[test]
    fn initial_and_last() {
        let scop = one_loop_scop();
        let Node::Loop(l) = &scop.roots()[0] else {
            panic!()
        };
        assert_eq!(l.initial(&[]), Some(vec![0]));
        assert_eq!(l.last(&[]), Some(vec![9]));
    }

    #[test]
    fn access_iteration_and_footprint() {
        let scop = one_loop_scop();
        assert_eq!(scop.access_nodes().count(), 1);
        assert_eq!(scop.footprint_bytes(), 80);
        let a = scop.access_nodes().next().unwrap();
        assert_eq!(a.address_at(&[3]), 24);
        assert!(scop.array_by_name("A").is_some());
        assert!(scop.array_by_name("B").is_none());
    }
}
