//! Walking the dynamic accesses of a SCoP in execution order.
//!
//! This module contains the reference traversal that both the non-warping
//! simulator (Algorithm 1 of the paper) and the trace generator build on:
//! loop nodes step through their iteration domains in lexicographic order and
//! access nodes report the byte address they touch at the current iteration.

use crate::tree::{AccessNode, Node, Scop};
use cache_model::AccessKind;

/// One dynamic memory access produced by walking a SCoP.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DynamicAccess<'a> {
    /// The access node that produced this access.
    pub node: &'a AccessNode,
    /// The accessed byte address.
    pub address: u64,
    /// Read or write.
    pub kind: AccessKind,
}

/// Walks every dynamic access of the SCoP in execution order, invoking
/// `visit` for each.  Returns the number of accesses visited.
///
/// The traversal is exactly Algorithm 1 of the paper with the cache update
/// replaced by the callback: loop nodes iterate from `initial` to `final`
/// with their stride, checking domain membership to honour guards.
pub fn for_each_access<'a>(scop: &'a Scop, mut visit: impl FnMut(DynamicAccess<'a>)) -> u64 {
    let mut count = 0;
    let mut pool = Vec::new();
    for root in scop.roots() {
        walk_node(root, &[], &mut pool, &mut visit, &mut count);
    }
    count
}

/// Derives the iteration interval of one loop entry: fills `i` with the
/// first iteration vector and returns the bound value of the innermost
/// dimension (the walk's stop value), or `None` when the entry is empty.
///
/// Both endpoints share the `outer` prefix, so the original full-vector
/// lexicographic comparisons of Algorithm 1 reduce to comparisons of the
/// innermost coordinate; `end` is scratch for the far endpoint, reused
/// across entries instead of allocating per entry.
fn entry_interval(
    l: &crate::tree::LoopNode,
    outer: &[i64],
    i: &mut Vec<i64>,
    end: &mut Vec<i64>,
) -> Option<i64> {
    let found = if l.stride < 0 {
        // Decreasing loops walk lexmax-first: the initial value of the
        // source loop is the domain's largest point, and the stride grid
        // is anchored there.
        l.last_into(outer, i) && l.initial_into(outer, end)
    } else {
        l.initial_into(outer, i) && l.last_into(outer, end)
    };
    found.then(|| end[l.depth - 1])
}

fn walk_node<'a>(
    node: &'a Node,
    outer: &[i64],
    pool: &mut Vec<Vec<i64>>,
    visit: &mut impl FnMut(DynamicAccess<'a>),
    count: &mut u64,
) {
    match node {
        Node::Access(a) => {
            if a.domain.contains(outer) {
                visit(DynamicAccess {
                    node: a,
                    address: a.address_at(outer),
                    kind: a.kind,
                });
                *count += 1;
            }
        }
        Node::Loop(l) => {
            let mut i = pool.pop().unwrap_or_default();
            let mut end = pool.pop().unwrap_or_default();
            if let Some(bound) = entry_interval(l, outer, &mut i, &mut end) {
                pool.push(end);
                let d = l.depth - 1;
                while (l.stride > 0 && i[d] <= bound) || (l.stride < 0 && i[d] >= bound) {
                    if l.domain.contains(&i) {
                        for child in &l.children {
                            walk_node(child, &i, pool, visit, count);
                        }
                    }
                    i[d] += l.stride;
                }
            } else {
                pool.push(end);
            }
            pool.push(i);
        }
    }
}

/// Walks the dynamic accesses of a single node at a fixed outer-iteration
/// vector, invoking `visit` for each.  Returns the number of accesses
/// visited.
///
/// This is the per-subtree slice of [`for_each_access`]: interval samplers
/// use it to replay one outer-loop iteration at a time (pass the loop node's
/// child and the outer vector for that iteration) instead of the whole SCoP.
pub fn for_each_access_at<'a>(
    node: &'a Node,
    outer: &[i64],
    mut visit: impl FnMut(DynamicAccess<'a>),
) -> u64 {
    let mut count = 0;
    let mut pool = Vec::new();
    walk_node(node, outer, &mut pool, &mut visit, &mut count);
    count
}

/// Counts the dynamic accesses of a SCoP without doing anything else.
pub fn count_accesses(scop: &Scop) -> u64 {
    for_each_access(scop, |_| {})
}

/// Whether the SCoP performs strictly more than `cap` dynamic accesses.
///
/// Unlike [`count_accesses`] this stops as soon as the answer is known, so
/// probing a trillion-access kernel against a small budget costs O(cap)
/// instead of O(total).  Serving layers use it to decide when to degrade a
/// request to approximate simulation.
pub fn exceeds_access_count(scop: &Scop, cap: u64) -> bool {
    let mut count = 0;
    let mut pool = Vec::new();
    for root in scop.roots() {
        if walk_node_capped(root, &[], &mut pool, cap, &mut count) {
            return true;
        }
    }
    false
}

/// Walks `node` counting accesses into `count`; returns `true` (abandoning
/// the walk) as soon as the count exceeds `cap`.
fn walk_node_capped(
    node: &Node,
    outer: &[i64],
    pool: &mut Vec<Vec<i64>>,
    cap: u64,
    count: &mut u64,
) -> bool {
    match node {
        Node::Access(a) => {
            if a.domain.contains(outer) {
                *count += 1;
            }
            *count > cap
        }
        Node::Loop(l) => {
            let mut i = pool.pop().unwrap_or_default();
            let mut end = pool.pop().unwrap_or_default();
            let mut exceeded = false;
            if let Some(bound) = entry_interval(l, outer, &mut i, &mut end) {
                pool.push(end);
                let d = l.depth - 1;
                'iterations: while (l.stride > 0 && i[d] <= bound)
                    || (l.stride < 0 && i[d] >= bound)
                {
                    if l.domain.contains(&i) {
                        for child in &l.children {
                            if walk_node_capped(child, &i, pool, cap, count) {
                                exceeded = true;
                                break 'iterations;
                            }
                        }
                    }
                    i[d] += l.stride;
                }
            } else {
                pool.push(end);
            }
            pool.push(i);
            exceeded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{elaborate, parse_program, ElaborateOptions};

    fn scop_of(src: &str) -> Scop {
        elaborate(&parse_program(src).unwrap(), &ElaborateOptions::default()).unwrap()
    }

    #[test]
    fn stencil_access_count_and_order() {
        let scop = scop_of(
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
        );
        let mut first_iteration = Vec::new();
        let total = for_each_access(&scop, |acc| {
            if first_iteration.len() < 3 {
                first_iteration.push((acc.node.id, acc.address));
            }
        });
        assert_eq!(total, 3 * 998);
        let a_base = scop.arrays()[0].base_address;
        let b_base = scop.arrays()[1].base_address;
        assert_eq!(
            first_iteration,
            vec![(0, a_base), (1, a_base + 8), (2, b_base)]
        );
    }

    #[test]
    fn triangular_loop_access_count() {
        // Figure 4: sum over i of (1 + 4 * (100 - i)) accesses.
        let scop = scop_of(
            "double A[100][100]; double x[100]; double c[100];\n\
             for (i = 0; i < 100; i++) {\n\
               c[i] = 0;\n\
               for (j = i; j < 100; j++) c[i] = c[i] + A[i][j] * x[j];\n\
             }",
        );
        let expected: u64 = (0..100u64).map(|i| 1 + 4 * (100 - i)).sum();
        assert_eq!(count_accesses(&scop), expected);
    }

    #[test]
    fn guarded_accesses_are_skipped() {
        let scop = scop_of(
            "double A[100];\n\
             for (i = 0; i < 100; i++) if (i >= 90) A[i] = 0;",
        );
        assert_eq!(count_accesses(&scop), 10);
    }

    #[test]
    fn empty_domain_loops_produce_nothing() {
        let scop = scop_of("double A[10]; for (i = 5; i < 5; i++) A[i] = 0;");
        assert_eq!(count_accesses(&scop), 0);
    }

    #[test]
    fn strided_loops_visit_only_the_stride_grid() {
        // i = 0, 2, ..., 98: 50 iterations of a strided stencil.
        let scop = scop_of(
            "double A[200]; double B[200];\n\
             for (i = 0; i < 100; i += 2) B[i] = A[i] + A[i+1];",
        );
        let mut addresses = Vec::new();
        let total = for_each_access(&scop, |acc| addresses.push(acc.address));
        assert_eq!(total, 3 * 50);
        let a_base = scop.arrays()[0].base_address;
        // The first iteration touches A[0], A[1], B[0]; the second A[2].
        assert_eq!(addresses[0], a_base);
        assert_eq!(addresses[1], a_base + 8);
        assert_eq!(addresses[3], a_base + 16);
    }

    #[test]
    fn decreasing_loops_walk_lexmax_first() {
        let scop = scop_of("double A[10]; for (i = 9; i >= 0; i--) A[i] = 0;");
        let mut addresses = Vec::new();
        let total = for_each_access(&scop, |acc| addresses.push(acc.address));
        assert_eq!(total, 10);
        let base = scop.arrays()[0].base_address;
        assert_eq!(addresses[0], base + 9 * 8, "starts at the initial value");
        assert_eq!(addresses[9], base, "ends at the lower bound");
        assert!(addresses.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn decreasing_stride_grid_anchors_at_the_top() {
        // i = 9, 6, 3, 0: the grid is anchored at the initial value, and a
        // `> 0` bound excludes 0... here `>= 0` includes it.
        let scop = scop_of("double A[10]; for (i = 9; i >= 0; i -= 3) A[i] = 0;");
        let mut addresses = Vec::new();
        assert_eq!(for_each_access(&scop, |acc| addresses.push(acc.address)), 4);
        let base = scop.arrays()[0].base_address;
        assert_eq!(
            addresses,
            vec![base + 72, base + 48, base + 24, base],
            "visits 9, 6, 3, 0"
        );
        // With a bound off the stride grid, only on-grid points are visited.
        let off = scop_of("double A[10]; for (i = 9; i > 1; i -= 3) A[i] = 0;");
        assert_eq!(count_accesses(&off), 3, "visits 9, 6, 3");
        // Guards compose with decreasing strides.
        let guarded = scop_of("double A[10]; for (i = 9; i >= 0; i -= 3) if (i < 7) A[i] = 0;");
        assert_eq!(count_accesses(&guarded), 3, "visits 6, 3, 0");
    }

    #[test]
    fn nested_decreasing_loops_compose() {
        let scop = scop_of(
            "double A[8][8];\n\
             for (i = 0; i < 4; i++) for (j = 3; j >= 0; j--) A[i][j] = 0;",
        );
        let mut addresses = Vec::new();
        assert_eq!(
            for_each_access(&scop, |acc| addresses.push(acc.address)),
            16
        );
        let base = scop.arrays()[0].base_address;
        // First outer iteration: A[0][3], A[0][2], A[0][1], A[0][0].
        assert_eq!(
            &addresses[..4],
            &[base + 24, base + 16, base + 8, base],
            "inner loop walks backwards"
        );
    }

    #[test]
    fn capped_count_agrees_with_exact_count() {
        let scop = scop_of(
            "double A[100][100]; double x[100]; double c[100];\n\
             for (i = 0; i < 100; i++) {\n\
               c[i] = 0;\n\
               for (j = i; j < 100; j++) c[i] = c[i] + A[i][j] * x[j];\n\
             }",
        );
        let total = count_accesses(&scop);
        assert!(exceeds_access_count(&scop, total - 1));
        assert!(!exceeds_access_count(&scop, total));
        assert!(exceeds_access_count(&scop, 0));
        let empty = scop_of("double A[10]; for (i = 5; i < 5; i++) A[i] = 0;");
        assert!(!exceeds_access_count(&empty, 0));
    }

    #[test]
    fn per_node_walk_slices_match_the_full_walk() {
        let scop = scop_of(
            "double A[200]; double B[200];\n\
             for (i = 1; i < 99; i++) B[i] = A[i-1] + A[i+1];",
        );
        let mut full = Vec::new();
        for_each_access(&scop, |acc| full.push((acc.node.id, acc.address, acc.kind)));
        // Replaying each outer iteration through the loop's children must
        // reproduce the full walk slice by slice.
        let Node::Loop(l) = &scop.roots()[0] else {
            panic!("root is a loop");
        };
        let mut replayed = Vec::new();
        let mut count = 0;
        for i in 1..99i64 {
            for child in &l.children {
                count += for_each_access_at(child, &[i], |acc| {
                    replayed.push((acc.node.id, acc.address, acc.kind));
                });
            }
        }
        assert_eq!(count as usize, full.len());
        assert_eq!(replayed, full);
    }

    #[test]
    fn stride_grid_skips_off_grid_upper_bounds() {
        // i = 0, 3, 6, 9: the bound 11 is not on the stride grid.
        let scop = scop_of("double A[20]; for (i = 0; i < 11; i += 3) A[i] = 0;");
        assert_eq!(count_accesses(&scop), 4);
        // Guards compose with strides: only i = 6, 9 pass the guard.
        let guarded = scop_of("double A[20]; for (i = 0; i < 11; i = i + 3) if (i >= 6) A[i] = 0;");
        assert_eq!(count_accesses(&guarded), 2);
    }
}
