//! Parametric kernel families: parse once, elaborate many.
//!
//! A mini-C kernel with `param` declarations is a **family** of concrete
//! kernels, one per assignment of constants to its parameters.  A
//! [`ParametricScop`] holds the parsed template together with its
//! canonical **family text** (the canonical form with parameters left
//! symbolic — see [`crate::canon`]); [`ParametricScop::instantiate`]
//! substitutes a [`ParamBindings`] into the template and elaborates the
//! result, in O(program size) per instance and without re-parsing.
//!
//! The family text is the identity a family-level cache keys on: two
//! sources that differ only in parameter/array/iterator names or affine
//! spelling share it, so a sweep over bindings of either source lands in
//! the same family.  [`ParametricScop::cached`] additionally memoises
//! templates by source text process-wide, which gives the engine's
//! request path parse-once behaviour even when callers only hand it raw
//! source strings.

use crate::ast::{ArrayAccess, ArrayDecl, Condition, Expr, Program, Statement};
use crate::canon::canonical_text;
use crate::elaborate::{elaborate, ElaborateError, ElaborateOptions};
use crate::parser::{parse_program, ParseError};
use crate::tree::Scop;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// An assignment of integer values to parameter names, ordered by name.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ParamBindings {
    values: BTreeMap<String, i64>,
}

impl ParamBindings {
    /// An empty binding set.
    pub fn new() -> Self {
        ParamBindings::default()
    }

    /// Builds bindings from `(name, value)` pairs; later pairs win on
    /// duplicate names.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, i64)>,
        S: Into<String>,
    {
        ParamBindings {
            values: pairs
                .into_iter()
                .map(|(name, value)| (name.into(), value))
                .collect(),
        }
    }

    /// Parses a comma-separated `NAME=value` list, e.g. `"N=1024,T=8"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut bindings = ParamBindings::new();
        for entry in text.split(',').filter(|e| !e.trim().is_empty()) {
            let (name, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("expected NAME=value, found `{entry}`"))?;
            let value: i64 = value
                .trim()
                .parse()
                .map_err(|_| format!("`{}` is not an integer in `{entry}`", value.trim()))?;
            bindings.set(name.trim(), value);
        }
        Ok(bindings)
    }

    /// Sets (or overwrites) one binding.
    pub fn set(&mut self, name: &str, value: i64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Returns `self` with one extra binding (builder style).
    pub fn with(mut self, name: &str, value: i64) -> Self {
        self.set(name, value);
        self
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.values.get(name).copied()
    }

    /// Iterates bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.values
            .iter()
            .map(|(name, &value)| (name.as_str(), value))
    }

    /// The number of bound parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// A deterministic `NAME=value,...` rendering (name order), usable as
    /// the bindings component of a cache key.
    pub fn key(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.iter() {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(name);
            out.push('=');
            out.push_str(&value.to_string());
        }
        out
    }
}

/// Errors from instantiating a parametric kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParamError {
    /// The template source failed to parse.
    Parse(ParseError),
    /// A declared parameter has no binding.
    Unbound(String),
    /// A binding names a parameter the template never declared.
    UnknownParameter(String),
    /// A division's divisor became zero after substitution.
    DivisionByZero(String),
    /// A loop stride became zero after substitution.
    ZeroStride(String),
    /// A loop stride's sign disagrees with the loop's direction after
    /// substitution (e.g. `i += T` under an increasing bound with `T < 0`).
    StrideDirection {
        /// Loop iterator name.
        iter: String,
        /// The substituted stride value.
        value: i64,
    },
    /// Elaboration of the substituted program failed (e.g. a negative or
    /// zero array extent after substitution).
    Elaborate(ElaborateError),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Parse(e) => write!(f, "{e}"),
            ParamError::Unbound(name) => {
                write!(f, "parameter `{name}` is declared but never bound")
            }
            ParamError::UnknownParameter(name) => {
                write!(
                    f,
                    "binding for `{name}` does not match any declared parameter"
                )
            }
            ParamError::DivisionByZero(expr) => {
                write!(f, "division by zero after substitution in `{expr}`")
            }
            ParamError::ZeroStride(iter) => {
                write!(f, "loop `{iter}` has zero stride after substitution")
            }
            ParamError::StrideDirection { iter, value } => write!(
                f,
                "loop `{iter}` has stride {value} after substitution, which contradicts the \
                 loop's direction"
            ),
            ParamError::Elaborate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParamError {}

impl From<ElaborateError> for ParamError {
    fn from(e: ElaborateError) -> Self {
        ParamError::Elaborate(e)
    }
}

/// A parsed, canonicalised parametric kernel template.
#[derive(Clone, Debug)]
pub struct ParametricScop {
    program: Program,
    family: String,
}

impl ParametricScop {
    /// Parses a mini-C source (with `param` declarations) into a template.
    ///
    /// # Errors
    ///
    /// Returns the parser's error for sources outside the supported subset.
    pub fn parse(source: &str) -> Result<Self, ParseError> {
        Ok(Self::from_program(parse_program(source)?))
    }

    /// Wraps an already-built AST as a template.
    pub fn from_program(program: Program) -> Self {
        let family = canonical_text(&program);
        ParametricScop { program, family }
    }

    /// The declared parameter names, in declaration order.
    pub fn params(&self) -> &[String] {
        &self.program.params
    }

    /// The parsed template AST.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The canonical family text: the canonical form of the template with
    /// parameters left symbolic.  Renamed/re-spelled sources of the same
    /// family share this string (hash it for a **family id**).
    pub fn family_text(&self) -> &str {
        &self.family
    }

    /// Substitutes `bindings` into the template, folding every parameter
    /// expression to a constant, and returns the concrete (parameter-free)
    /// program.
    ///
    /// # Errors
    ///
    /// Every declared parameter must be bound and every binding must name a
    /// declared parameter; substitution also validates strides (non-zero,
    /// direction-consistent) and divisions (non-zero divisors).
    pub fn instantiate_program(&self, bindings: &ParamBindings) -> Result<Program, ParamError> {
        for name in &self.program.params {
            if bindings.get(name).is_none() {
                return Err(ParamError::Unbound(name.clone()));
            }
        }
        for (name, _) in bindings.iter() {
            if !self.program.params.iter().any(|p| p == name) {
                return Err(ParamError::UnknownParameter(name.to_string()));
            }
        }
        let mut subst = Substituter {
            bindings,
            shadowed: Vec::new(),
        };
        let arrays = self
            .program
            .arrays
            .iter()
            .map(|decl| {
                Ok(ArrayDecl {
                    name: decl.name.clone(),
                    extents: decl
                        .extents
                        .iter()
                        .map(|extent| subst.expr(extent))
                        .collect::<Result<_, _>>()?,
                    elem_size: decl.elem_size,
                })
            })
            .collect::<Result<_, ParamError>>()?;
        let stmts = self
            .program
            .stmts
            .iter()
            .map(|stmt| subst.statement(stmt))
            .collect::<Result<_, _>>()?;
        Ok(Program {
            params: Vec::new(),
            arrays,
            stmts,
        })
    }

    /// Instantiates and elaborates with the given options.
    ///
    /// # Errors
    ///
    /// See [`ParametricScop::instantiate_program`]; elaboration errors of
    /// the substituted program (negative extents, lingering free names) are
    /// wrapped in [`ParamError::Elaborate`].
    pub fn instantiate_with(
        &self,
        bindings: &ParamBindings,
        options: &ElaborateOptions,
    ) -> Result<Scop, ParamError> {
        let program = self.instantiate_program(bindings)?;
        Ok(elaborate(&program, options)?)
    }

    /// Instantiates and elaborates with [`ElaborateOptions::default`].
    ///
    /// # Errors
    ///
    /// See [`ParametricScop::instantiate_with`].
    pub fn instantiate(&self, bindings: &ParamBindings) -> Result<Scop, ParamError> {
        self.instantiate_with(bindings, &ElaborateOptions::default())
    }

    /// Returns the process-wide memoised template for `source`, parsing and
    /// canonicalising it only on the first call.  This is what makes
    /// repeated engine requests carrying the same parametric source
    /// parse-once: the expensive template work is shared across requests,
    /// threads and bindings.
    ///
    /// # Errors
    ///
    /// Parse failures are returned (and not cached).
    pub fn cached(source: &str) -> Result<Arc<Self>, ParseError> {
        static TEMPLATES: OnceLock<Mutex<HashMap<String, Arc<ParametricScop>>>> = OnceLock::new();
        let cache = TEMPLATES.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("template cache not poisoned");
        if let Some(template) = map.get(source) {
            return Ok(template.clone());
        }
        let template = Arc::new(Self::parse(source)?);
        // Crude bound: the cache holds kernel *templates* (one per distinct
        // source a process sweeps), so overflow means something is
        // generating sources — start over rather than grow without bound.
        if map.len() >= 256 {
            map.clear();
        }
        map.insert(source.to_owned(), template.clone());
        Ok(template)
    }
}

/// Substitution state: the bindings plus the loop iterators currently in
/// scope (which shadow identically-named parameters — the parser rejects
/// such programs, but hand-built ASTs may contain them).
struct Substituter<'a> {
    bindings: &'a ParamBindings,
    shadowed: Vec<String>,
}

impl Substituter<'_> {
    fn expr(&self, expr: &Expr) -> Result<Expr, ParamError> {
        let out = match expr {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Iter(name) => {
                if !self.shadowed.contains(name) {
                    if let Some(value) = self.bindings.get(name) {
                        return Ok(Expr::Const(value));
                    }
                }
                Expr::Iter(name.clone())
            }
            Expr::Add(a, b) => self.expr(a)?.add(self.expr(b)?),
            Expr::Sub(a, b) => self.expr(a)?.sub(self.expr(b)?),
            Expr::Mul(k, e) => self.expr(e)?.scale(*k),
            Expr::Div(a, b) => {
                let a = self.expr(a)?;
                let b = self.expr(b)?;
                if b.eval_const() == Some(0) {
                    return Err(ParamError::DivisionByZero(format!("({a} / {b})")));
                }
                a.div(b)
            }
            Expr::Prod(a, b) => self.expr(a)?.prod(self.expr(b)?),
        };
        // Fold each constructed node so a fully-bound expression collapses
        // to the same `Const` a hand-written constant source parses to.
        Ok(match out.eval_const() {
            Some(c) => Expr::Const(c),
            None => out,
        })
    }

    fn statement(&mut self, stmt: &Statement) -> Result<Statement, ParamError> {
        match stmt {
            Statement::For {
                iter,
                lower,
                upper,
                stride,
                body,
            } => {
                let hint = direction_hint(stride);
                let lower = self.expr(lower)?;
                let upper = self.expr(upper)?;
                let stride = self.expr(stride)?;
                if let Some(value) = stride.eval_const() {
                    if value == 0 {
                        return Err(ParamError::ZeroStride(iter.clone()));
                    }
                    if let Some(expected) = hint {
                        if expected != 0 && expected != value.signum() {
                            return Err(ParamError::StrideDirection {
                                iter: iter.clone(),
                                value,
                            });
                        }
                    }
                }
                self.shadowed.push(iter.clone());
                let body = body
                    .iter()
                    .map(|s| self.statement(s))
                    .collect::<Result<_, _>>();
                self.shadowed.pop();
                Ok(Statement::For {
                    iter: iter.clone(),
                    lower,
                    upper,
                    stride,
                    body: body?,
                })
            }
            Statement::If { conditions, body } => Ok(Statement::If {
                conditions: conditions
                    .iter()
                    .map(|c| {
                        Ok(Condition {
                            lhs: self.expr(&c.lhs)?,
                            op: c.op,
                            rhs: self.expr(&c.rhs)?,
                        })
                    })
                    .collect::<Result<_, ParamError>>()?,
                body: body
                    .iter()
                    .map(|s| self.statement(s))
                    .collect::<Result<_, _>>()?,
            }),
            Statement::Assign { write, reads } => Ok(Statement::Assign {
                write: self.access(write)?,
                reads: reads
                    .iter()
                    .map(|r| self.access(r))
                    .collect::<Result<_, _>>()?,
            }),
        }
    }

    fn access(&self, access: &ArrayAccess) -> Result<ArrayAccess, ParamError> {
        Ok(ArrayAccess {
            array: access.array.clone(),
            indices: access
                .indices
                .iter()
                .map(|index| self.expr(index))
                .collect::<Result<_, _>>()?,
        })
    }
}

/// The sign the loop's normalised bounds assume of its stride, recovered
/// by evaluating the stride template with every parameter set to `+1`
/// (the parser's symbolic stride forms are `P` for increasing loops and
/// `-1 * P` for decreasing ones).  `None` when the template doesn't
/// determine a sign.
fn direction_hint(stride: &Expr) -> Option<i64> {
    fn eval(expr: &Expr) -> Option<i64> {
        match expr {
            Expr::Const(c) => Some(*c),
            Expr::Iter(_) => Some(1),
            Expr::Add(a, b) => Some(eval(a)?.checked_add(eval(b)?)?),
            Expr::Sub(a, b) => Some(eval(a)?.checked_sub(eval(b)?)?),
            Expr::Mul(k, e) => k.checked_mul(eval(e)?),
            Expr::Div(a, b) => match eval(b)? {
                0 => None,
                d => eval(a)?.checked_div(d),
            },
            Expr::Prod(a, b) => eval(a)?.checked_mul(eval(b)?),
        }
    }
    eval(stride).map(i64::signum)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TILED: &str = "\
        param N, T;\n\
        double A[N];\n\
        for (ii = 0; ii < N; ii += T)\n\
            for (i = ii; i < ii + T; i++)\n\
                if (i < N) A[i] = A[i];\n";

    #[test]
    fn instantiation_matches_a_hand_written_constant_kernel() {
        let template = ParametricScop::parse(TILED).unwrap();
        let bindings = ParamBindings::new().with("N", 25).with("T", 8);
        let instance = template.instantiate_program(&bindings).unwrap();
        let by_hand = parse_program(
            "double A[25];\n\
             for (ii = 0; ii < 25; ii += 8)\n\
                 for (i = ii; i < ii + 8; i++)\n\
                     if (i < 25) A[i] = A[i];\n",
        )
        .unwrap();
        assert_eq!(canonical_text(&instance), canonical_text(&by_hand));
        // ... and it elaborates.
        let scop = template.instantiate(&bindings).unwrap();
        assert_eq!(scop.arrays().len(), 1);
    }

    #[test]
    fn division_expressions_fold_on_instantiation() {
        let template = ParametricScop::parse(
            "param N, T; double A[N]; for (i = 0; i < N / T * T; i++) A[i] = 0;",
        )
        .unwrap();
        let instance = template
            .instantiate_program(&ParamBindings::new().with("N", 25).with("T", 8))
            .unwrap();
        let by_hand = parse_program("double A[25]; for (i = 0; i < 24; i++) A[i] = 0;").unwrap();
        assert_eq!(canonical_text(&instance), canonical_text(&by_hand));
    }

    #[test]
    fn binding_errors_are_specific() {
        let template = ParametricScop::parse(TILED).unwrap();
        let err = template
            .instantiate(&ParamBindings::new().with("N", 16))
            .unwrap_err();
        assert!(
            matches!(&err, ParamError::Unbound(name) if name == "T"),
            "{err}"
        );
        assert!(err.to_string().contains("never bound"), "{err}");

        let err = template
            .instantiate(&ParamBindings::new().with("N", 16).with("T", 4).with("X", 1))
            .unwrap_err();
        assert!(
            matches!(&err, ParamError::UnknownParameter(name) if name == "X"),
            "{err}"
        );
    }

    #[test]
    fn degenerate_substitutions_are_rejected() {
        let template = ParametricScop::parse(TILED).unwrap();
        // Zero stride.
        let err = template
            .instantiate(&ParamBindings::new().with("N", 16).with("T", 0))
            .unwrap_err();
        assert!(matches!(err, ParamError::ZeroStride(_)), "{err}");
        // Wrong stride direction for an increasing loop.
        let err = template
            .instantiate(&ParamBindings::new().with("N", 16).with("T", -4))
            .unwrap_err();
        assert!(
            matches!(err, ParamError::StrideDirection { value: -4, .. }),
            "{err}"
        );
        // Non-positive extent after substitution.
        let err = template
            .instantiate(&ParamBindings::new().with("N", 0).with("T", 4))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ParamError::Elaborate(ElaborateError::NonPositiveExtent { .. })
            ),
            "{err}"
        );
        assert!(err.to_string().contains("non-positive extent"), "{err}");
        // Division by zero after substitution.
        let div =
            ParametricScop::parse("param N, T; double A[8]; for (i = 0; i < N / T; i++) A[i] = 0;")
                .unwrap();
        let err = div
            .instantiate(&ParamBindings::new().with("N", 8).with("T", 0))
            .unwrap_err();
        assert!(matches!(err, ParamError::DivisionByZero(_)), "{err}");
    }

    #[test]
    fn family_text_is_invariant_under_renaming() {
        let renamed = "\
            param SIZE, TILE;\n\
            double buf[SIZE];\n\
            for (a = 0; a < SIZE; a += TILE)\n\
                for (b = a; b < a + TILE; b++)\n\
                    if (b < SIZE) buf[b] = buf[b];\n";
        let a = ParametricScop::parse(TILED).unwrap();
        let b = ParametricScop::parse(renamed).unwrap();
        assert_eq!(a.family_text(), b.family_text());
    }

    #[test]
    fn cached_templates_are_shared() {
        let a = ParametricScop::cached(TILED).unwrap();
        let b = ParametricScop::cached(TILED).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the parse");
        assert!(ParametricScop::cached("not a kernel [").is_err());
    }

    #[test]
    fn bindings_parse_and_render_deterministically() {
        let bindings = ParamBindings::parse("T=8, N=25").unwrap();
        assert_eq!(bindings.key(), "N=25,T=8", "name order, not input order");
        assert_eq!(bindings.get("T"), Some(8));
        assert!(ParamBindings::parse("N").is_err());
        assert!(ParamBindings::parse("N=x").is_err());
    }

    #[test]
    fn bindings_parse_edge_cases() {
        // Duplicate keys: the later entry wins, mirroring `from_pairs`.
        let dup = ParamBindings::parse("N=8,N=16").unwrap();
        assert_eq!(dup.get("N"), Some(16));
        assert_eq!(dup.len(), 1);
        // Stray whitespace around names, values and separators is ignored.
        let spaced = ParamBindings::parse("  N = 25 ,\tT =\t8 ").unwrap();
        assert_eq!(spaced.key(), "N=25,T=8");
        // Empty entries (leading/trailing/doubled commas) are skipped, so a
        // generated list with a trailing comma still parses.
        let trailing = ParamBindings::parse("N=1,,T=2,").unwrap();
        assert_eq!(trailing.key(), "N=1,T=2");
        assert!(ParamBindings::parse("").unwrap().is_empty());
        assert!(ParamBindings::parse(" , ").unwrap().is_empty());
        // An empty value is not an integer; the error names the entry.
        let err = ParamBindings::parse("N=").unwrap_err();
        assert!(err.contains("not an integer"), "{err}");
        let err = ParamBindings::parse("N=1,T=4.5").unwrap_err();
        assert!(err.contains("4.5"), "{err}");
        // Negative values are integers like any other.
        assert_eq!(ParamBindings::parse("D=-3").unwrap().get("D"), Some(-3));
    }

    #[test]
    fn decreasing_parametric_strides_instantiate() {
        let template =
            ParametricScop::parse("param T; double A[100]; for (i = 99; i >= 0; i -= T) A[i] = 0;")
                .unwrap();
        let program = template
            .instantiate_program(&ParamBindings::new().with("T", 3))
            .unwrap();
        let Statement::For { stride, .. } = &program.stmts[0] else {
            panic!()
        };
        assert_eq!(stride, &Expr::Const(-3));
        // Binding a negative value flips the direction: rejected.
        let err = template
            .instantiate(&ParamBindings::new().with("T", -3))
            .unwrap_err();
        assert!(matches!(err, ParamError::StrideDirection { .. }), "{err}");
    }
}
