//! Property tests for [`SimRequest::canonical_hash`]: the content address
//! the serving layer caches under.
//!
//! Two requests must collide exactly when they are the *same simulation*:
//!
//! * invariant under α-renaming (array and iterator names), kernel display
//!   names, spelling of loop bounds (`< n` vs `<= n-1`) and the
//!   construction path of the memory config;
//! * distinct whenever any semantically meaningful field differs — loop
//!   extents, array sizes, access offsets, cache geometry, replacement
//!   policy, write policy or backend.

use cache_model::{CacheConfig, HierarchyConfig, MemoryConfig, ReplacementPolicy, WritePolicy};
use engine::{Backend, KernelSpec, SimRequest};
use proptest::prelude::*;

/// The semantic content of a small two-array kernel family; everything
/// *not* in here (names, bound spelling) must not affect the hash.
#[derive(Clone, Debug, PartialEq)]
struct Shape {
    /// Outer loop extent.
    n: u64,
    /// Extra slack in the array declarations beyond what accesses need.
    slack: u64,
    /// Offset of the read access (`B[i + offset]`).
    offset: u64,
    /// Whether a second, inner loop nest is emitted.
    two_loops: bool,
}

/// Spelling choices that are semantically irrelevant.
#[derive(Clone, Debug)]
struct Spelling {
    kernel_name: &'static str,
    write_array: &'static str,
    read_array: &'static str,
    outer_iter: &'static str,
    inner_iter: &'static str,
    /// Render the loop bound as `iter <= n-1` instead of `iter < n`.
    le_bound: bool,
}

fn render(shape: &Shape, spelling: &Spelling) -> KernelSpec {
    let Shape {
        n,
        slack,
        offset,
        two_loops,
    } = *shape;
    let Spelling {
        kernel_name,
        write_array,
        read_array,
        outer_iter,
        inner_iter,
        le_bound,
    } = *spelling;
    let size = n + offset + slack;
    let bound = |extent: u64| {
        if le_bound {
            format!("<= {}", extent - 1)
        } else {
            format!("< {extent}")
        }
    };
    let mut code = format!(
        "double {write_array}[{size}]; double {read_array}[{size}];\n\
         for ({outer_iter} = 0; {outer_iter} {}; {outer_iter}++)\n\
         {write_array}[{outer_iter}] = {read_array}[{outer_iter} + {offset}];\n",
        bound(n)
    );
    if two_loops {
        code.push_str(&format!(
            "for ({outer_iter} = 0; {outer_iter} {}; {outer_iter}++)\n\
             for ({inner_iter} = 0; {inner_iter} {}; {inner_iter}++)\n\
             {write_array}[{inner_iter}] = {write_array}[{outer_iter}];\n",
            bound(n),
            bound(n),
        ));
    }
    KernelSpec::source(kernel_name, code)
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    (2u64..24, 0u64..3, 0u64..3, prop::bool::ANY).prop_map(|(n, slack, offset, two_loops)| Shape {
        n,
        slack,
        offset,
        two_loops,
    })
}

fn arb_spelling() -> impl Strategy<Value = Spelling> {
    (
        prop::sample::select(vec!["k", "jacobi", "renamed-kernel"]),
        prop::sample::select(vec![
            ("A", "B", "i", "j"),
            ("out", "in0", "p", "q"),
            ("x9", "y", "t", "s"),
        ]),
        prop::bool::ANY,
    )
        .prop_map(
            |(kernel_name, (write_array, read_array, outer_iter, inner_iter), le_bound)| Spelling {
                kernel_name,
                write_array,
                read_array,
                outer_iter,
                inner_iter,
                le_bound,
            },
        )
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(vec![
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Plru,
        ReplacementPolicy::Qlru,
    ])
}

fn arb_memory() -> impl Strategy<Value = MemoryConfig> {
    (1usize..16, 1usize..5, arb_policy()).prop_map(|(sets, assoc, policy)| {
        MemoryConfig::single(CacheConfig::with_sets(sets, assoc, 64, policy))
    })
}

fn request(kernel: KernelSpec, memory: MemoryConfig, backend: Backend) -> SimRequest {
    SimRequest::new(kernel, memory, backend)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hash_is_invariant_under_renaming_and_spelling(
        shape in arb_shape(),
        spelling_a in arb_spelling(),
        spelling_b in arb_spelling(),
        memory in arb_memory(),
    ) {
        let a = request(render(&shape, &spelling_a), memory.clone(), Backend::warping());
        let b = request(render(&shape, &spelling_b), memory, Backend::warping());
        prop_assert_eq!(
            a.canonical_hash(),
            b.canonical_hash(),
            "spellings {:?} vs {:?} of shape {:?} must collide",
            spelling_a,
            spelling_b,
            shape
        );
    }

    #[test]
    fn hash_is_invariant_under_memory_construction_path(
        shape in arb_shape(),
        spelling in arb_spelling(),
        sets in 1usize..16,
        assoc in 1usize..5,
        policy in arb_policy(),
    ) {
        let l1 = CacheConfig::with_sets(sets, assoc, 64, policy);
        let l2 = CacheConfig::with_sets(sets * 16, 16, 64, policy);
        // The same single-level system, two constructors.
        let single_a = MemoryConfig::single(l1.clone());
        let single_b = MemoryConfig::new(vec![l1.clone()]).expect("one level is valid");
        // The same two-level system, two constructors.
        let two_a = MemoryConfig::from(HierarchyConfig::new(l1.clone(), l2.clone()));
        let two_b = MemoryConfig::new(vec![l1, l2]).expect("two levels are valid");
        for (left, right) in [(single_a, single_b), (two_a, two_b)] {
            let a = request(render(&shape, &spelling), left, Backend::Classic);
            let b = request(render(&shape, &spelling), right, Backend::Classic);
            prop_assert_eq!(a.canonical_hash(), b.canonical_hash());
        }
    }

    #[test]
    fn hash_separates_semantic_differences(
        shape in arb_shape(),
        spelling in arb_spelling(),
        memory in arb_memory(),
    ) {
        let base = request(render(&shape, &spelling), memory.clone(), Backend::warping());
        let base_hash = base.canonical_hash();

        // Kernel-side mutations: each changes the simulated access stream.
        let mutations = [
            Shape { n: shape.n + 1, ..shape.clone() },
            Shape { slack: shape.slack + 1, ..shape.clone() },
            Shape { offset: shape.offset + 1, ..shape.clone() },
            Shape { two_loops: !shape.two_loops, ..shape.clone() },
        ];
        for mutated in mutations {
            let other = request(render(&mutated, &spelling), memory.clone(), Backend::warping());
            prop_assert!(
                base_hash != other.canonical_hash(),
                "shapes {:?} and {:?} must not collide",
                shape,
                mutated
            );
        }

        // Memory-side mutations: geometry, policy and write policy.
        let l1 = memory.l1().clone();
        let (sets, assoc, line) = (l1.num_sets(), l1.assoc(), l1.line_size());
        let memory_mutations = [
            MemoryConfig::single(CacheConfig::with_sets(sets * 2, assoc, line, l1.policy())),
            MemoryConfig::single(CacheConfig::with_sets(sets, assoc * 2, line, l1.policy())),
            MemoryConfig::single(CacheConfig::with_sets(sets, assoc, line * 2, l1.policy())),
            MemoryConfig::single(CacheConfig::with_sets(
                sets,
                assoc,
                line,
                if l1.policy() == ReplacementPolicy::Lru {
                    ReplacementPolicy::Fifo
                } else {
                    ReplacementPolicy::Lru
                },
            )),
            memory.clone().with_write_policy(
                if memory.write_policy() == WritePolicy::WriteThroughNoAllocate {
                    WritePolicy::WriteBackWriteAllocate
                } else {
                    WritePolicy::WriteThroughNoAllocate
                },
            ),
        ];
        for mutated in memory_mutations {
            let other = request(render(&shape, &spelling), mutated.clone(), Backend::warping());
            prop_assert!(
                base_hash != other.canonical_hash(),
                "memories {:?} and {:?} must not collide",
                memory,
                mutated
            );
        }

        // Backend mutations.
        for backend in [Backend::Classic, Backend::Haystack, Backend::Trace] {
            let other = request(render(&shape, &spelling), memory.clone(), backend);
            prop_assert!(base_hash != other.canonical_hash());
        }
        let mut options = warping::WarpingOptions::default();
        options.fingerprint_filter = !options.fingerprint_filter;
        let other = request(
            render(&shape, &spelling),
            memory.clone(),
            Backend::Warping(options),
        );
        prop_assert!(
            base_hash != other.canonical_hash(),
            "warping option changes must re-address the request"
        );
    }
}
