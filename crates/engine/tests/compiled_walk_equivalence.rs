//! Property test for the compiled walk: lowering a kernel into
//! strength-reduced access runs must be invisible.  Across random kernel
//! shapes (negative strides, non-unit steps, if-guards, triangular nests,
//! parametric tile instances), random replacement policies and depth-2/3
//! hierarchies, the compiled walk must
//!
//!   * emit the exact access stream of the reference walk, address by
//!     address and kind by kind, and
//!   * produce bit-identical [`SimReport`]s through every simulating
//!     backend (classic, warping, trace, sampled) of the engine.
//!
//! `Engine::with_walk(WalkMode::Reference)` is the oracle — the same
//! engine, same backends, same kernels, with only the walker swapped.

use cache_model::{AccessKind, CacheConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, KernelSpec, SimRequest, WalkMode};
use proptest::prelude::*;

/// The kernel shapes under test; each is stamped out from the same small
/// parameter tuple so shrinking stays meaningful.
#[derive(Clone, Copy, Debug)]
enum Shape {
    /// `for (i = 0; i < n; i += step) A[mult*i] = A[mult*i];`
    Strided,
    /// `for (i = n-1; i >= 0; i -= step) A[i] = A[i];`
    Decreasing,
    /// The strided loop with an `if (i < bound)` guard on the body.
    Guarded,
    /// `for (i ...) for (j = 0; j <= i; j++) B[j] = A[i];`
    Triangular,
    /// A tiled instance with ragged-tile guards, via the parametric path.
    Tiled,
}

const TEMPLATE: &str = "\
    param N, T;\n\
    double A[N];\n\
    double B[N];\n\
    for (ii = 0; ii < N; ii += T)\n\
        for (i = ii; i < ii + T; i++)\n\
            if (i < N) B[i] = A[i] + A[i];\n";

/// Renders one concrete kernel for a shape and its parameters.
fn kernel(shape: Shape, n: i64, step: i64, mult: i64) -> KernelSpec {
    match shape {
        Shape::Strided => KernelSpec::source(
            "strided",
            format!(
                "double A[{len}]; for (i = 0; i < {n}; i += {step}) \
                 A[{mult}*i] = A[{mult}*i];",
                len = mult * n
            ),
        ),
        Shape::Decreasing => KernelSpec::source(
            "decreasing",
            format!(
                "double A[{n}]; for (i = {last}; i >= 0; i -= {step}) A[i] = A[i];",
                last = n - 1
            ),
        ),
        Shape::Guarded => KernelSpec::source(
            "guarded",
            format!(
                "double A[{len}]; for (i = 0; i < {n}; i += {step}) \
                 if (i < {bound}) A[{mult}*i] = A[{mult}*i];",
                len = mult * n,
                bound = n / 2 + 1
            ),
        ),
        Shape::Triangular => KernelSpec::source(
            "triangular",
            format!(
                "double A[{n}]; double B[{n}]; \
                 for (i = 0; i < {n}; i += {step}) \
                 for (j = 0; j <= i; j++) B[j] = A[i];"
            ),
        ),
        Shape::Tiled => KernelSpec::parametric("tiled", TEMPLATE, [("N", n), ("T", step)]),
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop::sample::select(vec![
        Shape::Strided,
        Shape::Decreasing,
        Shape::Guarded,
        Shape::Triangular,
        Shape::Tiled,
    ])
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(vec![
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Plru,
        ReplacementPolicy::Qlru,
    ])
}

/// A depth-2 or depth-3 hierarchy, small enough that the tiny kernels
/// still miss at every level.
fn memory(depth: usize, policy: ReplacementPolicy) -> MemoryConfig {
    let mut levels = vec![
        CacheConfig::new(1024, 2, 64, policy),
        CacheConfig::new(4 * 1024, 4, 64, policy),
    ];
    if depth == 3 {
        levels.push(CacheConfig::new(16 * 1024, 8, 64, policy));
    }
    MemoryConfig::new(levels).expect("hierarchy is compatible")
}

/// Every simulating backend (the analytical models have no walk).
fn backends() -> Vec<Backend> {
    vec![
        Backend::Classic,
        Backend::warping(),
        Backend::Trace,
        Backend::Sampled(engine::SamplingOptions::DEFAULT),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled walk's access stream is the reference stream.
    #[test]
    fn compiled_stream_matches_reference(
        shape in arb_shape(),
        n in 4i64..48,
        step in 1i64..4,
        mult in 1i64..4,
    ) {
        let scop = kernel(shape, n, step, mult).build().expect("kernel builds");
        let mut reference: Vec<(u64, AccessKind)> = Vec::new();
        let ref_count = scop::for_each_access(&scop, |access| {
            reference.push((access.address, access.kind));
        });
        let compiled = scop::compile(&scop);
        let mut scratch = compiled.new_scratch();
        let mut lowered: Vec<(u64, AccessKind)> = Vec::new();
        let low_count = compiled.for_each_access(&mut scratch, |_, address, kind| {
            lowered.push((address, kind));
        });
        prop_assert_eq!(ref_count, low_count, "{:?} n={} step={}", shape, n, step);
        prop_assert_eq!(reference, lowered, "{:?} n={} step={} mult={}", shape, n, step, mult);
    }

    /// Every backend reports the same outcome under either walk.
    #[test]
    fn every_backend_is_walk_invariant(
        shape in arb_shape(),
        n in 4i64..48,
        step in 1i64..4,
        mult in 1i64..4,
        depth in prop::sample::select(vec![2usize, 3]),
        policy in arb_policy(),
    ) {
        let compiled = Engine::new().with_threads(1);
        let reference = Engine::new().with_threads(1).with_walk(WalkMode::Reference);
        for backend in backends() {
            let request = SimRequest::new(
                kernel(shape, n, step, mult),
                memory(depth, policy),
                backend,
            );
            let fast = compiled.run(&request).expect("compiled walk runs");
            let slow = reference.run(&request).expect("reference walk runs");
            prop_assert!(
                fast.same_outcome(&slow),
                "{:?} n={} step={} mult={} depth={} policy={:?} backend={}: \
                 {:?} vs {:?}",
                shape, n, step, mult, depth, policy, request.backend,
                fast.result, slow.result
            );
        }
    }
}
