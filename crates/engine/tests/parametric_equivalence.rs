//! Property test for parametric kernel families: an instantiated
//! parametric kernel is indistinguishable from the hand-written constant
//! kernel it denotes — same canonical instance hash (so the serving layer
//! caches them under one address) and the same [`SimReport`] counts —
//! across random bindings, cache geometries and replacement policies.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, KernelSpec, SimRequest};
use proptest::prelude::*;

/// The parametric template: a tiled two-array stencil with an if-guard for
/// the ragged last tile, so every `(N, T)` pair is legal.
const TEMPLATE: &str = "\
    param N, T;\n\
    double A[N];\n\
    double B[N];\n\
    for (ii = 0; ii < N; ii += T)\n\
        for (i = ii; i < ii + T; i++)\n\
            if (i < N) B[i] = A[i] + A[i];\n";

/// The same program with the parameters substituted by hand.
fn constant_source(n: i64, t: i64) -> String {
    format!(
        "double A[{n}];\n\
         double B[{n}];\n\
         for (ii = 0; ii < {n}; ii += {t})\n\
             for (i = ii; i < ii + {t}; i++)\n\
                 if (i < {n}) B[i] = A[i] + A[i];\n"
    )
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(vec![
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Plru,
        ReplacementPolicy::Qlru,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn instantiation_is_indistinguishable_from_the_constant_kernel(
        n in 4i64..64,
        t in 1i64..12,
        sets in 1usize..8,
        // Power-of-two associativities only: PLRU's tree state requires it.
        assoc in prop::sample::select(vec![1usize, 2, 4]),
        policy in arb_policy(),
    ) {
        let memory = MemoryConfig::single(CacheConfig::with_sets(sets, assoc, 64, policy));
        let parametric = SimRequest::new(
            KernelSpec::parametric("tiled", TEMPLATE, [("N", n), ("T", t)]),
            memory.clone(),
            Backend::warping(),
        );
        let constant = SimRequest::new(
            KernelSpec::source("tiled", constant_source(n, t)),
            memory,
            Backend::warping(),
        );

        // Same cache address: a warm report cache serves either spelling.
        prop_assert_eq!(
            parametric.canonical_hash(),
            constant.canonical_hash(),
            "N={} T={} must share an instance address",
            n,
            t
        );

        // Same simulation outcome, bit for bit.
        let engine = Engine::new().with_threads(1);
        let from_template = engine.run(&parametric).expect("parametric instance runs");
        let by_hand = engine.run(&constant).expect("constant kernel runs");
        prop_assert!(
            from_template.same_outcome(&by_hand),
            "N={} T={} policy={:?}: {:?} vs {:?}",
            n,
            t,
            policy,
            from_template.result,
            by_hand.result
        );
    }
}
