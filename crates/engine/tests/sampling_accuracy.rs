//! Accuracy of the interval-sampling backend: for random kernels, random
//! multi-level hierarchies and every replacement policy, the sampled
//! per-level miss counts must lie within the error bound the backend itself
//! reports — the bound is the contract that makes the fast path usable —
//! and a sampling rate of 1.0 must be bit-for-bit identical to classic
//! simulation.

use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
use engine::{Backend, Engine, KernelSpec, SamplingOptions, SimReport, SimRequest};
use proptest::prelude::*;
use scop::ast::{access, assign, for_loop_strided, Expr, Program, Statement};
use scop::{elaborate, ElaborateOptions, Scop};

/// A random affine index `c0 + c1*i (+ c2*j)` with small coefficients, so
/// every subscript stays inside the generated arrays.
fn arb_index(depth: usize) -> impl Strategy<Value = Expr> {
    (0i64..3, 0i64..3, 0i64..3).prop_map(move |(c0, c1, c2)| {
        let mut e = Expr::Const(c0);
        e = e.add(Expr::iter("i").scale(c1));
        if depth > 1 {
            e = e.add(Expr::iter("j").scale(c2));
        }
        e
    })
}

/// A random statement over the declared arrays: one write, up to two reads.
fn arb_statement(depth: usize, num_arrays: usize) -> impl Strategy<Value = Statement> {
    let arrays: Vec<String> = (0..num_arrays).map(|k| format!("A{k}")).collect();
    (
        prop::sample::select(arrays.clone()),
        arb_index(depth),
        proptest::collection::vec((prop::sample::select(arrays), arb_index(depth)), 0..3),
    )
        .prop_map(|(warr, widx, reads)| {
            assign(
                access(&warr, vec![widx]),
                reads
                    .into_iter()
                    .map(|(arr, idx)| access(&arr, vec![idx]))
                    .collect(),
            )
        })
}

/// A random rectangular loop nest with an outer trip count large enough for
/// the sampler to actually skip intervals (the interesting regime; tiny
/// kernels are simulated exactly and trivially satisfy the bound).
/// Streaming and stencil-like accesses dominate because the coefficients
/// are small — exactly the steady-behaviour kernels sampling targets.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        1usize..=2,      // number of arrays
        64i64..=160,     // outer trip count
        prop::bool::ANY, // nested?
        4i64..=16,       // inner trip count
        1usize..=2,      // statements in the innermost body
        1i64..=2,        // outer stride
    )
        .prop_flat_map(|(arrays, n, nested, m, stmts, stride)| {
            let depth = if nested { 2 } else { 1 };
            (
                Just((arrays, n, nested, m, stride)),
                proptest::collection::vec(arb_statement(depth, arrays), stmts),
            )
        })
        .prop_map(|((arrays, n, nested, m, stride), body)| {
            let mut program = Program::new();
            for k in 0..arrays {
                // Large enough that all generated subscripts stay in bounds.
                program = program.with_array(&format!("A{k}"), &[600], 8);
            }
            let stmt = if nested {
                for_loop_strided(
                    "i",
                    Expr::Const(0),
                    Expr::Const(n),
                    stride,
                    vec![for_loop_strided(
                        "j",
                        Expr::Const(0),
                        Expr::Const(m),
                        1,
                        body,
                    )],
                )
            } else {
                for_loop_strided("i", Expr::Const(0), Expr::Const(n), stride, body)
            };
            program.with_stmt(stmt)
        })
}

fn build(program: &Program) -> Scop {
    elaborate(program, &ElaborateOptions::default()).expect("generated programs elaborate")
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop::sample::select(ReplacementPolicy::ALL.to_vec())
}

/// A depth-2 or depth-3 hierarchy with a tiny L1 (so the generated kernels
/// overflow it and per-level behaviour is non-trivial) and per-level random
/// policies.
fn arb_memory() -> impl Strategy<Value = MemoryConfig> {
    (arb_policy(), arb_policy(), arb_policy(), prop::bool::ANY).prop_map(
        |(p1, p2, p3, three_levels)| {
            let mut levels = vec![
                CacheConfig::with_sets(4, 2, 32, p1),
                CacheConfig::with_sets(16, 4, 32, p2),
            ];
            if three_levels {
                levels.push(CacheConfig::with_sets(64, 8, 32, p3));
            }
            MemoryConfig::new(levels).expect("hierarchies are compatible")
        },
    )
}

/// Sampling options spanning sparse to near-exhaustive schedules.
fn arb_options() -> impl Strategy<Value = SamplingOptions> {
    (
        prop::sample::select(vec![50_000u32, 100_000, 250_000, 500_000]),
        0u32..=2,
    )
        .prop_map(|(rate_ppm, warmup)| SamplingOptions {
            rate_ppm,
            warmup,
            max_error: 0,
        })
}

fn run(scop: &Scop, memory: &MemoryConfig, backend: Backend) -> SimReport {
    Engine::new()
        .run(&SimRequest::new(
            KernelSpec::prebuilt("random", scop.clone()),
            memory.clone(),
            backend,
        ))
        .expect("generated kernels simulate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The central accuracy contract: on every level, the sampled miss
    /// count differs from classic simulation by at most the error bound
    /// the sampled report itself carries.
    #[test]
    fn sampled_misses_stay_within_the_reported_bound(
        program in arb_program(),
        memory in arb_memory(),
        options in arb_options(),
    ) {
        let scop = build(&program);
        let exact = run(&scop, &memory, Backend::Classic);
        let sampled = run(&scop, &memory, Backend::Sampled(options));
        prop_assert_eq!(
            sampled.result.accesses, exact.result.accesses,
            "extrapolation must preserve the total access count"
        );
        let approx = sampled.approx.as_ref().expect("sampled reports carry approx stats");
        prop_assert_eq!(approx.per_level_error_bound.len(), exact.levels.len());
        for (level, bound) in approx.per_level_error_bound.iter().enumerate() {
            let got = sampled.levels[level].misses;
            let want = exact.levels[level].misses;
            prop_assert!(
                got.abs_diff(want) <= *bound,
                "level {}: sampled {} vs exact {} exceeds bound {} \
                 (fraction {:.3}, period {}, {}/{} intervals measured)",
                level, got, want, bound,
                approx.sampled_fraction, approx.period,
                approx.measured_intervals, approx.intervals
            );
        }
        // A report that claims exactness must actually be exact.
        if approx.is_exact() {
            prop_assert_eq!(&sampled.result, &exact.result);
        }
    }

    /// Rate 1.0 is not "approximately exact": it runs the classic
    /// simulator verbatim, so counts are bit-for-bit identical on every
    /// level, and the report says so.
    #[test]
    fn full_rate_sampling_is_bit_identical_to_classic(
        program in arb_program(),
        memory in arb_memory(),
        warmup in 0u32..=2,
    ) {
        let scop = build(&program);
        let exact = run(&scop, &memory, Backend::Classic);
        let options = SamplingOptions::from_rate(1.0)
            .expect("1.0 is a valid rate")
            .with_warmup(warmup);
        let sampled = run(&scop, &memory, Backend::Sampled(options));
        prop_assert_eq!(&sampled.result, &exact.result);
        prop_assert_eq!(&sampled.levels, &exact.levels);
        prop_assert!(sampled.exact, "a full-rate report is exact");
        let approx = sampled.approx.as_ref().expect("sampled reports carry approx stats");
        prop_assert!(approx.is_exact());
        prop_assert_eq!(approx.sampled_fraction, 1.0);
        prop_assert!(approx.per_level_error_bound.iter().all(|&b| b == 0));
    }
}

/// Deterministic anchor: a pure streaming kernel is behaviour-periodic, so
/// sampling extrapolates it *exactly* — zero bound, equal counts — while
/// simulating well under half the accesses.
#[test]
fn streaming_kernel_is_extrapolated_exactly() {
    let scop = scop::parse_scop("double A[8192]; for (i = 0; i < 8192; i++) A[i] = A[i];")
        .expect("streaming kernel parses");
    let memory = MemoryConfig::new(vec![
        CacheConfig::with_sets(8, 2, 64, ReplacementPolicy::Lru),
        CacheConfig::with_sets(32, 4, 64, ReplacementPolicy::Plru),
    ])
    .expect("two-level hierarchy");
    let exact = run(&scop, &memory, Backend::Classic);
    let sampled = run(&scop, &memory, Backend::sampled());
    let approx = sampled.approx.as_ref().expect("approx stats");
    assert!(approx.sampled_fraction < 0.5, "most intervals were skipped");
    assert_eq!(approx.per_level_error_bound, vec![0, 0]);
    assert_eq!(sampled.levels, exact.levels);
    assert_eq!(sampled.result, exact.result);
}
