//! The unified simulation report returned by every backend.

use cache_model::{LevelStats, MemoryConfig};
use serde::{Serialize, Value};
use simulate::SimulationResult;
use warping::WarpingOutcome;

/// Warping-specific statistics (present when the request ran on
/// [`Backend::Warping`](crate::Backend::Warping)).
///
/// Equality ignores [`warp_apply_ns`](WarpingStats::warp_apply_ns), which is
/// wall-clock telemetry and varies run to run (so batched and sequential
/// runs of the same request still report the
/// [same outcome](crate::SimReport::same_outcome)).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct WarpingStats {
    /// Number of successful warp events.
    pub warps: u64,
    /// Number of accesses skipped by warping.
    pub warped_accesses: u64,
    /// Number of accesses simulated explicitly.
    pub non_warped_accesses: u64,
    /// Share of accesses that could not be warped, in `[0, 1]` (the top
    /// plot of Fig. 6 of the paper).
    pub non_warped_share: f64,
    /// Number of warp-match attempts.
    pub match_attempts: u64,
    /// Match attempts whose rolling fingerprint found a candidate in the
    /// match map (only those proceed to exact key comparison).
    pub fingerprint_hits: u64,
    /// Number of exact canonical-key constructions — the quantity the
    /// fingerprint filter exists to minimise.
    pub exact_key_builds: u64,
    /// Levels (summed over applied warps) whose frozen labels were matched
    /// through epoch renormalisation — the warps that current-iterator
    /// normalisation could never find (L1-resident kernels over big
    /// hierarchies).
    pub stale_label_renorms: u64,
    /// Wall-clock nanoseconds spent applying warps.  Ignored by
    /// `PartialEq`.
    pub warp_apply_ns: u64,
}

impl PartialEq for WarpingStats {
    fn eq(&self, other: &Self) -> bool {
        self.warps == other.warps
            && self.warped_accesses == other.warped_accesses
            && self.non_warped_accesses == other.non_warped_accesses
            && self.non_warped_share == other.non_warped_share
            && self.match_attempts == other.match_attempts
            && self.fingerprint_hits == other.fingerprint_hits
            && self.exact_key_builds == other.exact_key_builds
            && self.stale_label_renorms == other.stale_label_renorms
    }
}

impl From<&WarpingOutcome> for WarpingStats {
    fn from(outcome: &WarpingOutcome) -> Self {
        WarpingStats {
            warps: outcome.warps,
            warped_accesses: outcome.warped_accesses,
            non_warped_accesses: outcome.non_warped_accesses,
            non_warped_share: outcome.non_warped_share(),
            match_attempts: outcome.match_attempts,
            fingerprint_hits: outcome.fingerprint_hits,
            exact_key_builds: outcome.exact_key_builds,
            stale_label_renorms: outcome.stale_label_renorms,
            warp_apply_ns: outcome.warp_apply_ns,
        }
    }
}

impl From<WarpingOutcome> for WarpingStats {
    fn from(outcome: WarpingOutcome) -> Self {
        WarpingStats::from(&outcome)
    }
}

/// Approximation statistics reported by the sampling backend
/// ([`Backend::Sampled`](crate::Backend::Sampled)): how much of the
/// iteration space was actually simulated and how far the extrapolated
/// counts can be from exact simulation.
///
/// The error bound is *empirical*, derived from the spread of the measured
/// intervals (bracketing difference plus worst observed interval-to-interval
/// jitter): it is exact — zero — for kernels whose cache behaviour is
/// periodic in the detected interval, and a good-faith envelope otherwise.
/// A report whose [`is_exact`](ApproxStats::is_exact) is `true` simulated
/// everything and its counts are bit-identical to the classic backend.
#[derive(Clone, Debug, PartialEq)]
pub struct ApproxStats {
    /// Share of dynamic accesses actually simulated, in `[0, 1]`
    /// (`1.0` means nothing was extrapolated).
    pub sampled_fraction: f64,
    /// Per-level upper bound on the absolute miss-count error of
    /// [`SimReport::result`], L1 first.
    pub per_level_error_bound: Vec<u64>,
    /// Intervals in the sampling schedule (0 when the kernel was too small
    /// to sample and was simulated exactly).
    pub intervals: u64,
    /// Intervals simulated and counted (the rest were extrapolated).
    pub measured_intervals: u64,
    /// Detected outer-loop period, in outer iterations per interval
    /// (largest across sampled loops; 0 when nothing was sampled).
    pub period: u64,
}

impl ApproxStats {
    /// The statistics of a run that simulated everything: full coverage,
    /// zero error.
    pub fn exact(depth: usize) -> Self {
        ApproxStats {
            sampled_fraction: 1.0,
            per_level_error_bound: vec![0; depth],
            intervals: 0,
            measured_intervals: 0,
            period: 0,
        }
    }

    /// Whether the run covered the whole iteration space (no extrapolation,
    /// counts bit-identical to exact simulation).
    pub fn is_exact(&self) -> bool {
        self.sampled_fraction >= 1.0 && self.per_level_error_bound.iter().all(|&b| b == 0)
    }
}

impl Serialize for ApproxStats {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            (
                "sampled_fraction".to_string(),
                self.sampled_fraction.serialize_value(),
            ),
            (
                "per_level_error_bound".to_string(),
                self.per_level_error_bound.serialize_value(),
            ),
            ("intervals".to_string(), self.intervals.serialize_value()),
            (
                "measured_intervals".to_string(),
                self.measured_intervals.serialize_value(),
            ),
            ("period".to_string(), self.period.serialize_value()),
        ])
    }
}

/// The result of one [`SimRequest`](crate::SimRequest): every backend —
/// simulators, analytical models and the trace replayer — reports through
/// this one serializable shape.
///
/// Serialization note: the optional per-request timing fields
/// ([`wall_ns`](SimReport::wall_ns), [`queue_ns`](SimReport::queue_ns)) are
/// *omitted* from the JSON object when unset, so consumers written before
/// they existed see exactly the shape they always did.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Kernel display name.
    pub kernel: String,
    /// Backend label (`classic`, `warping`, `haystack`, `polycache`,
    /// `trace`).
    pub backend: String,
    /// The memory system the request asked for.
    pub memory: MemoryConfig,
    /// Access and per-level hit/miss counts.  For the exact backends these
    /// counts are bit-for-bit what the legacy entry points produce.
    pub result: SimulationResult,
    /// Per-level statistics, L1 first — identical to
    /// [`SimulationResult::levels`], duplicated at the top level of the
    /// report for wire compatibility.
    pub levels: Vec<LevelStats>,
    /// Warping statistics, for the warping backend.
    pub warping: Option<WarpingStats>,
    /// Whether the backend models the requested memory system exactly.
    /// The simulators are always exact; the analytical backends are exact
    /// only on the cache models they were built for (fully-associative LRU
    /// for HayStack, write-allocate LRU hierarchies for PolyCache) and
    /// otherwise report their model's counts as an approximation.
    pub exact: bool,
    /// Wall-clock time spent building (parsing + elaborating) the kernel,
    /// in milliseconds.
    pub build_ms: f64,
    /// Wall-clock time spent simulating, in milliseconds.
    pub sim_ms: f64,
    /// End-to-end wall-clock nanoseconds serving this request (build +
    /// simulate), stamped by [`Engine::run`](crate::Engine::run).  `None`
    /// for reports that predate the field (e.g. deserialized from old
    /// JSON); omitted from JSON when unset.
    pub wall_ns: Option<u64>,
    /// Nanoseconds the request waited in a scheduler queue before a worker
    /// picked it up.  Stamped by the serving layer's worker pool
    /// (`crates/serve`); `None` for requests that never queued; omitted
    /// from JSON when unset.
    pub queue_ns: Option<u64>,
    /// Approximation statistics, for the sampling backend.  `None` for
    /// every exact backend; omitted from JSON when unset, so consumers of
    /// exact reports keep seeing the shape they always did.
    pub approx: Option<ApproxStats>,
}

impl SimReport {
    /// Misses at the last level of the memory system (the quantity the
    /// paper's figures report as "cache misses").  Delegates to the single
    /// definition on [`SimulationResult::last_level_misses`].
    pub fn last_level_misses(&self) -> u64 {
        self.result.last_level_misses()
    }

    /// Build + simulation time in milliseconds (the paper's Fig. 8/9
    /// methodology, which includes SCoP extraction on both sides).
    pub fn total_ms(&self) -> f64 {
        self.build_ms + self.sim_ms
    }

    /// Whether two reports describe the same outcome: equal up to
    /// wall-clock timings, which vary run to run.
    pub fn same_outcome(&self, other: &SimReport) -> bool {
        self.kernel == other.kernel
            && self.backend == other.backend
            && self.memory == other.memory
            && self.result == other.result
            && self.levels == other.levels
            && self.warping == other.warping
            && self.exact == other.exact
            && self.approx == other.approx
    }

    /// The report as a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("reports serialize")
    }
}

// Hand-written (rather than derived) so the optional timing fields can be
// skipped when unset — pre-existing JSON consumers keep seeing the exact
// object shape they were written against.
impl Serialize for SimReport {
    fn serialize_value(&self) -> Value {
        let mut fields = vec![
            ("kernel".to_string(), self.kernel.serialize_value()),
            ("backend".to_string(), self.backend.serialize_value()),
            ("memory".to_string(), self.memory.serialize_value()),
            ("result".to_string(), self.result.serialize_value()),
            ("levels".to_string(), self.levels.serialize_value()),
            ("warping".to_string(), self.warping.serialize_value()),
            ("exact".to_string(), self.exact.serialize_value()),
            ("build_ms".to_string(), self.build_ms.serialize_value()),
            ("sim_ms".to_string(), self.sim_ms.serialize_value()),
        ];
        if let Some(wall_ns) = self.wall_ns {
            fields.push(("wall_ns".to_string(), wall_ns.serialize_value()));
        }
        if let Some(queue_ns) = self.queue_ns {
            fields.push(("queue_ns".to_string(), queue_ns.serialize_value()));
        }
        if let Some(approx) = &self.approx {
            fields.push(("approx".to_string(), approx.serialize_value()));
        }
        Value::Object(fields)
    }
}
