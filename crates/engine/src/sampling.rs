//! Interval sampling with epoch-aware snapshots: the bounded-error fast
//! path for kernels warping cannot accelerate.
//!
//! Warping (Algorithm 2 of the paper) is exact and fast *when states
//! match*; the non-warpable tail still pays full per-access cost.  This
//! module trades exactness for a reported error bound: it simulates only
//! representative intervals of the outer iteration space and extrapolates
//! per-level hit/miss counts from them.
//!
//! # How a run is scheduled
//!
//! For every top-level loop the sampler
//!
//! 1. simulates an exact **prefix** (up to [`MAX_PREFIX`] outer
//!    iterations), recording each iteration's per-level hit/miss counts
//!    as a behaviour signature;
//! 2. detects the smallest **period** `p ≤` [`MAX_PERIOD`] over which the
//!    signature trace repeats; `p` outer iterations form one interval
//!    (fallback `p = 1` — a bad period only widens the bound, never
//!    corrupts the measured counts);
//! 3. keeps walking intervals exactly until per-level occupancy has been
//!    flat across [`STABLE_STREAK`] consecutive checkpoints — cold fill
//!    and capacity transitions are simulated, never extrapolated (a
//!    kernel that never reaches steady state degrades to exact
//!    simulation);
//! 4. walks the remaining intervals on a deterministic schedule: every
//!    `stride`-th interval (plus the first and the last) is **measured** —
//!    simulated with its counts trusted into the totals — and the gaps in
//!    between are **estimated** by the trapezoid of the two bracketing
//!    measurements.  The ragged tail that fills no whole interval is
//!    simulated exactly.
//!
//! After each measured interval the concrete cache state is digested with
//! the warping crate's shift- and rotation-invariant
//! [`concrete_fingerprint`] — the same digest algebra that filters warp
//! matches.  Two measurements with equal fingerprints bracket a
//! steady-state gap (the working set merely moved); unequal fingerprints
//! mean the gap crossed a regime change (e.g. a level's occupancy stopped
//! growing), and its error-bound contribution is widened accordingly.
//!
//! # Epoch-aware warm-up
//!
//! Skipping intervals leaves the cache state behind reality, so each
//! resumption re-simulates a short warm-up before trusting counts again.
//! How much warm-up is needed depends on how much of the hierarchy is
//! *live*: before each resumption the sampler reads every level's epoch
//! (the stamp of its last payload write, maintained by
//! [`MultiLevelState::access_stamped`] — the same signal
//! [`StateSnapshot::stale_levels`] exposes on a captured snapshot) and
//! counts the levels whose epoch reaches back into the last measured
//! interval.
//! Levels untouched since before it are frozen — the relative-label
//! argument of the warping pipeline says carrying them forward is safe —
//! so the warm-up width is `warmup × live_levels`, clamped to the gap:
//! an L1-resident kernel re-converges after `warmup` intervals while a
//! hierarchy-streaming one gets proportionally more.  Warm-up intervals
//! are simulated for their *state* only: their counts are deliberately
//! discarded and replaced by the trapezoid estimate, so cold-state bias
//! ends up inside the reported bound instead of inside the totals.
//!
//! # The error bound
//!
//! Per level, each estimated gap of `g` intervals bracketed by measured
//! per-interval miss counts `m₀`, `m₁` contributes
//! `⌈g·|m₀ − m₁|/2⌉` (the trapezoid can be off by at most half the
//! bracket spread per interval if misses vary monotonically), plus a
//! jitter term `g·J` where `J` is the largest miss-count difference
//! between any *adjacent* measured pair (non-monotone variation).
//!
//! Spread and jitter only see variation that *shows up in measurements* —
//! warm-started measurement can also be systematically wrong in ways
//! every measured interval agrees on (warm-up absorbing a sliding
//! kernel's leading-edge compulsory misses is the canonical case: each
//! measurement then reports near-zero misses, consistently, while the
//! skipped gaps really do miss).  The **audit** closes that blind spot:
//! the first skip region is simulated twice — a *shadow* pass replays the
//! skip/warm-up/measure/trapezoid cadence on a rewound state to
//! reconstruct what sampling would have reported there, and a *truth*
//! pass simulates it contiguously with its counts trusted.  The signed
//! per-interval difference recenters the rest of the extrapolation, and
//! its magnitude is added to the bound, scaled by the intervals it
//! covers.
//!
//! For a kernel whose cache behaviour really is `p`-periodic every
//! measured interval agrees, shadow and truth coincide, all three terms
//! vanish, and the extrapolation is exact — which is what the accuracy
//! suite asserts.  A `rate` of `1.0` bypasses sampling entirely and
//! reproduces the classic backend bit-for-bit.

use crate::report::ApproxStats;
use cache_model::{Access, LevelStats, MemBlock, MemoryConfig, MultiLevelState, StateSnapshot};
use scop::{
    compile, for_each_access_at, for_each_run_at, CompiledLoop, CompiledNode, LoopNode, Node, Scop,
    WalkScratch,
};
use simulate::{simulate_with_walk, MultiLevelSystem, SimulationResult, WalkMode};
use warping::fingerprint::concrete_fingerprint;

/// One million: the denominator of [`SamplingOptions::rate_ppm`].
pub const PPM: u32 = 1_000_000;

/// Outer iterations simulated exactly (and fingerprinted) before sampling
/// starts, per loop.
const MAX_PREFIX: usize = 32;

/// Largest outer-loop period the boundary detector considers.
const MAX_PERIOD: usize = 8;

/// Below this many whole intervals a loop is simulated exactly — the
/// bookkeeping would outweigh the savings.
const MIN_INTERVALS: usize = 4;

/// Consecutive flat occupancy checkpoints (taken every `stride`
/// intervals) required before the sampler starts skipping: while any
/// level is still filling, the transitions fills cause — first
/// evictions, a level saturating — must be simulated, not extrapolated.
const STABLE_STREAK: u32 = 2;

/// Tuning knobs of the sampling backend.
///
/// The fields are integers (not `f64`) so that
/// [`Backend`](crate::Backend) stays `Copy + Eq` and requests remain
/// hashable for the serving layer's content-addressed report cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SamplingOptions {
    /// Target share of dynamic accesses to simulate, in parts per million
    /// of the total.  Valid range `(0, 1_000_000]`; `1_000_000` disables
    /// sampling and reproduces the classic backend bit-for-bit.
    pub rate_ppm: u32,
    /// Warm-up intervals re-simulated (state only, counts discarded) per
    /// *live* cache level before each measured interval.  `0` trusts
    /// carried state unconditionally — cheapest, widest cold-state bias.
    pub warmup: u32,
    /// Target per-level miss-count error bound; `0` means no target.  A
    /// positive target makes the engine pick `rate_ppm` adaptively (from a
    /// calibration prior when one is available), re-running at a boosted
    /// rate at most once when the reported bound overshoots.  The reported
    /// bound is always honest either way; the target steers effort, it
    /// does not clip the report.
    pub max_error: u64,
}

impl SamplingOptions {
    /// The defaults: simulate ~10% of the accesses, one warm-up interval
    /// per live level, no error-bound target.
    pub const DEFAULT: SamplingOptions = SamplingOptions {
        rate_ppm: 100_000,
        warmup: 1,
        max_error: 0,
    };

    /// Options targeting the given sampling rate (a fraction in
    /// `(0, 1]`), with the default warm-up.
    ///
    /// # Errors
    ///
    /// Returns a message for rates outside `(0, 1]` (NaN included).
    pub fn from_rate(rate: f64) -> Result<Self, String> {
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(format!(
                "sample rate must be in (0, 1], got {rate}; \
                 1.0 means exact simulation, smaller is faster"
            ));
        }
        Ok(SamplingOptions {
            rate_ppm: ((rate * f64::from(PPM)).round() as u32).clamp(1, PPM),
            ..SamplingOptions::DEFAULT
        })
    }

    /// The target rate as a fraction in `(0, 1]`.
    pub fn rate(&self) -> f64 {
        f64::from(self.rate_ppm) / f64::from(PPM)
    }

    /// These options with a different warm-up width.
    pub fn with_warmup(mut self, warmup: u32) -> Self {
        self.warmup = warmup;
        self
    }

    /// These options with a per-level miss-count error-bound target
    /// (`0` disables adaptive rate selection).
    pub fn with_max_error(mut self, max_error: u64) -> Self {
        self.max_error = max_error;
        self
    }

    /// Checks the options for validity.
    ///
    /// # Errors
    ///
    /// Returns a message when `rate_ppm` is outside `(0, 1_000_000]`.
    pub fn validate(&self) -> Result<(), String> {
        if self.rate_ppm == 0 || self.rate_ppm > PPM {
            return Err(format!(
                "sampling rate_ppm must be in (0, {PPM}], got {}",
                self.rate_ppm
            ));
        }
        Ok(())
    }
}

impl Default for SamplingOptions {
    fn default() -> Self {
        SamplingOptions::DEFAULT
    }
}

/// What one calibrated sampling run learned about a kernel family's
/// behaviour — the facts a *neighbouring* instance (same family, same
/// hierarchy and policy, nearby bindings) can seed its schedule from
/// instead of re-deriving them with the exact prefix, the stride-spaced
/// stabilisation scan and the shadow/truth audit.
///
/// Every seeded quantity is validated against the new instance before it
/// is trusted (period by a short exact trace, stabilisation by flat
/// occupancy checkpoints, the audit by a measured spot check); any
/// mismatch falls back to the full cold path, so a stale or foreign prior
/// costs time, never soundness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Calibration {
    /// Detected behaviour period, in outer iterations.
    pub period: usize,
    /// Leading prefix iterations whose behaviour signature had not yet
    /// turned periodic on the donor (cold-start fills live here).  A
    /// donee's shortened prefix must reach past this depth, or its
    /// validation window would sit inside the fill and reject every
    /// period.
    pub prefix_settle: usize,
    /// Intervals simulated exactly before per-level occupancy flattened
    /// (the growth phase only, excluding flat confirmation checkpoints).
    pub stable_depth: usize,
    /// Whole intervals the calibrated loop spanned.
    pub intervals: u64,
    /// Per-level `(accesses, misses)` of the first steady measured
    /// interval — the unit other quantities are scaled by.
    pub interval_stats: Vec<(u64, u64)>,
    /// Per-level largest miss-count difference between adjacent measured
    /// intervals.
    pub jitter: Vec<u64>,
    /// Per-level signed `(accesses, misses)` audit discrepancy summed over
    /// [`audit_units`](Calibration::audit_units) intervals, in the units
    /// of [`interval_stats`](Calibration::interval_stats).
    pub bias: Vec<(i64, i64)>,
    /// Intervals the audit covered; `0` when no audit ever ran along the
    /// donor chain.
    pub audit_units: u64,
}

/// How a sampling run interacted with its calibration prior, plus the
/// calibration it measured for future donees.
#[derive(Clone, Debug, Default)]
pub struct CalibrationOutcome {
    /// The calibration this run measured (from its largest sampled loop),
    /// ready to donate; `None` when no loop was actually sampled.
    pub measured: Option<Calibration>,
    /// Whether a usable prior was consulted.
    pub seeded: bool,
    /// Whether any seeded quantity failed validation and fell back to the
    /// full cold path (the run is still sound — just slower).
    pub fallback: bool,
}

/// Runs the sampling backend: simulates representative intervals and
/// extrapolates the rest, optionally seeding the schedule from a
/// calibration prior donated by a neighbouring family instance; returns
/// what this run measured alongside the report.  `options` must already
/// be validated.
pub(crate) fn run_sampled_with(
    scop: &Scop,
    memory: &MemoryConfig,
    options: &SamplingOptions,
    prior: Option<&Calibration>,
    walk: WalkMode,
) -> (SimulationResult, ApproxStats, CalibrationOutcome) {
    let depth = memory.depth();
    if options.rate_ppm >= PPM {
        // Full rate: run the classic path verbatim so the counts are
        // bit-identical by construction, not merely by argument.
        let result = simulate_with_walk(scop, &mut MultiLevelSystem::new(memory.clone()), walk);
        return (
            result,
            ApproxStats::exact(depth),
            CalibrationOutcome::default(),
        );
    }
    // The compiled twin of the SCoP: the exact and measured intervals
    // replay its run stream (batched same-line updates), the reference
    // mode replays Algorithm 1 per access.  Counts are bit-identical.
    let compiled = (walk == WalkMode::Compiled).then(|| compile(scop));
    let scratch = compiled
        .as_ref()
        .map_or_else(WalkScratch::default, |c| c.new_scratch());
    let mut sampler = Sampler {
        config: memory,
        options: *options,
        // A prior is only usable when it describes the same hierarchy
        // depth and a representable period; anything else is ignored
        // outright rather than half-trusted.
        prior: prior.filter(|c| {
            c.interval_stats.len() == depth
                && c.jitter.len() == depth
                && c.bias.len() == depth
                && c.period >= 1
                && c.period <= MAX_PERIOD
        }),
        state: MultiLevelState::new(memory),
        totals: vec![LevelStats::default(); depth],
        bounds: vec![0; depth],
        clock: 0,
        simulated: 0,
        intervals: 0,
        measured_intervals: 0,
        estimated_intervals: 0,
        period: 0,
        seeded: false,
        fallback: false,
        measured_cal: None,
        cur: None,
        scratch,
    };
    for (idx, root) in scop.roots().iter().enumerate() {
        let croot = compiled.as_ref().map(|c| &c.roots()[idx]);
        match root {
            Node::Loop(l) => {
                let cl = croot.and_then(|c| match c {
                    CompiledNode::Loop(cl) => Some(cl),
                    CompiledNode::Access(_) => None,
                });
                sampler.run_loop(l, cl);
            }
            access => sampler.run_node_exact(access, croot),
        }
    }
    sampler.finish()
}

struct Sampler<'a> {
    config: &'a MemoryConfig,
    options: SamplingOptions,
    /// Calibration prior from a neighbouring family instance, already
    /// depth-checked; `None` runs the cold path.
    prior: Option<&'a Calibration>,
    state: MultiLevelState<MemBlock>,
    /// Extrapolated per-level totals (measured + estimated).
    totals: Vec<LevelStats>,
    /// Accumulated per-level miss-count error bounds.
    bounds: Vec<u64>,
    /// Monotonic outer-iteration stamp, shared across roots, fed to
    /// [`MultiLevelState::access_stamped`] as the epoch.
    clock: i64,
    /// Dynamic accesses actually walked (counted or warm-up).
    simulated: u64,
    intervals: u64,
    measured_intervals: u64,
    estimated_intervals: u64,
    period: u64,
    /// Whether any loop consulted the prior.
    seeded: bool,
    /// Whether any seeded quantity failed validation.
    fallback: bool,
    /// Calibration measured by the largest sampled loop so far.
    measured_cal: Option<Calibration>,
    /// The compiled twin of the loop currently being sampled (compiled
    /// walk only); `None` replays the reference per-access walk.
    cur: Option<&'a CompiledLoop>,
    /// Reusable compiled-walk scratch (iteration vector + per-slot base
    /// addresses), kept across intervals so resumptions allocate nothing.
    scratch: WalkScratch,
}

impl<'a> Sampler<'a> {
    fn depth(&self) -> usize {
        self.totals.len()
    }

    /// Levels whose last payload write reaches `horizon` or later — the
    /// re-convergence set of a resumption.  The in-place equivalent of
    /// [`StateSnapshot::stale_levels`]: reading the epochs directly keeps
    /// the per-gap check free of the two full-state clones a
    /// capture/restore round trip would cost.
    fn live_levels(&self, horizon: i64) -> usize {
        self.state
            .levels()
            .iter()
            .filter(|lvl| lvl.epoch().first().copied().unwrap_or(i64::MIN) >= horizon)
            .count()
    }

    /// Simulates a non-loop root exactly, counts trusted.
    fn run_node_exact(&mut self, node: &Node, cnode: Option<&CompiledNode>) {
        let stamp = self.clock;
        let config = self.config;
        let mut local = vec![LevelStats::default(); self.totals.len()];
        let state = &mut self.state;
        let scratch = &mut self.scratch;
        self.simulated += match cnode {
            Some(c) => for_each_run_at(c, &[], scratch, |run| {
                state.access_run_stamped(
                    config, run.base, run.stride, run.count, run.kind, stamp, &mut local,
                );
            }),
            None => for_each_access_at(node, &[], |acc| {
                state
                    .access_stamped(
                        config,
                        Access {
                            address: acc.address,
                            kind: acc.kind,
                        },
                        stamp,
                    )
                    .record_into(&mut local);
            }),
        };
        merge(&mut self.totals, &local);
        self.clock += 1;
    }

    /// Simulates outer iterations `range` of `l` (stamped with their
    /// absolute iteration numbers `base + idx`) and returns the local
    /// per-level counts.  When `counted`, they are also merged into the
    /// totals; a warm-up pass discards them.
    fn run_iters(
        &mut self,
        l: &LoopNode,
        iters: &OuterIters,
        base: i64,
        range: std::ops::Range<usize>,
        counted: bool,
    ) -> Vec<LevelStats> {
        let mut local = vec![LevelStats::default(); self.totals.len()];
        let config = self.config;
        let cur = self.cur;
        for idx in range {
            let stamp = base + idx as i64;
            let state = &mut self.state;
            match cur {
                // Compiled replay: the loop's compiled children mirror
                // `l.children` one to one, so the run stream covers the
                // same accesses in the same order, batched by cache line.
                Some(cl) => {
                    let scratch = &mut self.scratch;
                    for child in cl.children() {
                        self.simulated += for_each_run_at(child, iters.at(idx), scratch, |run| {
                            state.access_run_stamped(
                                config, run.base, run.stride, run.count, run.kind, stamp,
                                &mut local,
                            );
                        });
                    }
                }
                None => {
                    for child in &l.children {
                        self.simulated += for_each_access_at(child, iters.at(idx), |acc| {
                            state
                                .access_stamped(
                                    config,
                                    Access {
                                        address: acc.address,
                                        kind: acc.kind,
                                    },
                                    stamp,
                                )
                                .record_into(&mut local);
                        });
                    }
                }
            }
        }
        if counted {
            merge(&mut self.totals, &local);
        }
        local
    }

    /// The measured-interval stride implied by the target rate: one
    /// interval out of every `stride` is measured, and each resumption
    /// additionally re-simulates warm-up intervals, so the schedule aims
    /// at a simulated share of roughly `(1 + warmup) / stride`.
    fn interval_stride(&self) -> usize {
        let budgeted = (u64::from(self.options.warmup) + 1) * u64::from(PPM);
        (budgeted.div_ceil(u64::from(self.options.rate_ppm)))
            .try_into()
            .unwrap_or(usize::MAX)
    }

    /// Simulates outer iterations `range` exactly (counts trusted) and
    /// appends each iteration's behaviour signature to `trace`.
    ///
    /// The period signature hashes each iteration's per-level counts, not
    /// the cache state: behaviour is periodic from the very first
    /// iteration (a streaming kernel misses every k-th iteration even
    /// while occupancy is still growing), whereas the state only becomes
    /// periodic once every level reaches steady state — far beyond any
    /// affordable prefix.  The state fingerprint instead guards the
    /// measured schedule.
    fn trace_prefix(
        &mut self,
        l: &LoopNode,
        iters: &OuterIters,
        base: i64,
        range: std::ops::Range<usize>,
        trace: &mut Vec<u64>,
    ) {
        for idx in range {
            let local = self.run_iters(l, iters, base, idx..idx + 1, true);
            let mut signature = 0xcbf2_9ce4_8422_2325u64;
            for stats in &local {
                signature = (signature ^ stats.misses).wrapping_mul(0x0000_0100_0000_01b3);
                signature = (signature ^ stats.accesses).wrapping_mul(0x0000_0100_0000_01b3);
            }
            trace.push(signature);
        }
    }

    /// Samples one top-level loop (or simulates it exactly when it is too
    /// small for sampling to pay off).  `cl` is the loop's compiled twin
    /// (compiled walk only).
    fn run_loop(&mut self, l: &LoopNode, cl: Option<&'a CompiledLoop>) {
        self.cur = cl;
        let iters = outer_iterations(l);
        let total = iters.len();
        let base = self.clock;
        self.clock = base + total as i64;

        // Phase 1: exact prefix.  A calibration prior shortens it to just
        // enough iterations to *validate* the donor's period instead of
        // re-detecting one from scratch; a failed validation extends the
        // trace back to the full cold prefix and re-detects, so a foreign
        // prior degrades speed, never the counts.
        let full_prefix = total.min(MAX_PREFIX);
        let mut prefix = match self.prior {
            Some(c) => (c.prefix_settle + 2 * c.period + 2).max(4).min(full_prefix),
            None => full_prefix,
        };
        let mut trace = Vec::with_capacity(full_prefix);
        self.trace_prefix(l, &iters, base, 0..prefix, &mut trace);
        let mut loop_seeded = false;
        // Validation skips the donor's settle depth: those iterations are
        // the cold-start fill, whose signatures are not periodic on any
        // instance, donor included.
        let p = match self.prior {
            Some(c) if validates_period(&trace[c.prefix_settle.min(trace.len())..], c.period) => {
                self.seeded = true;
                loop_seeded = true;
                c.period
            }
            Some(_) => {
                self.seeded = true;
                self.fallback = true;
                self.trace_prefix(l, &iters, base, prefix..full_prefix, &mut trace);
                prefix = full_prefix;
                detect_period(&trace)
            }
            None => detect_period(&trace),
        };
        // The settle depth this run will donate: its own trace's cold
        // head, floored by the donor's so the depth never decays along a
        // donation chain (a validated short trace can understate it).
        let settle = match self.prior {
            Some(c) if loop_seeded => settle_of(&trace, p).max(c.prefix_settle),
            _ => settle_of(&trace, p),
        };
        let remaining = total - prefix;
        let n = remaining / p;
        let stride = self.interval_stride();
        if n < MIN_INTERVALS || stride <= 1 {
            self.run_iters(l, &iters, base, prefix..total, true);
            return;
        }

        // Phase 2a: exact walk until occupancy saturates.  Cache
        // occupancy is monotone — lines are replaced, never vacated — and
        // the transitions the fill causes (first evictions, a level
        // saturating) are one-off behaviour a skipped gap would hide from
        // every bracketing measurement, so the walk stays exact while any
        // level is still growing.  Occupancy is scanned only every
        // `stride` intervals, keeping the check amortised against the
        // intervals walked; a kernel that never reaches steady state is
        // simply simulated exactly — slow but sound.
        let grow_range = |i: usize| (prefix + i * p)..(prefix + (i + 1) * p);
        let occupancy = |state: &MultiLevelState<MemBlock>| -> Vec<u64> {
            state
                .levels()
                .iter()
                .map(|lvl| {
                    lvl.occupied_entries()
                        .map(|(_, set)| set.lines().iter().flatten().count() as u64)
                        .sum()
                })
                .collect()
        };
        let mut stable = 0usize;
        let mut streak = 0u32;
        let mut occ_prev = occupancy(&self.state);
        // End of the last growth evidence, exported as the calibration's
        // stabilisation depth.
        let mut growth_end = 0usize;
        if loop_seeded {
            // Seeded stabilisation: the donor's depth bounds the fill, so
            // walk interval-by-interval — an occupancy scan is cheap next
            // to simulating an interval at these working-set sizes — and
            // stop at the first [`STABLE_STREAK`] flat intervals.  The
            // donor's depth is usually a loose stride-granular bound, so
            // the precise walk ends far earlier than `depth + 2`, and the
            // exact depth observed here is what this run donates onward.
            // The budget adds the prefix deficit (the donor measured its
            // depth after a full cold prefix; this run's is shorter, so
            // the same fill reaches deeper in interval terms).  Occupancy
            // still growing past the budget says the prior does not
            // describe this instance: fall back to the stride-spaced scan.
            let c = self.prior.expect("loop_seeded implies a usable prior");
            let deficit = (full_prefix - prefix) / p;
            let budget = (c.stable_depth + deficit + STABLE_STREAK as usize).min(n);
            while stable < budget && streak < STABLE_STREAK {
                self.run_iters(l, &iters, base, grow_range(stable), true);
                stable += 1;
                let occ = occupancy(&self.state);
                if occ == occ_prev {
                    streak += 1;
                } else {
                    occ_prev = occ;
                    streak = 0;
                    growth_end = stable;
                }
            }
            if streak < STABLE_STREAK && stable < n {
                self.fallback = true;
            }
        }
        while stable < n && streak < STABLE_STREAK {
            let step = stride.min(n - stable);
            self.run_iters(
                l,
                &iters,
                base,
                grow_range(stable).start..grow_range(stable + step - 1).end,
                true,
            );
            let occ = occupancy(&self.state);
            if occ == occ_prev {
                streak += 1;
            } else {
                streak = 0;
                growth_end = stable + step;
            }
            occ_prev = occ;
            stable += step;
        }
        let n_rest = n - stable;
        if n_rest < MIN_INTERVALS {
            self.run_iters(l, &iters, base, (prefix + stable * p)..total, true);
            return;
        }
        self.period = self.period.max(p as u64);
        self.intervals += n as u64;
        self.measured_intervals += stable as u64;

        // Phase 2: measured/estimated schedule over the `n_rest` steady
        // intervals of `p` outer iterations each.  Local interval `i`
        // covers iteration indices
        // `prefix + (stable+i)*p .. prefix + (stable+i+1)*p`.
        let interval_range = |i: usize| grow_range(stable + i);
        let mut schedule: Vec<usize> = (0..n_rest).step_by(stride).collect();
        if *schedule.last().expect("n_rest >= MIN_INTERVALS") != n_rest - 1 {
            schedule.push(n_rest - 1);
        }

        let depth = self.depth();
        let mut measured: Vec<Vec<LevelStats>> = Vec::with_capacity(schedule.len());
        let mut gaps: Vec<usize> = Vec::with_capacity(schedule.len());
        let mut fingerprints: Vec<u64> = Vec::with_capacity(schedule.len());
        let mut prev_end = 0usize; // one past the last simulated interval
                                   // Start stamp of the last measured interval, in absolute outer
                                   // iterations (schedule indices below are relative to `stable`).
        let start_stamp = |i: usize| base + (prefix + (stable + i) * p) as i64;
        let mut horizon = start_stamp(0);
        // The audit (see the module docs): per-level signed
        // `(accesses, misses)` discrepancy between ground truth and a
        // shadow replay of the sampling cadence over the first skip
        // region, and the number of intervals that region spans.
        let mut bias = vec![(0i64, 0i64); depth];
        let mut audit_units = 0u64;
        let mut audit_end = 0usize; // first interval after the audited region
                                    // Audit demotion (seeded runs only): skip the shadow/truth double
                                    // simulation and validate the prior instead — the first post-skip
                                    // measurement must agree with the pre-skip one within the donor's
                                    // jitter.  A failed spot check re-arms the full audit, which then
                                    // fires at the next gap; a passed one adopts the donor's bias at
                                    // the end of the loop (recentring + widening, like a live audit).
        let mut demote = loop_seeded && streak >= STABLE_STREAK && !self.fallback;
        let mut donor_audited = false;
        let mut spot_checked = false;
        let mut si = 0usize;
        while si < schedule.len() {
            let j = schedule[si];
            let gap = j - prev_end;
            if gap > 0 && audit_units == 0 && !demote {
                // ---- Audit: calibrate the cold-state bias. ----
                // Warm-started measurement after a skip can be
                // systematically off in ways no spread or jitter term can
                // see (e.g. warm-up absorbing a sliding kernel's
                // leading-edge compulsory misses, so every measurement
                // agrees on counts that are all equally wrong).  The first
                // skip region — this gap, its measured interval, and the
                // following gap + interval when the schedule has one — is
                // therefore simulated twice: a *shadow* pass replays the
                // exact skip/warm-up/measure/trapezoid cadence on a
                // rewound state to reconstruct what sampling would have
                // reported, and a *truth* pass simulates the region
                // contiguously with its counts trusted into the totals.
                // The signed difference, per interval, is the bias the
                // rest of the schedule will repeat: it recenters the
                // remaining extrapolation and its magnitude widens the
                // bound.  For behaviour-periodic kernels shadow and truth
                // agree exactly, so the calibration costs nothing in
                // bound tightness.
                let last = (si + 1).min(schedule.len() - 1);
                let region_start = prev_end;
                let rewind = StateSnapshot::capture(&self.state);
                let mut shadow = vec![LevelStats::default(); depth];
                let mut left = measured
                    .last()
                    .expect("the schedule starts at interval 0, so a gap has a left bracket")
                    .clone();
                let mut sprev_end = prev_end;
                let mut shorizon = horizon;
                for &sj in &schedule[si..=last] {
                    let sgap = sj - sprev_end;
                    if sgap > 0 {
                        let live = self.live_levels(shorizon);
                        let warmup = (self.options.warmup as usize * live).min(sgap);
                        for w in (sj - warmup)..sj {
                            self.run_iters(l, &iters, base, interval_range(w), false);
                        }
                    }
                    shorizon = start_stamp(sj);
                    let probe = self.run_iters(l, &iters, base, interval_range(sj), false);
                    let g = sgap as u64;
                    for (level, tally) in shadow.iter_mut().enumerate() {
                        let (b, a) = (&left[level], &probe[level]);
                        tally.accesses += g * (b.accesses + a.accesses) / 2 + a.accesses;
                        tally.misses += g * (b.misses + a.misses) / 2 + a.misses;
                    }
                    left = probe;
                    sprev_end = sj + 1;
                }
                self.state = rewind.restore();
                let mut truth = vec![LevelStats::default(); depth];
                for &tj in &schedule[si..=last] {
                    let tgap = tj - prev_end;
                    if tgap > 0 {
                        let local = self.run_iters(
                            l,
                            &iters,
                            base,
                            interval_range(prev_end).start..interval_range(tj).start,
                            true,
                        );
                        merge(&mut truth, &local);
                        self.measured_intervals += tgap as u64;
                    }
                    horizon = start_stamp(tj);
                    let stats = self.run_iters(l, &iters, base, interval_range(tj), true);
                    fingerprints.push(concrete_fingerprint(self.state.levels()));
                    merge(&mut truth, &stats);
                    measured.push(stats);
                    gaps.push(0); // ground truth: nothing left to estimate
                    prev_end = tj + 1;
                }
                audit_units = (prev_end - region_start) as u64;
                audit_end = prev_end;
                for (level, (da, dm)) in bias.iter_mut().enumerate() {
                    *da = truth[level].accesses as i64 - shadow[level].accesses as i64;
                    *dm = truth[level].misses as i64 - shadow[level].misses as i64;
                }
                si = last + 1;
                continue;
            }
            if gap > 0 {
                // Epoch-aware warm-up: levels whose last payload write
                // reaches back into the previous measured interval are
                // live and need re-convergence; frozen levels are safe to
                // carry (so an all-stale hierarchy resumes for free).
                let live = self.live_levels(horizon);
                let warmup = (self.options.warmup as usize * live).min(gap);
                for w in (j - warmup)..j {
                    self.run_iters(l, &iters, base, interval_range(w), false);
                }
            }
            horizon = start_stamp(j);
            let stats = self.run_iters(l, &iters, base, interval_range(j), true);
            fingerprints.push(concrete_fingerprint(self.state.levels()));
            measured.push(stats);
            gaps.push(gap);
            prev_end = j + 1;
            if demote && gap > 0 && !spot_checked {
                // The demoted audit's validation pass: the first measured
                // interval after a skip must agree with the last pre-skip
                // measurement within the donor's observed jitter.  Drift
                // beyond it says the prior does not describe this
                // instance; re-arm the full audit (it fires at the next
                // gap) instead of trusting the donor's bias.
                spot_checked = true;
                let pre = &measured[measured.len() - 2];
                let post = &measured[measured.len() - 1];
                let c = self.prior.expect("demotion implies a usable prior");
                let agrees = (0..depth).all(|level| {
                    post[level].misses.abs_diff(pre[level].misses) <= c.jitter[level] + 1
                });
                if agrees {
                    donor_audited = true;
                } else {
                    demote = false;
                    self.fallback = true;
                }
            }
            si += 1;
        }
        self.measured_intervals += schedule.len() as u64;

        // Phase 3: the ragged tail that fills no whole interval.
        self.run_iters(l, &iters, base, (prefix + n * p)..total, true);

        // Extrapolate the gaps from their bracketing measurements and
        // accumulate the error bound.
        let mut jitter = vec![0u64; depth];
        for pair in measured.windows(2) {
            for (level, j) in jitter.iter_mut().enumerate() {
                *j = (*j).max(pair[0][level].misses.abs_diff(pair[1][level].misses));
            }
        }
        let mut skipped_total = 0u64;
        for (pos, &gap) in gaps.iter().enumerate() {
            if gap == 0 {
                continue;
            }
            let g = gap as u64;
            skipped_total += g;
            self.estimated_intervals += g;
            // The gap before measured interval `pos` is bracketed by the
            // previous measurement (or, for a leading gap, the same one
            // twice — a flat extrapolation).
            let after = &measured[pos];
            let before = if pos > 0 { &measured[pos - 1] } else { after };
            // The shift-invariant state fingerprint tells a steady-state
            // gap (both ends digest identically: the working set merely
            // moved) from one that crossed a regime change — e.g. the
            // boundary where a level's occupancy stops growing.  Across a
            // regime change the trapezoid midpoint has no support, so the
            // full bracket spread enters the bound instead of half.
            let regime_change = pos > 0 && fingerprints[pos] != fingerprints[pos - 1];
            for level in 0..depth {
                let (b, a) = (&before[level], &after[level]);
                let est_accesses = g * (b.accesses + a.accesses) / 2;
                let est_misses = g * (b.misses + a.misses) / 2;
                self.totals[level].accesses += est_accesses;
                self.totals[level].misses += est_misses;
                self.totals[level].hits += est_accesses.saturating_sub(est_misses);
                let spread = g * b.misses.abs_diff(a.misses);
                self.bounds[level] += if regime_change {
                    spread
                } else {
                    spread.div_ceil(2)
                };
            }
        }
        for (bound, j) in self.bounds.iter_mut().zip(&jitter) {
            *bound += skipped_total * j;
        }

        // Apply the audit calibration: every interval after the audited
        // region follows the same skip/warm-up/measure cadence the shadow
        // replayed, so it repeats the same per-interval bias.  The signed
        // bias recenters the totals; its magnitude enters the bound (the
        // correction is itself an extrapolation).
        if audit_units > 0 && audit_end < n_rest {
            let scale = (n_rest - audit_end) as u64;
            for (level, &(da, dm)) in bias.iter().enumerate() {
                let shift_a = da * scale as i64 / audit_units as i64;
                let shift_m = dm * scale as i64 / audit_units as i64;
                let t = &mut self.totals[level];
                t.accesses = t.accesses.saturating_add_signed(shift_a);
                t.misses = t.misses.saturating_add_signed(shift_m).min(t.accesses);
                t.hits = t.accesses - t.misses;
                self.bounds[level] += (dm.unsigned_abs() * scale).div_ceil(audit_units);
            }
        } else if donor_audited {
            // Demoted audit: adopt the donor's per-interval bias, scaled
            // to this instance's interval size (the donor's units are its
            // own interval access counts).  The whole schedule follows the
            // cadence the donor audited, so the bias recenters all of
            // `n_rest` and its magnitude widens the bound the same way a
            // live audit's would.
            let c = self.prior.expect("a donor audit implies a usable prior");
            if c.audit_units > 0 {
                let scale = n_rest as u64;
                for (level, &(da, dm)) in c.bias.iter().enumerate() {
                    let (acc_donor, _) = c.interval_stats[level];
                    let acc_here = measured[0][level].accesses;
                    let den = c.audit_units as i128 * acc_donor.max(1) as i128;
                    let rescale = |d: i64| -> i64 {
                        (d as i128 * scale as i128 * acc_here as i128 / den) as i64
                    };
                    let (shift_a, shift_m) = (rescale(da), rescale(dm));
                    let t = &mut self.totals[level];
                    t.accesses = t.accesses.saturating_add_signed(shift_a);
                    t.misses = t.misses.saturating_add_signed(shift_m).min(t.accesses);
                    t.hits = t.accesses - t.misses;
                    self.bounds[level] +=
                        (dm.unsigned_abs() as u128 * scale as u128 * acc_here as u128)
                            .div_ceil(den as u128) as u64;
                }
            }
        }

        // Export what this loop measured for future donees.  A live audit
        // donates its own bias; a demoted one forwards the donor's,
        // rescaled into this instance's interval units so chained
        // donations stay dimensionally consistent.
        let (out_bias, out_units) = if audit_units > 0 {
            (bias.clone(), audit_units)
        } else if donor_audited {
            let c = self.prior.expect("a donor audit implies a usable prior");
            let forwarded = c
                .bias
                .iter()
                .enumerate()
                .map(|(level, &(da, dm))| {
                    let (acc_donor, _) = c.interval_stats[level];
                    let acc_here = measured[0][level].accesses;
                    let rescale =
                        |d: i64| (d as i128 * acc_here as i128 / acc_donor.max(1) as i128) as i64;
                    (rescale(da), rescale(dm))
                })
                .collect();
            (forwarded, c.audit_units)
        } else {
            (vec![(0i64, 0i64); depth], 0)
        };
        let cal = Calibration {
            period: p,
            prefix_settle: settle,
            stable_depth: growth_end,
            intervals: n as u64,
            interval_stats: measured[0].iter().map(|s| (s.accesses, s.misses)).collect(),
            jitter: jitter.clone(),
            bias: out_bias,
            audit_units: out_units,
        };
        if self
            .measured_cal
            .as_ref()
            .is_none_or(|prev| prev.intervals <= cal.intervals)
        {
            self.measured_cal = Some(cal);
        }
    }

    fn finish(self) -> (SimulationResult, ApproxStats, CalibrationOutcome) {
        let accesses = self.totals.first().map_or(0, |l1| l1.accesses);
        let sampled_fraction = if accesses == 0 {
            1.0
        } else {
            (self.simulated as f64 / accesses as f64).min(1.0)
        };
        let approx = ApproxStats {
            sampled_fraction: if self.estimated_intervals == 0 {
                1.0
            } else {
                sampled_fraction
            },
            per_level_error_bound: self.bounds,
            intervals: self.intervals,
            measured_intervals: self.measured_intervals,
            period: self.period,
        };
        (
            SimulationResult {
                accesses,
                levels: self.totals,
            },
            approx,
            CalibrationOutcome {
                measured: self.measured_cal,
                seeded: self.seeded,
                fallback: self.fallback,
            },
        )
    }
}

/// Adds `from` into `into`, level by level.
fn merge(into: &mut [LevelStats], from: &[LevelStats]) {
    for (t, l) in into.iter_mut().zip(from) {
        t.accesses += l.accesses;
        t.hits += l.hits;
        t.misses += l.misses;
    }
}

/// The outer iteration vectors of a top-level loop, in execution order,
/// stored flat.  A multi-million-iteration loop materialised as
/// `Vec<Vec<i64>>` would spend more time allocating than the sampled
/// simulation itself; one flat buffer keeps enumeration a single
/// allocation.
struct OuterIters {
    flat: Vec<i64>,
    dims: usize,
}

impl OuterIters {
    fn len(&self) -> usize {
        self.flat.len().checked_div(self.dims).unwrap_or(0)
    }

    fn at(&self, idx: usize) -> &[i64] {
        &self.flat[idx * self.dims..(idx + 1) * self.dims]
    }
}

/// Collects the outer iteration vectors of a top-level loop, in execution
/// order, honouring stride direction and the loop's own guard — the same
/// enumeration `scop::walk` performs.
fn outer_iterations(l: &LoopNode) -> OuterIters {
    let mut iters = OuterIters {
        flat: Vec::new(),
        dims: 0,
    };
    if l.stride < 0 {
        let Some(mut i) = l.last(&[]) else {
            return iters;
        };
        let Some(lowest) = l.initial(&[]) else {
            return iters;
        };
        iters.dims = i.len();
        while i.as_slice() >= lowest.as_slice() {
            if l.domain.contains(&i) {
                iters.flat.extend_from_slice(&i);
            }
            *i.last_mut()
                .expect("loop domains have at least one dimension") += l.stride;
        }
        return iters;
    }
    let Some(mut i) = l.initial(&[]) else {
        return iters;
    };
    let Some(last) = l.last(&[]) else {
        return iters;
    };
    iters.dims = i.len();
    while i.as_slice() <= last.as_slice() {
        if l.domain.contains(&i) {
            iters.flat.extend_from_slice(&i);
        }
        *i.last_mut()
            .expect("loop domains have at least one dimension") += l.stride;
    }
    iters
}

/// Whether the trace is `p`-periodic beyond its first (coldest)
/// iteration — the cheap validation a calibration prior's period gets
/// against a shortened prefix.  Stricter than [`detect_period`] in that
/// the whole tail must repeat, looser in that `p` need not be minimal (a
/// donor period that is a multiple of the true one still yields sound
/// intervals, just coarser ones).
fn validates_period(trace: &[u64], p: usize) -> bool {
    if trace.len() < p + 2 {
        return false;
    }
    (1..trace.len() - p).all(|i| trace[i] == trace[i + p])
}

/// The trace's cold head: the smallest index from which the remainder is
/// `p`-periodic.  Donated as [`Calibration::prefix_settle`] so a donee
/// knows how much of its shortened prefix to exclude from validation.
fn settle_of(trace: &[u64], p: usize) -> usize {
    let len = trace.len();
    if len < p + 1 {
        return len;
    }
    let mut s = len - p;
    while s > 0 && trace[s - 1] == trace[s - 1 + p] {
        s -= 1;
    }
    s
}

/// The `rate_ppm` a calibration prior suggests for a positive
/// [`SamplingOptions::max_error`] target: the jitter term dominates the
/// reported bound (each skipped interval charges the donor-observed
/// jitter `J`), so the schedule may skip at most `target / (2·J)`
/// intervals — the other half of the budget is left for spread and bias.
/// Never below the requested rate; `None` when no usable prior or no
/// target.
pub(crate) fn suggest_rate(prior: Option<&Calibration>, options: &SamplingOptions) -> Option<u32> {
    let c = prior?;
    if options.max_error == 0 {
        return None;
    }
    let jitter = c.jitter.iter().copied().max().unwrap_or(0);
    if jitter == 0 {
        // A jitter-free donor reports (near-)zero bounds at any rate.
        return Some(options.rate_ppm);
    }
    let n = c.intervals.max(1);
    let allowed_skipped = (options.max_error / 2) / jitter;
    if allowed_skipped >= n {
        return Some(options.rate_ppm);
    }
    let measured_needed = n - allowed_skipped;
    let stride = (n / measured_needed).max(1);
    // Invert `interval_stride()`: stride = ⌈(warmup+1)·PPM / rate⌉.
    let rate = ((u64::from(options.warmup) + 1) * u64::from(PPM)).div_ceil(stride);
    Some(rate.clamp(u64::from(options.rate_ppm), u64::from(PPM)) as u32)
}

/// The smallest period `p ≤ MAX_PERIOD` over which the fingerprint trace's
/// suffix repeats, or 1 when nothing repeats.  The window is anchored at
/// the end of the trace (skipping cold-start iterations) and always spans
/// more than [`MAX_PERIOD`] entries, so a short flat run inside a longer
/// cycle — e.g. the hit run between two periodic misses — cannot pass as
/// a smaller period.
fn detect_period(trace: &[u64]) -> usize {
    let len = trace.len();
    for p in 1..=MAX_PERIOD.min(len.saturating_sub(1)) {
        let window = (2 * p).max(MAX_PERIOD + 2).min(len - p);
        if window < 2 * p {
            continue;
        }
        let start = len - p - window;
        if (start..len - p).all(|i| trace[i] == trace[i + p]) {
            return p;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, Engine, KernelSpec, SimRequest};
    use cache_model::{CacheConfig, ReplacementPolicy};

    fn memory() -> MemoryConfig {
        MemoryConfig::two_level(
            CacheConfig::with_sets(8, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(32, 4, 64, ReplacementPolicy::Lru),
        )
    }

    fn streaming() -> KernelSpec {
        KernelSpec::source(
            "streaming",
            "double A[65536]; for (i = 0; i < 65536; i++) A[i] = A[i];",
        )
    }

    #[test]
    fn options_validate_and_roundtrip_rates() {
        assert!(SamplingOptions::DEFAULT.validate().is_ok());
        assert_eq!(SamplingOptions::from_rate(1.0).unwrap().rate_ppm, PPM);
        assert_eq!(SamplingOptions::from_rate(0.05).unwrap().rate_ppm, 50_000);
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(SamplingOptions::from_rate(bad).is_err(), "{bad}");
        }
        let zero = SamplingOptions {
            rate_ppm: 0,
            ..SamplingOptions::DEFAULT
        };
        assert!(zero.validate().is_err());
    }

    #[test]
    fn full_rate_is_bit_identical_to_classic() {
        let engine = Engine::new();
        let classic = engine
            .run(&SimRequest::new(streaming(), memory(), Backend::Classic))
            .unwrap();
        let sampled = engine
            .run(&SimRequest::new(
                streaming(),
                memory(),
                Backend::Sampled(SamplingOptions::from_rate(1.0).unwrap()),
            ))
            .unwrap();
        assert_eq!(classic.result, sampled.result);
        assert_eq!(classic.levels, sampled.levels);
        assert!(sampled.exact);
        let approx = sampled.approx.expect("sampled reports carry approx");
        assert!(approx.is_exact());
    }

    #[test]
    fn small_kernels_are_simulated_exactly() {
        // Too few outer iterations to form MIN_INTERVALS intervals: the
        // sampler degrades to exact simulation and says so.
        let kernel =
            KernelSpec::source("tiny", "double A[8]; for (i = 0; i < 8; i++) A[i] = A[i];");
        let engine = Engine::new();
        let classic = engine
            .run(&SimRequest::new(kernel.clone(), memory(), Backend::Classic))
            .unwrap();
        let sampled = engine
            .run(&SimRequest::new(kernel, memory(), Backend::sampled()))
            .unwrap();
        assert_eq!(classic.result, sampled.result);
        assert!(sampled.exact);
        assert!(sampled.approx.unwrap().is_exact());
    }

    #[test]
    fn periodic_kernel_extrapolates_exactly_with_zero_bound() {
        // A streaming kernel is period-1 in the shift-invariant
        // fingerprint: every measured interval agrees, so the trapezoid is
        // exact and the bound collapses to zero.
        let engine = Engine::new();
        let classic = engine
            .run(&SimRequest::new(streaming(), memory(), Backend::Classic))
            .unwrap();
        let sampled = engine
            .run(&SimRequest::new(streaming(), memory(), Backend::sampled()))
            .unwrap();
        let approx = sampled.approx.as_ref().expect("approx block");
        assert!(
            approx.sampled_fraction < 0.5,
            "most of the kernel was skipped, got {}",
            approx.sampled_fraction
        );
        assert!(approx.intervals > approx.measured_intervals);
        for (level, bound) in approx.per_level_error_bound.iter().enumerate() {
            let err = classic.levels[level]
                .misses
                .abs_diff(sampled.levels[level].misses);
            assert!(err <= *bound, "level {level}: error {err} > bound {bound}");
        }
        assert_eq!(
            classic.result.accesses, sampled.result.accesses,
            "rectangular loops extrapolate the access count exactly"
        );
        assert_eq!(approx.per_level_error_bound, vec![0, 0]);
        assert_eq!(classic.levels, sampled.levels, "zero bound means exact");
        assert!(!sampled.exact, "estimated intervals are not exact");
    }

    #[test]
    fn guarded_and_negative_stride_roots_are_handled() {
        let kernel = KernelSpec::source(
            "mixed",
            "double A[4096];\n\
             for (i = 4095; i >= 0; i -= 1) if (i >= 64) A[i] = A[i];\n\
             for (j = 0; j < 100; j += 3) A[j] = 0;",
        );
        let engine = Engine::new();
        let classic = engine
            .run(&SimRequest::new(kernel.clone(), memory(), Backend::Classic))
            .unwrap();
        let sampled = engine
            .run(&SimRequest::new(kernel, memory(), Backend::sampled()))
            .unwrap();
        let approx = sampled.approx.expect("approx block");
        for (level, bound) in approx.per_level_error_bound.iter().enumerate() {
            let err = classic.levels[level]
                .misses
                .abs_diff(sampled.levels[level].misses);
            assert!(err <= *bound, "level {level}: error {err} > bound {bound}");
        }
    }

    #[test]
    fn period_detection_finds_short_cycles() {
        assert_eq!(detect_period(&[7; 32]), 1);
        let two: Vec<u64> = (0..32).map(|i| (i % 2) as u64).collect();
        assert_eq!(detect_period(&two), 2);
        let three: Vec<u64> = (0..32).map(|i| (i % 3) as u64 + 10).collect();
        assert_eq!(detect_period(&three), 3);
        let ramp: Vec<u64> = (0..32).collect();
        assert_eq!(detect_period(&ramp), 1, "aperiodic traces fall back to 1");
        assert_eq!(detect_period(&[]), 1);
    }

    #[test]
    fn calibration_prior_seeds_neighbours_within_bounds() {
        let memory = memory();
        let options = SamplingOptions::DEFAULT;
        let donor = streaming().build().expect("donor builds");
        let (_, _, cold) = run_sampled_with(&donor, &memory, &options, None, WalkMode::Compiled);
        assert!(!cold.seeded && !cold.fallback);
        let cal = cold.measured.expect("a sampled run measures a calibration");
        assert!(cal.period >= 1 && cal.intervals > 0);

        // A neighbouring family instance: same shape, smaller footprint.
        let neighbour = KernelSpec::source(
            "streaming-n",
            "double A[61440]; for (i = 0; i < 61440; i++) A[i] = A[i];",
        )
        .build()
        .expect("neighbour builds");
        let classic = simulate_with_walk(
            &neighbour,
            &mut MultiLevelSystem::new(memory.clone()),
            WalkMode::Compiled,
        );
        let (result, approx, out) = run_sampled_with(
            &neighbour,
            &memory,
            &options,
            Some(&cal),
            WalkMode::Compiled,
        );
        assert!(out.seeded, "a usable prior must be consulted");
        assert!(!out.fallback, "a same-shape neighbour validates cleanly");
        for (level, bound) in approx.per_level_error_bound.iter().enumerate() {
            let err = classic.levels[level]
                .misses
                .abs_diff(result.levels[level].misses);
            assert!(err <= *bound, "level {level}: error {err} > bound {bound}");
        }
        assert_eq!(classic.accesses, result.accesses);
        // The seeded schedule does strictly less exact work than a cold
        // run of the same kernel — that is the whole point.
        let (_, cold_approx, _) =
            run_sampled_with(&neighbour, &memory, &options, None, WalkMode::Compiled);
        assert!(
            approx.measured_intervals < cold_approx.measured_intervals,
            "seeded {} vs cold {}",
            approx.measured_intervals,
            cold_approx.measured_intervals
        );
        // The seeded run still measures a calibration for the next donee.
        assert!(out.measured.is_some());
    }

    #[test]
    fn foreign_priors_fall_back_to_the_cold_path_bit_exactly() {
        let memory = memory();
        let options = SamplingOptions::DEFAULT;
        let donor = streaming().build().expect("donor builds");
        let (_, _, cold) = run_sampled_with(&donor, &memory, &options, None, WalkMode::Compiled);
        let cal = cold.measured.expect("donor calibration");

        // A triangular kernel has an aperiodic behaviour signature: the
        // donor's period cannot validate, so the run must fall back to the
        // full cold prefix — and from there the schedule is identical to a
        // cold run, so the counts are bit-identical, not merely bounded.
        let tri = KernelSpec::source(
            "tri",
            "double A[600]; double x[600];\n\
             for (i = 0; i < 600; i++) for (j = 0; j <= i; j++) x[i] = x[i] + A[j];",
        )
        .build()
        .expect("tri builds");
        let (cold_result, cold_approx, cold_out) =
            run_sampled_with(&tri, &memory, &options, None, WalkMode::Compiled);
        assert!(!cold_out.seeded);
        let (result, approx, out) =
            run_sampled_with(&tri, &memory, &options, Some(&cal), WalkMode::Compiled);
        assert!(out.seeded, "the prior was consulted");
        assert!(out.fallback, "a foreign prior must fail validation");
        assert_eq!(result, cold_result);
        assert_eq!(approx, cold_approx);
    }

    #[test]
    fn compiled_and_reference_walks_sample_bit_identically() {
        // The walk mode changes how intervals are replayed (batched runs
        // vs per-access), not which intervals are measured or what they
        // count: result, bounds and calibration must all coincide.
        let memory = memory();
        let options = SamplingOptions::DEFAULT;
        let kernels = [
            streaming().build().expect("streaming builds"),
            KernelSpec::source(
                "mixed",
                "double A[4096];\n\
                 for (i = 4095; i >= 0; i -= 1) if (i >= 64) A[i] = A[i];\n\
                 for (j = 0; j < 100; j += 3) A[j] = 0;",
            )
            .build()
            .expect("mixed builds"),
        ];
        for (idx, scop) in kernels.iter().enumerate() {
            let (c_result, c_approx, c_out) =
                run_sampled_with(scop, &memory, &options, None, WalkMode::Compiled);
            let (r_result, r_approx, r_out) =
                run_sampled_with(scop, &memory, &options, None, WalkMode::Reference);
            assert_eq!(c_result, r_result, "kernel {idx}");
            assert_eq!(c_approx, r_approx, "kernel {idx}");
            assert_eq!(c_out.measured, r_out.measured, "kernel {idx}");
        }
    }
}
