//! One front door for every simulator in the workspace.
//!
//! The paper's evaluation compares five ways of counting cache misses —
//! per-access simulation (Algorithm 1), warping simulation (Algorithm 2),
//! HayStack- and PolyCache-style analytical models, and Dinero-IV-style
//! trace simulation — which historically each had a differently-shaped
//! entry point.  This crate redesigns the public API around three types:
//!
//! * [`MemoryConfig`] — an N-level memory-system description (re-exported
//!   from `cache_model`), replacing the ad-hoc single/two-level split;
//! * [`Backend`] — which simulator or model answers the request;
//! * [`Engine`] — [`Engine::run`] dispatches one [`SimRequest`] to its
//!   backend and returns a unified, JSON-serializable [`SimReport`];
//!   [`Engine::run_batch`] fans a request grid out across threads.
//!
//! # Example
//!
//! ```
//! use engine::{Backend, Engine, KernelSpec, SimRequest};
//! use cache_model::{CacheConfig, MemoryConfig, ReplacementPolicy};
//!
//! let kernel = KernelSpec::source(
//!     "stencil",
//!     "double A[1000]; double B[1000];
//!      for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
//! );
//! let memory = MemoryConfig::from(
//!     CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru),
//! );
//!
//! let engine = Engine::new();
//! let classic = engine
//!     .run(&SimRequest::new(kernel.clone(), memory.clone(), Backend::Classic))
//!     .unwrap();
//! let warping = engine
//!     .run(&SimRequest::new(kernel, memory, Backend::warping()))
//!     .unwrap();
//!
//! // Warping is exact: identical counts, almost no explicit simulation.
//! assert_eq!(classic.result, warping.result);
//! assert_eq!(classic.result.l1().misses, 3 + 2 * 997);
//! assert!(warping.warping.unwrap().warps > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod report;
mod request;
mod sampling;

pub use cache_model::{MemoryConfig, MemoryConfigError};
pub use canon::CanonicalHash;
pub use report::{ApproxStats, SimReport, WarpingStats};
pub use request::{dataset_by_name, Backend, KernelSpec, SimRequest};
pub use sampling::{Calibration, SamplingOptions, PPM};
pub use simulate::WalkMode;
pub use warping::WarpHints;

use analytical::{HaystackModel, PolyCacheModel};
use cache_model::{LevelStats, ReplacementPolicy, WritePolicy};
use simulate::{simulate_with_walk, MultiLevelSystem, SimulationResult};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use trace_sim::{generate_trace_with, simulate_trace_memory};
use warping::WarpingSimulator;

/// Why a request could not be served.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The kernel failed to parse or elaborate.
    Kernel {
        /// Kernel display name.
        kernel: String,
        /// The parse/elaboration error.
        message: String,
    },
    /// The backend does not support the requested memory system.
    UnsupportedMemory {
        /// Backend label.
        backend: &'static str,
        /// What is unsupported.
        message: String,
    },
    /// The backend's tuning options (warping or sampling) fail validation.
    InvalidOptions(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Kernel { kernel, message } => {
                write!(f, "kernel `{kernel}` failed to build: {message}")
            }
            EngineError::UnsupportedMemory { backend, message } => {
                write!(
                    f,
                    "backend `{backend}` cannot simulate this memory system: {message}"
                )
            }
            EngineError::InvalidOptions(message) => {
                write!(f, "invalid backend options: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Cross-instance warm-start state for [`Engine::run_warm`]: what a
/// *similar* earlier request (typically a neighbouring instance of the
/// same kernel family) already learned.  Both slots are optional and both
/// are validated before being trusted — a stale or foreign context can
/// cost time, never correctness:
///
/// * a [`Calibration`] seeds the sampling backend's schedule (period,
///   stabilisation depth, audit bias), with every seeded quantity
///   validated in-run and demoted work falling back to the cold path on
///   mismatch;
/// * [`WarpHints`] reschedule the warping backend's match attempts, which
///   cannot change any simulation count by construction.
#[derive(Clone, Debug, Default)]
pub struct WarmContext {
    /// Sampling calibration from a neighbouring instance.
    pub calibration: Option<Calibration>,
    /// Warp-plan hints from a neighbouring instance.
    pub warp_hints: Option<WarpHints>,
}

impl WarmContext {
    /// Whether the context carries anything at all.
    pub fn is_empty(&self) -> bool {
        self.calibration.is_none() && self.warp_hints.is_none()
    }
}

/// What a [`Engine::run_warm`] call learned, ready to donate to the next
/// similar request, plus how it interacted with the provided context.
#[derive(Clone, Debug, Default)]
pub struct WarmOutcome {
    /// Calibration measured by this run (sampled backend only).
    pub calibration: Option<Calibration>,
    /// Warp-plan hints exported by this run (warping backend only).
    pub warp_hints: Option<WarpHints>,
    /// Whether a calibration prior was consulted.
    pub calibration_seeded: bool,
    /// Whether some seeded quantity failed validation and fell back to
    /// the full cold path.
    pub calibration_fallback: bool,
    /// Sampled runs the adaptive rate selection made (`0` for
    /// non-sampled backends, `1` when the first rate already met the
    /// target or no target was set, `2` when the bound overshot once).
    pub sampled_attempts: u32,
}

/// The backend-polymorphic simulation engine.
///
/// An `Engine` is cheap to construct and stateless between requests; share
/// one per process and call [`Engine::run`]/[`Engine::run_batch`] freely
/// from any thread.
#[derive(Clone, Debug)]
pub struct Engine {
    threads: usize,
    walk: WalkMode,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine that fans batches out over all available cores.
    pub fn new() -> Self {
        Engine {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            walk: WalkMode::default(),
        }
    }

    /// Overrides the number of worker threads used by
    /// [`Engine::run_batch`] (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The number of worker threads used by [`Engine::run_batch`].
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides how the simulating backends step through the iteration
    /// space.  The default is [`WalkMode::Compiled`] (the
    /// compile-once/walk-many fast path); [`WalkMode::Reference`] restores
    /// the literal per-access walk of Algorithm 1.  Every backend produces
    /// bit-identical counts in both modes — the reference walk exists as
    /// the differential oracle, reachable from the harness via
    /// `--walk reference`.
    pub fn with_walk(mut self, walk: WalkMode) -> Self {
        self.walk = walk;
        self
    }

    /// The walk mode granted to simulating backends.
    pub fn walk(&self) -> WalkMode {
        self.walk
    }

    /// Serves one request: builds the kernel, dispatches to the backend and
    /// reports the unified outcome.
    ///
    /// The engine's thread budget ([`Engine::with_threads`]) is granted to
    /// the backend: a warping request with
    /// [`WarpingOptions::parallel_warp`](warping::WarpingOptions) enabled
    /// applies warps across levels (and across sets within large levels) in
    /// parallel.  Results are bit-identical for every budget.
    ///
    /// # Errors
    ///
    /// [`EngineError::Kernel`] if the kernel does not build,
    /// [`EngineError::UnsupportedMemory`] if the backend cannot simulate
    /// the requested memory system, and [`EngineError::InvalidOptions`] for
    /// degenerate warping options.
    pub fn run(&self, request: &SimRequest) -> Result<SimReport, EngineError> {
        self.run_inner(request, self.threads)
    }

    /// [`Engine::run`] with cross-instance warm-start state: the context's
    /// calibration seeds a sampled request's schedule and its warp hints
    /// reschedule a warping request's match attempts; the returned
    /// [`WarmOutcome`] carries what this run learned for the next one.
    /// With an empty context the report is identical to [`Engine::run`]'s.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Engine::run`].
    pub fn run_warm(
        &self,
        request: &SimRequest,
        ctx: &WarmContext,
    ) -> Result<(SimReport, WarmOutcome), EngineError> {
        self.run_warm_inner(request, self.threads, ctx)
    }

    /// [`Engine::run`] with an explicit thread budget for the backend
    /// (used by [`Engine::run_batch`] to avoid oversubscription).
    fn run_inner(
        &self,
        request: &SimRequest,
        backend_threads: usize,
    ) -> Result<SimReport, EngineError> {
        self.run_warm_inner(request, backend_threads, &WarmContext::default())
            .map(|(report, _)| report)
    }

    /// The full dispatch: one request, one backend, an optional warm
    /// context in, a [`WarmOutcome`] out.
    fn run_warm_inner(
        &self,
        request: &SimRequest,
        backend_threads: usize,
        ctx: &WarmContext,
    ) -> Result<(SimReport, WarmOutcome), EngineError> {
        let kernel = request.kernel.name();
        let serve_start = Instant::now();
        let build_start = Instant::now();
        let scop = request
            .kernel
            .build()
            .map_err(|message| EngineError::Kernel {
                kernel: kernel.clone(),
                message,
            })?;
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        let memory = &request.memory;
        let sim_start = Instant::now();
        let mut warm = WarmOutcome::default();
        let (result, warping, exact, approx) = match &request.backend {
            Backend::Classic => {
                let mut system = MultiLevelSystem::new(memory.clone());
                let result = simulate_with_walk(&scop, &mut system, self.walk);
                (result, None, true, None)
            }
            Backend::Warping(options) => {
                options
                    .validate()
                    .map_err(|e| EngineError::InvalidOptions(e.to_string()))?;
                let mut simulator = WarpingSimulator::try_new(memory.clone())
                    .map_err(|message| EngineError::UnsupportedMemory {
                        backend: "warping",
                        message,
                    })?
                    .with_options(*options)
                    .with_threads(backend_threads)
                    .with_walk(self.walk);
                if let Some(hints) = &ctx.warp_hints {
                    simulator = simulator.with_hints(hints.clone());
                }
                let outcome = simulator.run(&scop);
                warm.warp_hints = Some(simulator.export_hints());
                let stats = WarpingStats::from(&outcome);
                (outcome.result, Some(stats), true, None)
            }
            Backend::Haystack => {
                let single = memory
                    .as_single()
                    .ok_or_else(|| EngineError::UnsupportedMemory {
                        backend: "haystack",
                        message: format!(
                            "the HayStack model covers a single cache level, got {} levels",
                            memory.depth()
                        ),
                    })?;
                let lines = single.num_sets() * single.assoc();
                let profile = HaystackModel::new(single.line_size()).analyze(&scop);
                let l1 = LevelStats {
                    accesses: profile.accesses,
                    hits: profile.hits(lines),
                    misses: profile.misses(lines),
                };
                let exact = single.num_sets() == 1
                    && single.policy() == ReplacementPolicy::Lru
                    && memory.write_policy() == WritePolicy::WriteBackWriteAllocate;
                let result = SimulationResult {
                    accesses: profile.accesses,
                    levels: vec![l1],
                };
                (result, None, exact, None)
            }
            Backend::PolyCache => {
                let hierarchy =
                    memory
                        .to_hierarchy()
                        .ok_or_else(|| EngineError::UnsupportedMemory {
                            backend: "polycache",
                            message: format!(
                                "the PolyCache model covers two-level hierarchies, got {} levels",
                                memory.depth()
                            ),
                        })?;
                if hierarchy.l1.policy() != ReplacementPolicy::Lru
                    || hierarchy.l2.policy() != ReplacementPolicy::Lru
                {
                    return Err(EngineError::UnsupportedMemory {
                        backend: "polycache",
                        message: "the PolyCache model supports LRU replacement only".to_string(),
                    });
                }
                let exact = memory.write_policy() == WritePolicy::WriteBackWriteAllocate;
                let analysis = PolyCacheModel::new(hierarchy).analyze(&scop);
                let l1 = LevelStats {
                    accesses: analysis.accesses,
                    hits: analysis.accesses - analysis.l1_misses,
                    misses: analysis.l1_misses,
                };
                let l2 = LevelStats {
                    accesses: analysis.l1_misses,
                    hits: analysis.l1_misses - analysis.l2_misses,
                    misses: analysis.l2_misses,
                };
                let result = SimulationResult {
                    accesses: analysis.accesses,
                    levels: vec![l1, l2],
                };
                (result, None, exact, None)
            }
            Backend::Sampled(options) => {
                options.validate().map_err(EngineError::InvalidOptions)?;
                let prior = ctx.calibration.as_ref();
                let mut opts = *options;
                // Adaptive rate selection: with a positive target, a
                // calibration prior picks the starting rate from its
                // jitter; an overshooting bound gets one boosted re-run
                // (straight to exact when the overshoot is hopeless).
                if let Some(rate) = sampling::suggest_rate(prior, &opts) {
                    opts.rate_ppm = rate;
                }
                let (result, approx, cal) = loop {
                    warm.sampled_attempts += 1;
                    let (result, approx, cal) =
                        sampling::run_sampled_with(&scop, memory, &opts, prior, self.walk);
                    let worst = approx
                        .per_level_error_bound
                        .iter()
                        .copied()
                        .max()
                        .unwrap_or(0);
                    if opts.max_error == 0
                        || worst <= opts.max_error
                        || warm.sampled_attempts >= 2
                        || opts.rate_ppm >= PPM
                    {
                        break (result, approx, cal);
                    }
                    // Bounds scale roughly with the skipped share; boost
                    // proportionally to the overshoot (at least 2×), and
                    // give up into the exact path when even a 10× boost
                    // could not close the gap.
                    let ratio = (worst / opts.max_error + 1).max(2);
                    opts.rate_ppm = if ratio > 10 {
                        PPM
                    } else {
                        (u64::from(opts.rate_ppm) * ratio)
                            .min(u64::from(PPM))
                            .try_into()
                            .expect("clamped to PPM")
                    };
                };
                warm.calibration = cal.measured;
                warm.calibration_seeded = cal.seeded;
                warm.calibration_fallback = cal.fallback;
                // Sampling that covered the whole iteration space (rate
                // 1.0, or a kernel too small to sample) is exact;
                // anything extrapolated is not, however tight the bound.
                let exact = approx.is_exact();
                (result, None, exact, Some(approx))
            }
            Backend::Trace => {
                let trace = generate_trace_with(&scop, self.walk);
                let levels = simulate_trace_memory(&trace, memory);
                let result = SimulationResult {
                    accesses: trace.len() as u64,
                    levels,
                };
                (result, None, true, None)
            }
        };
        let sim_ms = sim_start.elapsed().as_secs_f64() * 1e3;

        Ok((
            SimReport {
                kernel,
                backend: request.backend.label().to_string(),
                memory: memory.clone(),
                levels: result.levels.clone(),
                result,
                warping,
                exact,
                build_ms,
                sim_ms,
                wall_ns: Some(serve_start.elapsed().as_nanos() as u64),
                // Stamped by schedulers that queue requests (the serving
                // layer's worker pool); a direct `run` never queues.
                queue_ns: None,
                approx,
            },
            warm,
        ))
    }

    /// Serves a batch of requests, fanning them out across
    /// [`Engine::threads`] worker threads.  Reports come back in request
    /// order and are identical (up to wall-clock timings) to sequential
    /// [`Engine::run`] calls.
    ///
    /// The thread budget is shared with the backends' own parallelism:
    /// batch-level fan-out takes precedence, so when several requests run
    /// concurrently each of them applies warps sequentially
    /// (`parallel_warp` stays dormant rather than oversubscribing the
    /// machine).  A batch that collapses to the sequential path — fewer
    /// than two requests, or an engine with one thread — grants each
    /// request the full budget, exactly like [`Engine::run`].  Either way
    /// the reported counts are bit-identical.
    pub fn run_batch(&self, requests: &[SimRequest]) -> Vec<Result<SimReport, EngineError>> {
        let workers = self.threads.min(requests.len());
        if workers <= 1 {
            return requests.iter().map(|request| self.run(request)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SimReport, EngineError>>>> =
            requests.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(request) = requests.get(index) else {
                        break;
                    };
                    let outcome = self.run_inner(request, 1);
                    *slots[index]
                        .lock()
                        .expect("no panics while holding the slot") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker threads joined")
                    .expect("every request was served")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_model::{CacheConfig, HierarchyConfig};

    fn stencil() -> KernelSpec {
        KernelSpec::source(
            "stencil",
            "double A[1000]; double B[1000];\n\
             for (i = 1; i < 999; i++) B[i-1] = A[i-1] + A[i];",
        )
    }

    fn fa_lru() -> MemoryConfig {
        MemoryConfig::from(CacheConfig::fully_associative(2, 8, ReplacementPolicy::Lru))
    }

    #[test]
    fn all_five_backends_dispatch() {
        let engine = Engine::new();
        let single = fa_lru();
        let hierarchy = MemoryConfig::from(HierarchyConfig::polycache_comparison());
        for backend in Backend::ALL {
            let memory = if backend == Backend::PolyCache {
                hierarchy.clone()
            } else {
                single.clone()
            };
            let report = engine
                .run(&SimRequest::new(stencil(), memory, backend))
                .unwrap_or_else(|e| panic!("{backend}: {e}"));
            assert_eq!(report.backend, backend.label());
            assert_eq!(report.result.accesses, 3 * 998, "{backend}");
        }
    }

    #[test]
    fn exact_backends_agree_on_the_running_example() {
        let engine = Engine::new();
        for backend in [Backend::Classic, Backend::warping(), Backend::Trace] {
            let report = engine
                .run(&SimRequest::new(stencil(), fa_lru(), backend))
                .unwrap();
            assert_eq!(report.result.l1().misses, 3 + 2 * 997, "{backend}");
            assert!(report.exact);
        }
        // HayStack models exactly this cache (fully-associative LRU).
        let haystack = engine
            .run(&SimRequest::new(stencil(), fa_lru(), Backend::Haystack))
            .unwrap();
        assert_eq!(haystack.result.l1().misses, 3 + 2 * 997);
        assert!(haystack.exact);
    }

    #[test]
    fn haystack_flags_approximate_configurations() {
        let engine = Engine::new();
        let set_associative =
            MemoryConfig::from(CacheConfig::with_sets(4, 2, 8, ReplacementPolicy::Plru));
        let report = engine
            .run(&SimRequest::new(
                stencil(),
                set_associative,
                Backend::Haystack,
            ))
            .unwrap();
        assert!(!report.exact);
    }

    #[test]
    fn unsupported_memory_is_a_clean_error() {
        let engine = Engine::new();
        let three_levels = MemoryConfig::new(vec![
            CacheConfig::with_sets(2, 2, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(4, 4, 64, ReplacementPolicy::Lru),
            CacheConfig::with_sets(8, 8, 64, ReplacementPolicy::Lru),
        ])
        .unwrap();
        // Only the analytical models are depth-limited (by construction).
        for backend in [Backend::Haystack, Backend::PolyCache] {
            let err = engine
                .run(&SimRequest::new(stencil(), three_levels.clone(), backend))
                .unwrap_err();
            assert!(
                matches!(err, EngineError::UnsupportedMemory { .. }),
                "{backend}"
            );
        }
        // Every simulator handles any depth through the same code path.
        for backend in [Backend::Classic, Backend::warping(), Backend::Trace] {
            let report = engine
                .run(&SimRequest::new(stencil(), three_levels.clone(), backend))
                .unwrap_or_else(|e| panic!("{backend}: {e}"));
            assert_eq!(report.levels.len(), 3, "{backend}");
            assert_eq!(report.result.depth(), 3, "{backend}");
        }
    }

    #[test]
    fn simulators_agree_on_the_depth_3_test_system() {
        let engine = Engine::new();
        let memory = MemoryConfig::test_system_l3();
        assert_eq!(memory.depth(), 3);
        let reports: Vec<SimReport> = [Backend::Classic, Backend::warping(), Backend::Trace]
            .into_iter()
            .map(|backend| {
                engine
                    .run(&SimRequest::new(stencil(), memory.clone(), backend))
                    .unwrap()
            })
            .collect();
        assert_eq!(reports[0].result, reports[1].result);
        assert_eq!(reports[0].result, reports[2].result);
        assert_eq!(reports[0].levels.len(), 3);
    }

    #[test]
    fn exact_backends_agree_under_no_write_allocate() {
        // Write misses that do not allocate change the miss counts of the
        // re-read loop; classic, warping and trace must all honour the
        // hierarchy-wide write policy identically (regression test: the
        // warping/trace paths used to ignore it on single-level configs).
        let engine = Engine::new();
        // The array fits in the cache, so with write allocation the second
        // loop hits everywhere, while without it the first loop leaves the
        // cache empty and the second loop's reads all miss.
        let kernel = KernelSpec::source(
            "write-then-read",
            "double A[16];\n\
             for (i = 0; i < 16; i++) A[i] = 0;\n\
             for (j = 0; j < 16; j++) A[j] = A[j];",
        );
        for policy in [
            WritePolicy::WriteBackWriteAllocate,
            WritePolicy::WriteThroughNoAllocate,
        ] {
            let memory = MemoryConfig::from(CacheConfig::fully_associative(
                32,
                8,
                ReplacementPolicy::Lru,
            ))
            .with_write_policy(policy);
            let reports: Vec<SimReport> = [Backend::Classic, Backend::warping(), Backend::Trace]
                .into_iter()
                .map(|backend| {
                    engine
                        .run(&SimRequest::new(kernel.clone(), memory.clone(), backend))
                        .unwrap()
                })
                .collect();
            assert_eq!(reports[0].result, reports[1].result, "{policy:?}");
            assert_eq!(reports[0].result, reports[2].result, "{policy:?}");
        }
        // And the two policies genuinely differ, so the test has teeth.
        let misses = |policy: WritePolicy| {
            let memory = MemoryConfig::from(CacheConfig::fully_associative(
                32,
                8,
                ReplacementPolicy::Lru,
            ))
            .with_write_policy(policy);
            engine
                .run(&SimRequest::new(kernel.clone(), memory, Backend::Classic))
                .unwrap()
                .result
                .l1()
                .misses
        };
        assert!(
            misses(WritePolicy::WriteThroughNoAllocate)
                > misses(WritePolicy::WriteBackWriteAllocate)
        );
    }

    #[test]
    fn polycache_rejects_non_lru() {
        let engine = Engine::new();
        let plru = MemoryConfig::two_level(
            CacheConfig::new(32 * 1024, 8, 64, ReplacementPolicy::Plru),
            CacheConfig::new(256 * 1024, 8, 64, ReplacementPolicy::Plru),
        );
        let err = engine
            .run(&SimRequest::new(stencil(), plru, Backend::PolyCache))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnsupportedMemory { .. }));
    }

    #[test]
    fn invalid_warping_options_are_rejected() {
        let engine = Engine::new();
        let options = warping::WarpingOptions {
            backoff_interval: 0,
            ..warping::WarpingOptions::default()
        };
        let err = engine
            .run(&SimRequest::new(
                stencil(),
                fa_lru(),
                Backend::Warping(options),
            ))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidOptions(_)));
    }

    #[test]
    fn kernel_errors_carry_the_kernel_name() {
        let engine = Engine::new();
        let bad = KernelSpec::source("broken", "for (i = 0; i < ; i++) ;");
        let err = engine
            .run(&SimRequest::new(bad, fa_lru(), Backend::Classic))
            .unwrap_err();
        match err {
            EngineError::Kernel { kernel, .. } => assert_eq!(kernel, "broken"),
            other => panic!("expected a kernel error, got {other:?}"),
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let engine = Engine::new().with_threads(4);
        let kernels = [
            stencil(),
            KernelSpec::source(
                "streaming",
                "double A[4096]; for (i = 0; i < 4096; i++) A[i] = 0;",
            ),
        ];
        let memories = [
            fa_lru(),
            MemoryConfig::from(CacheConfig::with_sets(8, 2, 8, ReplacementPolicy::Fifo)),
        ];
        let backends = [Backend::Classic, Backend::warping(), Backend::Trace];
        let grid = SimRequest::grid(&kernels, &memories, &backends);
        assert_eq!(grid.len(), 12);
        let batch = engine.run_batch(&grid);
        for (request, batched) in grid.iter().zip(&batch) {
            let sequential = engine.run(request);
            match (batched, sequential) {
                (Ok(b), Ok(s)) => assert!(b.same_outcome(&s)),
                (b, s) => panic!("outcome mismatch: {b:?} vs {s:?}"),
            }
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let request = SimRequest::new(
            KernelSpec::polybench(polybench::Kernel::Jacobi1d, polybench::Dataset::Mini),
            MemoryConfig::test_system(),
            Backend::Trace,
        );
        let json = serde_json::to_string(&request).unwrap();
        let back: SimRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, request);
    }

    #[test]
    fn reports_serialize_to_json() {
        let engine = Engine::new();
        let report = engine
            .run(&SimRequest::new(stencil(), fa_lru(), Backend::warping()))
            .unwrap();
        let json = report.to_json();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            value
                .get("result")
                .and_then(|r| r.get("l1"))
                .and_then(|l| l.get("misses")),
            Some(&serde::Value::UInt(3 + 2 * 997))
        );
        assert_eq!(
            value.get("backend").and_then(serde::Value::as_str),
            Some("warping")
        );
    }
}
